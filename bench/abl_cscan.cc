// Ablation A2: C-SCAN vs FIFO ordering of the real-time queue, and CRAS's
// own cylinder-order submission.
//
// C-SCAN is what makes the O_seek bound of formula (12) valid: with FIFO
// service, per-interval seek time grows with the square of the stream
// count's scatter and the measured interval I/O time climbs toward the
// estimate.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace {

using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

struct Outcome {
  double seek_ms_per_interval = 0;
  double actual_io_ms_per_interval = 0;
  std::int64_t deadline_misses = 0;
};

Outcome RunOne(crdisk::QueueDiscipline discipline, bool server_sorts, int streams) {
  TestbedOptions options;
  options.driver.discipline = discipline;
  options.cras.sort_requests_by_cylinder = server_sorts;
  Testbed bed(options);
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, Seconds(18));
  // Shuffle the session-open order relative to on-disk placement: files are
  // allocated in ascending cylinder-group order, so without a shuffle the
  // "unsorted" submission order would accidentally be sorted.
  crbase::Rng rng(13);
  for (std::size_t i = files.size(); i > 1; --i) {
    std::swap(files[i - 1], files[rng.NextBelow(i)]);
  }
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(15);
  for (int i = 0; i < streams; ++i) {
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(Seconds(18));
  Outcome outcome;
  crstats::Summary actual;
  std::int64_t intervals = 0;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (record.requests >= streams) {
      actual.Add(crbase::ToMilliseconds(record.actual_io));
      ++intervals;
    }
  }
  outcome.actual_io_ms_per_interval = actual.mean();
  outcome.seek_ms_per_interval =
      intervals == 0 ? 0
                     : crbase::ToMilliseconds(bed.device.stats().seek_time) /
                           static_cast<double>(intervals);
  outcome.deadline_misses = bed.cras_server.stats().deadline_misses;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Ablation A2: C-SCAN vs FIFO real-time queue ordering");
  crstats::Table table({"streams", "server_sort", "driver_queue", "seek_ms_per_interval",
                        "actual_io_ms_per_interval", "deadline_misses"});
  table.SetCsv(csv);
  struct Config {
    bool server_sorts;
    crdisk::QueueDiscipline discipline;
    const char* sort_label;
    const char* queue_label;
  };
  // CRAS sorts by cylinder *and* the driver queue is C-SCAN; the two are
  // redundant by design. Ablating both shows whether either suffices and
  // what happens with neither.
  const Config configs[] = {
      {true, crdisk::QueueDiscipline::kCScan, "cylinder", "c-scan"},
      {false, crdisk::QueueDiscipline::kCScan, "none", "c-scan"},
      {true, crdisk::QueueDiscipline::kFifo, "cylinder", "fifo"},
      {false, crdisk::QueueDiscipline::kFifo, "none", "fifo"},
  };
  for (int streams : {4, 8, 14}) {
    for (const Config& config : configs) {
      const Outcome o = RunOne(config.discipline, config.server_sorts, streams);
      table.Cell(static_cast<std::int64_t>(streams))
          .Cell(config.sort_label)
          .Cell(config.queue_label)
          .Cell(o.seek_ms_per_interval, 2)
          .Cell(o.actual_io_ms_per_interval, 2)
          .Cell(o.deadline_misses);
      table.EndRow();
    }
  }
  table.Print();
  std::printf("\nExpected: either mechanism (server cylinder sort or driver C-SCAN) keeps\n"
              "per-interval seek time low; with neither, seek time grows with the stream\n"
              "count and the O_seek bound of formula (12) no longer reflects reality.\n");
  return 0;
}
