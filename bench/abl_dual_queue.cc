// Ablation A1: the dual real-time/normal disk queue (the paper's first
// Real-Time Mach modification) vs a single shared queue.
//
// With a unified queue CRAS's requests wait behind background traffic and
// rate guarantees evaporate, even though everything else (admission,
// scheduling, buffers) is unchanged.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace {

using cras::PlayerOptions;
using cras::PlayerStats;
using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

constexpr crbase::Duration kPlayLength = crbase::Seconds(20);

struct Outcome {
  double mean_delay_ms = 0;
  double max_delay_ms = 0;
  std::int64_t frames_missed = 0;
  std::int64_t rt_max_queue_ms = 0;
};

Outcome RunOne(bool unified_queue, int streams) {
  TestbedOptions options;
  options.driver.unified_queue = unified_queue;
  Testbed bed(options);
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, kPlayLength + Seconds(3));
  // Two cats plus a deep asynchronous backlog (16 outstanding non-RT
  // requests) — the load that actually exercises the queue split.
  auto cats = crbench::SpawnBackgroundCats(bed);
  auto bulk = crbench::SpawnBulkIo(bed, 16);
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions player_options;
  player_options.play_length = kPlayLength;
  for (int i = 0; i < streams; ++i) {
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(kPlayLength + Seconds(8));
  Outcome outcome;
  crstats::Summary delays;
  for (const auto& s : stats) {
    for (const cras::FrameRecord& f : s->frames) {
      delays.Add(crbase::ToMilliseconds(f.delay()));
    }
    outcome.frames_missed += s->frames_missed;
  }
  outcome.mean_delay_ms = delays.mean();
  outcome.max_delay_ms = delays.max();
  const crdisk::DriverQueueStats& queue_stats =
      unified_queue ? bed.driver.normal_stats() : bed.driver.realtime_stats();
  outcome.rt_max_queue_ms =
      static_cast<std::int64_t>(crbase::ToMilliseconds(queue_stats.max_queue_time));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Ablation A1: dual RT/normal disk queue vs unified queue");
  std::printf("N MPEG1 streams + two cat readers; frame delay in ms\n");
  crstats::Table table({"streams", "queue", "mean_delay_ms", "max_delay_ms", "missed",
                        "cras_max_queue_ms"});
  table.SetCsv(csv);
  for (int streams : {1, 4, 8}) {
    for (bool unified : {false, true}) {
      const Outcome o = RunOne(unified, streams);
      table.Cell(static_cast<std::int64_t>(streams))
          .Cell(unified ? "unified" : "dual")
          .Cell(o.mean_delay_ms, 3)
          .Cell(o.max_delay_ms, 3)
          .Cell(o.frames_missed)
          .Cell(o.rt_max_queue_ms);
      table.EndRow();
    }
  }
  table.Print();
  std::printf("\nExpected: the dual queue keeps delays ~0 under load; unified queueing\n"
              "lets background traffic destroy the rate guarantee.\n");
  return 0;
}
