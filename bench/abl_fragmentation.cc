// Ablation A5: the §3.2 layout problem — an edited (fragmented) media file
// vs a contiguous one. Random block placement defeats the 256 KiB
// coalescing, multiplies per-interval requests, and breaks the rate
// guarantee exactly as the paper warns.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace {

using cras::Testbed;
using crbase::Seconds;

struct Outcome {
  double contiguity = 0;
  double actual_io_ms_per_interval = 0;
  double reqs_per_interval = 0;
  std::int64_t frames_missed = 0;
  double max_delay_ms = 0;
};

enum class Layout { kContiguous, kFragmented, kRearranged };

const char* LayoutName(Layout layout) {
  switch (layout) {
    case Layout::kContiguous:
      return "contiguous";
    case Layout::kFragmented:
      return "fragmented";
    case Layout::kRearranged:
      return "rearranged";
  }
  return "?";
}

Outcome RunOne(Layout layout, int streams) {
  Testbed bed;
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, Seconds(15));
  if (layout != Layout::kContiguous) {
    crbase::Rng rng(7);
    for (const auto& file : files) {
      CRAS_CHECK_OK(bed.fs.Fragment(file.inode, rng));
    }
  }
  if (layout == Layout::kRearranged) {
    // The paper's remedy: rearrange the edited files before playback.
    for (const auto& file : files) {
      CRAS_CHECK_OK(bed.fs.Rearrange(file.inode));
    }
  }
  Outcome outcome;
  outcome.contiguity = bed.fs.ContiguityOf(files[0].inode);
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(12);
  for (int i = 0; i < streams; ++i) {
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(Seconds(16));
  crstats::Summary actual;
  crstats::Summary requests;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (record.requests >= streams) {
      actual.Add(crbase::ToMilliseconds(record.actual_io));
      requests.Add(static_cast<double>(record.requests));
    }
  }
  outcome.actual_io_ms_per_interval = actual.mean();
  outcome.reqs_per_interval = requests.mean();
  for (const auto& s : stats) {
    outcome.frames_missed += s->frames_missed;
    outcome.max_delay_ms =
        std::max(outcome.max_delay_ms, crbase::ToMilliseconds(s->max_delay()));
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Ablation A5: contiguous vs fragmented ('edited') media files");
  crstats::Table table({"streams", "layout", "contiguity", "reqs_per_interval",
                        "actual_io_ms", "max_delay_ms", "missed"});
  table.SetCsv(csv);
  for (int streams : {1, 4, 8}) {
    for (Layout layout : {Layout::kContiguous, Layout::kFragmented, Layout::kRearranged}) {
      const Outcome o = RunOne(layout, streams);
      table.Cell(static_cast<std::int64_t>(streams))
          .Cell(LayoutName(layout))
          .Cell(o.contiguity, 2)
          .Cell(o.reqs_per_interval, 1)
          .Cell(o.actual_io_ms_per_interval, 1)
          .Cell(o.max_delay_ms, 1)
          .Cell(o.frames_missed);
      table.EndRow();
    }
  }
  table.Print();
  std::printf("\nExpected: fragmentation multiplies per-interval requests and I/O time;\n"
              "beyond a few streams the interval deadline cannot hold. Rearranging the\n"
              "files (the paper's remedy, Ufs::Rearrange) restores contiguous-layout\n"
              "behaviour.\n");
  return 0;
}
