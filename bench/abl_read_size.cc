// Ablation A3: the 256 KiB maximum read size. CRAS coalesces contiguous
// blocks up to this limit; smaller limits mean more requests per interval,
// more per-request overhead charged by admission, and lower capacity.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/admission.h"
#include "src/stats/summary.h"

namespace {

using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

struct Outcome {
  int capacity = 0;                       // admitted MPEG2 streams
  double actual_io_ms_per_interval = 0;   // measured at fixed N
  std::int64_t requests_per_interval = 0;
};

Outcome RunOne(std::int64_t max_read_bytes) {
  constexpr int kFixedStreams = 3;
  TestbedOptions options;
  options.cras.interval = crbase::MillisecondsF(1500);
  options.cras.max_read_bytes = max_read_bytes;
  Testbed bed(options);
  bed.StartServers();

  Outcome outcome;
  // Capacity via the admission model with the real stream index.
  auto probe = crmedia::WriteMpeg2File(bed.fs, "probe", Seconds(2));
  cras::AdmissionModel model(cras::MeasuredSt32550nParams(), options.cras.interval,
                             max_read_bytes);
  cras::StreamDemand demand{probe->index.WorstRate(options.cras.interval),
                            probe->index.max_chunk_bytes()};
  std::vector<cras::StreamDemand> demands;
  while (outcome.capacity < 40) {
    demands.push_back(demand);
    if (!model.Admissible(demands, 64 * crbase::kMiB)) {
      break;
    }
    ++outcome.capacity;
  }

  // Measured interval I/O at a fixed stream count that fits in every config.
  auto files = crbench::MakeMpeg2Files(bed, kFixedStreams, Seconds(15));
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(12);
  for (int i = 0; i < kFixedStreams; ++i) {
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(Seconds(15));
  crstats::Summary actual;
  crstats::Summary requests;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (record.requests >= kFixedStreams) {
      actual.Add(crbase::ToMilliseconds(record.actual_io));
      requests.Add(static_cast<double>(record.requests));
    }
  }
  outcome.actual_io_ms_per_interval = actual.mean();
  outcome.requests_per_interval = static_cast<std::int64_t>(requests.mean() + 0.5);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Ablation A3: maximum coalesced read size (6 Mb/s streams, T=1.5s)");
  crstats::Table table({"max_read", "admitted_streams", "reqs_per_interval",
                        "actual_io_ms_per_interval"});
  table.SetCsv(csv);
  for (std::int64_t kib : {32, 64, 128, 256, 512}) {
    const Outcome o = RunOne(kib * crbase::kKiB);
    table.Cell(std::to_string(kib) + "KiB")
        .Cell(static_cast<std::int64_t>(o.capacity))
        .Cell(o.requests_per_interval)
        .Cell(o.actual_io_ms_per_interval, 2);
    table.EndRow();
  }
  table.Print();
  std::printf("\nExpected: larger coalesced reads amortize seek/rotation/command overhead\n"
              "over more bytes — fewer requests per interval and higher admitted capacity,\n"
              "with diminishing returns past 256 KiB (the paper's choice).\n");
  return 0;
}
