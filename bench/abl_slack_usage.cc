// Ablation A7 (paper §3.2, problem 2 discussion): the admission test's
// pessimism is not pure waste — "the rest of the throughput may be used by
// non-real-time disk accesses."
//
// With N admitted CRAS streams running, the background (non-real-time)
// readers absorb the disk time the worst-case estimate reserved but the
// streams never used. Measured: CRAS goodput, background goodput, and
// total disk utilization as N grows.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using cras::Testbed;
using crbase::Seconds;

struct Outcome {
  double cras_mbps = 0;
  double background_mbps = 0;
  double disk_utilization_pct = 0;
  std::int64_t frames_missed = 0;
};

Outcome RunOne(int streams) {
  Testbed bed;
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, Seconds(14));
  auto cats = crbench::SpawnBackgroundCats(bed);  // greedy non-RT readers
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(10);
  for (int i = 0; i < streams; ++i) {
    player_options.start_delay = crbase::Milliseconds(73) * i;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  const crbase::Duration window = Seconds(12);
  bed.engine().RunFor(window);
  Outcome outcome;
  outcome.cras_mbps = crbench::ToMBps(
      static_cast<double>(bed.cras_server.stats().bytes_read) / crbase::ToSeconds(window));
  // Background bytes = blocks the Unix server pulled from disk.
  outcome.background_mbps = crbench::ToMBps(
      static_cast<double>(bed.unix_server.stats().blocks_from_disk * bed.fs.block_size()) /
      crbase::ToSeconds(window));
  outcome.disk_utilization_pct = 100.0 * static_cast<double>(bed.device.stats().busy_time) /
                                 static_cast<double>(window);
  for (const auto& s : stats) {
    outcome.frames_missed += s->frames_missed;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner(
      "Ablation A7: non-real-time traffic absorbs the admission slack (MB/s)");
  crstats::Table table({"cras_streams", "cras_MBps", "background_MBps", "total_MBps",
                        "disk_util_pct", "missed"});
  table.SetCsv(csv);
  for (int streams : {0, 2, 4, 8, 12, 14}) {
    const Outcome o = RunOne(streams);
    table.Cell(static_cast<std::int64_t>(streams))
        .Cell(o.cras_mbps, 2)
        .Cell(o.background_mbps, 2)
        .Cell(o.cras_mbps + o.background_mbps, 2)
        .Cell(o.disk_utilization_pct, 1)
        .Cell(o.frames_missed);
    table.EndRow();
  }
  table.Print();
  std::printf("\nExpected: background goodput shrinks as streams are admitted but never\n"
              "reaches zero while slack exists; total disk usage stays high, and the\n"
              "streams stay clean (missed = 0) — pessimism costs admitted capacity, not\n"
              "actual disk time.\n");
  return 0;
}
