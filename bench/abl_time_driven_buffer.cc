// Ablation A4: the time-driven shared buffer vs a FIFO buffer when the
// client consumes slower than the stream (§2.4's motivating scenario).
//
// The producer delivers 30 frames/s; the client renders 10 frames/s. With
// the time-driven buffer the client always renders a *current* frame
// (skipped frames age out). A FIFO of the same capacity fills, then drops
// the *newest* data, and the client's displayed frame falls further and
// further behind live time.

#include <cstdio>
#include <deque>

#include "bench/bench_util.h"
#include "src/core/time_driven_buffer.h"

namespace {

using crbase::Milliseconds;
using crbase::Seconds;
using crbase::Time;

constexpr std::int64_t kFrameBytes = 6250;
constexpr crbase::Duration kFrame = crbase::SecondsF(1.0 / 30.0);
constexpr std::int64_t kCapacityFrames = 32;  // B_i for one interval pair

struct Row {
  double time_s;
  double tdb_lag_ms;   // staleness of the rendered frame vs live position
  double fifo_lag_ms;
  std::int64_t fifo_dropped;
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);

  cras::TimeDrivenBuffer tdb(kCapacityFrames * kFrameBytes, Milliseconds(100));
  std::deque<cras::BufferedChunk> fifo;
  std::int64_t fifo_dropped_new = 0;

  std::vector<Row> rows;
  std::int64_t produced = 0;
  double tdb_lag_ms = 0;
  double fifo_lag_ms = 0;
  // 20 seconds of stream; client renders every 100 ms (10 fps).
  for (Time now = 0; now <= Seconds(20); now += Milliseconds(100)) {
    // Producer: deliver all frames due by `now` (constant-rate retrieval).
    while (produced * kFrame <= now) {
      cras::BufferedChunk chunk;
      chunk.chunk_index = produced;
      chunk.timestamp = produced * kFrame;
      chunk.duration = kFrame;
      chunk.size = kFrameBytes;
      chunk.filled_at = now;
      tdb.Put(chunk, now);
      if (static_cast<std::int64_t>(fifo.size()) >= kCapacityFrames) {
        ++fifo_dropped_new;  // FIFO full: the *new* frame is lost
      } else {
        fifo.push_back(chunk);
      }
      ++produced;
    }
    // Client renders one frame per tick.
    std::optional<cras::BufferedChunk> tdb_frame = tdb.Get(now);
    if (tdb_frame.has_value()) {
      tdb_lag_ms = crbase::ToMilliseconds(now - tdb_frame->timestamp);
    }
    if (!fifo.empty()) {
      const cras::BufferedChunk head = fifo.front();
      fifo.pop_front();
      fifo_lag_ms = crbase::ToMilliseconds(now - head.timestamp);
    }
    if (now % Seconds(2) == 0) {
      rows.push_back(Row{crbase::ToSeconds(now), tdb_lag_ms, fifo_lag_ms, fifo_dropped_new});
    }
  }

  crstats::PrintBanner(
      "Ablation A4: time-driven buffer vs FIFO, 30 fps stream, 10 fps client");
  crstats::Table table({"time_s", "time_driven_lag_ms", "fifo_lag_ms", "fifo_new_drops"});
  table.SetCsv(csv);
  for (const Row& row : rows) {
    table.Cell(row.time_s, 1)
        .Cell(row.tdb_lag_ms, 1)
        .Cell(row.fifo_lag_ms, 1)
        .Cell(row.fifo_dropped);
    table.EndRow();
  }
  table.Print();
  std::printf("\ntime-driven buffer stats: puts=%lld discarded_obsolete=%lld overflow=%lld\n",
              static_cast<long long>(tdb.stats().puts),
              static_cast<long long>(tdb.stats().discarded_obsolete),
              static_cast<long long>(tdb.stats().overflow_evictions));
  std::printf("Expected: the time-driven client stays on live frames (bounded lag); the\n"
              "FIFO client's lag grows without bound while fresh frames are dropped.\n");
  return 0;
}
