// Ablation A6 (paper §3.2, problem 1): variable-bit-rate streams and the
// cost of worst-case declarations.
//
// CRAS allocates buffers and admission share from each stream's *declared*
// worst-case rate. JPEG/MPEG frame sizes vary widely, so the worst-case
// rate exceeds the average, buffer space goes unused, and fewer streams are
// admitted than the disk could actually carry — the paper's first reported
// problem with CRAS in personal environments.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/admission.h"

namespace {

using cras::Testbed;
using crbase::Seconds;

struct Outcome {
  double avg_rate = 0;           // bytes/sec
  double declared_rate = 0;      // worst-case over one interval
  double reservation_overhead_pct = 0;
  int admitted = 0;              // streams per disk at the declared rate
  double buffer_peak_util_pct = 0;
  std::int64_t frames_missed = 0;
};

Outcome RunOne(double cv, std::uint64_t seed) {
  Testbed bed;
  bed.StartServers();
  crbase::Rng rng(seed);
  crmedia::ChunkIndex index =
      cv == 0.0 ? crmedia::BuildCbrIndex(crmedia::kMpeg1BytesPerSec, 30.0, Seconds(16))
                : crmedia::BuildVbrIndex(crmedia::kMpeg1BytesPerSec, cv, 30.0, Seconds(16), rng);
  Outcome outcome;
  outcome.avg_rate = index.average_rate();
  outcome.declared_rate = index.WorstRate(bed.cras_server.options().interval);
  outcome.reservation_overhead_pct =
      100.0 * (outcome.declared_rate / outcome.avg_rate - 1.0);

  // Admission capacity at the declared rate.
  cras::AdmissionModel model(cras::MeasuredSt32550nParams(),
                             bed.cras_server.options().interval, 256 * crbase::kKiB);
  cras::StreamDemand demand{outcome.declared_rate, index.max_chunk_bytes()};
  std::vector<cras::StreamDemand> demands;
  while (outcome.admitted < 40) {
    demands.push_back(demand);
    if (!model.Admissible(demands, 64 * crbase::kMiB)) {
      break;
    }
    ++outcome.admitted;
  }

  // Play one stream and measure how much of its reserved buffer it ever
  // used.
  auto file = crmedia::WriteMediaFile(bed.fs, "vbr", std::move(index));
  CRAS_CHECK(file.ok());
  cras::PlayerStats stats;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(12);

  // Use a raw session (not the canned player) so the buffer stats survive:
  // query them right before closing.
  crsim::Task t = bed.kernel.Spawn(
      "vbr-player", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        cras::OpenParams params;
        params.inode = file->inode;
        params.index = file->index;
        auto session = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(session.ok());
        (void)co_await bed.cras_server.StartStream(
            *session, bed.cras_server.SuggestedInitialDelay());
        const crbase::Time zero_at =
            ctx.Now() + bed.cras_server.SuggestedInitialDelay();
        for (const crmedia::Chunk& chunk : file->index.chunks()) {
          if (chunk.timestamp > player_options.play_length) {
            break;
          }
          const crbase::Time due = zero_at + chunk.timestamp;
          if (due > ctx.Now()) {
            co_await ctx.Sleep(due - ctx.Now());
          }
          if (bed.cras_server.Get(*session, chunk.timestamp).has_value()) {
            ++stats.frames_played;
          } else {
            ++stats.frames_missed;
          }
        }
        const cras::TimeDrivenBufferStats* buffer_stats =
            bed.cras_server.GetBufferStats(*session);
        const std::int64_t capacity = bed.cras_server.buffer_bytes_reserved();
        outcome.buffer_peak_util_pct =
            capacity == 0 ? 0.0
                          : 100.0 * static_cast<double>(buffer_stats->max_resident_bytes) /
                                static_cast<double>(capacity);
        (void)co_await bed.cras_server.Close(*session);
      });
  bed.engine().RunFor(Seconds(18));
  outcome.frames_missed = stats.frames_missed;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner(
      "Ablation A6: VBR worst-case declarations (mean 1.5 Mb/s, varying burstiness)");
  crstats::Table table({"cv", "avg_KBps", "declared_KBps", "reservation_overhead_pct",
                        "admitted_streams", "buffer_peak_util_pct", "missed"});
  table.SetCsv(csv);
  for (double cv : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const Outcome o = RunOne(cv, 4242);
    table.Cell(cv, 1)
        .Cell(o.avg_rate / 1000.0, 1)
        .Cell(o.declared_rate / 1000.0, 1)
        .Cell(o.reservation_overhead_pct, 1)
        .Cell(static_cast<std::int64_t>(o.admitted))
        .Cell(o.buffer_peak_util_pct, 1)
        .Cell(o.frames_missed);
    table.EndRow();
  }
  table.Print();
  std::printf("\nExpected: burstier streams must declare ever-higher worst-case rates,\n"
              "shrinking admitted capacity and leaving reserved buffer space unused —\n"
              "the paper's section 3.2 problem 1 (playback itself stays clean).\n");
  return 0;
}
