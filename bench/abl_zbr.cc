// Ablation A8: zoned bit recording and admission conservatism.
//
// The real ST32550N records 126 sectors/track on outer cylinders but only
// 90 on inner ones — a 7.7 -> 5.5 MB/s media-rate slope the paper's uniform
// 6.5 MB/s figure averages away. If the admission test assumes the average
// rate but files happen to live on the innermost zone, every interval's
// transfer estimate is too optimistic; assuming the worst-case (inner) rate
// restores the guarantee at the cost of admitted capacity.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/admission.h"

namespace {

using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

struct Outcome {
  int attempted = 0;
  int admitted = 0;
  std::int64_t frames_missed = 0;
  std::int64_t deadline_misses = 0;
  double max_io_ratio_pct = 0;  // worst interval: actual/estimated I/O time
};

Outcome RunOne(bool inner_placement, bool worst_case_admission) {
  TestbedOptions options;
  options.device.geometry = crdisk::St32550nZonedGeometry();
  options.ufs.geometry = options.device.geometry;
  if (worst_case_admission) {
    options.cras.disk_params.transfer_rate = options.device.geometry.MinTransferRate();
  } else {
    // The paper's Table 4 average figure.
    options.cras.disk_params.transfer_rate = 6.5e6;
  }
  options.cras.memory_budget_bytes = 48 * crbase::kMiB;
  // A transfer-dominated interval narrows the seek/rotation slack that
  // would otherwise mask the zone-rate optimism.
  options.cras.interval = crbase::MillisecondsF(1500);
  Testbed bed(options);
  bed.StartServers();

  if (inner_placement) {
    // Occupy the outer two zones so the movies land on the slow inner ones.
    crufs::InodeNumber filler = *bed.fs.Create("filler");
    const std::int64_t outer_bytes =
        (bed.fs.total_blocks() * bed.fs.block_size()) * 6 / 10;
    CRAS_CHECK_OK(bed.fs.PreallocateContiguous(filler, outer_bytes));
  }

  // Attempt the admission capacity computed for this configuration.
  cras::AdmissionModel model(options.cras.disk_params, options.cras.interval,
                             options.cras.max_read_bytes);
  cras::StreamDemand demand{crmedia::kMpeg1BytesPerSec, 6250};
  std::vector<cras::StreamDemand> demands;
  Outcome outcome;
  while (outcome.attempted < 40) {
    demands.push_back(demand);
    if (!model.Admissible(demands, options.cras.memory_budget_bytes)) {
      break;
    }
    ++outcome.attempted;
  }

  auto files = crbench::MakeMpeg1Files(bed, outcome.attempted, Seconds(13));
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(10);
  for (int i = 0; i < outcome.attempted; ++i) {
    player_options.start_delay = crbase::Milliseconds(73) * i;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(Seconds(16));
  for (const auto& s : stats) {
    if (!s->open_rejected) {
      ++outcome.admitted;
      outcome.frames_missed += s->frames_missed;
    }
  }
  outcome.deadline_misses = bed.cras_server.stats().deadline_misses;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (record.requests >= outcome.admitted && record.estimated_io > 0) {
      outcome.max_io_ratio_pct =
          std::max(outcome.max_io_ratio_pct, 100.0 * static_cast<double>(record.actual_io) /
                                                 static_cast<double>(record.estimated_io));
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Ablation A8: zoned recording (7.7 outer -> 5.5 MB/s inner)");
  crstats::Table table({"placement", "admission_D", "admitted", "max_io_ratio_pct",
                        "frames_missed", "deadline_misses"});
  table.SetCsv(csv);
  struct Config {
    const char* placement;
    const char* rate_label;
    bool inner;
    bool worst_case;
  };
  const Config configs[] = {
      {"outer_zones", "avg_6.5MBps", false, false},
      {"inner_zones", "avg_6.5MBps", true, false},
      {"inner_zones", "worst_5.5MBps", true, true},
  };
  for (const Config& config : configs) {
    const Outcome o = RunOne(config.inner, config.worst_case);
    table.Cell(config.placement)
        .Cell(config.rate_label)
        .Cell(static_cast<std::int64_t>(o.admitted))
        .Cell(o.max_io_ratio_pct, 1)
        .Cell(o.frames_missed)
        .Cell(o.deadline_misses);
    table.EndRow();
  }
  table.Print();
  std::printf("\nExpected: inner-zone placement pushes the measured interval I/O toward\n"
              "(or past) the average-rate estimate — the formula's seek/rotation\n"
              "pessimism is what quietly subsidizes the zone-rate optimism. Worst-case\n"
              "admission trades a stream of capacity for restored headroom.\n");
  return 0;
}
