// Shared runner for Figures 8 and 9: admission-test accuracy.
//
// For N concurrent streams, measure per interval the ratio of *actual* disk
// I/O time (summed device service time of the interval's real-time
// requests) to the admission test's *estimated* I/O time. 100% would mean a
// perfect estimate; lower is more pessimistic.

#ifndef BENCH_ADMISSION_ACCURACY_H_
#define BENCH_ADMISSION_ACCURACY_H_

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace crbench {

// Creates N MPEG1 movie files ("movie0", ...) on a bare file system — the
// volume-rig counterpart of MakeMpeg1Files, which wants a full Testbed.
inline std::vector<crmedia::MediaFile> MakeMovieFiles(crufs::Ufs& fs, int count,
                                                      crbase::Duration length) {
  std::vector<crmedia::MediaFile> files;
  files.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto file = crmedia::WriteMpeg1File(fs, "movie" + std::to_string(i), length);
    CRAS_CHECK(file.ok()) << file.status().ToString();
    files.push_back(std::move(*file));
  }
  return files;
}

// Opens one-of-each MPEG1 streams on a fresh rig until the admission test
// rejects one; returns the admitted count. `candidates` must exceed the
// rig's capacity (the sweep CHECKs that a rejection was actually seen).
inline int CountAdmittedStreams(const cras::VolumeTestbedOptions& rig_options, int candidates) {
  cras::VolumeTestbed bed(rig_options);
  bed.StartServers();
  const std::vector<crmedia::MediaFile> files =
      MakeMovieFiles(bed.fs, candidates, crbase::Seconds(4));
  int accepted = 0;
  bool rejected = false;
  crsim::Task opener = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (const auto& file : files) {
          cras::OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          if (!opened.ok()) {
            rejected = true;
            co_return;
          }
          ++accepted;
        }
      });
  bed.engine().RunFor(crbase::Seconds(4));
  CRAS_CHECK(rejected) << "raise `candidates`: all " << candidates << " streams were admitted";
  return accepted;
}

struct AccuracyResult {
  double avg_ratio_pct = 0;
  double max_ratio_pct = 0;
  int intervals_measured = 0;
};

struct AccuracyConfig {
  int streams = 1;
  bool mpeg2 = false;  // false: 1.5 Mb/s, true: 6 Mb/s
  bool load = false;   // two cat readers + a CPU hog
  crbase::Duration interval = crbase::Seconds(1);
  crbase::Duration run_length = crbase::Seconds(20);
};

inline AccuracyResult MeasureAdmissionAccuracy(const AccuracyConfig& config) {
  cras::TestbedOptions options;
  options.cras.interval = config.interval;
  cras::Testbed bed(options);
  bed.StartServers();
  const crbase::Duration stream_length = config.run_length + crbase::Seconds(4);
  auto files = config.mpeg2 ? MakeMpeg2Files(bed, config.streams, stream_length)
                            : MakeMpeg1Files(bed, config.streams, stream_length);
  std::vector<crsim::Task> cats;
  std::vector<crsim::Task> hogs;
  if (config.load) {
    cats = SpawnBackgroundCats(bed);
  }
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = config.run_length;
  for (int i = 0; i < config.streams; ++i) {
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(config.run_length);

  // Keep only steady-state intervals: every admitted stream issuing (at
  // least `streams` requests) with a valid estimate.
  crstats::Summary ratios;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (record.requests < config.streams || record.estimated_io <= 0) {
      continue;
    }
    ratios.Add(100.0 * static_cast<double>(record.actual_io) /
               static_cast<double>(record.estimated_io));
  }
  for (const auto& s : stats) {
    CRAS_CHECK(!s->open_rejected) << "config exceeds admission capacity";
  }
  AccuracyResult result;
  result.avg_ratio_pct = ratios.mean();
  result.max_ratio_pct = ratios.max();
  result.intervals_measured = static_cast<int>(ratios.count());
  return result;
}

}  // namespace crbench

#endif  // BENCH_ADMISSION_ACCURACY_H_
