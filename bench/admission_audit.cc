// Admission audit: the budget ledger's predicted-vs-measured verdict on the
// CRAS worst-case admission formulas (1)-(15), on a 4-disk striped rig.
//
// The bench finds the rig's admitted MPEG1 capacity, then replays 25%, 50%,
// 75% and 100% of it. At every load the per-interval, per-disk ledger must
// show zero overruns — no interval where a member disk's measured time
// (command + seek + rotation + transfer) exceeded the model's per-term
// worst-case prediction; that is the guarantee the admission proof makes.
// The interesting number is the slack: mean per-term utilization
// (actual/predicted) far below 100%, the Figures 8-9 pessimism made
// attributable — at full load the seek term typically runs ~20-40% of its
// C-SCAN bound while transfer sits much closer to its estimate.
//
// Output: a table, BENCH_admission_audit.json (--out <file>), and the full-
// load run's flight-recorder dump (--dump=<file>, default
// flight_dump_admission_audit.json) — the same document a remote operator
// would pull with crnet::StatsQueryService::DumpQuery.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/admission_accuracy.h"
#include "bench/bench_util.h"
#include "src/obs/ledger.h"

namespace {

constexpr int kDisks = 4;

cras::VolumeTestbedOptions RigOptions() {
  cras::VolumeTestbedOptions options;
  options.volume.disks = kDisks;
  // Keep the disks, not the wired-buffer budget, the binding constraint.
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  return options;
}

struct TermUtil {
  double mean_pct = 0;  // count-weighted mean utilization across disks
  double max_pct = 0;
  std::int64_t samples = 0;
};

struct AuditPoint {
  int streams = 0;
  int load_pct = 0;
  std::int64_t intervals = 0;
  std::int64_t overruns = 0;
  std::int64_t late_attributions = 0;
  std::int64_t deadline_misses = 0;
  TermUtil command, seek, rotation, transfer, total;
  double slack_p50 = 0, slack_p95 = 0, slack_p99 = 0;
};

// Aggregates one term's utilization across the per-disk series.
TermUtil AggregateTerm(const crobs::RegistrySnapshot& snap, const char* term) {
  TermUtil util;
  double weighted = 0;
  for (const crobs::FamilySnapshot& family : snap.families) {
    if (family.name != "ledger.util_pct") {
      continue;
    }
    for (const crobs::SeriesSnapshot& series : family.series) {
      bool matches = false;
      for (const auto& [k, v] : series.labels) {
        if (k == "term" && v == term) {
          matches = true;
        }
      }
      if (!matches || series.count == 0) {
        continue;
      }
      weighted += series.mean * static_cast<double>(series.count);
      util.samples += series.count;
      util.max_pct = std::max(util.max_pct, series.max);
    }
  }
  if (util.samples > 0) {
    util.mean_pct = weighted / static_cast<double>(util.samples);
  }
  return util;
}

// Replays `streams` players on a fresh rig and audits every interval.
void MeasureAudit(int streams, AuditPoint* point, const std::string& dump_path) {
  cras::VolumeTestbedOptions rig_options = RigOptions();
  // A deadline miss (there should be none) freezes a post-mortem dump. The
  // window spans the whole run so the end-of-run dump keeps the admission
  // verdicts from the opening second.
  rig_options.obs.flight.triggers = {crobs::FlightEventKind::kDeadlineMiss};
  rig_options.obs.flight.window = crbase::Seconds(30);
  cras::VolumeTestbed bed(rig_options);
  bed.StartServers();
  const std::vector<crmedia::MediaFile> files =
      crbench::MakeMovieFiles(bed.fs, streams, crbase::Seconds(10));
  const crbase::Duration play_length = crbase::Seconds(6);
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions options;
  options.play_length = play_length;
  for (int i = 0; i < streams; ++i) {
    options.start_delay = crbase::Milliseconds(500) * i / streams;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(play_length + crbase::Seconds(6));
  for (const auto& s : stats) {
    CRAS_CHECK(!s->open_rejected) << "the audit load must fit the admitted count";
  }

  // Settle the trailing rows (the scheduler closes slot S-2 at slot S; the
  // last two still-open rows have all their completions by now).
  crobs::BudgetLedger* ledger = bed.hub.ledger();
  CRAS_CHECK(ledger != nullptr);
  ledger->CloseAll();

  const crobs::RegistrySnapshot snap = bed.hub.Snapshot();
  point->streams = streams;
  point->intervals = ledger->intervals_closed();
  point->overruns = ledger->overruns();
  point->late_attributions = ledger->late_attributions();
  point->deadline_misses = bed.cras_server.stats().deadline_misses;
  point->command = AggregateTerm(snap, "command");
  point->seek = AggregateTerm(snap, "seek");
  point->rotation = AggregateTerm(snap, "rotation");
  point->transfer = AggregateTerm(snap, "transfer");
  point->total = AggregateTerm(snap, "total");
  if (const crobs::SeriesSnapshot* slack = snap.Find("cras.deadline_slack_ms")) {
    point->slack_p50 = slack->Percentile(50);
    point->slack_p95 = slack->Percentile(95);
    point->slack_p99 = slack->Percentile(99);
  }

  // The audit verdict: the admission proof held — no disk-interval ran past
  // its per-term worst-case budget, and no batch missed its boundary.
  CRAS_CHECK(point->overruns == 0)
      << point->overruns << " of " << point->intervals
      << " disk-intervals exceeded the predicted worst case at " << streams << " streams";
  CRAS_CHECK(point->deadline_misses == 0);

  if (!dump_path.empty()) {
    if (bed.hub.WriteFlightDump(dump_path, "bench_end")) {
      std::printf("wrote flight-recorder dump (%zu events, %llu triggers) to %s\n",
                  bed.hub.flight().size(),
                  static_cast<unsigned long long>(bed.hub.flight().triggers_fired()),
                  dump_path.c_str());
    }
  }
}

void WriteTermJson(std::ofstream& out, const char* name, const TermUtil& util) {
  out << "\"" << name << "\": {\"mean_util_pct\": " << util.mean_pct
      << ", \"max_util_pct\": " << util.max_pct << ", \"samples\": " << util.samples << "}";
}

void WriteJson(const std::string& path, int admitted, const std::vector<AuditPoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"admission_audit\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s\",\n"
      << "  \"disks\": " << kDisks << ",\n"
      << "  \"interval_ms\": 500,\n"
      << "  \"admitted\": " << admitted << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const AuditPoint& p = points[i];
    out << "    {\"streams\": " << p.streams << ", \"load_pct\": " << p.load_pct
        << ", \"intervals\": " << p.intervals << ", \"overruns\": " << p.overruns
        << ", \"late_attributions\": " << p.late_attributions
        << ", \"deadline_misses\": " << p.deadline_misses << ",\n     ";
    WriteTermJson(out, "command", p.command);
    out << ", ";
    WriteTermJson(out, "seek", p.seek);
    out << ",\n     ";
    WriteTermJson(out, "rotation", p.rotation);
    out << ", ";
    WriteTermJson(out, "transfer", p.transfer);
    out << ",\n     ";
    WriteTermJson(out, "total", p.total);
    out << ",\n     \"slack_p50_ms\": " << p.slack_p50 << ", \"slack_p95_ms\": " << p.slack_p95
        << ", \"slack_p99_ms\": " << p.slack_p99 << "}" << (i + 1 < points.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_admission_audit.json";
  std::string dump_path = crbench::FlagValue(argc, argv, "--dump=");
  if (dump_path.empty()) {
    dump_path = "flight_dump_admission_audit.json";
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  crstats::PrintBanner("Admission audit: predicted vs measured per-term disk budgets");
  std::printf("%d-disk striped rig, T = 0.5 s, per-disk admission, 64 MiB buffer budget\n",
              kDisks);
  const int admitted = crbench::CountAdmittedStreams(RigOptions(), 32 * kDisks);
  std::printf("admitted capacity: %d MPEG1 streams\n\n", admitted);

  crstats::Table table({"load_pct", "streams", "intervals", "overruns", "misses",
                        "cmd_util", "seek_util", "rot_util", "xfer_util", "total_util",
                        "slack_p50_ms", "slack_p99_ms"});
  table.SetCsv(csv);
  std::vector<AuditPoint> points;
  for (const int load_pct : {25, 50, 75, 100}) {
    AuditPoint point;
    point.load_pct = load_pct;
    const int streams = std::max(1, admitted * load_pct / 100);
    // Only the full-load (the binding) run leaves the dump behind.
    MeasureAudit(streams, &point, load_pct == 100 ? dump_path : std::string());
    table.Cell(static_cast<std::int64_t>(load_pct))
        .Cell(static_cast<std::int64_t>(point.streams))
        .Cell(point.intervals)
        .Cell(point.overruns)
        .Cell(point.deadline_misses)
        .Cell(point.command.mean_pct, 1)
        .Cell(point.seek.mean_pct, 1)
        .Cell(point.rotation.mean_pct, 1)
        .Cell(point.transfer.mean_pct, 1)
        .Cell(point.total.mean_pct, 1)
        .Cell(point.slack_p50, 1)
        .Cell(point.slack_p99, 1);
    table.EndRow();
    points.push_back(point);
  }
  table.Print();

  WriteJson(json_path, admitted, points);
  std::printf("\nWrote %s. Expected: zero overruns and zero deadline misses at every\n"
              "load — measured per-disk interval time never exceeds the per-term\n"
              "worst-case prediction — with mean total utilization well under 100%%\n"
              "(the admission formulas' deliberate pessimism, now attributed per term:\n"
              "seek runs far below its C-SCAN bound, transfer closest to its estimate).\n",
              json_path.c_str());
  return 0;
}
