// Shared helpers for the figure/table benches.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/logging.h"
#include "src/base/random.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/load.h"
#include "src/media/media_file.h"
#include "src/obs/metrics.h"
#include "src/stats/table.h"

namespace crbench {

// True when the bench was invoked with --csv (machine-readable output).
inline bool CsvRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      return true;
    }
  }
  return false;
}

// Value of a `--flag=value` argument, or "" when absent.
inline std::string FlagValue(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "";
}

// Path given with --trace=<file>, or "" when tracing was not requested.
inline std::string TracePath(int argc, char** argv) {
  return FlagValue(argc, argv, "--trace=");
}

// Standard bench setup: quiets per-event warnings (several benches overload
// the server on purpose, and thousands of deadline-miss warnings would bury
// the tables) and returns the --csv flag. CRAS_LOG in the environment wins
// over the bench default.
inline bool BenchInit(int argc, char** argv) {
  if (!crbase::SetLogLevelFromEnv()) {
    crbase::SetLogLevel(crbase::LogLevel::kError);
  }
  return CsvRequested(argc, argv);
}

// Sum of a counter family across all its label series (0 if absent).
inline std::int64_t CounterTotal(const crobs::RegistrySnapshot& snap, const std::string& name) {
  std::int64_t total = 0;
  for (const crobs::FamilySnapshot& family : snap.families) {
    if (family.name != name) {
      continue;
    }
    for (const crobs::SeriesSnapshot& series : family.series) {
      total += series.counter;
    }
  }
  return total;
}

// Prints the headline counters of a finished run's registry snapshot — the
// same numbers a remote operator would pull with a StatsQuery.
inline void PrintMetricsSnapshot(const crobs::RegistrySnapshot& snap, bool csv) {
  crstats::Table table({"metric", "value"});
  table.SetCsv(csv);
  for (const char* name :
       {"cras.sessions_opened", "cras.sessions_rejected", "cras.bytes_read",
        "cras.read_requests", "cras.deadline_misses", "admission.decisions",
        "volume.requests", "volume.splits", "driver.submitted", "disk.requests",
        "buffer.puts", "buffer.discarded"}) {
    table.Cell(std::string(name)).Cell(CounterTotal(snap, name));
    table.EndRow();
  }
  table.Print();
}

// Creates N MPEG1 movie files of the given length ("movie0", "movie1", ...).
inline std::vector<crmedia::MediaFile> MakeMpeg1Files(cras::Testbed& bed, int count,
                                                      crbase::Duration length) {
  std::vector<crmedia::MediaFile> files;
  files.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto file = crmedia::WriteMpeg1File(bed.fs, "movie" + std::to_string(i), length);
    CRAS_CHECK(file.ok()) << file.status().ToString();
    files.push_back(std::move(*file));
  }
  return files;
}

inline std::vector<crmedia::MediaFile> MakeMpeg2Files(cras::Testbed& bed, int count,
                                                      crbase::Duration length) {
  std::vector<crmedia::MediaFile> files;
  files.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto file = crmedia::WriteMpeg2File(bed.fs, "hdmovie" + std::to_string(i), length);
    CRAS_CHECK(file.ok()) << file.status().ToString();
    files.push_back(std::move(*file));
  }
  return files;
}

// The paper's background disk load: two `cat` programs looping over movie
// files through the Unix file system. Returns the tasks (keep them alive).
// `think_time` > 0 paces the readers (bursty contention instead of full
// saturation).
inline std::vector<crsim::Task> SpawnBackgroundCats(cras::Testbed& bed, int count = 2,
                                                    crbase::Duration think_time = 0) {
  std::vector<crsim::Task> cats;
  for (int i = 0; i < count; ++i) {
    auto file = crmedia::WriteMpeg1File(bed.fs, "catfood" + std::to_string(i),
                                        crbase::Seconds(120));
    CRAS_CHECK(file.ok()) << file.status().ToString();
    crmedia::CatOptions options;
    options.think_time = think_time;
    cats.push_back(crmedia::SpawnCat(bed.kernel, bed.unix_server, file->inode,
                                     "cat" + std::to_string(i), options));
  }
  return cats;
}

inline double ToMBps(double bytes_per_sec) { return bytes_per_sec / 1e6; }

// An asynchronous bulk I/O producer (an update daemon flushing, a backup
// scan): keeps `outstanding` non-real-time 64 KiB requests queued at the
// driver at all times. Unlike a synchronous `cat`, this builds a deep
// normal-queue backlog — the situation the dual-queue driver modification
// exists for.
inline std::vector<crsim::Task> SpawnBulkIo(cras::Testbed& bed, int outstanding,
                                            std::uint64_t seed = 99) {
  std::vector<crsim::Task> tasks;
  for (int i = 0; i < outstanding; ++i) {
    tasks.push_back(bed.kernel.Spawn(
        "bulk" + std::to_string(i), crrt::kPriorityTimesharing,
        [&bed, seed, i](crrt::ThreadContext&) -> crsim::Task {
          crbase::Rng rng(seed + static_cast<std::uint64_t>(i));
          const std::int64_t sectors = 128;  // 64 KiB
          const std::int64_t span = bed.device.geometry().total_sectors() - sectors;
          for (;;) {
            crdisk::DiskRequest req;
            req.lba = static_cast<crdisk::Lba>(rng.NextBelow(static_cast<std::uint64_t>(span)));
            req.sectors = sectors;
            req.realtime = false;
            (void)co_await bed.driver.Execute(std::move(req));
          }
        }));
  }
  return tasks;
}

}  // namespace crbench

#endif  // BENCH_BENCH_UTIL_H_
