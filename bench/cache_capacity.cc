// Cache capacity sweep: admitted streams vs cache size under Zipf demand.
//
// The admission formulas cap a single ST32550N at ~14 MPEG1 streams because
// every stream pays full worst-case disk time. The stream buffer cache
// (interval + prefix caching, DESIGN.md §5.11) breaks that ceiling for
// skewed demand: streams of a hot title chain behind one disk-served head,
// charged buffer memory plus a shared fallback reserve instead of disk time.
//
// The bench replays one arrival trace — 100 viewers arriving every 200 ms,
// titles drawn Zipf(alpha) over a 16-title catalog — against cache budgets
// of 0 (disk only), 6, 24 and 96 MiB (3/8 prefix pool, 5/8 interval pool)
// for alpha in {0.6, 0.8, 1.0}. The trace is seeded, so every sweep point
// sees the identical demand. Expected: admitted streams grow with cache
// size and skew, reaching >= 5x the disk-only capacity at the largest cache
// under alpha = 1.0 — with zero deadline misses, zero missed frames, and a
// clean budget-ledger audit (no interval ran past its predicted worst case)
// at every point: the cache adds capacity, never risk.
//
// Output: a table and BENCH_cache_capacity.json (--out <file>).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/admission_accuracy.h"
#include "bench/bench_util.h"
#include "src/obs/ledger.h"

namespace {

constexpr int kTitles = 16;
constexpr int kArrivals = 100;
constexpr std::uint64_t kTraceSeed = 12345;

struct SweepPoint {
  std::int64_t cache_mib = 0;
  double alpha = 0;
  int admitted = 0;
  int rejected = 0;
  std::int64_t pairs_formed = 0;
  std::int64_t pairs_end = 0;        // chains still fed at end of run
  std::int64_t pinned_titles = 0;
  std::int64_t prefix_hit_chunks = 0;
  std::int64_t interval_hit_chunks = 0;
  std::int64_t fallbacks = 0;
  std::int64_t bytes_from_cache = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t frames_missed = 0;
  std::int64_t streams_shed = 0;
  std::int64_t overruns = 0;
  std::int64_t late_attributions = 0;
};

// Replays the seeded arrival trace against one cache budget.
SweepPoint MeasurePoint(std::int64_t cache_bytes, double alpha) {
  SweepPoint point;
  point.cache_mib = cache_bytes / crbase::kMiB;
  point.alpha = alpha;

  cras::TestbedOptions options;
  // Generous wired budget: the cache, not stream buffers, is the binding
  // constraint being swept.
  options.cras.memory_budget_bytes = 256 * crbase::kMiB;
  options.cras.cache.enabled = cache_bytes > 0;
  options.cras.cache.prefix_length = crbase::Seconds(12);
  options.cras.cache.prefix_pool_bytes = cache_bytes * 3 / 8;
  options.cras.cache.interval_pool_bytes = cache_bytes * 5 / 8;
  cras::Testbed bed(options);
  bed.StartServers();
  const auto files = crbench::MakeMpeg1Files(bed, kTitles, crbase::Seconds(60));

  crbase::ZipfGenerator zipf(kTitles, alpha, kTraceSeed);
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  // Nobody finishes inside the run: pair churn from closes is the cache
  // tests' subject; this bench measures steady concurrent capacity.
  player_options.play_length = crbase::Seconds(40);
  for (int i = 0; i < kArrivals; ++i) {
    player_options.start_delay = crbase::Milliseconds(200) * i;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[zipf.Next()], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(crbase::Seconds(32));

  for (const auto& s : stats) {
    if (s->open_rejected) {
      ++point.rejected;
      continue;
    }
    ++point.admitted;
    if (!s->shed) {
      point.frames_missed += s->frames_missed;
    }
  }
  const cras::ServerStats& server = bed.cras_server.stats();
  point.deadline_misses = server.deadline_misses;
  point.bytes_from_cache = server.bytes_from_cache;
  point.streams_shed = server.streams_shed;
  if (const crcache::StreamCache* cache = bed.cras_server.cache()) {
    point.pairs_formed = cache->counters().pairs_formed;
    point.pairs_end = cache->pairs_active();
    point.pinned_titles = cache->pinned_titles();
    point.prefix_hit_chunks = cache->counters().prefix_hit_chunks;
    point.interval_hit_chunks = cache->counters().interval_hit_chunks;
    point.fallbacks = cache->counters().fallbacks;
  }

  // The ledger audit must stay clean: cache-served intervals issue less
  // disk I/O than predicted, never more.
  crobs::BudgetLedger* ledger = bed.hub.ledger();
  CRAS_CHECK(ledger != nullptr);
  ledger->CloseAll();
  point.overruns = ledger->overruns();
  point.late_attributions = ledger->late_attributions();

  CRAS_CHECK(point.deadline_misses == 0)
      << point.deadline_misses << " deadline misses at cache " << point.cache_mib
      << " MiB, alpha " << alpha;
  CRAS_CHECK(point.frames_missed == 0)
      << point.frames_missed << " missed frames at cache " << point.cache_mib
      << " MiB, alpha " << alpha;
  CRAS_CHECK(point.overruns == 0)
      << point.overruns << " ledger overruns at cache " << point.cache_mib
      << " MiB, alpha " << alpha;
  return point;
}

void WriteJson(const std::string& path, int disk_only_admitted,
               const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"cache_capacity\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s\",\n"
      << "  \"titles\": " << kTitles << ",\n"
      << "  \"arrivals\": " << kArrivals << ",\n"
      << "  \"interval_ms\": 500,\n"
      << "  \"prefix_length_s\": 12,\n"
      << "  \"disk_only_admitted\": " << disk_only_admitted << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << "    {\"cache_mib\": " << p.cache_mib << ", \"alpha\": " << p.alpha
        << ", \"admitted\": " << p.admitted << ", \"rejected\": " << p.rejected
        << ", \"pairs_formed\": " << p.pairs_formed << ", \"pairs_end\": " << p.pairs_end
        << ", \"pinned_titles\": " << p.pinned_titles << ",\n     \"prefix_hit_chunks\": "
        << p.prefix_hit_chunks << ", \"interval_hit_chunks\": " << p.interval_hit_chunks
        << ", \"fallbacks\": " << p.fallbacks
        << ", \"bytes_from_cache\": " << p.bytes_from_cache
        << ",\n     \"deadline_misses\": " << p.deadline_misses
        << ", \"frames_missed\": " << p.frames_missed
        << ", \"streams_shed\": " << p.streams_shed << ", \"overruns\": " << p.overruns
        << ", \"late_attributions\": " << p.late_attributions << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_cache_capacity.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  crstats::PrintBanner("Cache capacity: admitted streams vs cache size, Zipf demand");
  std::printf("1 disk, T = 0.5 s, %d titles, %d arrivals at 5/s, 12 s prefixes,\n"
              "cache split 3/8 prefix + 5/8 interval pool\n",
              kTitles, kArrivals);

  // Disk-only capacity of the same rig: distinct cold titles opened until
  // admission refuses one (the classic formulas' ceiling, ~14).
  cras::VolumeTestbedOptions baseline;
  baseline.volume.disks = 1;
  baseline.cras.memory_budget_bytes = 256 * crbase::kMiB;
  const int disk_only = crbench::CountAdmittedStreams(baseline, 3 * kTitles);
  std::printf("disk-only admitted capacity: %d streams\n\n", disk_only);

  crstats::Table table({"cache_mib", "alpha", "admitted", "rejected", "pairs", "pinned",
                        "prefix_hits", "interval_hits", "fallbacks", "cache_MB", "misses",
                        "shed"});
  table.SetCsv(csv);
  std::vector<SweepPoint> points;
  for (const std::int64_t cache_mib : {0, 6, 24, 96}) {
    for (const double alpha : {0.6, 0.8, 1.0}) {
      const SweepPoint point = MeasurePoint(cache_mib * crbase::kMiB, alpha);
      table.Cell(point.cache_mib)
          .Cell(point.alpha, 1)
          .Cell(static_cast<std::int64_t>(point.admitted))
          .Cell(static_cast<std::int64_t>(point.rejected))
          .Cell(point.pairs_end)
          .Cell(point.pinned_titles)
          .Cell(point.prefix_hit_chunks)
          .Cell(point.interval_hit_chunks)
          .Cell(point.fallbacks)
          .Cell(static_cast<double>(point.bytes_from_cache) / 1e6, 1)
          .Cell(point.deadline_misses)
          .Cell(point.streams_shed);
      table.EndRow();
      points.push_back(point);
    }
  }
  table.Print();

  // The headline acceptance: the largest cache under the classic
  // video-popularity skew carries at least 5x the disk-only load.
  const SweepPoint& best = points.back();  // 96 MiB, alpha = 1.0
  CRAS_CHECK(best.admitted >= 5 * disk_only)
      << "expected >= " << 5 * disk_only << " admitted at " << best.cache_mib
      << " MiB, alpha " << best.alpha << "; measured " << best.admitted;

  WriteJson(json_path, disk_only, points);
  std::printf("\nWrote %s. Expected: admitted growing with cache size and skew —\n"
              "%d disk-only, >= %d (5x) at 96 MiB under alpha = 1.0 — with zero\n"
              "deadline misses, zero missed frames, and zero ledger overruns at\n"
              "every sweep point.\n",
              json_path.c_str(), disk_only, 5 * disk_only);
  return 0;
}
