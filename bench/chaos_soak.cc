// Chaos soak: seeded fault campaigns against the full rig, audited for
// cross-layer conservation after every run.
//
// Each seed expands (crchaos::GenerateChaosSchedule) into a randomized fault
// plan — disk fail-stop/transient/slow windows, data-link loss/burst/jitter/
// derate, control-plane drop+duplication, abrupt client crashes — and runs it
// against a fresh instance of the complete server: a 4-disk parity volume,
// stream cache, one multicast delivery group plus unicast viewers on a shared
// lossy data link, per-session lease heartbeats, and every Open/StartStream/
// Close issued through the hardened control plane (idempotent request ids,
// capped-exponential retry) over the very links the campaign impairs.
//
// After the run the invariant auditor (crchaos::AuditRun) checks the books:
// every admitted session terminal, every miss attributable, reservations
// balanced, healthy disks overrun-free, multicast membership conserved. Any
// violation dumps the flight recorder (chaos_soak_dump_seed<seed>.json) and
// fails the bench. The report's fault -> re-settled-admission gaps aggregate
// into the recovery-latency percentiles.
//
// A final deliberate double-fault run (two parity members down at once,
// merged into a generated schedule) must make the auditor bite: the bench
// asserts that run IS flagged and its flight dump written — proof the clean
// sweep is a property of the server, not of a blind auditor.
//
// Flags: --seeds=N (default 25), --seed-base=K (default 1; campaign i uses
// seed K+i, so CI can rotate the window and any failure replays with
// --seeds=1 --seed-base=<seed>), --intensity=X (default 1.0), --out=<file>
// (default BENCH_chaos_soak.json), --csv.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/chaos.h"
#include "src/core/testbed.h"
#include "src/fault/fault.h"
#include "src/mcast/group_manager.h"
#include "src/mcast/group_transport.h"
#include "src/net/control.h"
#include "src/net/link.h"
#include "src/net/nps.h"

namespace {

using crbase::Milliseconds;
using crbase::Seconds;

constexpr int kGroupedViewers = 3;
constexpr int kUnicastViewers = 3;
constexpr int kViewers = kGroupedViewers + kUnicastViewers;
constexpr crbase::Duration kMovieLength = Seconds(16);
constexpr crbase::Duration kRunLength = Seconds(30);

// One viewer endpoint: a control-plane client, a lease heartbeat, and either
// a grouped or a unicast data path. The chaos crash handler flips `crashed`,
// after which the viewer never heartbeats, consumes, or closes again.
struct SoakViewer {
  cras::SessionId session = cras::kInvalidSession;
  bool grouped = false;
  bool crashed = false;
  bool closed = false;
  std::unique_ptr<crnet::Link> reverse;
  std::unique_ptr<crnet::ControlClient> control;
  std::unique_ptr<crnet::LeaseClient> lease;
  std::unique_ptr<crmcast::GroupReceiver> group_receiver;
  std::unique_ptr<crnet::NpsReceiver> nps_receiver;
  std::unique_ptr<crnet::NpsSender> nps_sender;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t plan_events = 0;
  std::int64_t events_fired = 0;
  int crashes = 0;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
  std::int64_t control_retries = 0;
  std::vector<double> recovery_ms;
  std::vector<crchaos::Violation> violations;
  bool dumped = false;
  // Flight-ring honesty: whether the audit saw a truncated event ring, and
  // how many events the ring overwrote during the campaign.
  bool ring_truncated = false;
  std::int64_t flight_dropped = 0;
};

cras::VolumeTestbedOptions RigOptions() {
  cras::VolumeTestbedOptions options;
  options.volume.disks = 4;
  options.volume.parity = true;
  // Frame tracing + SLO watchdog stay on during chaos so the auditor's
  // attribution-conservation invariant is exercised under faults.
  options.obs.frames.enabled = true;
  options.obs.slo.enabled = true;
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  options.cras.cache.enabled = true;
  options.cras.cache.pin_min_score = 0.5;
  options.cras.cache.prefix_length = Seconds(20);
  options.cras.mcast.enabled = true;
  options.cras.lease_period = Milliseconds(500);
  return options;
}

// Runs one full campaign: seed -> plan (plus an optional hand-written merge,
// used by the double-fault demo), full rig, audit. `dump_path` receives the
// flight recorder if the audit finds violations.
CampaignResult RunCampaign(std::uint64_t seed, double intensity,
                           const crfault::FaultPlan* merge_plan,
                           const std::string& dump_path) {
  cras::VolumeTestbed bed(RigOptions());
  bed.StartServers();

  std::vector<crmedia::MediaFile> movies;
  movies.reserve(1 + kUnicastViewers);  // viewers hold references
  movies.push_back(*crmedia::WriteMpeg1File(bed.fs, "hot", kMovieLength));
  for (int i = 0; i < kUnicastViewers; ++i) {
    movies.push_back(
        *crmedia::WriteMpeg1File(bed.fs, "u" + std::to_string(i), kMovieLength));
  }

  // Shared data segment (fast LAN) the chaos link faults will degrade; the
  // control plane and lease heartbeats ride their own links, which the
  // campaign's control-drop windows impair instead.
  crnet::Link::Options forward_options;
  forward_options.bandwidth_bytes_per_sec = 12.5e6;  // 100 Mb/s
  crnet::Link forward(bed.engine(), forward_options);
  crnet::Link control_forward(bed.engine());
  crnet::Link control_reverse(bed.engine());
  crnet::Link heartbeat(bed.engine());

  crnet::ControlService service(bed.kernel, bed.cras_server);
  service.Start();
  crmcast::GroupSender group_sender(bed.kernel, bed.cras_server, forward);
  group_sender.AttachObs(&bed.hub, "soak");

  std::vector<SoakViewer> fleet(kViewers);
  std::vector<crsim::Task> tasks;
  tasks.reserve(64);
  std::int64_t frames_missed_total = 0;
  crbase::Time first_miss_at = -1;

  for (int i = 0; i < kViewers; ++i) {
    SoakViewer* viewer = &fleet[static_cast<std::size_t>(i)];
    viewer->grouped = i < kGroupedViewers;
    viewer->reverse = std::make_unique<crnet::Link>(bed.engine());
    viewer->control = std::make_unique<crnet::ControlClient>(
        bed.engine(), service, &control_forward, &control_reverse,
        crnet::ControlClient::Options{.client_id = static_cast<std::uint64_t>(i + 1)});
    const crmedia::MediaFile& movie =
        movies[viewer->grouped ? 0 : static_cast<std::size_t>(1 + i - kGroupedViewers)];
    const crbase::Duration open_at = Milliseconds(120) * i;
    tasks.push_back(bed.kernel.Spawn(
        "viewer" + std::to_string(i), crrt::kPriorityClient,
        [&, viewer, open_at](crrt::ThreadContext& ctx) -> crsim::Task {
          co_await ctx.Sleep(open_at);
          cras::OpenParams params;
          params.inode = movie.inode;
          params.index = movie.index;
          params.grouped = viewer->grouped;
          auto opened = co_await viewer->control->Open(std::move(params));
          CRAS_CHECK(opened.ok()) << opened.status().ToString();
          viewer->session = *opened;
          crnet::LeaseClient::Options lease_options;
          lease_options.period = Milliseconds(100);
          viewer->lease = std::make_unique<crnet::LeaseClient>(
              bed.kernel, bed.cras_server, heartbeat, viewer->session, lease_options);
          tasks.push_back(viewer->lease->Start());
          const crbase::Duration delay = bed.cras_server.SuggestedInitialDelay();
          cras::LogicalClock* clock = nullptr;
          if (viewer->grouped) {
            viewer->group_receiver =
                std::make_unique<crmcast::GroupReceiver>(bed.kernel, &movie.index);
            group_sender.AddMember(viewer->session, *viewer->group_receiver);
            viewer->group_receiver->ConnectReverse(*viewer->reverse, group_sender,
                                                   viewer->session);
            tasks.push_back(viewer->group_receiver->Start());
            clock = &viewer->group_receiver->clock();
          } else {
            viewer->nps_receiver = std::make_unique<crnet::NpsReceiver>(bed.kernel);
            viewer->nps_sender = std::make_unique<crnet::NpsSender>(
                bed.kernel, bed.cras_server, forward, *viewer->nps_receiver);
            viewer->nps_receiver->ConnectReverse(*viewer->reverse, *viewer->nps_sender);
            clock = &viewer->nps_receiver->clock();
          }
          CRAS_CHECK(
              (co_await viewer->control->StartStream(viewer->session, delay)).ok());
          if (!viewer->grouped) {
            tasks.push_back(viewer->nps_sender->Start(viewer->session, &movie.index));
          }
          const crbase::Duration playout = delay + Milliseconds(200);
          clock->Start(playout);
          co_await ctx.Sleep(playout);
          for (const crmedia::Chunk& chunk : movie.index.chunks()) {
            if (viewer->crashed) {
              break;
            }
            while (clock->Now() < chunk.timestamp) {
              co_await ctx.Sleep(Milliseconds(2));
            }
            if (viewer->crashed) {
              break;
            }
            const bool resident =
                viewer->grouped ? viewer->group_receiver->Get(chunk.timestamp).has_value()
                                : viewer->nps_receiver->Get(chunk.timestamp).has_value();
            if (resident) {
              ++viewer->frames_ok;
            } else {
              ++viewer->frames_missed;
              ++frames_missed_total;
              if (first_miss_at < 0) {
                first_miss_at = bed.Now();
              }
            }
          }
          if (viewer->group_receiver != nullptr) {
            viewer->group_receiver->Stop();
          }
          if (viewer->crashed) {
            co_return;  // no Close, no more heartbeats: the reaper's problem
          }
          viewer->lease->Stop();
          viewer->closed = (co_await viewer->control->Close(viewer->session)).ok();
        }));
  }

  // Let the first grouped open land and found the group, then start its feed.
  bed.engine().RunFor(Milliseconds(100));
  crmcast::GroupManager* manager = bed.cras_server.mcast_groups();
  CRAS_CHECK(manager != nullptr);
  CRAS_CHECK(fleet[0].session != cras::kInvalidSession);
  const crmcast::GroupId group = manager->GroupOf(fleet[0].session);
  CRAS_CHECK(group != crmcast::kNoGroup);
  tasks.push_back(group_sender.Start(group, &movies[0].index));

  crchaos::ChaosConfig config;
  config.seed = seed;
  config.intensity = intensity;
  config.disks = 4;
  config.clients = kViewers;
  crfault::FaultPlan plan = crchaos::GenerateChaosSchedule(config);
  if (merge_plan != nullptr) {
    plan.Merge(*merge_plan);
  }

  CampaignResult result;
  result.seed = seed;
  result.plan_events = plan.events().size();

  crfault::FaultInjector injector(bed.engine(), &bed.volume, {&forward}, plan);
  injector.SetControlLinks({&control_forward, &control_reverse, &heartbeat});
  injector.SetClientCrashHandler([&fleet, &result](int client) {
    SoakViewer& viewer = fleet[static_cast<std::size_t>(client)];
    viewer.crashed = true;
    ++result.crashes;
    if (viewer.lease != nullptr) {
      viewer.lease->Stop();  // the crash also kills the heartbeat generator
    }
  });
  injector.AttachObs(&bed.hub);
  injector.Arm();

  bed.engine().RunFor(kRunLength);
  result.events_fired = injector.events_fired();

  crchaos::AuditInput input;
  input.hub = &bed.hub;
  input.server = &bed.cras_server;
  input.parity = true;
  input.frames_missed = frames_missed_total;
  input.first_miss_at = first_miss_at;
  for (const SoakViewer& viewer : fleet) {
    // A viewer whose Close never landed (crash, or a Close that exhausted
    // its retries inside a control blackout) abandoned the session; the
    // lease reaper must have collected it.
    crchaos::SessionFate fate;
    fate.id = viewer.session;
    fate.closed = viewer.closed;
    fate.crashed = viewer.crashed || !viewer.closed;
    input.fates.push_back(fate);
    result.frames_ok += viewer.frames_ok;
    result.frames_missed += viewer.frames_missed;
    result.control_retries += viewer.control->stats().retries;
  }

  const crchaos::AuditReport report = crchaos::AuditRun(input);
  result.recovery_ms = report.recovery_latencies_ms;
  result.violations = report.violations;
  result.ring_truncated = report.ring_truncated;
  result.flight_dropped = bed.hub.flight().dropped();
  // An audit that silently ran over a truncated flight ring would vouch for
  // evidence it never saw: the report must flag truncation exactly when the
  // ring actually overwrote events.
  CRAS_CHECK(result.ring_truncated == (result.flight_dropped > 0))
      << "seed " << seed << ": audit ring_truncated=" << result.ring_truncated
      << " but flight ring dropped " << result.flight_dropped << " events";
  result.dumped = crchaos::DumpIfViolated(bed.hub, report, dump_path);
  return result;
}

std::string ViolationSlugs(const CampaignResult& result) {
  std::string slugs;
  for (const crchaos::Violation& violation : result.violations) {
    slugs += (slugs.empty() ? "" : ",") + violation.invariant;
  }
  return slugs.empty() ? "-" : slugs;
}

void WriteJson(const std::string& path, const std::vector<CampaignResult>& runs,
               double intensity, const std::vector<double>& recovery,
               const CampaignResult& demo, const std::string& demo_dump) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"chaos_soak\",\n"
      << "  \"rig\": \"4-disk parity, cache+mcast, 3 grouped + 3 unicast viewers, "
         "control plane + leases over impaired links\",\n"
      << "  \"intensity\": " << intensity << ",\n"
      << "  \"seeds\": " << runs.size() << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CampaignResult& run = runs[i];
    out << "    {\"seed\": " << run.seed << ", \"plan_events\": " << run.plan_events
        << ", \"events_fired\": " << run.events_fired << ", \"crashes\": " << run.crashes
        << ", \"frames_ok\": " << run.frames_ok
        << ", \"frames_missed\": " << run.frames_missed
        << ", \"control_retries\": " << run.control_retries
        << ", \"recovery_samples\": " << run.recovery_ms.size()
        << ", \"ring_truncated\": " << (run.ring_truncated ? "true" : "false")
        << ", \"flight_dropped\": " << run.flight_dropped << ", \"violations\": [";
    for (std::size_t v = 0; v < run.violations.size(); ++v) {
      out << (v > 0 ? ", " : "") << "\"" << run.violations[v].invariant << "\"";
    }
    out << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"recovery_latency_ms\": {\"count\": " << recovery.size()
      << ", \"p50\": " << crchaos::Percentile(recovery, 50)
      << ", \"p95\": " << crchaos::Percentile(recovery, 95)
      << ", \"p99\": " << crchaos::Percentile(recovery, 99)
      << ", \"max\": " << crchaos::Percentile(recovery, 100) << "},\n"
      << "  \"double_fault_demo\": {\"seed\": " << demo.seed << ", \"violations\": [";
  for (std::size_t v = 0; v < demo.violations.size(); ++v) {
    out << (v > 0 ? ", " : "") << "\"" << demo.violations[v].invariant << "\"";
  }
  out << "], \"dumped\": " << (demo.dumped ? "true" : "false") << ", \"dump\": \""
      << demo_dump << "\"}\n"
      << "}\n";
}

std::int64_t IntFlag(int argc, char** argv, const std::string& prefix,
                     std::int64_t fallback) {
  const std::string value = crbench::FlagValue(argc, argv, prefix);
  return value.empty() ? fallback : std::stoll(value);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  const std::int64_t seeds = IntFlag(argc, argv, "--seeds=", 25);
  const std::uint64_t seed_base =
      static_cast<std::uint64_t>(IntFlag(argc, argv, "--seed-base=", 1));
  const std::string intensity_flag = crbench::FlagValue(argc, argv, "--intensity=");
  const double intensity = intensity_flag.empty() ? 1.0 : std::stod(intensity_flag);
  std::string json_path = crbench::FlagValue(argc, argv, "--out=");
  if (json_path.empty()) {
    json_path = "BENCH_chaos_soak.json";
  }

  crstats::PrintBanner("Chaos soak: seeded campaigns, cross-layer invariant audit");
  crstats::Table table({"seed", "events", "fired", "crashes", "frames_ok", "missed",
                        "ctl_retries", "recov_n", "ring", "violations"});
  table.SetCsv(csv);

  std::vector<CampaignResult> runs;
  std::vector<double> recovery;
  int violated_seeds = 0;
  for (std::int64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    const std::string dump_path =
        "chaos_soak_dump_seed" + std::to_string(seed) + ".json";
    CampaignResult run = RunCampaign(seed, intensity, nullptr, dump_path);
    table.Cell(static_cast<std::int64_t>(run.seed))
        .Cell(static_cast<std::int64_t>(run.plan_events))
        .Cell(run.events_fired)
        .Cell(static_cast<std::int64_t>(run.crashes))
        .Cell(run.frames_ok)
        .Cell(run.frames_missed)
        .Cell(run.control_retries)
        .Cell(static_cast<std::int64_t>(run.recovery_ms.size()))
        .Cell(run.ring_truncated ? "trunc" : "whole")
        .Cell(ViolationSlugs(run));
    table.EndRow();
    recovery.insert(recovery.end(), run.recovery_ms.begin(), run.recovery_ms.end());
    violated_seeds += run.violations.empty() ? 0 : 1;
    if (run.dumped) {
      std::fprintf(stderr, "seed %llu violated invariants; flight dump: %s\n",
                   static_cast<unsigned long long>(run.seed), dump_path.c_str());
    }
    runs.push_back(std::move(run));
  }
  table.Print();

  std::printf("\nrecovery latency (fault -> re-settled admission), %zu samples: "
              "p50=%.1f ms  p95=%.1f ms  p99=%.1f ms  max=%.1f ms\n",
              recovery.size(), crchaos::Percentile(recovery, 50),
              crchaos::Percentile(recovery, 95), crchaos::Percentile(recovery, 99),
              crchaos::Percentile(recovery, 100));

  // The deliberate double-fault demo: two parity members down at once, the
  // envelope the generator refuses to produce, merged into a generated
  // schedule. The auditor must flag it and dump the flight recorder — a
  // clean sweep above only counts if the auditor demonstrably bites.
  crfault::FaultPlan double_fault;
  double_fault.FailStop(Seconds(6), 0)
      .FailStop(Milliseconds(6500), 1)
      .Recover(Seconds(9), 0)
      .Recover(Milliseconds(9500), 1);
  const std::string demo_dump = "BENCH_chaos_soak_double_fault_dump.json";
  const CampaignResult demo =
      RunCampaign(seed_base, intensity, &double_fault, demo_dump);
  bool demo_flagged = false;
  for (const crchaos::Violation& violation : demo.violations) {
    demo_flagged |= violation.invariant == "unrecoverable_double_fault";
  }
  CRAS_CHECK(demo_flagged)
      << "the deliberate double fault was not flagged: " << ViolationSlugs(demo);
  CRAS_CHECK(demo.dumped) << "the flagged demo run did not dump the flight recorder";
  std::printf("double-fault demo (seed %llu): flagged [%s], flight dump %s\n",
              static_cast<unsigned long long>(seed_base), ViolationSlugs(demo).c_str(),
              demo_dump.c_str());

  CRAS_CHECK(violated_seeds == 0)
      << violated_seeds << " of " << seeds << " campaigns violated invariants";
  CRAS_CHECK(!recovery.empty()) << "no disk fault ever re-settled admission";
  std::printf("%lld campaigns (seeds %llu..%llu, intensity %.2f): zero invariant "
              "violations, zero wedged sessions (checks passed).\n",
              static_cast<long long>(seeds), static_cast<unsigned long long>(seed_base),
              static_cast<unsigned long long>(seed_base + static_cast<std::uint64_t>(seeds) - 1),
              intensity);

  WriteJson(json_path, runs, intensity, recovery, demo, demo_dump);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
