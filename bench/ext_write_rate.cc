// Extension (paper §4): constant-rate writing. Recorders produce chunks at
// the stream rate into write sessions over contiguously preallocated files;
// the same interval scheduler and admission formulas stage them to disk.
//
// Reported: sustained write rate per recorder count, write-queue deadline
// health, and read/write coexistence.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using cras::SessionId;
using cras::Testbed;
using crbase::Seconds;

constexpr crbase::Duration kRecordLength = crbase::Seconds(12);

crsim::Task SpawnRecorder(Testbed& bed, crufs::InodeNumber inode,
                          const crmedia::ChunkIndex* index, SessionId* id_out, bool* rejected) {
  return bed.kernel.Spawn(
      "recorder", crrt::kPriorityClient,
      [&bed, inode, index, id_out, rejected](crrt::ThreadContext& ctx) -> crsim::Task {
        cras::OpenParams params;
        params.inode = inode;
        params.index = *index;
        params.kind = cras::SessionKind::kWrite;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        if (!opened.ok()) {
          *rejected = true;
          co_return;
        }
        *id_out = *opened;
        (void)co_await bed.cras_server.StartStream(*opened, 0);
        const crbase::Time start = ctx.Now();
        for (std::size_t c = 0; c < index->count(); ++c) {
          const crmedia::Chunk& chunk = index->at(c);
          if (chunk.timestamp > kRecordLength) {
            break;
          }
          const crbase::Time due = start + chunk.timestamp;
          if (due > ctx.Now()) {
            co_await ctx.Sleep(due - ctx.Now());
          }
          (void)bed.cras_server.PutChunk(*id_out, static_cast<std::int64_t>(c));
        }
      });
}

struct Outcome {
  int admitted = 0;
  double write_mbps = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t player_missed = -1;
};

Outcome RunOne(int recorders, bool mpeg2, bool with_player) {
  Testbed bed;
  bed.StartServers();
  std::vector<crmedia::ChunkIndex> indexes;
  std::vector<crufs::InodeNumber> inodes;
  for (int i = 0; i < recorders; ++i) {
    indexes.push_back(crmedia::BuildCbrIndex(
        mpeg2 ? crmedia::kMpeg2BytesPerSec : crmedia::kMpeg1BytesPerSec, 30.0,
        kRecordLength + Seconds(2)));
    crufs::InodeNumber inode = *bed.fs.Create("capture" + std::to_string(i));
    CRAS_CHECK_OK(bed.fs.PreallocateContiguous(inode, indexes.back().total_bytes()));
    inodes.push_back(inode);
  }
  std::vector<SessionId> ids(static_cast<std::size_t>(recorders), cras::kInvalidSession);
  std::vector<crsim::Task> tasks;
  bool any_rejected = false;
  for (int i = 0; i < recorders; ++i) {
    tasks.push_back(SpawnRecorder(bed, inodes[static_cast<std::size_t>(i)],
                                  &indexes[static_cast<std::size_t>(i)],
                                  &ids[static_cast<std::size_t>(i)], &any_rejected));
  }
  cras::PlayerStats player_stats;
  crsim::Task player;
  std::unique_ptr<crmedia::MediaFile> movie;
  if (with_player) {
    auto file = crmedia::WriteMpeg1File(bed.fs, "movie", kRecordLength + Seconds(2));
    movie = std::make_unique<crmedia::MediaFile>(std::move(*file));
    cras::PlayerOptions options;
    options.play_length = kRecordLength - Seconds(2);
    player = cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *movie, options, &player_stats);
  }
  bed.engine().RunFor(kRecordLength + Seconds(4));

  Outcome outcome;
  for (SessionId id : ids) {
    if (id != cras::kInvalidSession) {
      ++outcome.admitted;
    }
  }
  outcome.write_mbps = crbench::ToMBps(
      static_cast<double>(bed.cras_server.stats().bytes_written) /
      crbase::ToSeconds(kRecordLength));
  outcome.deadline_misses = bed.cras_server.stats().deadline_misses;
  if (with_player) {
    outcome.player_missed = player_stats.frames_missed;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner("Extension: constant-rate writing (paper section 4)");
  crstats::Table table({"recorders", "rate", "with_player", "admitted", "write_MBps",
                        "deadline_misses", "player_missed_frames"});
  table.SetCsv(csv);
  struct Config {
    int recorders;
    bool mpeg2;
    bool with_player;
  };
  const Config configs[] = {
      {1, false, false}, {4, false, false}, {8, false, false},
      {1, true, false},  {3, true, false},  {2, false, true},
  };
  for (const Config& config : configs) {
    const Outcome o = RunOne(config.recorders, config.mpeg2, config.with_player);
    table.Cell(static_cast<std::int64_t>(config.recorders))
        .Cell(config.mpeg2 ? "6Mbps" : "1.5Mbps")
        .Cell(config.with_player ? "yes" : "no")
        .Cell(static_cast<std::int64_t>(o.admitted))
        .Cell(o.write_mbps, 3)
        .Cell(o.deadline_misses)
        .Cell(o.player_missed);
    table.EndRow();
  }
  table.Print();
  std::printf("\nExpected: sustained write rate = recorders x stream rate with zero\n"
              "deadline misses, and recording coexists with playback (player_missed=0).\n");
  return 0;
}
