// Figure 6: CRAS vs UFS aggregate throughput, 1..25 MPEG1 (1.5 Mb/s)
// streams, with and without background disk load (two `cat` readers).
//
// Paper result (shape): CRAS scales linearly to its admission limit and is
// unaffected by background load; UFS saturates around 9 streams without
// load and collapses to ~0 with load. CRAS reaches ~55% of the disk's
// bandwidth at a 0.5 s interval and more with longer intervals.
//
// Extension section: the interval-time sweep behind the paper's "with 3
// seconds initial delay it can support more than 25 MPEG1 streams (70% of
// disk bandwidth)" claim.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/admission.h"

namespace {

using cras::PlayerOptions;
using cras::PlayerStats;
using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

constexpr crbase::Duration kPlayLength = crbase::Seconds(10);
constexpr crbase::Duration kRunLength = crbase::Seconds(16);

// Throughput counts only frames delivered within kOnTime of their schedule
// — the paper's notion of "supporting" a stream. Data that trickles in late
// is useless to a playback application.
constexpr crbase::Duration kOnTime = crbase::Milliseconds(100);

struct Run {
  double throughput_mbps = 0;  // on-time MB/s across all streams
  int streams_playing = 0;     // admitted (CRAS) / attempted (UFS)
  std::int64_t frames_missed = 0;
};

// When `obs` is non-null the run records a trace (written to obs->trace_path
// unless empty) and leaves the final registry snapshot in obs->snapshot.
struct ObsCapture {
  std::string trace_path;
  crobs::RegistrySnapshot snapshot;
};

Run RunCras(int streams, bool load, crbase::Duration interval,
            std::int64_t memory_budget = 0, ObsCapture* obs = nullptr) {
  TestbedOptions options;
  options.cras.interval = interval;
  if (memory_budget > 0) {
    options.cras.memory_budget_bytes = memory_budget;
  }
  if (obs != nullptr && !obs->trace_path.empty()) {
    options.obs.trace.enabled = true;
    options.obs.trace.capacity = 1 << 18;  // keep the whole run, ~260k events
  }
  Testbed bed(options);
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, kPlayLength + Seconds(3));
  std::vector<crsim::Task> cats;
  if (load) {
    cats = crbench::SpawnBackgroundCats(bed);
  }
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions player_options;
  player_options.play_length = kPlayLength;
  for (int i = 0; i < streams; ++i) {
    player_options.start_delay = crbase::Milliseconds(73) * i;
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], player_options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(kRunLength + crbase::Milliseconds(73) * streams);
  Run run;
  std::int64_t bytes = 0;
  for (const auto& s : stats) {
    bytes += s->OnTimeBytes(kOnTime);
    run.frames_missed += s->frames_missed;
    if (!s->open_rejected) {
      ++run.streams_playing;
    }
  }
  run.throughput_mbps = crbench::ToMBps(static_cast<double>(bytes) /
                                        crbase::ToSeconds(kPlayLength));
  if (obs != nullptr) {
    obs->snapshot = bed.hub.metrics().Snapshot();
    if (!obs->trace_path.empty() && bed.hub.WriteTraceFile(obs->trace_path)) {
      std::printf("wrote Chrome trace (%zu events) to %s\n", bed.hub.trace().size(),
                  obs->trace_path.c_str());
    }
  }
  return run;
}

Run RunUfs(int streams, bool load) {
  TestbedOptions options;
  Testbed bed(options);
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, streams, kPlayLength + Seconds(3));
  std::vector<crsim::Task> cats;
  if (load) {
    cats = crbench::SpawnBackgroundCats(bed);
  }
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions player_options;
  player_options.play_length = kPlayLength;
  for (int i = 0; i < streams; ++i) {
    player_options.start_delay = crbase::Milliseconds(73) * i;
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(cras::SpawnUfsPlayer(bed.kernel, bed.unix_server,
                                           files[static_cast<std::size_t>(i)], player_options,
                                           stats.back().get()));
  }
  bed.engine().RunFor(kRunLength + crbase::Milliseconds(73) * streams);
  Run run;
  run.streams_playing = streams;
  std::int64_t bytes = 0;
  for (const auto& s : stats) {
    bytes += s->OnTimeBytes(kOnTime);
    run.frames_missed += s->frames_missed;
  }
  run.throughput_mbps =
      crbench::ToMBps(static_cast<double>(bytes) / crbase::ToSeconds(kPlayLength));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);

  crstats::PrintBanner("Figure 6: CRAS vs UFS throughput, 1.5 Mb/s streams (MB/s)");
  std::printf("interval 0.5s, initial delay 1s, play length %.0fs; load = two cat readers\n",
              crbase::ToSeconds(kPlayLength));
  crstats::Table table({"streams", "cras_noload", "cras_load", "ufs_noload", "ufs_load",
                        "cras_admitted"});
  table.SetCsv(csv);
  for (int n = 1; n <= 25; n += (n < 10 ? 1 : 3)) {
    const Run cras_noload = RunCras(n, false, crbase::Milliseconds(500));
    const Run cras_load = RunCras(n, true, crbase::Milliseconds(500));
    const Run ufs_noload = RunUfs(n, false);
    const Run ufs_load = RunUfs(n, true);
    table.Cell(static_cast<std::int64_t>(n))
        .Cell(cras_noload.throughput_mbps)
        .Cell(cras_load.throughput_mbps)
        .Cell(ufs_noload.throughput_mbps)
        .Cell(ufs_load.throughput_mbps)
        .Cell(static_cast<std::int64_t>(cras_noload.streams_playing));
    table.EndRow();
  }
  table.Print();

  crstats::PrintBanner("Figure 6 extension: interval time vs CRAS capacity");
  crstats::Table sweep({"interval_s", "initial_delay_s", "admitted", "delivered_MBps",
                        "disk_share_pct", "frames_missed"});
  sweep.SetCsv(csv);
  for (const double interval_s : {0.5, 1.0, 1.5, 3.0}) {
    const crbase::Duration interval = crbase::SecondsF(interval_s);
    // Find the admission capacity, then run it.
    cras::AdmissionModel model(cras::MeasuredSt32550nParams(), interval, 256 * crbase::kKiB);
    const std::int64_t sweep_budget = 24 * crbase::kMiB;
    // The derived worst-case MPEG1 rate over a window is slightly above the
    // nominal 187.5 KB/s; use the real stream index to match the server.
    Testbed probe;
    auto probe_file = crmedia::WriteMpeg1File(probe.fs, "probe", Seconds(2));
    cras::StreamDemand demand{probe_file->index.WorstRate(interval),
                              probe_file->index.max_chunk_bytes()};
    std::vector<cras::StreamDemand> demands;
    int capacity = 0;
    while (capacity < 40) {
      demands.push_back(demand);
      if (!model.Admissible(demands, sweep_budget)) {
        break;
      }
      ++capacity;
    }
    // A 32 MB machine dedicates more wired buffer memory than the default
    // 12 MiB; the long-interval points are memory-bound otherwise.
    const Run run = RunCras(capacity, /*load=*/true, interval, 24 * crbase::kMiB);
    const double share = 100.0 * run.throughput_mbps * 1e6 / 6.5e6;
    sweep.Cell(interval_s, 1)
        .Cell(2 * interval_s, 1)
        .Cell(static_cast<std::int64_t>(run.streams_playing))
        .Cell(run.throughput_mbps)
        .Cell(share, 1)
        .Cell(run.frames_missed);
    sweep.EndRow();
  }
  sweep.Print();

  // Representative instrumented run: 10 streams under background load at the
  // paper's 0.5 s interval. The snapshot is what a StatsQuery would return;
  // --trace=<file> additionally dumps the run as Chrome trace_event JSON
  // (disk-request spans, per-interval prefetch spans, deadline-slack track).
  crstats::PrintBanner("Metrics snapshot: 10 streams, load, T = 0.5 s");
  ObsCapture obs;
  obs.trace_path = crbench::TracePath(argc, argv);
  (void)RunCras(10, /*load=*/true, crbase::Milliseconds(500), /*memory_budget=*/0, &obs);
  crbench::PrintMetricsSnapshot(obs.snapshot, csv);

  std::printf("\nPaper: CRAS ~55%% of disk bandwidth at 0.5s interval, >25 streams (70%%)\n"
              "with a 3s initial delay; UFS <= 9 streams unloaded, ~0 under load.\n");
  return 0;
}
