// Figure 7: per-frame delay of a video stream retrieved through CRAS vs the
// Unix file system while other activities access the same disk.
//
// Paper result (shape): UFS shows large delay spikes (tens to hundreds of
// milliseconds); CRAS stays flat near zero even at the same throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace {

using cras::PlayerOptions;
using cras::PlayerStats;
using cras::Testbed;
using crbase::Seconds;

constexpr crbase::Duration kPlayLength = crbase::Seconds(30);

PlayerStats RunOne(bool use_cras) {
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", kPlayLength + Seconds(3));
  CRAS_CHECK(file.ok());
  // Bursty contention (paced cats): heavy enough to perturb UFS, light
  // enough that both file systems sustain the stream's throughput — the
  // paper's Figure 7 setup ("even when both achieve the same throughput").
  auto cats = crbench::SpawnBackgroundCats(bed, 2, crbase::Milliseconds(25));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = kPlayLength;
  crsim::Task player =
      use_cras ? cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats)
               : cras::SpawnUfsPlayer(bed.kernel, bed.unix_server, *file, options, &stats);
  bed.engine().RunFor(kPlayLength + Seconds(8));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  const PlayerStats cras_stats = RunOne(/*use_cras=*/true);
  const PlayerStats ufs_stats = RunOne(/*use_cras=*/false);

  crstats::PrintBanner("Figure 7: frame delay over time, CRAS vs UFS, with disk load (ms)");
  crstats::Table table({"time_s", "cras_max_delay_ms", "ufs_max_delay_ms"});
  table.SetCsv(csv);
  // Bucket frames into 1 s bins, reporting the worst delay per bin (the
  // spikes are what matter).
  const double bins = crbase::ToSeconds(kPlayLength);
  for (int bin = 0; bin < static_cast<int>(bins); ++bin) {
    const crbase::Time lo = crbase::Seconds(bin);
    const crbase::Time hi = crbase::Seconds(bin + 1);
    auto max_in_bin = [&](const PlayerStats& stats) {
      crbase::Duration worst = 0;
      for (const cras::FrameRecord& f : stats.frames) {
        const crbase::Time rel = f.due_at - stats.frames.front().due_at;
        if (rel >= lo && rel < hi) {
          worst = std::max(worst, f.delay());
        }
      }
      return crbase::ToMilliseconds(worst);
    };
    table.Cell(static_cast<std::int64_t>(bin))
        .Cell(max_in_bin(cras_stats), 3)
        .Cell(max_in_bin(ufs_stats), 3);
    table.EndRow();
  }
  table.Print();

  crstats::Summary cras_summary;
  crstats::Summary ufs_summary;
  for (const cras::FrameRecord& f : cras_stats.frames) {
    cras_summary.Add(crbase::ToMilliseconds(f.delay()));
  }
  for (const cras::FrameRecord& f : ufs_stats.frames) {
    ufs_summary.Add(crbase::ToMilliseconds(f.delay()));
  }
  std::printf("\nsummary (ms):  CRAS mean=%.3f max=%.3f missed=%lld   "
              "UFS mean=%.3f max=%.3f missed=%lld\n",
              cras_summary.mean(), cras_summary.max(),
              static_cast<long long>(cras_stats.frames_missed), ufs_summary.mean(),
              ufs_summary.max(), static_cast<long long>(ufs_stats.frames_missed));
  std::printf("Paper: UFS delay jitter is much larger than CRAS at equal throughput.\n");
  return 0;
}
