// Figure 8: admission-test accuracy for 1.5 Mb/s (MPEG1) streams,
// 1..20 streams, with and without background disk load.
//
// Paper result (shape): the estimate is very pessimistic (low ratio) for
// few low-rate streams — worst-case seek and rotation dominate — and the
// ratio rises with the number of streams. Background load raises the ratio
// (the charged O_other term actually occurs).

#include <cstdio>

#include "bench/admission_accuracy.h"

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner(
      "Figure 8: admission accuracy, 1.5 Mb/s streams (actual/estimated I/O time, %)");
  std::printf("interval 1s (admits 20 MPEG1 streams); load = two cat readers\n");
  crstats::Table table(
      {"streams", "noload_avg", "noload_max", "load_avg", "load_max", "intervals"});
  table.SetCsv(csv);
  for (int n = 1; n <= 20; n += (n < 6 ? 1 : 2)) {
    crbench::AccuracyConfig config;
    config.streams = n;
    config.interval = crbase::Seconds(1);
    config.load = false;
    const crbench::AccuracyResult noload = crbench::MeasureAdmissionAccuracy(config);
    config.load = true;
    const crbench::AccuracyResult load = crbench::MeasureAdmissionAccuracy(config);
    table.Cell(static_cast<std::int64_t>(n))
        .Cell(noload.avg_ratio_pct, 1)
        .Cell(noload.max_ratio_pct, 1)
        .Cell(load.avg_ratio_pct, 1)
        .Cell(load.max_ratio_pct, 1)
        .Cell(static_cast<std::int64_t>(noload.intervals_measured));
    table.EndRow();
  }
  table.Print();
  std::printf("\nPaper: very pessimistic (low %%) at few streams; ratio grows with stream\n"
              "count and with background load.\n");
  return 0;
}
