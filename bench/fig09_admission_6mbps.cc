// Figure 9: admission-test accuracy for 6 Mb/s (MPEG2) streams,
// 1..5 streams, with and without background disk load.
//
// Paper result (shape): higher-rate streams make the estimate much less
// pessimistic — transfer time dominates the (exact) cost model — reaching
// about 70% accuracy for loaded 6 Mb/s streams.

#include <cstdio>

#include "bench/admission_accuracy.h"

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crstats::PrintBanner(
      "Figure 9: admission accuracy, 6 Mb/s streams (actual/estimated I/O time, %)");
  std::printf("interval 1.5s (admits 5 MPEG2 streams); load = two cat readers\n");
  crstats::Table table(
      {"streams", "noload_avg", "noload_max", "load_avg", "load_max", "intervals"});
  table.SetCsv(csv);
  for (int n = 1; n <= 5; ++n) {
    crbench::AccuracyConfig config;
    config.streams = n;
    config.mpeg2 = true;
    config.interval = crbase::MillisecondsF(1500);
    config.load = false;
    const crbench::AccuracyResult noload = crbench::MeasureAdmissionAccuracy(config);
    config.load = true;
    const crbench::AccuracyResult load = crbench::MeasureAdmissionAccuracy(config);
    table.Cell(static_cast<std::int64_t>(n))
        .Cell(noload.avg_ratio_pct, 1)
        .Cell(noload.max_ratio_pct, 1)
        .Cell(load.avg_ratio_pct, 1)
        .Cell(load.max_ratio_pct, 1)
        .Cell(static_cast<std::int64_t>(noload.intervals_measured));
    table.EndRow();
  }
  table.Print();
  std::printf("\nPaper: 6 Mb/s with load reaches ~70%% accuracy; far less pessimism than\n"
              "the 1.5 Mb/s case because data transfer dominates the estimate.\n");
  return 0;
}
