// Figure 10: the effect of real-time scheduling. One 1.5 Mb/s stream
// retrieved through CRAS while CPU-bound tasks run, under fixed-priority
// scheduling vs round-robin timesharing.
//
// Paper result (shape): under round-robin the retrieval's delay jitter is
// much larger than under fixed priority — the server's periodic scheduler
// and the player wait behind the CPU hogs' quanta.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary.h"

namespace {

using cras::PlayerOptions;
using cras::PlayerStats;
using cras::Testbed;
using cras::TestbedOptions;
using crbase::Seconds;

constexpr crbase::Duration kPlayLength = crbase::Seconds(30);
constexpr int kCpuHogs = 3;

PlayerStats RunWithPolicy(crsim::SchedPolicy policy) {
  TestbedOptions options;
  options.kernel.policy = policy;
  options.kernel.quantum = crbase::Milliseconds(10);
  Testbed bed(options);
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", kPlayLength + Seconds(3));
  CRAS_CHECK(file.ok());
  std::vector<crsim::Task> hogs;
  for (int i = 0; i < kCpuHogs; ++i) {
    hogs.push_back(crmedia::SpawnCpuHog(bed.kernel, "hog" + std::to_string(i)));
  }
  PlayerStats stats;
  PlayerOptions player_options;
  player_options.play_length = kPlayLength;
  crsim::Task player =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, player_options, &stats);
  bed.engine().RunFor(kPlayLength + Seconds(8));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  const PlayerStats fixed = RunWithPolicy(crsim::SchedPolicy::kFixedPriority);
  const PlayerStats rr = RunWithPolicy(crsim::SchedPolicy::kRoundRobin);

  crstats::PrintBanner("Figure 10: frame delay under fixed-priority vs round-robin (ms)");
  std::printf("one 1.5 Mb/s stream + %d CPU-bound tasks, 10 ms round-robin quantum\n",
              kCpuHogs);
  crstats::Table table({"time_s", "fixed_priority_ms", "round_robin_ms"});
  table.SetCsv(csv);
  for (int bin = 0; bin < static_cast<int>(crbase::ToSeconds(kPlayLength)); ++bin) {
    auto max_in_bin = [&](const PlayerStats& stats) {
      crbase::Duration worst = 0;
      for (const cras::FrameRecord& f : stats.frames) {
        const crbase::Time rel = f.due_at - stats.frames.front().due_at;
        if (rel >= crbase::Seconds(bin) && rel < crbase::Seconds(bin + 1)) {
          worst = std::max(worst, f.delay());
        }
      }
      return crbase::ToMilliseconds(worst);
    };
    table.Cell(static_cast<std::int64_t>(bin)).Cell(max_in_bin(fixed), 3).Cell(max_in_bin(rr), 3);
    table.EndRow();
  }
  table.Print();

  crstats::Summary fp_summary;
  crstats::Summary rr_summary;
  for (const cras::FrameRecord& f : fixed.frames) {
    fp_summary.Add(crbase::ToMilliseconds(f.delay()));
  }
  for (const cras::FrameRecord& f : rr.frames) {
    rr_summary.Add(crbase::ToMilliseconds(f.delay()));
  }
  std::printf("\nsummary (ms):  fixed-priority mean=%.3f max=%.3f missed=%lld   "
              "round-robin mean=%.3f max=%.3f missed=%lld\n",
              fp_summary.mean(), fp_summary.max(), static_cast<long long>(fixed.frames_missed),
              rr_summary.mean(), rr_summary.max(), static_cast<long long>(rr.frames_missed));
  std::printf("Paper: round-robin jitter is much larger; real-time scheduling is essential\n"
              "for constant-rate retrieval.\n");
  return 0;
}
