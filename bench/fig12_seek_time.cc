// Figure 12: disk seek time vs cylinder distance — measured curve and the
// linear approximation fitted from it (the paper's calibration of
// T_seek_min / T_seek_max).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/disk/seek_model.h"

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crsim::Engine engine;
  crdisk::DiskDevice::Options device_options;
  device_options.geometry = crdisk::St32550nGeometry();
  crdisk::DiskDevice device(engine, device_options);
  const std::int64_t cylinders = device.geometry().cylinders;

  // Measure, as the authors did, seeks of increasing distance.
  std::vector<crdisk::SeekSample> samples;
  for (std::int64_t distance = 10; distance < cylinders; distance += 50) {
    samples.push_back({distance, device.MeasureSeek(0, distance)});
  }
  samples.push_back({cylinders - 1, device.MeasureSeek(0, cylinders - 1)});
  const crdisk::LinearSeekModel fit = crdisk::FitLinearSeekModel(samples, cylinders);

  crstats::PrintBanner("Figure 12: seek time vs distance, ST32550N model (ms)");
  crstats::Table table({"distance_cyl", "measured_ms", "linear_approx_ms"});
  table.SetCsv(csv);
  for (std::int64_t distance : {1, 5, 10, 25, 50, 100, 200, 400, 600, 900, 1200, 1600, 2000,
                                2400, 2800, 3200, 3509}) {
    table.Cell(distance)
        .Cell(crbase::ToMilliseconds(device.MeasureSeek(0, distance)), 3)
        .Cell(crbase::ToMilliseconds(fit.SeekTime(distance)), 3);
    table.EndRow();
  }
  table.Print();
  std::printf("\nlinear fit: T_seek_min = %.2f ms, T_seek_max = %.2f ms\n",
              crbase::ToMilliseconds(fit.t_seek_min()), crbase::ToMilliseconds(fit.t_seek_max()));
  std::printf("Paper (Table 4): T_seek_min = 4 ms, T_seek_max = 17 ms.\n");
  return 0;
}
