// Multicast fan-out: server cost of serving one hot title to N viewers,
// per-client unicast with NAK repair vs one grouped delivery with coded
// (XOR parity) repair.
//
// For each fan-out in {1, 4, 16, 64} viewers the bench streams one 30 s
// MPEG1 movie over a shared 1 Gb/s link twice per loss model (1% i.i.d.
// and a Gilbert–Elliott burst chain of the same average loss):
//
//   unicast  — every viewer gets its own CRAS session and NpsSender; the
//              server reads every interval N times from disk and each loss
//              is NAK-repaired per client.
//   grouped  — viewers open with OpenParams::grouped; the server batches
//              them into one delivery group whose single feed session does
//              the disk I/O, the GroupSender multicasts each chunk once
//              (late joiners bridged from the pinned prefix cache), and
//              losses are repaired with multicast XOR parity packets.
//
// Expected shape: unicast server bytes and disk reads grow linearly with N
// while grouped stays near-flat, so the per-delivered-frame cost collapses
// as the group widens. The headline acceptance checks are asserted: at
// 16+ viewers grouped spends strictly fewer server bytes AND disk reads
// per delivered frame than unicast, misses zero frames, and leaves the
// BudgetLedger clean.
//
// Besides the table, the bench writes BENCH_mcast_fanout.json (current
// directory, or the path given with --out <file>).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/testbed.h"
#include "src/obs/frame_trace.h"
#include "src/obs/ledger.h"
#include "src/mcast/group_manager.h"
#include "src/mcast/group_transport.h"
#include "src/net/link.h"
#include "src/net/nps.h"

namespace {

using crbase::Milliseconds;
using crbase::Seconds;

constexpr crbase::Duration kMovieLength = Seconds(30);
constexpr crbase::Duration kOpenStagger = Milliseconds(50);
constexpr int kDisks = 8;  // admits the full 64-viewer unicast load

struct FanoutPoint {
  int viewers = 0;
  std::string loss_model;  // "iid" or "burst"
  bool grouped = false;
  std::int64_t frames_total = 0;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
  std::int64_t server_bytes_sent = 0;  // shared forward link, repairs included
  std::int64_t disk_reads = 0;         // CRAS read requests actually issued
  std::int64_t repair_packets = 0;     // parity packets / NAK retransmits
  std::int64_t ledger_overruns = 0;
  double bytes_per_frame = 0.0;
  double reads_per_frame = 0.0;
  double repairs_per_frame = 0.0;
  // Fleet frame-trace totals across every viewer (and the grouped feed),
  // conservation-checked: stage buckets sum exactly to end-to-end time.
  crobs::StageAttribution attribution;
};

cras::VolumeTestbedOptions RigOptions(bool grouped) {
  cras::VolumeTestbedOptions options;
  options.volume.disks = kDisks;
  options.obs.frames.enabled = true;
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  if (grouped) {
    options.cras.mcast.enabled = true;
    options.cras.cache.enabled = true;
    options.cras.cache.pin_min_score = 0.5;  // the hot title pins its prefix
    options.cras.cache.prefix_length = Seconds(20);
  }
  return options;
}

void ApplyLoss(crnet::Link& link, bool burst) {
  if (burst) {
    // Gilbert–Elliott with the same ~1% average loss as the i.i.d. point:
    // stationary bad-state share 0.005/(0.005+0.3) ≈ 1.6%, loss 0.5 in bad.
    link.SetBurstLoss(/*p_enter_bad=*/0.005, /*p_exit_bad=*/0.3, /*loss_bad=*/0.5);
  }
}

// One viewer endpoint; exactly one of the receiver pairs is populated.
struct Viewer {
  cras::SessionId session = cras::kInvalidSession;
  std::unique_ptr<crnet::Link> reverse;  // per-viewer NAK/report path, clean
  std::unique_ptr<crnet::NpsReceiver> nps_receiver;
  std::unique_ptr<crnet::NpsSender> nps_sender;
  std::unique_ptr<crmcast::GroupReceiver> group_receiver;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
  std::vector<std::int64_t> missed_seqs;
};

// Plays the whole movie on `clock`, counting a frame missed when it is not
// resident at its logical timestamp.
template <typename GetFn>
crsim::Task Player(crrt::ThreadContext& ctx, cras::LogicalClock& clock,
                   const crmedia::MediaFile& movie, crbase::Duration delay, Viewer* viewer,
                   GetFn get) {
  // Playout trails the session clock by a little slack so interval-boundary
  // chunks published exactly at their timestamp cross the wire in time.
  const crbase::Duration playout = delay + Milliseconds(200);
  clock.Start(playout);
  co_await ctx.Sleep(playout);
  std::int64_t seq = 0;
  for (const crmedia::Chunk& chunk : movie.index.chunks()) {
    while (clock.Now() < chunk.timestamp) {
      co_await ctx.Sleep(Milliseconds(2));
    }
    if (get(chunk.timestamp)) {
      ++viewer->frames_ok;
    } else {
      ++viewer->frames_missed;
      viewer->missed_seqs.push_back(seq);
    }
    ++seq;
  }
}

FanoutPoint RunPoint(int viewers, bool burst, bool grouped) {
  cras::VolumeTestbed bed(RigOptions(grouped));
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "hot", kMovieLength);
  CRAS_CHECK(movie.ok()) << movie.status().ToString();

  crnet::Link::Options forward_options;
  forward_options.bandwidth_bytes_per_sec = 125.0e6;  // 1 Gb/s shared segment
  if (!burst) {
    forward_options.impairments.loss_probability = 0.01;
  }
  crnet::Link forward(bed.engine(), forward_options);
  ApplyLoss(forward, burst);

  crmcast::GroupSender group_sender(bed.kernel, bed.cras_server, forward);
  std::vector<Viewer> fleet(static_cast<std::size_t>(viewers));
  std::vector<crsim::Task> tasks;
  tasks.reserve(fleet.size() * 3);

  for (int i = 0; i < viewers; ++i) {
    Viewer* viewer = &fleet[static_cast<std::size_t>(i)];
    viewer->reverse = std::make_unique<crnet::Link>(bed.engine());
    const crbase::Duration open_at = kOpenStagger * i;
    tasks.push_back(bed.kernel.Spawn(
        "viewer", crrt::kPriorityClient,
        [&, open_at, viewer](crrt::ThreadContext& ctx) -> crsim::Task {
          co_await ctx.Sleep(open_at);
          cras::OpenParams params;
          params.inode = movie->inode;
          params.index = movie->index;
          params.grouped = grouped;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok()) << opened.status().ToString();
          viewer->session = *opened;
          const crbase::Duration delay = bed.cras_server.SuggestedInitialDelay();
          if (grouped) {
            viewer->group_receiver =
                std::make_unique<crmcast::GroupReceiver>(bed.kernel, &movie->index);
            group_sender.AddMember(viewer->session, *viewer->group_receiver);
            viewer->group_receiver->ConnectReverse(*viewer->reverse, group_sender,
                                                   viewer->session);
            tasks.push_back(viewer->group_receiver->Start());
            (void)co_await bed.cras_server.StartStream(viewer->session, delay);
            co_await Player(ctx, viewer->group_receiver->clock(), *movie, delay, viewer,
                            [&](crbase::Time t) {
                              return viewer->group_receiver->Get(t).has_value();
                            });
            viewer->group_receiver->Stop();
          } else {
            viewer->nps_receiver = std::make_unique<crnet::NpsReceiver>(bed.kernel);
            viewer->nps_sender = std::make_unique<crnet::NpsSender>(
                bed.kernel, bed.cras_server, forward, *viewer->nps_receiver);
            viewer->nps_receiver->ConnectReverse(*viewer->reverse, *viewer->nps_sender);
            (void)co_await bed.cras_server.StartStream(viewer->session, delay);
            tasks.push_back(viewer->nps_sender->Start(viewer->session, &movie->index));
            co_await Player(ctx, viewer->nps_receiver->clock(), *movie, delay, viewer,
                            [&](crbase::Time t) {
                              return viewer->nps_receiver->Get(t).has_value();
                            });
          }
        }));
  }

  if (grouped) {
    // Let the first open land and found the group, then start its feed.
    bed.engine().RunFor(Milliseconds(20));
    crmcast::GroupManager* mgr = bed.cras_server.mcast_groups();
    CRAS_CHECK(mgr != nullptr);
    CRAS_CHECK(fleet[0].session != cras::kInvalidSession);
    const crmcast::GroupId group = mgr->GroupOf(fleet[0].session);
    CRAS_CHECK(group != crmcast::kNoGroup);
    tasks.push_back(group_sender.Start(group, &movie->index));
  }
  bed.engine().RunFor(kMovieLength + kOpenStagger * viewers + Seconds(15));

  FanoutPoint point;
  point.viewers = viewers;
  point.loss_model = burst ? "burst" : "iid";
  point.grouped = grouped;
  point.frames_total = static_cast<std::int64_t>(movie->index.count()) * viewers;
  for (std::size_t vi = 0; vi < fleet.size(); ++vi) {
    const Viewer& viewer = fleet[vi];
    point.frames_ok += viewer.frames_ok;
    point.frames_missed += viewer.frames_missed;
    // Per-miss diagnostics for the grouped path only: grouped misses are a
    // CHECK failure, so name the viewer/seq; unicast misses are the baseline.
    for (std::int64_t seq : grouped ? viewer.missed_seqs : std::vector<std::int64_t>{}) {
      std::fprintf(stderr, "MISS %s/%s viewer=%zu seq=%lld", point.loss_model.c_str(),
                   point.grouped ? "grouped" : "unicast", vi, (long long)seq);
      if (grouped && viewer.group_receiver != nullptr) {
        const crmcast::GroupReceiverStats& rs = viewer.group_receiver->stats();
        std::fprintf(stderr,
                     " [rx chunks=%lld abandoned=%lld decodes=%lld failed=%lld rtx=%lld]"
                     " [tx demoted=%lld rtx_abandoned=%lld skipped=%lld]",
                     (long long)rs.chunks_received, (long long)rs.chunks_abandoned,
                     (long long)rs.repair_decodes, (long long)rs.repair_decode_failed,
                     (long long)rs.retransmitted_fragments,
                     (long long)group_sender.stats().members_demoted,
                     (long long)group_sender.stats().retransmits_abandoned,
                     (long long)group_sender.stats().chunks_skipped);
      }
      std::fprintf(stderr, "\n");
    }
  }
  CRAS_CHECK(point.frames_ok + point.frames_missed == point.frames_total)
      << "a player did not finish; lengthen the drain";
  point.server_bytes_sent = forward.stats().bytes_sent;
  point.disk_reads = bed.cras_server.stats().read_requests;
  if (grouped) {
    point.repair_packets = group_sender.stats().repair_packets;
  } else {
    for (const Viewer& viewer : fleet) {
      point.repair_packets += viewer.nps_sender->stats().fragments_retransmitted;
    }
  }
  if (bed.hub.ledger() != nullptr) {
    point.ledger_overruns = bed.hub.ledger()->overruns();
  }
  point.attribution = bed.hub.frames().Totals();
  CRAS_CHECK(point.attribution.conservation_violations == 0)
      << point.attribution.conservation_violations << " non-monotone frame(s) at "
      << point.loss_model << "/" << (grouped ? "grouped" : "unicast") << "/"
      << viewers << " viewers";
  CRAS_CHECK(point.attribution.unattributed_ns == 0)
      << point.attribution.unattributed_ns << " ns unattributed at "
      << point.loss_model << "/" << (grouped ? "grouped" : "unicast") << "/"
      << viewers << " viewers";
  const double delivered = static_cast<double>(point.frames_ok);
  if (delivered > 0) {
    point.bytes_per_frame = static_cast<double>(point.server_bytes_sent) / delivered;
    point.reads_per_frame = static_cast<double>(point.disk_reads) / delivered;
    point.repairs_per_frame = static_cast<double>(point.repair_packets) / delivered;
  }
  return point;
}

void WriteJson(const std::string& path, const std::vector<FanoutPoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"mcast_fanout\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s, one hot title\",\n"
      << "  \"link\": \"1 Gb/s shared, 1% avg loss (iid and Gilbert-Elliott)\",\n"
      << "  \"disks\": " << kDisks << ",\n"
      << "  \"movie_seconds\": " << kMovieLength / Seconds(1) << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FanoutPoint& p = points[i];
    out << "    {\"viewers\": " << p.viewers << ", \"loss_model\": \"" << p.loss_model
        << "\", \"grouped\": " << (p.grouped ? "true" : "false")
        << ", \"frames_total\": " << p.frames_total << ", \"frames_ok\": " << p.frames_ok
        << ", \"frames_missed\": " << p.frames_missed
        << ", \"server_bytes_sent\": " << p.server_bytes_sent
        << ", \"disk_reads\": " << p.disk_reads
        << ", \"repair_packets\": " << p.repair_packets
        << ", \"bytes_per_frame\": " << p.bytes_per_frame
        << ", \"reads_per_frame\": " << p.reads_per_frame
        << ", \"repairs_per_frame\": " << p.repairs_per_frame
        << ", \"ledger_overruns\": " << p.ledger_overruns
        << ",\n     \"frames_resolved\": " << p.attribution.frames_resolved()
        << ", \"unattributed_ns\": " << p.attribution.unattributed_ns
        << ", \"bucket_mean_ms\": {";
    for (int b = 0; b < crobs::kStageBucketCount; ++b) {
      const auto bucket = static_cast<crobs::StageBucket>(b);
      out << (b > 0 ? ", " : "") << "\"" << crobs::StageBucketName(bucket)
          << "\": " << p.attribution.MeanBucketMs(bucket);
    }
    out << "}}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_mcast_fanout.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      json_path = argv[i + 1];
    }
  }

  crstats::PrintBanner("Multicast fan-out: grouped coded repair vs per-client unicast");
  crstats::Table table({"viewers", "loss", "mode", "frames", "missed", "srv_MB",
                        "disk_reads", "repairs", "B/frame", "reads/frame", "overruns"});
  table.SetCsv(csv);

  const int fanouts[] = {1, 4, 16, 64};
  std::vector<FanoutPoint> points;
  for (bool burst : {false, true}) {
    for (int viewers : fanouts) {
      for (bool grouped : {false, true}) {
        FanoutPoint p = RunPoint(viewers, burst, grouped);
        table.Cell(static_cast<std::int64_t>(p.viewers))
            .Cell(p.loss_model)
            .Cell(p.grouped ? "grouped" : "unicast")
            .Cell(p.frames_total)
            .Cell(p.frames_missed)
            .Cell(static_cast<double>(p.server_bytes_sent) / (1024.0 * 1024.0))
            .Cell(p.disk_reads)
            .Cell(p.repair_packets)
            .Cell(p.bytes_per_frame)
            .Cell(p.reads_per_frame, 3)
            .Cell(p.ledger_overruns);
        table.EndRow();
        points.push_back(p);
      }
    }
  }
  table.Print();

  // Where each configuration's latency lives: grouped members anchor at the
  // multicast send (no per-viewer disk work), so their rows concentrate in
  // wire/repair/playout; unicast rows carry the full disk-to-playout path.
  crstats::PrintBanner("Per-stage latency attribution (mean ms per resolved frame)");
  crstats::Table attr({"viewers", "loss", "mode", "resolved", "disk_q", "disk_svc",
                       "buf_wait", "wire", "repair_ms", "playout", "e2e"});
  attr.SetCsv(csv);
  for (const FanoutPoint& p : points) {
    const crobs::StageAttribution& a = p.attribution;
    attr.Cell(static_cast<std::int64_t>(p.viewers))
        .Cell(p.loss_model)
        .Cell(p.grouped ? "grouped" : "unicast")
        .Cell(a.frames_resolved())
        .Cell(a.MeanBucketMs(crobs::StageBucket::kDiskQueue), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kDiskService), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kBufferWait), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kWire), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kRepair), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kPlayoutSlack), 2)
        .Cell(a.MeanEndToEndMs(), 2);
    attr.EndRow();
  }
  attr.Print();

  // Headline criteria: at 16+ viewers, under both loss models, grouped
  // delivery beats unicast on server bytes AND disk reads per delivered
  // frame, misses nothing, and the ledger stays clean.
  auto find = [&](int viewers, const std::string& loss, bool grouped) -> const FanoutPoint* {
    for (const FanoutPoint& p : points) {
      if (p.viewers == viewers && p.loss_model == loss && p.grouped == grouped) {
        return &p;
      }
    }
    return nullptr;
  };
  for (const std::string loss : {"iid", "burst"}) {
    for (int viewers : {16, 64}) {
      const FanoutPoint* unicast = find(viewers, loss, false);
      const FanoutPoint* grouped = find(viewers, loss, true);
      CRAS_CHECK(unicast != nullptr && grouped != nullptr);
      CRAS_CHECK(grouped->bytes_per_frame < unicast->bytes_per_frame)
          << loss << "@" << viewers << ": grouped " << grouped->bytes_per_frame
          << " B/frame vs unicast " << unicast->bytes_per_frame;
      CRAS_CHECK(grouped->reads_per_frame < unicast->reads_per_frame)
          << loss << "@" << viewers << ": grouped " << grouped->reads_per_frame
          << " reads/frame vs unicast " << unicast->reads_per_frame;
      CRAS_CHECK(grouped->frames_missed == 0)
          << loss << "@" << viewers << ": grouped missed " << grouped->frames_missed;
      CRAS_CHECK(grouped->ledger_overruns == 0)
          << loss << "@" << viewers << ": " << grouped->ledger_overruns
          << " budget overruns";
    }
  }
  std::printf("\nAt 16 and 64 viewers: grouped < unicast on server bytes and disk reads "
              "per frame, zero grouped misses, clean ledger (checks passed).\n");

  WriteJson(json_path, points);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
