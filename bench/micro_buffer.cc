// Microbenchmarks: time-driven shared buffer operations — the crs_get data
// path a client touches per frame.

#include <benchmark/benchmark.h>

#include "src/base/time_units.h"
#include "src/core/time_driven_buffer.h"

namespace {

using crbase::Milliseconds;

cras::BufferedChunk Chunk(std::int64_t i) {
  cras::BufferedChunk c;
  c.chunk_index = i;
  c.timestamp = i * Milliseconds(33);
  c.duration = Milliseconds(33);
  c.size = 6250;
  return c;
}

void BM_BufferPut(benchmark::State& state) {
  cras::TimeDrivenBuffer buffer(1 << 22, Milliseconds(100));
  std::int64_t i = 0;
  for (auto _ : state) {
    // Advancing logical time keeps the buffer in steady state: each put
    // also reclaims aged-out chunks.
    buffer.Put(Chunk(i), i * Milliseconds(33) - Milliseconds(500));
    ++i;
  }
}
BENCHMARK(BM_BufferPut);

void BM_BufferGetHit(benchmark::State& state) {
  cras::TimeDrivenBuffer buffer(1 << 22, Milliseconds(100));
  for (std::int64_t i = 0; i < 64; ++i) {
    buffer.Put(Chunk(i), 0);
  }
  std::int64_t i = 0;
  for (auto _ : state) {
    auto chunk = buffer.Get((i % 64) * Milliseconds(33));
    benchmark::DoNotOptimize(chunk);
    ++i;
  }
}
BENCHMARK(BM_BufferGetHit);

void BM_BufferGetMiss(benchmark::State& state) {
  cras::TimeDrivenBuffer buffer(1 << 22, Milliseconds(100));
  for (std::int64_t i = 0; i < 64; ++i) {
    buffer.Put(Chunk(i), 0);
  }
  for (auto _ : state) {
    auto chunk = buffer.Get(crbase::Seconds(100));
    benchmark::DoNotOptimize(chunk);
  }
}
BENCHMARK(BM_BufferGetMiss);

void BM_BufferDiscardSweep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    cras::TimeDrivenBuffer buffer(1 << 30, Milliseconds(100));
    for (std::int64_t i = 0; i < n; ++i) {
      buffer.Put(Chunk(i), 0);
    }
    state.ResumeTiming();
    buffer.DiscardObsolete(n * Milliseconds(33) + crbase::Seconds(1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BufferDiscardSweep)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
