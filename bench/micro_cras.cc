// Microbenchmarks: CRAS hot paths — the crs_get data access a client makes
// per frame, the admission evaluation run per open, and the logical clock.

#include <benchmark/benchmark.h>

#include "src/core/admission.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace {

// A testbed with one started stream, advanced until data is resident.
struct PreparedStream {
  cras::Testbed bed;
  cras::SessionId id = cras::kInvalidSession;
  crmedia::MediaFile file;

  PreparedStream() {
    bed.StartServers();
    file = *crmedia::WriteMpeg1File(bed.fs, "movie", crbase::Seconds(30));
    crsim::Task t = bed.kernel.Spawn(
        "opener", crrt::kPriorityClient, [this](crrt::ThreadContext&) -> crsim::Task {
          cras::OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          id = *opened;
          (void)co_await bed.cras_server.StartStream(
              id, bed.cras_server.SuggestedInitialDelay());
        });
    bed.engine().RunFor(crbase::Seconds(2));  // data resident, clock near 1 s
  }
};

void BM_CrsGetHit(benchmark::State& state) {
  PreparedStream prepared;
  const crbase::Time t = prepared.bed.cras_server.LogicalNow(prepared.id);
  for (auto _ : state) {
    auto chunk = prepared.bed.cras_server.Get(prepared.id, t);
    benchmark::DoNotOptimize(chunk);
  }
}
BENCHMARK(BM_CrsGetHit);

void BM_CrsGetMiss(benchmark::State& state) {
  PreparedStream prepared;
  for (auto _ : state) {
    auto chunk = prepared.bed.cras_server.Get(prepared.id, crbase::Seconds(25));
    benchmark::DoNotOptimize(chunk);
  }
}
BENCHMARK(BM_CrsGetMiss);

void BM_AdmissionEvaluate(benchmark::State& state) {
  cras::AdmissionModel model(cras::MeasuredSt32550nParams(), crbase::Milliseconds(500),
                             256 * crbase::kKiB);
  std::vector<cras::StreamDemand> demands(static_cast<std::size_t>(state.range(0)),
                                          cras::StreamDemand{187500.0, 6250});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(demands));
  }
}
BENCHMARK(BM_AdmissionEvaluate)->Arg(1)->Arg(14)->Arg(100);

void BM_LogicalClockNow(benchmark::State& state) {
  crsim::Engine engine;
  cras::LogicalClock clock(engine);
  clock.Start();
  engine.ScheduleAt(crbase::Seconds(1), [] {});
  engine.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.Now());
  }
}
BENCHMARK(BM_LogicalClockNow);

void BM_SimulatedSecondOfPlayback(benchmark::State& state) {
  // Wall cost of simulating one second of a full single-stream playback
  // (server threads, disk, player) — the end-to-end harness speed.
  for (auto _ : state) {
    state.PauseTiming();
    cras::Testbed bed;
    bed.StartServers();
    auto file = crmedia::WriteMpeg1File(bed.fs, "movie", crbase::Seconds(5));
    cras::PlayerStats stats;
    cras::PlayerOptions options;
    options.play_length = crbase::Seconds(3);
    crsim::Task player =
        cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);
    bed.engine().RunFor(crbase::Seconds(1));
    state.ResumeTiming();
    bed.engine().RunFor(crbase::Seconds(1));
  }
}
BENCHMARK(BM_SimulatedSecondOfPlayback);

}  // namespace

BENCHMARK_MAIN();
