// Microbenchmarks: disk model and driver throughput in *wall* time — how
// many simulated I/Os the harness processes per second.

#include <benchmark/benchmark.h>

#include "src/base/random.h"
#include "src/disk/driver.h"
#include "src/sim/engine.h"

namespace {

void BM_DeviceServiceComputation(benchmark::State& state) {
  crsim::Engine engine;
  crdisk::DiskDevice::Options options;
  options.geometry = crdisk::St32550nGeometry();
  crdisk::DiskDevice device(engine, options);
  crbase::Rng rng(1);
  std::int64_t done = 0;
  for (auto _ : state) {
    crdisk::DiskRequest req;
    req.lba = static_cast<crdisk::Lba>(
        rng.NextBelow(static_cast<std::uint64_t>(device.geometry().total_sectors() - 64)));
    req.sectors = 64;
    req.on_complete = [&done](const crdisk::DiskCompletion&) { ++done; };
    device.StartIo(req, 1, engine.Now());
    engine.Run();
  }
  benchmark::DoNotOptimize(done);
}
BENCHMARK(BM_DeviceServiceComputation);

void BM_DriverQueue100Scattered(benchmark::State& state) {
  for (auto _ : state) {
    crsim::Engine engine;
    crdisk::DiskDevice::Options options;
    options.geometry = crdisk::St32550nGeometry();
    crdisk::DiskDevice device(engine, options);
    crdisk::DiskDriver driver(engine, device);
    crbase::Rng rng(2);
    std::int64_t done = 0;
    for (int i = 0; i < 100; ++i) {
      crdisk::DiskRequest req;
      req.lba = static_cast<crdisk::Lba>(
          rng.NextBelow(static_cast<std::uint64_t>(device.geometry().total_sectors() - 64)));
      req.sectors = 64;
      req.realtime = (i % 2) == 0;
      req.on_complete = [&done](const crdisk::DiskCompletion&) { ++done; };
      driver.Submit(std::move(req));
    }
    engine.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DriverQueue100Scattered);

void BM_SeekModel(benchmark::State& state) {
  crdisk::PhysicalSeekModel model;
  std::int64_t distance = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SeekTime(distance));
    distance = (distance * 7 + 1) % 3510;
  }
}
BENCHMARK(BM_SeekModel);

}  // namespace

BENCHMARK_MAIN();
