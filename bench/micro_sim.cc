// Microbenchmarks: simulation-engine hot paths (event scheduling, coroutine
// wakeup, port handoff). These bound how large an experiment the harness can
// run per wall-clock second.

#include <benchmark/benchmark.h>

#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/engine.h"
#include "src/sim/port.h"
#include "src/sim/task.h"

namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  crsim::Engine engine;
  std::int64_t fired = 0;
  for (auto _ : state) {
    engine.ScheduleAfter(1, [&fired] { ++fired; });
    engine.Step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineScheduleFireBatch1k(benchmark::State& state) {
  for (auto _ : state) {
    crsim::Engine engine;
    std::int64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.ScheduleAfter(i % 17, [&fired] { ++fired; });
    }
    engine.Run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EngineScheduleFireBatch1k);

crsim::Task SleepLoop(crsim::Engine& engine, std::int64_t rounds, std::int64_t* count) {
  for (std::int64_t i = 0; i < rounds; ++i) {
    co_await crsim::Sleep(engine, 1);
    ++*count;
  }
}

void BM_CoroutineSleepWake(benchmark::State& state) {
  for (auto _ : state) {
    crsim::Engine engine;
    std::int64_t count = 0;
    crsim::Task t = SleepLoop(engine, 1000, &count);
    engine.Run();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CoroutineSleepWake);

crsim::Task Echo(crsim::Port<int>& in, crsim::Port<int>& out, std::int64_t rounds) {
  for (std::int64_t i = 0; i < rounds; ++i) {
    int v = co_await in.Receive();
    out.Send(v + 1);
  }
}

void BM_PortPingPong(benchmark::State& state) {
  for (auto _ : state) {
    crsim::Engine engine;
    crsim::Port<int> ping(engine);
    crsim::Port<int> pong(engine);
    crsim::Task echo = Echo(ping, pong, 500);
    crsim::Task driver = [](crsim::Port<int>& out, crsim::Port<int>& in,
                            std::int64_t rounds) -> crsim::Task {
      for (std::int64_t i = 0; i < rounds; ++i) {
        out.Send(static_cast<int>(i));
        (void)co_await in.Receive();
      }
    }(ping, pong, 500);
    engine.Run();
  }
}
BENCHMARK(BM_PortPingPong);

}  // namespace

BENCHMARK_MAIN();
