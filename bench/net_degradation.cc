// Lossy-network degradation: missed-frame rate of a remote QtPlay stream as
// i.i.d. wire loss grows, with and without the NPS reliability layer.
//
// For each loss rate in {0, 0.1, 1, 5}% the bench streams one MPEG1 movie
// from a CRAS server host through an impaired 10 Mb/s link to a client-host
// NpsReceiver, twice: best-effort (no reverse link, the classic NPS), and
// with NAK repair enabled (ConnectReverse). The client consumes every frame
// by logical time; a frame absent from the time-driven buffer at its
// timestamp is missed.
//
// Expected shape: without repair the missed-frame rate tracks the wire loss
// rate; with repair it collapses to ~0 until loss is high enough that
// retransmissions themselves die or arrive past the playout deadline. The
// headline acceptance check is asserted: at 1% loss, repair cuts missed
// frames by at least 10x.
//
// Besides the table, the bench writes BENCH_net_degradation.json (current
// directory, or the path given with --out <file>).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/link.h"
#include "src/net/nps.h"
#include "src/obs/frame_trace.h"

namespace {

using crbase::Milliseconds;
using crbase::Seconds;

constexpr crbase::Duration kMovieLength = Seconds(60);

struct NetPoint {
  double loss_pct = 0.0;
  bool reliability = false;
  std::int64_t frames_total = 0;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
  double missed_rate = 0.0;  // frames_missed / frames_total
  std::int64_t wire_drops = 0;
  std::int64_t naks_sent = 0;
  std::int64_t fragments_retransmitted = 0;
  std::int64_t chunks_abandoned = 0;
  // Fleet frame-trace totals: every resolved frame's stage decomposition,
  // conservation-checked (unattributed_ns must be 0).
  crobs::StageAttribution attribution;
};

// Streams one movie through a fresh server-host/client-host pair over a
// link with the given i.i.d. loss probability.
NetPoint RunPoint(double loss_probability, bool reliability) {
  cras::TestbedOptions bed_options;
  bed_options.obs.frames.enabled = true;
  cras::Testbed bed(bed_options);
  crrt::Kernel client_host(bed.engine(), crrt::Kernel::Options{});
  crnet::Link::Options forward_options;  // the default 10 Mb/s Ethernet
  forward_options.impairments.loss_probability = loss_probability;
  crnet::Link forward(bed.engine(), forward_options);
  crnet::Link reverse(bed.engine());  // NAK path; kept clean
  crnet::NpsReceiver receiver(client_host);
  crnet::NpsSender sender(bed.kernel, bed.cras_server, forward, receiver);
  if (reliability) {
    receiver.ConnectReverse(reverse, sender);
  }
  bed.StartServers();

  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", kMovieLength);
  CRAS_CHECK(movie.ok()) << movie.status().ToString();

  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = bed.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok()) << opened.status().ToString();
        session = *opened;
        (void)co_await bed.cras_server.StartStream(session,
                                                   bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Milliseconds(50));
  CRAS_CHECK(session != cras::kInvalidSession);
  crsim::Task sender_task = sender.Start(session, &movie->index);

  NetPoint point;
  point.loss_pct = loss_probability * 100.0;
  point.reliability = reliability;
  crsim::Task player = client_host.Spawn(
      "qtclient", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        const crbase::Duration delay =
            bed.cras_server.SuggestedInitialDelay() + Milliseconds(200);
        receiver.clock().Start(delay);
        co_await ctx.Sleep(delay);
        for (const crmedia::Chunk& chunk : movie->index.chunks()) {
          while (receiver.clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (receiver.Get(chunk.timestamp).has_value()) {
            ++point.frames_ok;
          } else {
            ++point.frames_missed;
          }
        }
      });
  bed.engine().RunFor(kMovieLength + Seconds(10));

  point.frames_total = static_cast<std::int64_t>(movie->index.count());
  CRAS_CHECK(point.frames_ok + point.frames_missed == point.frames_total);
  point.missed_rate =
      static_cast<double>(point.frames_missed) / static_cast<double>(point.frames_total);
  point.wire_drops = forward.stats().wire_drops;
  point.naks_sent = receiver.stats().naks_sent;
  point.fragments_retransmitted = sender.stats().fragments_retransmitted;
  point.chunks_abandoned = receiver.stats().chunks_abandoned;
  point.attribution = bed.hub.frames().Totals();
  // Attribution conservation: every frame the tracer resolved — delivered,
  // NAK-abandoned, or discarded — decomposes into stage buckets that sum
  // exactly to its end-to-end time.
  CRAS_CHECK(point.attribution.conservation_violations == 0)
      << point.attribution.conservation_violations
      << " non-monotone frame(s) at loss " << point.loss_pct << "%";
  CRAS_CHECK(point.attribution.unattributed_ns == 0)
      << point.attribution.unattributed_ns << " ns unattributed at loss "
      << point.loss_pct << "%";
  return point;
}

void WriteJson(const std::string& path, const std::vector<NetPoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"net_degradation\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s\",\n"
      << "  \"link\": \"10 Mb/s Ethernet\",\n"
      << "  \"loss_model\": \"iid\",\n"
      << "  \"movie_seconds\": " << kMovieLength / Seconds(1) << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const NetPoint& p = points[i];
    out << "    {\"loss_pct\": " << p.loss_pct
        << ", \"reliability\": " << (p.reliability ? "true" : "false")
        << ", \"frames_total\": " << p.frames_total << ", \"frames_ok\": " << p.frames_ok
        << ", \"frames_missed\": " << p.frames_missed << ", \"missed_rate\": " << p.missed_rate
        << ", \"wire_drops\": " << p.wire_drops << ", \"naks_sent\": " << p.naks_sent
        << ", \"fragments_retransmitted\": " << p.fragments_retransmitted
        << ", \"chunks_abandoned\": " << p.chunks_abandoned
        << ",\n     \"frames_resolved\": " << p.attribution.frames_resolved()
        << ", \"unattributed_ns\": " << p.attribution.unattributed_ns
        << ", \"bucket_mean_ms\": {";
    for (int b = 0; b < crobs::kStageBucketCount; ++b) {
      const auto bucket = static_cast<crobs::StageBucket>(b);
      out << (b > 0 ? ", " : "") << "\"" << crobs::StageBucketName(bucket)
          << "\": " << p.attribution.MeanBucketMs(bucket);
    }
    out << "}}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_net_degradation.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      json_path = argv[i + 1];
    }
  }

  crstats::PrintBanner("Lossy-network degradation: missed frames vs wire loss");
  crstats::Table table({"loss_%", "repair", "frames", "missed", "missed_%", "wire_drops",
                        "naks", "retransmits", "abandoned"});
  table.SetCsv(csv);

  const double losses[] = {0.0, 0.001, 0.01, 0.05};
  std::vector<NetPoint> points;
  for (double loss : losses) {
    for (bool reliability : {false, true}) {
      NetPoint p = RunPoint(loss, reliability);
      table.Cell(p.loss_pct, 1)
          .Cell(p.reliability ? "on" : "off")
          .Cell(p.frames_total)
          .Cell(p.frames_missed)
          .Cell(100.0 * p.missed_rate)
          .Cell(p.wire_drops)
          .Cell(p.naks_sent)
          .Cell(p.fragments_retransmitted)
          .Cell(p.chunks_abandoned);
      table.EndRow();
      points.push_back(p);
    }
  }
  table.Print();

  // Where each configuration's latency lives, frame by frame: the
  // telescoping decomposition means each row's buckets sum to its
  // end-to-end mean.
  crstats::PrintBanner("Per-stage latency attribution (mean ms per resolved frame)");
  crstats::Table attr({"loss_%", "repair", "resolved", "disk_q", "disk_svc", "buf_wait",
                       "wire", "repair_ms", "playout", "e2e"});
  attr.SetCsv(csv);
  for (const NetPoint& p : points) {
    const crobs::StageAttribution& a = p.attribution;
    attr.Cell(p.loss_pct, 1)
        .Cell(p.reliability ? "on" : "off")
        .Cell(a.frames_resolved())
        .Cell(a.MeanBucketMs(crobs::StageBucket::kDiskQueue), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kDiskService), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kBufferWait), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kWire), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kRepair), 2)
        .Cell(a.MeanBucketMs(crobs::StageBucket::kPlayoutSlack), 2)
        .Cell(a.MeanEndToEndMs(), 2);
    attr.EndRow();
  }
  attr.Print();

  // Headline criterion: at 1% i.i.d. loss, repair cuts missed frames >= 10x.
  const NetPoint* without = nullptr;
  const NetPoint* with = nullptr;
  for (const NetPoint& p : points) {
    if (p.loss_pct == 1.0) {
      (p.reliability ? with : without) = &p;
    }
  }
  CRAS_CHECK(without != nullptr && with != nullptr);
  CRAS_CHECK(without->frames_missed > 0)
      << "1% loss lost no frames even without repair; lengthen the movie";
  CRAS_CHECK(with->frames_missed * 10 <= without->frames_missed)
      << "repair missed " << with->frames_missed << " vs " << without->frames_missed
      << " without: less than the required 10x improvement";
  std::printf("\nAt 1%% loss: %lld missed without repair, %lld with (>= 10x check passed).\n",
              static_cast<long long>(without->frames_missed),
              static_cast<long long>(with->frames_missed));

  WriteJson(json_path, points);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
