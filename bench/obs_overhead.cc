// Observability overhead: the fig06 rig (10 MPEG1 streams + background
// load, T = 0.5 s) run three ways — obs off (hub exists, nothing attached),
// metrics only (the default), and full tracing (Chrome trace + frame
// tracer + SLO monitor) — to price the record path.
//
// Reported: wall-clock per mode, frame-trace stamps, stamps/sec of wall
// time, and the marginal per-frame record cost (full minus metrics-only
// wall time over resolved frames). The bench asserts the admitted-stream
// count is identical across modes: instrumentation must never change
// admission decisions.
//
// Output: a table, the fleet attribution table, and BENCH_obs_overhead.json
// (--out <file>).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/frame_trace.h"

namespace {

using cras::PlayerOptions;
using cras::PlayerStats;
using cras::Testbed;
using cras::TestbedOptions;

constexpr int kStreams = 10;
constexpr crbase::Duration kPlayLength = crbase::Seconds(10);
constexpr crbase::Duration kRunLength = crbase::Seconds(16);

struct ModeResult {
  std::string mode;
  int admitted = 0;
  std::int64_t frames_played = 0;
  std::int64_t frames_missed = 0;
  double wall_ms = 0;
  std::uint64_t stamps = 0;            // frame-trace stage stamps taken
  std::int64_t frames_resolved = 0;    // delivered + missed through the tracer
  std::size_t trace_events = 0;        // Chrome trace events recorded
  std::int64_t conservation_violations = 0;
  std::int64_t unattributed_ns = 0;
  crobs::StageAttribution totals;
};

ModeResult RunMode(const std::string& mode) {
  TestbedOptions options;
  options.cras.interval = crbase::Milliseconds(500);
  if (mode == "off") {
    options.attach_obs = false;
  } else if (mode == "full") {
    options.obs.trace.enabled = true;
    options.obs.trace.capacity = 1 << 18;
    options.obs.frames.enabled = true;
    options.obs.slo.enabled = true;
  } else {
    CRAS_CHECK(mode == "metrics");
  }
  Testbed bed(options);
  bed.StartServers();
  auto files = crbench::MakeMpeg1Files(bed, kStreams, kPlayLength + crbase::Seconds(3));
  std::vector<crsim::Task> cats = crbench::SpawnBackgroundCats(bed);
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions player_options;
  player_options.play_length = kPlayLength;
  for (int i = 0; i < kStreams; ++i) {
    player_options.start_delay = crbase::Milliseconds(73) * i;
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)],
                                            player_options, stats.back().get()));
  }
  const auto wall_start = std::chrono::steady_clock::now();
  bed.engine().RunFor(kRunLength + crbase::Milliseconds(73) * kStreams);
  const auto wall_end = std::chrono::steady_clock::now();

  ModeResult result;
  result.mode = mode;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  for (const auto& s : stats) {
    result.frames_played += s->frames_played;
    result.frames_missed += s->frames_missed;
    if (!s->open_rejected) {
      ++result.admitted;
    }
  }
  result.stamps = bed.hub.frames().stamps();
  result.totals = bed.hub.frames().Totals();
  result.frames_resolved = result.totals.frames_resolved();
  result.trace_events = bed.hub.trace().size();
  result.conservation_violations = result.totals.conservation_violations;
  result.unattributed_ns = result.totals.unattributed_ns;
  return result;
}

void WriteJson(const std::string& path, const std::vector<ModeResult>& modes,
               double events_per_sec, double per_frame_ns) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"obs_overhead\",\n"
      << "  \"rig\": \"fig06: " << kStreams
      << " MPEG1 streams + 2 cat readers, T = 0.5 s\",\n"
      << "  \"admission_unchanged\": true,\n"
      << "  \"events_per_sec\": " << events_per_sec << ",\n"
      << "  \"per_frame_record_cost_ns\": " << per_frame_ns << ",\n"
      << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    out << "    {\"mode\": \"" << m.mode << "\", \"admitted\": " << m.admitted
        << ", \"frames_played\": " << m.frames_played
        << ", \"frames_missed\": " << m.frames_missed
        << ", \"wall_ms\": " << m.wall_ms << ",\n     \"stamps\": " << m.stamps
        << ", \"frames_resolved\": " << m.frames_resolved
        << ", \"trace_events\": " << m.trace_events
        << ", \"conservation_violations\": " << m.conservation_violations
        << ", \"unattributed_ns\": " << m.unattributed_ns << "}"
        << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_obs_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  crstats::PrintBanner("Observability overhead: fig06 rig, obs off / metrics / full tracing");
  std::vector<ModeResult> modes;
  for (const char* mode : {"off", "metrics", "full"}) {
    modes.push_back(RunMode(mode));
  }
  const ModeResult& off = modes[0];
  const ModeResult& metrics = modes[1];
  const ModeResult& full = modes[2];

  // Instrumentation must be behaviorally invisible: same admission verdicts
  // and same playback outcome in virtual time, whatever the hub records.
  CRAS_CHECK(metrics.admitted == off.admitted && full.admitted == off.admitted)
      << "admitted streams changed with observability: off=" << off.admitted
      << " metrics=" << metrics.admitted << " full=" << full.admitted;
  CRAS_CHECK(full.frames_played == off.frames_played)
      << "frames played changed with observability: off=" << off.frames_played
      << " full=" << full.frames_played;
  CRAS_CHECK(full.conservation_violations == 0 && full.unattributed_ns == 0)
      << "attribution conservation broken: " << full.conservation_violations
      << " violations, " << full.unattributed_ns << " ns unattributed";

  crstats::Table table({"mode", "admitted", "frames_played", "wall_ms", "stamps",
                        "trace_events", "stamps_per_sec"});
  table.SetCsv(csv);
  for (const ModeResult& m : modes) {
    const double stamps_per_sec =
        m.wall_ms > 0 ? static_cast<double>(m.stamps) / (m.wall_ms / 1000.0) : 0;
    table.Cell(m.mode)
        .Cell(static_cast<std::int64_t>(m.admitted))
        .Cell(m.frames_played)
        .Cell(m.wall_ms, 1)
        .Cell(static_cast<std::int64_t>(m.stamps))
        .Cell(static_cast<std::int64_t>(m.trace_events))
        .Cell(stamps_per_sec, 0);
    table.EndRow();
  }
  table.Print();

  const double events_per_sec =
      full.wall_ms > 0 ? static_cast<double>(full.stamps) / (full.wall_ms / 1000.0) : 0;
  const double per_frame_ns =
      full.frames_resolved > 0
          ? (full.wall_ms - metrics.wall_ms) * 1e6 / static_cast<double>(full.frames_resolved)
          : 0;
  std::printf("\nfull tracing: %.0f stamps/sec of wall time, marginal record cost "
              "%.0f ns/frame over %lld resolved frames\n",
              events_per_sec, per_frame_ns,
              static_cast<long long>(full.frames_resolved));

  crstats::PrintBanner("Fleet attribution table (full-tracing mode)");
  crstats::Table attr({"bucket", "mean_ms", "total_ms"});
  attr.SetCsv(csv);
  for (int b = 0; b < crobs::kStageBucketCount; ++b) {
    const auto bucket = static_cast<crobs::StageBucket>(b);
    attr.Cell(std::string(crobs::StageBucketName(bucket)))
        .Cell(full.totals.MeanBucketMs(bucket), 3)
        .Cell(crbase::ToMilliseconds(full.totals.bucket_ns[b]), 1);
    attr.EndRow();
  }
  attr.Cell(std::string("end_to_end"))
      .Cell(full.totals.MeanEndToEndMs(), 3)
      .Cell(crbase::ToMilliseconds(full.totals.end_to_end_ns), 1);
  attr.EndRow();
  attr.Print();

  WriteJson(json_path, modes, events_per_sec, per_frame_ns);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
