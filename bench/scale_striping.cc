// Striped-volume scaling: admitted 1.5 Mb/s (MPEG1) stream capacity and
// delivered throughput as the volume grows from 1 to 8 member disks.
//
// For each array size the bench (a) fills the server with streams until
// admission rejects one, then (b) replays the full admitted load on a fresh
// rig and verifies every interval's fanned-out I/O completed by its
// deadline. Expected shape: near-linear capacity scaling with a small
// per-disk tax from the split model's one-window / one-request skew
// allowance (>= 1.8x at 2 disks, >= 3x at 4 disks against the single-disk
// capacity of 14 at T = 0.5 s).
//
// Besides the table, the bench writes BENCH_scale_striping.json (current
// directory, or the path given with --out <file>) for machine consumption.
//
// A second sweep covers the parity layout under failure: for each width the
// rig is filled healthy, one member is fail-stopped mid-playback
// (--fail-disk=<i>@<t_ms>, default 0@2000), and the degradation controller's
// kept count is checked against the degraded admission model's capacity.
// Results land in BENCH_degraded_striping.json.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/admission_accuracy.h"
#include "bench/bench_util.h"
#include "src/fault/fault.h"
#include "src/volume/striped_volume.h"
#include "src/volume/volume_admission.h"

namespace {

struct ScalePoint {
  int disks = 0;
  int admitted = 0;
  double scaling = 1.0;           // admitted / single-disk admitted
  std::int64_t bytes_read = 0;    // replay phase
  double throughput_mbps = 0.0;   // delivered, replay phase
  std::int64_t deadline_misses = 0;
  std::int64_t frames_missed = 0;
  std::int64_t late_intervals = 0;
  double worst_interval_io_ms = 0.0;
};

cras::VolumeTestbedOptions RigOptions(int disks, bool parity = false) {
  cras::VolumeTestbedOptions options;
  options.volume.disks = disks;
  options.volume.parity = parity;
  // Keep the disks, not the wired-buffer budget, the binding constraint:
  // eight ST32550Ns admit over a hundred MPEG1 streams (~21 MB of double
  // buffers), past the single-disk default of 12 MiB.
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  return options;
}

// Opens streams until the admission test rejects one; returns the count.
int CountAdmitted(int disks, int candidates, bool parity = false) {
  return crbench::CountAdmittedStreams(RigOptions(disks, parity), candidates);
}

// When non-null, the replay run records a trace (written to trace_path
// unless empty) and leaves the final registry snapshot behind.
struct ObsCapture {
  std::string trace_path;
  crobs::RegistrySnapshot snapshot;
};

// Replays `streams` concurrent players on a fresh rig; fills in the
// delivery-side fields of `point`.
void MeasureDelivery(int disks, int streams, ScalePoint* point, ObsCapture* obs = nullptr) {
  cras::VolumeTestbedOptions rig_options = RigOptions(disks);
  if (obs != nullptr && !obs->trace_path.empty()) {
    rig_options.obs.trace.enabled = true;
    rig_options.obs.trace.capacity = 1 << 18;
  }
  cras::VolumeTestbed bed(rig_options);
  bed.StartServers();
  const std::vector<crmedia::MediaFile> files =
      crbench::MakeMovieFiles(bed.fs, streams, crbase::Seconds(10));
  const crbase::Duration play_length = crbase::Seconds(6);
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions options;
  options.play_length = play_length;
  for (int i = 0; i < streams; ++i) {
    // Staggered starts: spread the client mob across one interval.
    options.start_delay = crbase::Milliseconds(500) * i / streams;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], options,
                                            stats.back().get()));
  }
  bed.engine().RunFor(play_length + crbase::Seconds(6));

  for (const auto& s : stats) {
    CRAS_CHECK(!s->open_rejected) << "replay phase must fit the admitted count";
    point->frames_missed += s->frames_missed;
  }
  point->bytes_read = bed.cras_server.stats().bytes_read;
  point->deadline_misses = bed.cras_server.stats().deadline_misses;
  point->throughput_mbps =
      static_cast<double>(point->bytes_read) / crbase::ToSeconds(play_length) / 1e6;
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    if (!record.completed_by_deadline) {
      ++point->late_intervals;
    }
    point->worst_interval_io_ms =
        std::max(point->worst_interval_io_ms, crbase::ToSeconds(record.actual_io) * 1e3);
  }
  if (obs != nullptr) {
    obs->snapshot = bed.hub.metrics().Snapshot();
    if (!obs->trace_path.empty() && bed.hub.WriteTraceFile(obs->trace_path)) {
      std::printf("wrote Chrome trace (%zu events) to %s\n", bed.hub.trace().size(),
                  obs->trace_path.c_str());
    }
  }
}

// Per-member-disk fan-out balance, from the volume/driver counters: a skewed
// stripe layout would show up here as unequal piece counts.
void PrintFanOut(const crobs::RegistrySnapshot& snap, int disks, bool csv) {
  crstats::Table table({"disk", "volume_pieces", "driver_rt", "driver_nr"});
  table.SetCsv(csv);
  for (int d = 0; d < disks; ++d) {
    const std::string name = "disk" + std::to_string(d);
    const crobs::SeriesSnapshot* pieces =
        snap.Find("volume.pieces", {{"volume", "disk"}, {"disk", name}});
    const crobs::SeriesSnapshot* rt =
        snap.Find("driver.submitted", {{"disk", name}, {"queue", "rt"}});
    const crobs::SeriesSnapshot* nr =
        snap.Find("driver.submitted", {{"disk", name}, {"queue", "nr"}});
    table.Cell(name)
        .Cell(pieces != nullptr ? pieces->counter : 0)
        .Cell(rt != nullptr ? rt->counter : 0)
        .Cell(nr != nullptr ? nr->counter : 0);
    table.EndRow();
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Degraded sweep: the parity layout losing one member mid-playback.

struct DegradedPoint {
  int disks = 0;
  int healthy_admitted = 0;    // streams the healthy parity rig admits
  int degraded_capacity = 0;   // the degraded model's maximum
  int kept = 0;                // streams still playing after the failure
  int shed = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t frames_missed_kept = 0;  // among kept streams only
  std::int64_t reconstruction_pieces = 0;
};

// The degraded admission model's stream capacity for this rig, mirroring
// the demand CrasServer derives at crs_open.
int DegradedCapacity(int disks, const cras::VolumeTestbedOptions& options,
                     const crvol::Volume& volume, const crmedia::MediaFile& file,
                     int failed_disk) {
  crvol::VolumeAdmissionModel model(options.cras.disk_params, disks, options.cras.interval,
                                    options.cras.max_read_bytes, volume.stripe_unit_bytes());
  model.set_parity(true);
  model.SetMemberFailed(failed_disk, true);
  cras::StreamDemand demand;
  demand.rate_bytes_per_sec = file.index.WorstRate(options.cras.interval);
  demand.chunk_bytes = file.index.max_chunk_bytes();
  int n = 0;
  while (model.Admissible(
      std::vector<cras::StreamDemand>(static_cast<std::size_t>(n + 1), demand),
      options.cras.memory_budget_bytes)) {
    ++n;
  }
  return n;
}

// Fills a parity rig of `disks` members with its healthy admitted load,
// fail-stops one member per `fail`, and measures what survives.
void MeasureDegraded(int disks, const crfault::FaultEvent& fail, DegradedPoint* point) {
  const cras::VolumeTestbedOptions rig_options = RigOptions(disks, /*parity=*/true);
  cras::VolumeTestbed bed(rig_options);
  bed.StartServers();
  const int streams = point->healthy_admitted;
  const std::vector<crmedia::MediaFile> files =
      crbench::MakeMovieFiles(bed.fs, streams, crbase::Seconds(10));
  point->degraded_capacity =
      DegradedCapacity(disks, rig_options, bed.volume, files.front(), fail.disk);

  const crbase::Duration play_length = crbase::Seconds(6);
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions options;
  options.play_length = play_length;
  for (int i = 0; i < streams; ++i) {
    options.start_delay = crbase::Milliseconds(500) * i / streams;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)], options,
                                            stats.back().get()));
  }
  crfault::FaultPlan plan;
  plan.Add(fail);
  crfault::FaultInjector injector(bed.engine(), bed.volume, plan);
  injector.Arm();
  bed.engine().RunFor(play_length + crbase::Seconds(6));

  for (const auto& s : stats) {
    CRAS_CHECK(!s->open_rejected) << "the healthy fill must fit its own rig";
    if (s->shed) {
      ++point->shed;
    } else {
      ++point->kept;
      point->frames_missed_kept += s->frames_missed;
    }
  }
  point->deadline_misses = bed.cras_server.stats().deadline_misses;
  point->reconstruction_pieces = bed.volume.stats().reconstruction_pieces;
  // The controller's verdict must be the model's: the kept set is the
  // degraded capacity (or the whole load, when it already fit).
  CRAS_CHECK(point->kept == std::min(streams, point->degraded_capacity))
      << "kept " << point->kept << " of " << streams << ", model says "
      << point->degraded_capacity;
}

void WriteDegradedJson(const std::string& path, const std::string& fail_spec,
                       const std::vector<DegradedPoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"degraded_striping\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s\",\n"
      << "  \"layout\": \"rotating parity\",\n"
      << "  \"fail_disk\": \"" << fail_spec << "\",\n"
      << "  \"interval_ms\": 500,\n"
      << "  \"memory_budget_bytes\": " << 64 * crbase::kMiB << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DegradedPoint& p = points[i];
    out << "    {\"disks\": " << p.disks << ", \"healthy_admitted\": " << p.healthy_admitted
        << ", \"degraded_capacity\": " << p.degraded_capacity << ", \"kept\": " << p.kept
        << ", \"shed\": " << p.shed << ", \"deadline_misses\": " << p.deadline_misses
        << ", \"frames_missed_kept\": " << p.frames_missed_kept
        << ", \"reconstruction_pieces\": " << p.reconstruction_pieces << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void WriteJson(const std::string& path, const std::vector<ScalePoint>& points) {
  std::ofstream out(path);
  CRAS_CHECK(out.good()) << "cannot write " << path;
  out << "{\n"
      << "  \"bench\": \"scale_striping\",\n"
      << "  \"stream\": \"MPEG1 1.5 Mb/s\",\n"
      << "  \"interval_ms\": 500,\n"
      << "  \"stripe_unit_bytes\": " << 256 * crbase::kKiB << ",\n"
      << "  \"memory_budget_bytes\": " << 64 * crbase::kMiB << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    out << "    {\"disks\": " << p.disks << ", \"admitted\": " << p.admitted
        << ", \"scaling_vs_one_disk\": " << p.scaling
        << ", \"delivered_mbps\": " << p.throughput_mbps
        << ", \"bytes_read\": " << p.bytes_read
        << ", \"deadline_misses\": " << p.deadline_misses
        << ", \"late_intervals\": " << p.late_intervals
        << ", \"frames_missed\": " << p.frames_missed
        << ", \"worst_interval_io_ms\": " << p.worst_interval_io_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  std::string json_path = "BENCH_scale_striping.json";
  std::string fail_spec = "0@2000";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--out" && i + 1 < argc) {
      json_path = argv[i + 1];
    } else if (arg.rfind("--fail-disk=", 0) == 0) {
      fail_spec = arg.substr(std::string("--fail-disk=").size());
    }
  }
  const auto fail_event = crfault::FaultPlan::ParseFailStopSpec(fail_spec);
  CRAS_CHECK(fail_event.ok()) << "--fail-disk wants <disk>@<t_ms>: "
                              << fail_event.status().ToString();

  crstats::PrintBanner("Striping scale-out: admitted MPEG1 streams vs member disks");
  std::printf("T = 0.5 s, 256 KiB stripe unit, per-disk admission, 64 MiB buffer budget\n");
  crstats::Table table({"disks", "admitted", "scaling", "delivered_MBps", "deadline_misses",
                        "late_intervals", "frames_missed", "worst_io_ms"});
  table.SetCsv(csv);

  std::vector<ScalePoint> points;
  ObsCapture obs;
  obs.trace_path = crbench::TracePath(argc, argv);
  int single_disk_admitted = 0;
  for (const int disks : {1, 2, 4, 8}) {
    ScalePoint point;
    point.disks = disks;
    point.admitted = CountAdmitted(disks, 32 * disks);
    if (disks == 1) {
      single_disk_admitted = point.admitted;
    }
    point.scaling = static_cast<double>(point.admitted) / single_disk_admitted;
    // The widest rig is the representative one: its snapshot (and, with
    // --trace=<file>, its Chrome trace) is emitted after the table.
    MeasureDelivery(disks, point.admitted, &point, disks == 8 ? &obs : nullptr);
    table.Cell(static_cast<std::int64_t>(disks))
        .Cell(static_cast<std::int64_t>(point.admitted))
        .Cell(point.scaling, 2)
        .Cell(point.throughput_mbps, 1)
        .Cell(point.deadline_misses)
        .Cell(point.late_intervals)
        .Cell(point.frames_missed)
        .Cell(point.worst_interval_io_ms, 1);
    table.EndRow();
    points.push_back(point);
  }
  table.Print();

  crstats::PrintBanner("Metrics snapshot: 8-disk replay");
  crbench::PrintMetricsSnapshot(obs.snapshot, csv);
  crstats::PrintBanner("Fan-out balance: 8-disk replay");
  PrintFanOut(obs.snapshot, 8, csv);

  WriteJson(json_path, points);
  std::printf("\nWrote %s. Expected: >= 1.8x capacity at 2 disks and >= 3x at 4 disks\n"
              "(the admission split charges each disk a one-window skew allowance, so\n"
              "scaling is near-linear rather than linear); zero deadline misses at every\n"
              "admitted load.\n",
              json_path.c_str());

  crstats::PrintBanner("Degraded parity: fail-stop " + fail_spec + " mid-playback");
  crstats::Table degraded_table({"disks", "healthy_admitted", "degraded_capacity", "kept",
                                 "shed", "deadline_misses", "frames_missed_kept",
                                 "reconstruction_pieces"});
  degraded_table.SetCsv(csv);
  std::vector<DegradedPoint> degraded_points;
  for (const int disks : {2, 4, 8}) {
    CRAS_CHECK(fail_event->disk < disks)
        << "--fail-disk member " << fail_event->disk << " outside the " << disks
        << "-disk rig";
    DegradedPoint point;
    point.disks = disks;
    point.healthy_admitted = CountAdmitted(disks, 32 * disks, /*parity=*/true);
    MeasureDegraded(disks, *fail_event, &point);
    degraded_table.Cell(static_cast<std::int64_t>(disks))
        .Cell(static_cast<std::int64_t>(point.healthy_admitted))
        .Cell(static_cast<std::int64_t>(point.degraded_capacity))
        .Cell(static_cast<std::int64_t>(point.kept))
        .Cell(static_cast<std::int64_t>(point.shed))
        .Cell(point.deadline_misses)
        .Cell(point.frames_missed_kept)
        .Cell(point.reconstruction_pieces);
    degraded_table.EndRow();
    degraded_points.push_back(point);
  }
  degraded_table.Print();
  WriteDegradedJson("BENCH_degraded_striping.json", fail_spec, degraded_points);
  std::printf("\nWrote BENCH_degraded_striping.json. Expected: kept == min(admitted,\n"
              "degraded capacity) at every width — the controller sheds exactly the\n"
              "model's overload — with zero deadline misses and zero missed frames\n"
              "among the kept streams.\n");
  return 0;
}
