// Table 4: measured disk parameters of the (simulated) ST32550N, obtained
// the way the paper obtained them — with small measurement programs run
// against the drive, not by reading the model's configuration.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/disk/device.h"
#include "src/disk/seek_model.h"
#include "src/stats/summary.h"

namespace {

using crdisk::DiskCompletion;
using crdisk::DiskDevice;
using crdisk::DiskRequest;

// Issues one read and runs the engine to completion.
DiskCompletion ReadSync(crsim::Engine& engine, DiskDevice& device, crdisk::Lba lba,
                        std::int64_t sectors) {
  DiskCompletion result;
  DiskRequest req;
  req.lba = lba;
  req.sectors = sectors;
  req.on_complete = [&result](const DiskCompletion& c) { result = c; };
  device.StartIo(req, 1, engine.Now());
  engine.Run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = crbench::BenchInit(argc, argv);
  crsim::Engine engine;
  DiskDevice::Options device_options;
  device_options.geometry = crdisk::St32550nGeometry();
  DiskDevice device(engine, device_options);
  const crdisk::DiskGeometry& geo = device.geometry();

  // --- D: media transfer rate from a large sequential read -----------------
  const std::int64_t big_sectors = 32768;  // 16 MiB
  const DiskCompletion big = ReadSync(engine, device, 0, big_sectors);
  const double d_measured =
      static_cast<double>(big.bytes()) / crbase::ToSeconds(big.service_time());

  // --- T_rot: re-read the same sector back to back -------------------------
  // After reading sector S the head sits just past it; re-reading S costs
  // command overhead + (a full revolution minus the command time) + one
  // sector: exactly one revolution.
  const crdisk::Lba probe = 500 * geo.sectors_per_cylinder();
  (void)ReadSync(engine, device, probe, 1);
  const DiskCompletion again = ReadSync(engine, device, probe, 1);
  const crbase::Duration t_rot_measured = again.service_time();

  // --- T_cmd: random single-sector reads within one cylinder ---------------
  // No seek is involved; the expected rotational wait is T_rot/2, so
  // T_cmd = mean(service) - T_rot/2 - t_sector.
  crbase::Rng rng(2024);
  crstats::Summary same_cyl;
  for (int i = 0; i < 400; ++i) {
    const crdisk::Lba lba =
        probe + static_cast<crdisk::Lba>(rng.NextBelow(
                    static_cast<std::uint64_t>(geo.sectors_per_cylinder())));
    same_cyl.Add(crbase::ToMilliseconds(ReadSync(engine, device, lba, 1).service_time()));
  }
  const double t_sector_ms = 512.0 / d_measured * 1000.0;
  const double t_cmd_measured_ms =
      same_cyl.mean() - crbase::ToMilliseconds(t_rot_measured) / 2.0 - t_sector_ms;

  // --- T_seek_min / T_seek_max: linear fit over measured seeks -------------
  std::vector<crdisk::SeekSample> samples;
  for (std::int64_t distance = 10; distance < geo.cylinders; distance += 50) {
    samples.push_back({distance, device.MeasureSeek(0, distance)});
  }
  const crdisk::LinearSeekModel fit = crdisk::FitLinearSeekModel(samples, geo.cylinders);

  // --- B_other: largest non-real-time request the system produces ----------
  // The Unix server's clustered reads are the biggest other traffic.
  const crufs::UnixServer::Options unix_defaults;
  const std::int64_t b_other = unix_defaults.cluster_blocks * crufs::kBlockSize;

  crstats::PrintBanner("Table 4: measured disk parameters (paper vs this model)");
  crstats::Table table({"parameter", "paper", "measured"});
  table.SetCsv(csv);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fMB/s", d_measured / 1e6);
  table.Cell("D").Cell("6.5MB/s").Cell(buf);
  table.EndRow();
  std::snprintf(buf, sizeof(buf), "%.2fms", crbase::ToMilliseconds(fit.t_seek_max()));
  table.Cell("T_seek_max").Cell("17ms").Cell(buf);
  table.EndRow();
  std::snprintf(buf, sizeof(buf), "%.2fms", crbase::ToMilliseconds(fit.t_seek_min()));
  table.Cell("T_seek_min").Cell("4ms").Cell(buf);
  table.EndRow();
  std::snprintf(buf, sizeof(buf), "%.2fms", crbase::ToMilliseconds(t_rot_measured));
  table.Cell("T_rot").Cell("8.33ms").Cell(buf);
  table.EndRow();
  std::snprintf(buf, sizeof(buf), "%.2fms", t_cmd_measured_ms);
  table.Cell("T_cmd").Cell("2ms").Cell(buf);
  table.EndRow();
  std::snprintf(buf, sizeof(buf), "%lldKB", static_cast<long long>(b_other / 1024));
  table.Cell("B_other").Cell("64KB").Cell(buf);
  table.EndRow();
  table.Print();
  return 0;
}
