# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/base")
subdirs("src/sim")
subdirs("src/rtmach")
subdirs("src/disk")
subdirs("src/ufs")
subdirs("src/media")
subdirs("src/core")
subdirs("src/net")
subdirs("src/stats")
subdirs("tests")
subdirs("bench")
subdirs("examples")
