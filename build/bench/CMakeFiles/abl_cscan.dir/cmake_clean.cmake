file(REMOVE_RECURSE
  "CMakeFiles/abl_cscan.dir/abl_cscan.cc.o"
  "CMakeFiles/abl_cscan.dir/abl_cscan.cc.o.d"
  "abl_cscan"
  "abl_cscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
