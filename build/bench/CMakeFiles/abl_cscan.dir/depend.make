# Empty dependencies file for abl_cscan.
# This may be replaced when dependencies are built.
