file(REMOVE_RECURSE
  "CMakeFiles/abl_dual_queue.dir/abl_dual_queue.cc.o"
  "CMakeFiles/abl_dual_queue.dir/abl_dual_queue.cc.o.d"
  "abl_dual_queue"
  "abl_dual_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dual_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
