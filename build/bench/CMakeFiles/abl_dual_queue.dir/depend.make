# Empty dependencies file for abl_dual_queue.
# This may be replaced when dependencies are built.
