file(REMOVE_RECURSE
  "CMakeFiles/abl_read_size.dir/abl_read_size.cc.o"
  "CMakeFiles/abl_read_size.dir/abl_read_size.cc.o.d"
  "abl_read_size"
  "abl_read_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_read_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
