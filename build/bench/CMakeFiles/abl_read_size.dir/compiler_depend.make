# Empty compiler generated dependencies file for abl_read_size.
# This may be replaced when dependencies are built.
