file(REMOVE_RECURSE
  "CMakeFiles/abl_slack_usage.dir/abl_slack_usage.cc.o"
  "CMakeFiles/abl_slack_usage.dir/abl_slack_usage.cc.o.d"
  "abl_slack_usage"
  "abl_slack_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_slack_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
