# Empty dependencies file for abl_slack_usage.
# This may be replaced when dependencies are built.
