file(REMOVE_RECURSE
  "CMakeFiles/abl_time_driven_buffer.dir/abl_time_driven_buffer.cc.o"
  "CMakeFiles/abl_time_driven_buffer.dir/abl_time_driven_buffer.cc.o.d"
  "abl_time_driven_buffer"
  "abl_time_driven_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_time_driven_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
