# Empty dependencies file for abl_time_driven_buffer.
# This may be replaced when dependencies are built.
