file(REMOVE_RECURSE
  "CMakeFiles/abl_vbr_waste.dir/abl_vbr_waste.cc.o"
  "CMakeFiles/abl_vbr_waste.dir/abl_vbr_waste.cc.o.d"
  "abl_vbr_waste"
  "abl_vbr_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vbr_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
