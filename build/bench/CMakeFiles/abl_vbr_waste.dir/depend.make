# Empty dependencies file for abl_vbr_waste.
# This may be replaced when dependencies are built.
