file(REMOVE_RECURSE
  "CMakeFiles/abl_zbr.dir/abl_zbr.cc.o"
  "CMakeFiles/abl_zbr.dir/abl_zbr.cc.o.d"
  "abl_zbr"
  "abl_zbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_zbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
