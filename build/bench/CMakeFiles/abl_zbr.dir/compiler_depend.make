# Empty compiler generated dependencies file for abl_zbr.
# This may be replaced when dependencies are built.
