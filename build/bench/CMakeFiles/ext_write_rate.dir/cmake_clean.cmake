file(REMOVE_RECURSE
  "CMakeFiles/ext_write_rate.dir/ext_write_rate.cc.o"
  "CMakeFiles/ext_write_rate.dir/ext_write_rate.cc.o.d"
  "ext_write_rate"
  "ext_write_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_write_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
