# Empty dependencies file for ext_write_rate.
# This may be replaced when dependencies are built.
