file(REMOVE_RECURSE
  "CMakeFiles/fig07_delay_jitter.dir/fig07_delay_jitter.cc.o"
  "CMakeFiles/fig07_delay_jitter.dir/fig07_delay_jitter.cc.o.d"
  "fig07_delay_jitter"
  "fig07_delay_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_delay_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
