file(REMOVE_RECURSE
  "CMakeFiles/fig08_admission_1_5mbps.dir/fig08_admission_1_5mbps.cc.o"
  "CMakeFiles/fig08_admission_1_5mbps.dir/fig08_admission_1_5mbps.cc.o.d"
  "fig08_admission_1_5mbps"
  "fig08_admission_1_5mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_admission_1_5mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
