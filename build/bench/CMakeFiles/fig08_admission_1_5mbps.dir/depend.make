# Empty dependencies file for fig08_admission_1_5mbps.
# This may be replaced when dependencies are built.
