file(REMOVE_RECURSE
  "CMakeFiles/fig09_admission_6mbps.dir/fig09_admission_6mbps.cc.o"
  "CMakeFiles/fig09_admission_6mbps.dir/fig09_admission_6mbps.cc.o.d"
  "fig09_admission_6mbps"
  "fig09_admission_6mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_admission_6mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
