# Empty compiler generated dependencies file for fig09_admission_6mbps.
# This may be replaced when dependencies are built.
