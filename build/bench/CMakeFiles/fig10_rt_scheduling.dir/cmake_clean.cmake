file(REMOVE_RECURSE
  "CMakeFiles/fig10_rt_scheduling.dir/fig10_rt_scheduling.cc.o"
  "CMakeFiles/fig10_rt_scheduling.dir/fig10_rt_scheduling.cc.o.d"
  "fig10_rt_scheduling"
  "fig10_rt_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rt_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
