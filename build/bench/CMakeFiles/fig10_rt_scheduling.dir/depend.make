# Empty dependencies file for fig10_rt_scheduling.
# This may be replaced when dependencies are built.
