file(REMOVE_RECURSE
  "CMakeFiles/fig12_seek_time.dir/fig12_seek_time.cc.o"
  "CMakeFiles/fig12_seek_time.dir/fig12_seek_time.cc.o.d"
  "fig12_seek_time"
  "fig12_seek_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_seek_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
