# Empty compiler generated dependencies file for fig12_seek_time.
# This may be replaced when dependencies are built.
