file(REMOVE_RECURSE
  "CMakeFiles/micro_cras.dir/micro_cras.cc.o"
  "CMakeFiles/micro_cras.dir/micro_cras.cc.o.d"
  "micro_cras"
  "micro_cras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
