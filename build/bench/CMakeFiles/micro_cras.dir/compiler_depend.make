# Empty compiler generated dependencies file for micro_cras.
# This may be replaced when dependencies are built.
