file(REMOVE_RECURSE
  "CMakeFiles/micro_disk.dir/micro_disk.cc.o"
  "CMakeFiles/micro_disk.dir/micro_disk.cc.o.d"
  "micro_disk"
  "micro_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
