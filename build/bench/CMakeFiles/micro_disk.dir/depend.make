# Empty dependencies file for micro_disk.
# This may be replaced when dependencies are built.
