
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_disk_params.cc" "bench/CMakeFiles/table4_disk_params.dir/table4_disk_params.cc.o" "gcc" "bench/CMakeFiles/table4_disk_params.dir/table4_disk_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cras_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cras_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cras_media.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/cras_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/rtmach/CMakeFiles/cras_rtmach.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/cras_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cras_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cras_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
