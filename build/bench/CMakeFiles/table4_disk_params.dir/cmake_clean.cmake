file(REMOVE_RECURSE
  "CMakeFiles/table4_disk_params.dir/table4_disk_params.cc.o"
  "CMakeFiles/table4_disk_params.dir/table4_disk_params.cc.o.d"
  "table4_disk_params"
  "table4_disk_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_disk_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
