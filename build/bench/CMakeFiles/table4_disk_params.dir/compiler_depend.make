# Empty compiler generated dependencies file for table4_disk_params.
# This may be replaced when dependencies are built.
