file(REMOVE_RECURSE
  "CMakeFiles/admission_explorer.dir/admission_explorer.cc.o"
  "CMakeFiles/admission_explorer.dir/admission_explorer.cc.o.d"
  "admission_explorer"
  "admission_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
