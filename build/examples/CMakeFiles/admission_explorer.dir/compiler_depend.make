# Empty compiler generated dependencies file for admission_explorer.
# This may be replaced when dependencies are built.
