file(REMOVE_RECURSE
  "CMakeFiles/embedded_server.dir/embedded_server.cc.o"
  "CMakeFiles/embedded_server.dir/embedded_server.cc.o.d"
  "embedded_server"
  "embedded_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
