# Empty compiler generated dependencies file for embedded_server.
# This may be replaced when dependencies are built.
