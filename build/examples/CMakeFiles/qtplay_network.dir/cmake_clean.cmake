file(REMOVE_RECURSE
  "CMakeFiles/qtplay_network.dir/qtplay_network.cc.o"
  "CMakeFiles/qtplay_network.dir/qtplay_network.cc.o.d"
  "qtplay_network"
  "qtplay_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtplay_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
