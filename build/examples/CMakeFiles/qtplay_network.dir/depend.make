# Empty dependencies file for qtplay_network.
# This may be replaced when dependencies are built.
