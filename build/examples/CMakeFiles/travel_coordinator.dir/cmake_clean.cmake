file(REMOVE_RECURSE
  "CMakeFiles/travel_coordinator.dir/travel_coordinator.cc.o"
  "CMakeFiles/travel_coordinator.dir/travel_coordinator.cc.o.d"
  "travel_coordinator"
  "travel_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
