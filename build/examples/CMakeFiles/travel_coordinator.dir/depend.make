# Empty dependencies file for travel_coordinator.
# This may be replaced when dependencies are built.
