file(REMOVE_RECURSE
  "CMakeFiles/cras_base.dir/bytes.cc.o"
  "CMakeFiles/cras_base.dir/bytes.cc.o.d"
  "CMakeFiles/cras_base.dir/logging.cc.o"
  "CMakeFiles/cras_base.dir/logging.cc.o.d"
  "CMakeFiles/cras_base.dir/status.cc.o"
  "CMakeFiles/cras_base.dir/status.cc.o.d"
  "CMakeFiles/cras_base.dir/time_units.cc.o"
  "CMakeFiles/cras_base.dir/time_units.cc.o.d"
  "libcras_base.a"
  "libcras_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
