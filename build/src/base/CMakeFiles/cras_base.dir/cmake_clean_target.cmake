file(REMOVE_RECURSE
  "libcras_base.a"
)
