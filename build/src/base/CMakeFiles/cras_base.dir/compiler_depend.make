# Empty compiler generated dependencies file for cras_base.
# This may be replaced when dependencies are built.
