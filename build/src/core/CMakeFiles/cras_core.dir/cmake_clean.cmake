file(REMOVE_RECURSE
  "CMakeFiles/cras_core.dir/admission.cc.o"
  "CMakeFiles/cras_core.dir/admission.cc.o.d"
  "CMakeFiles/cras_core.dir/cras.cc.o"
  "CMakeFiles/cras_core.dir/cras.cc.o.d"
  "CMakeFiles/cras_core.dir/player.cc.o"
  "CMakeFiles/cras_core.dir/player.cc.o.d"
  "CMakeFiles/cras_core.dir/time_driven_buffer.cc.o"
  "CMakeFiles/cras_core.dir/time_driven_buffer.cc.o.d"
  "libcras_core.a"
  "libcras_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
