file(REMOVE_RECURSE
  "libcras_core.a"
)
