# Empty dependencies file for cras_core.
# This may be replaced when dependencies are built.
