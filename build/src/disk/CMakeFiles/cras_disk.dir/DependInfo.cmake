
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/device.cc" "src/disk/CMakeFiles/cras_disk.dir/device.cc.o" "gcc" "src/disk/CMakeFiles/cras_disk.dir/device.cc.o.d"
  "/root/repo/src/disk/driver.cc" "src/disk/CMakeFiles/cras_disk.dir/driver.cc.o" "gcc" "src/disk/CMakeFiles/cras_disk.dir/driver.cc.o.d"
  "/root/repo/src/disk/seek_model.cc" "src/disk/CMakeFiles/cras_disk.dir/seek_model.cc.o" "gcc" "src/disk/CMakeFiles/cras_disk.dir/seek_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cras_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cras_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
