file(REMOVE_RECURSE
  "CMakeFiles/cras_disk.dir/device.cc.o"
  "CMakeFiles/cras_disk.dir/device.cc.o.d"
  "CMakeFiles/cras_disk.dir/driver.cc.o"
  "CMakeFiles/cras_disk.dir/driver.cc.o.d"
  "CMakeFiles/cras_disk.dir/seek_model.cc.o"
  "CMakeFiles/cras_disk.dir/seek_model.cc.o.d"
  "libcras_disk.a"
  "libcras_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
