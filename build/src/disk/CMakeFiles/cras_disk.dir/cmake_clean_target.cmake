file(REMOVE_RECURSE
  "libcras_disk.a"
)
