# Empty dependencies file for cras_disk.
# This may be replaced when dependencies are built.
