
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/chunk_index.cc" "src/media/CMakeFiles/cras_media.dir/chunk_index.cc.o" "gcc" "src/media/CMakeFiles/cras_media.dir/chunk_index.cc.o.d"
  "/root/repo/src/media/control_file.cc" "src/media/CMakeFiles/cras_media.dir/control_file.cc.o" "gcc" "src/media/CMakeFiles/cras_media.dir/control_file.cc.o.d"
  "/root/repo/src/media/load.cc" "src/media/CMakeFiles/cras_media.dir/load.cc.o" "gcc" "src/media/CMakeFiles/cras_media.dir/load.cc.o.d"
  "/root/repo/src/media/media_file.cc" "src/media/CMakeFiles/cras_media.dir/media_file.cc.o" "gcc" "src/media/CMakeFiles/cras_media.dir/media_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cras_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/cras_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/rtmach/CMakeFiles/cras_rtmach.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/cras_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cras_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
