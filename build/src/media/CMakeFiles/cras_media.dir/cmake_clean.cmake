file(REMOVE_RECURSE
  "CMakeFiles/cras_media.dir/chunk_index.cc.o"
  "CMakeFiles/cras_media.dir/chunk_index.cc.o.d"
  "CMakeFiles/cras_media.dir/control_file.cc.o"
  "CMakeFiles/cras_media.dir/control_file.cc.o.d"
  "CMakeFiles/cras_media.dir/load.cc.o"
  "CMakeFiles/cras_media.dir/load.cc.o.d"
  "CMakeFiles/cras_media.dir/media_file.cc.o"
  "CMakeFiles/cras_media.dir/media_file.cc.o.d"
  "libcras_media.a"
  "libcras_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
