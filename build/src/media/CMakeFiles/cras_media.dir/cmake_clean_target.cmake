file(REMOVE_RECURSE
  "libcras_media.a"
)
