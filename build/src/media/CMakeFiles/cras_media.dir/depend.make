# Empty dependencies file for cras_media.
# This may be replaced when dependencies are built.
