file(REMOVE_RECURSE
  "CMakeFiles/cras_net.dir/link.cc.o"
  "CMakeFiles/cras_net.dir/link.cc.o.d"
  "CMakeFiles/cras_net.dir/nps.cc.o"
  "CMakeFiles/cras_net.dir/nps.cc.o.d"
  "libcras_net.a"
  "libcras_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
