file(REMOVE_RECURSE
  "libcras_net.a"
)
