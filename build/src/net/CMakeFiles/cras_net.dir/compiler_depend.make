# Empty compiler generated dependencies file for cras_net.
# This may be replaced when dependencies are built.
