file(REMOVE_RECURSE
  "CMakeFiles/cras_rtmach.dir/kernel.cc.o"
  "CMakeFiles/cras_rtmach.dir/kernel.cc.o.d"
  "libcras_rtmach.a"
  "libcras_rtmach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_rtmach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
