file(REMOVE_RECURSE
  "libcras_rtmach.a"
)
