# Empty dependencies file for cras_rtmach.
# This may be replaced when dependencies are built.
