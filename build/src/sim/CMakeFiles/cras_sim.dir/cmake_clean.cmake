file(REMOVE_RECURSE
  "CMakeFiles/cras_sim.dir/cpu.cc.o"
  "CMakeFiles/cras_sim.dir/cpu.cc.o.d"
  "CMakeFiles/cras_sim.dir/engine.cc.o"
  "CMakeFiles/cras_sim.dir/engine.cc.o.d"
  "libcras_sim.a"
  "libcras_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
