file(REMOVE_RECURSE
  "libcras_sim.a"
)
