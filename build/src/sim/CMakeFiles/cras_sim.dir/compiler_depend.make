# Empty compiler generated dependencies file for cras_sim.
# This may be replaced when dependencies are built.
