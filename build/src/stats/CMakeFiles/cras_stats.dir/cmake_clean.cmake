file(REMOVE_RECURSE
  "CMakeFiles/cras_stats.dir/table.cc.o"
  "CMakeFiles/cras_stats.dir/table.cc.o.d"
  "libcras_stats.a"
  "libcras_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
