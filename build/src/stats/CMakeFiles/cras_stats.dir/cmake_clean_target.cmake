file(REMOVE_RECURSE
  "libcras_stats.a"
)
