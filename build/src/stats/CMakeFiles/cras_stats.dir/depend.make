# Empty dependencies file for cras_stats.
# This may be replaced when dependencies are built.
