file(REMOVE_RECURSE
  "CMakeFiles/cras_ufs.dir/ufs.cc.o"
  "CMakeFiles/cras_ufs.dir/ufs.cc.o.d"
  "CMakeFiles/cras_ufs.dir/unix_server.cc.o"
  "CMakeFiles/cras_ufs.dir/unix_server.cc.o.d"
  "libcras_ufs.a"
  "libcras_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cras_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
