file(REMOVE_RECURSE
  "libcras_ufs.a"
)
