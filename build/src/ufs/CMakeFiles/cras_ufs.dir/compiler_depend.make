# Empty compiler generated dependencies file for cras_ufs.
# This may be replaced when dependencies are built.
