file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core_admission_test.cc.o"
  "CMakeFiles/core_test.dir/core_admission_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core_buffer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_clock_test.cc.o"
  "CMakeFiles/core_test.dir/core_clock_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_player_test.cc.o"
  "CMakeFiles/core_test.dir/core_player_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_robustness_test.cc.o"
  "CMakeFiles/core_test.dir/core_robustness_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_seek_test.cc.o"
  "CMakeFiles/core_test.dir/core_seek_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_server_test.cc.o"
  "CMakeFiles/core_test.dir/core_server_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_setrate_test.cc.o"
  "CMakeFiles/core_test.dir/core_setrate_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_write_test.cc.o"
  "CMakeFiles/core_test.dir/core_write_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
