
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/disk_device_test.cc" "tests/CMakeFiles/disk_test.dir/disk_device_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk_device_test.cc.o.d"
  "/root/repo/tests/disk_driver_test.cc" "tests/CMakeFiles/disk_test.dir/disk_driver_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk_driver_test.cc.o.d"
  "/root/repo/tests/disk_model_test.cc" "tests/CMakeFiles/disk_test.dir/disk_model_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk_model_test.cc.o.d"
  "/root/repo/tests/disk_zoned_test.cc" "tests/CMakeFiles/disk_test.dir/disk_zoned_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk_zoned_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/cras_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cras_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cras_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
