file(REMOVE_RECURSE
  "CMakeFiles/rtmach_test.dir/rtmach_mutex_test.cc.o"
  "CMakeFiles/rtmach_test.dir/rtmach_mutex_test.cc.o.d"
  "CMakeFiles/rtmach_test.dir/rtmach_test.cc.o"
  "CMakeFiles/rtmach_test.dir/rtmach_test.cc.o.d"
  "rtmach_test"
  "rtmach_test.pdb"
  "rtmach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtmach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
