# Empty compiler generated dependencies file for rtmach_test.
# This may be replaced when dependencies are built.
