file(REMOVE_RECURSE
  "CMakeFiles/ufs_write_test.dir/ufs_write_test.cc.o"
  "CMakeFiles/ufs_write_test.dir/ufs_write_test.cc.o.d"
  "ufs_write_test"
  "ufs_write_test.pdb"
  "ufs_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufs_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
