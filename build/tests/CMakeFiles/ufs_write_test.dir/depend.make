# Empty dependencies file for ufs_write_test.
# This may be replaced when dependencies are built.
