# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/rtmach_test[1]_include.cmake")
include("/root/repo/build/tests/ufs_test[1]_include.cmake")
include("/root/repo/build/tests/ufs_write_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
