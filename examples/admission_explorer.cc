// admission_explorer: a capacity-planning tool built on the admission
// model. Given a stream rate (Mb/s) and optional chunk size, prints how
// many streams each interval time admits, the buffer memory required, and
// the startup latency implied — the tradeoff table an operator of CRAS
// would actually consult (§2.2: "the interval time is determined by a
// tradeoff between the maximum number of streams ... and the initial
// delay").
//
//   $ ./admission_explorer               # 1.5 Mb/s MPEG1 default
//   $ ./admission_explorer 6.0           # 6 Mb/s MPEG2
//   $ ./admission_explorer 1.5 12288     # custom chunk size (bytes)

#include <cstdio>
#include <cstdlib>

#include "src/base/bytes.h"
#include "src/core/admission.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  double mbps = 1.5;
  std::int64_t chunk_bytes = 0;
  if (argc > 1) {
    mbps = std::atof(argv[1]);
    if (mbps <= 0 || mbps > 50) {
      std::fprintf(stderr, "usage: %s [rate_mbps] [chunk_bytes]\n", argv[0]);
      return 1;
    }
  }
  if (argc > 2) {
    chunk_bytes = std::atoll(argv[2]);
  }
  const double rate = crbase::MbpsToBytesPerSec(mbps);
  if (chunk_bytes <= 0) {
    chunk_bytes = static_cast<std::int64_t>(rate / 30.0);  // one 30 fps frame
  }

  const cras::DiskParams params = cras::MeasuredSt32550nParams();
  std::printf("disk: D=%.1fMB/s seeks=%lld..%lldms rot=%.2fms cmd=%lldms B_other=%lldKB\n",
              params.transfer_rate / 1e6,
              static_cast<long long>(crbase::ToMilliseconds(params.t_seek_min)),
              static_cast<long long>(crbase::ToMilliseconds(params.t_seek_max)),
              crbase::ToMilliseconds(params.t_rot),
              static_cast<long long>(crbase::ToMilliseconds(params.t_cmd)),
              static_cast<long long>(params.b_other / 1024));
  std::printf("stream: %.2f Mb/s (%.0f B/s), chunk %lld bytes\n\n", mbps, rate,
              static_cast<long long>(chunk_bytes));

  crstats::Table table({"interval_ms", "initial_delay_ms", "streams", "disk_share_pct",
                        "buffer_total", "per_stream_buffer"});
  const cras::StreamDemand demand{rate, chunk_bytes};
  for (const std::int64_t interval_ms : {100, 250, 500, 1000, 1500, 2000, 3000}) {
    const crbase::Duration interval = crbase::Milliseconds(interval_ms);
    cras::AdmissionModel model(params, interval, 256 * crbase::kKiB);
    std::vector<cras::StreamDemand> demands;
    int capacity = 0;
    while (capacity < 1000) {
      demands.push_back(demand);
      if (!model.Admissible(demands, 1LL << 40)) {  // memory unconstrained here
        break;
      }
      ++capacity;
    }
    demands.resize(static_cast<std::size_t>(capacity));
    const cras::AdmissionEstimate estimate = model.Evaluate(demands);
    const double share = 100.0 * static_cast<double>(capacity) * rate / params.transfer_rate;
    table.Cell(interval_ms)
        .Cell(2 * interval_ms)
        .Cell(static_cast<std::int64_t>(capacity))
        .Cell(share, 1)
        .Cell(crbase::FormatBytes(estimate.buffer_bytes))
        .Cell(capacity == 0 ? "-" : crbase::FormatBytes(model.BufferBytes(demand)));
    table.EndRow();
  }
  table.Print();
  std::printf("\nLonger intervals amortize worst-case seek/rotation overhead across more\n"
              "transfer time (more streams), but cost startup latency and wired buffer\n"
              "memory linearly. Pick the row whose initial delay your application bears.\n");
  return 0;
}
