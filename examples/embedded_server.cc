// embedded_server: the paper's §2.6 "aggressive" configuration — CRAS
// linked directly into the application, with no Unix server running at all
// (the RTS/embedded-system deployment in Figure 5).
//
// The application owns the kernel, disk, and file-system layout; it records
// a camera feed through a CRAS write session and simultaneously plays back
// an alarm-loop clip — a tiny digital video recorder.
//
//   $ ./embedded_server

#include <cstdio>

#include "src/core/cras.h"
#include "src/core/player.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/media/media_file.h"
#include "src/rtmach/kernel.h"
#include "src/ufs/ufs.h"

using crbase::Seconds;

int main() {
  // No Testbed, no UnixServer: just the microkernel, the disk, the shared
  // on-disk layout, and CRAS in-process.
  crrt::Kernel kernel;
  crdisk::DiskDevice::Options device_options;
  device_options.geometry = crdisk::St32550nGeometry();
  crdisk::DiskDevice device(kernel.engine(), device_options);
  crdisk::DiskDriver driver(kernel.engine(), device);
  crufs::Ufs fs;

  cras::CrasServer::Options server_options;
  server_options.interval = crbase::Milliseconds(250);  // small appliance: low latency
  server_options.memory_budget_bytes = 2 * crbase::kMiB;  // tight embedded memory
  cras::CrasServer server(kernel, driver, fs, server_options);
  server.Start();
  std::printf("embedded CRAS: interval %s, wired memory %s\n",
              crbase::FormatDuration(server_options.interval).c_str(),
              crbase::FormatBytes(kernel.wired_bytes()).c_str());

  // The camera feed to record (15 s of MPEG1), preallocated contiguously so
  // constant-rate writing is possible.
  crmedia::ChunkIndex camera =
      crmedia::BuildCbrIndex(crmedia::kMpeg1BytesPerSec, 30.0, Seconds(15));
  crufs::InodeNumber recording = *fs.Create("camera_feed");
  CRAS_CHECK_OK(fs.PreallocateContiguous(recording, camera.total_bytes()));

  // The clip played on the operator console.
  auto clip = crmedia::WriteMpeg1File(fs, "alarm_loop.mpg", Seconds(15));
  CRAS_CHECK(clip.ok());

  // Recorder task: write session fed at the camera's frame rate.
  cras::SessionId record_session = cras::kInvalidSession;
  crsim::Task recorder = kernel.Spawn(
      "recorder", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        cras::OpenParams params;
        params.inode = recording;
        params.index = camera;
        params.kind = cras::SessionKind::kWrite;
        auto session = co_await server.Open(std::move(params));
        CRAS_CHECK(session.ok()) << session.status().ToString();
        record_session = *session;
        (void)co_await server.StartStream(*session, 0);
        const crbase::Time start = ctx.Now();
        for (std::size_t c = 0; c < camera.count(); ++c) {
          const crbase::Time due = start + camera.at(c).timestamp;
          if (due > ctx.Now()) {
            co_await ctx.Sleep(due - ctx.Now());
          }
          (void)server.PutChunk(*session, static_cast<std::int64_t>(c));
        }
      });

  cras::PlayerStats player_stats;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(12);
  crmedia::MediaFile clip_file = *clip;
  crsim::Task player =
      cras::SpawnCrasPlayer(kernel, server, clip_file, player_options, &player_stats);

  kernel.engine().RunFor(Seconds(18));

  auto record_stats = server.GetSessionStats(record_session);
  std::printf("recorded %s (%lld chunks) at constant rate; playback: %lld frames, "
              "%lld missed, max delay %s\n",
              crbase::FormatBytes(record_stats.ok() ? record_stats->bytes_written : 0).c_str(),
              static_cast<long long>(record_stats.ok() ? record_stats->chunks_written : 0),
              static_cast<long long>(player_stats.frames_played),
              static_cast<long long>(player_stats.frames_missed),
              crbase::FormatDuration(player_stats.max_delay()).c_str());
  std::printf("deadline misses: %lld; recorded file contiguity: %.2f\n",
              static_cast<long long>(server.stats().deadline_misses),
              fs.ContiguityOf(recording));
  return 0;
}
