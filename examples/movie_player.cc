// movie_player: a QtPlay-style player with dynamic QoS control (§2.4, §3.2).
//
// Plays a movie at full rate, then — mid-playback, without telling the
// server anything — drops to a third of the frame rate, then returns to
// full rate. The time-driven shared buffer absorbs the changes: skipped
// frames age out by timestamp; no feedback protocol, no buffer overflow.
//
//   $ ./movie_player

#include <cstdio>

#include "src/core/cras.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

using crbase::Milliseconds;
using crbase::Seconds;

namespace {

crsim::Task Player(cras::Testbed& bed, const crmedia::MediaFile& movie) {
  return bed.kernel.Spawn("movie-player", crrt::kPriorityClient,
                          [&](crrt::ThreadContext& ctx) -> crsim::Task {
    cras::CrasServer& server = bed.cras_server;
    cras::OpenParams params;
    params.inode = movie.inode;
    params.index = movie.index;
    auto session = co_await server.Open(std::move(params));
    CRAS_CHECK(session.ok()) << session.status().ToString();
    const cras::SessionId id = *session;
    const crbase::Duration delay = server.SuggestedInitialDelay();
    (void)co_await server.StartStream(id, delay);
    const crbase::Time zero_at = ctx.Now() + delay;

    const auto& chunks = movie.index.chunks();
    std::int64_t rendered = 0;
    std::int64_t skipped_by_qos = 0;
    // Phase plan: full rate for 4 s, third rate for 4 s, full rate to 12 s.
    auto step_at = [](crbase::Time t) {
      return (t >= Seconds(4) && t < Seconds(8)) ? 3 : 1;
    };
    int step = 1;
    for (std::size_t i = 0; i < chunks.size();) {
      const crmedia::Chunk& chunk = chunks[i];
      if (chunk.timestamp > Seconds(12)) {
        break;
      }
      const int new_step = step_at(chunk.timestamp);
      if (new_step != step) {
        step = new_step;
        std::printf("[%6.3fs] QoS change: rendering every %d%s frame "
                    "(no server interaction; buffer=%lld bytes resident)\n",
                    crbase::ToSeconds(ctx.Now()), step, step == 1 ? "st" : "rd",
                    static_cast<long long>(
                        server.GetBufferStats(id) != nullptr
                            ? server.GetSessionStats(id)->bytes_published
                            : 0));
      }
      const crbase::Time due = zero_at + chunk.timestamp;
      if (due > ctx.Now()) {
        co_await ctx.Sleep(due - ctx.Now());
      }
      std::optional<cras::BufferedChunk> frame = server.Get(id, chunk.timestamp);
      if (frame.has_value()) {
        ++rendered;
      }
      skipped_by_qos += step - 1;
      i += static_cast<std::size_t>(step);
    }

    const cras::TimeDrivenBufferStats* buffer_stats = server.GetBufferStats(id);
    std::printf("\nrendered %lld frames, skipped %lld by QoS\n",
                static_cast<long long>(rendered), static_cast<long long>(skipped_by_qos));
    if (buffer_stats != nullptr) {
      std::printf("time-driven buffer: puts=%lld aged_out=%lld overflow=%lld "
                  "(skipped frames discarded by timestamp, never by pressure)\n",
                  static_cast<long long>(buffer_stats->puts),
                  static_cast<long long>(buffer_stats->discarded_obsolete),
                  static_cast<long long>(buffer_stats->overflow_evictions));
    }
    std::printf("server retrieved %s at the constant recorded rate throughout\n",
                crbase::FormatBytes(server.stats().bytes_read).c_str());
    (void)co_await server.Close(id);
  });
}

}  // namespace

int main() {
  cras::Testbed bed;
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "feature.mpg", Seconds(14));
  CRAS_CHECK(movie.ok());
  crsim::Task player = Player(bed, *movie);
  bed.engine().RunFor(Seconds(16));
  return 0;
}
