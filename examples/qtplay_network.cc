// qtplay_network: the paper's distributed QuickTime player (Figure 11).
//
// Two hosts on one timeline: a *qtserver* machine running CRAS retrieves a
// movie's video and audio tracks from its local disk and transmits them
// with NPS over 10 Mb/s Ethernet; a *qtclient* machine reassembles the
// streams into local time-driven buffers and hands frames to its display
// and audio sinks by logical time. The client can change its consumption
// rate at any moment without telling anyone — the same dynamic-QoS property
// as local playback, now end to end.
//
//   $ ./qtplay_network

#include <cstdio>

#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/net/nps.h"

using crbase::Milliseconds;
using crbase::Seconds;

namespace {

struct SinkStats {
  std::int64_t frames = 0;
  std::int64_t missing = 0;
  crbase::Duration worst_lateness = 0;
};

// A sink (X11 display or audio server) on the client host: consumes a
// stream from an NPS receiver at its own rate.
crsim::Task SpawnSink(crrt::Kernel& host, crnet::NpsReceiver& receiver,
                      const crmedia::ChunkIndex* index, std::string name,
                      crbase::Duration startup_delay, std::int64_t frame_step,
                      SinkStats* stats) {
  return host.Spawn(name, crrt::kPriorityClient,
                    [&receiver, index, startup_delay, frame_step,
                     stats](crrt::ThreadContext& ctx) -> crsim::Task {
    receiver.clock().Start(startup_delay);
    co_await ctx.Sleep(startup_delay);
    for (std::size_t i = 0; i < index->count(); i += static_cast<std::size_t>(frame_step)) {
      const crmedia::Chunk& chunk = index->at(i);
      while (receiver.clock().Now() < chunk.timestamp) {
        co_await ctx.Sleep(Milliseconds(2));
      }
      const crbase::Time due = ctx.Now();
      std::optional<cras::BufferedChunk> frame = receiver.Get(chunk.timestamp);
      if (frame.has_value()) {
        ++stats->frames;
        stats->worst_lateness = std::max(stats->worst_lateness, ctx.Now() - due);
      } else {
        ++stats->missing;
      }
    }
  });
}

}  // namespace

int main() {
  // qtserver host: the full testbed (CRAS + UFS + disk).
  cras::Testbed qtserver;
  qtserver.StartServers();
  // qtclient host: its own processor on the shared timeline.
  crrt::Kernel qtclient(qtserver.engine(), crrt::Kernel::Options{});
  // The 10 Mb/s Ethernet between them.
  crnet::Link ethernet(qtserver.engine());

  // The movie: a 1.5 Mb/s video track and a 256 kb/s audio track, stored as
  // separate files on the server's disk (QuickTime-style flattened tracks).
  auto video = crmedia::WriteMpeg1File(qtserver.fs, "movie.video", Seconds(20));
  auto audio = crmedia::WriteMediaFile(
      qtserver.fs, "movie.audio",
      crmedia::BuildCbrIndex(256e3 / 8.0, 50.0, Seconds(20)));  // 20 ms audio chunks
  CRAS_CHECK(video.ok() && audio.ok());

  crnet::NpsReceiver video_rx(qtclient);
  crnet::NpsReceiver audio_rx(qtclient);
  crnet::NpsSender video_tx(qtserver.kernel, qtserver.cras_server, ethernet, video_rx);
  crnet::NpsSender audio_tx(qtserver.kernel, qtserver.cras_server, ethernet, audio_rx);

  // qtserver opens both tracks and begins constant-rate retrieval.
  std::vector<crsim::Task> tasks;
  tasks.push_back(qtserver.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (auto* track : {&*video, &*audio}) {
          cras::OpenParams params;
          params.inode = track->inode;
          params.index = track->index;
          auto session = co_await qtserver.cras_server.Open(std::move(params));
          CRAS_CHECK(session.ok()) << session.status().ToString();
          (void)co_await qtserver.cras_server.StartStream(
              *session, qtserver.cras_server.SuggestedInitialDelay());
          if (track == &*video) {
            tasks.push_back(video_tx.Start(*session, &track->index));
          } else {
            tasks.push_back(audio_tx.Start(*session, &track->index));
          }
        }
      }));

  // qtclient sinks: the display renders at full rate for 8 s, then the user
  // shrinks the window — the video sink silently drops to every 3rd frame —
  // while audio continues untouched.
  const crbase::Duration startup =
      qtserver.cras_server.SuggestedInitialDelay() + Milliseconds(300);
  SinkStats display_full;
  SinkStats audio_stats;
  crsim::Task x11 = qtclient.Spawn(
      "x11-sink", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        video_rx.clock().Start(startup);
        co_await ctx.Sleep(startup);
        const auto& chunks = video->index.chunks();
        for (std::size_t i = 0; i < chunks.size();) {
          const int step = chunks[i].timestamp >= Seconds(8) ? 3 : 1;
          while (video_rx.clock().Now() < chunks[i].timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (video_rx.Get(chunks[i].timestamp).has_value()) {
            ++display_full.frames;
          } else {
            ++display_full.missing;
          }
          i += static_cast<std::size_t>(step);
        }
      });
  crsim::Task speaker =
      SpawnSink(qtclient, audio_rx, &audio->index, "audio-sink", startup, 1, &audio_stats);

  qtserver.engine().RunFor(Seconds(26));

  std::printf("qtplay session over 10 Mb/s Ethernet:\n");
  std::printf("  video: %lld frames rendered, %lld missing; sender shipped %lld chunks "
              "(%lld packets)\n",
              static_cast<long long>(display_full.frames),
              static_cast<long long>(display_full.missing),
              static_cast<long long>(video_tx.stats().chunks_sent),
              static_cast<long long>(video_tx.stats().packets_sent));
  std::printf("  audio: %lld chunks rendered, %lld missing (untouched by the video QoS drop)\n",
              static_cast<long long>(audio_stats.frames),
              static_cast<long long>(audio_stats.missing));
  std::printf("  link: utilization %.1f%%, worst chunk latency video=%s audio=%s\n",
              ethernet.Utilization() * 100.0,
              crbase::FormatDuration(video_rx.stats().max_network_latency).c_str(),
              crbase::FormatDuration(audio_rx.stats().max_network_latency).c_str());
  std::printf("  CRAS deadline misses: %lld\n",
              static_cast<long long>(qtserver.cras_server.stats().deadline_misses));
  return 0;
}
