// Quickstart: the smallest complete CRAS program.
//
// Builds the simulated machine, creates a 10-second MPEG1 movie on the
// shared UFS layout, opens a constant-rate session (crs_open), starts it
// (crs_start), fetches a few frames by logical time (crs_get), and closes.
//
//   $ ./quickstart

#include <cstdio>

#include "src/core/cras.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

using crbase::Milliseconds;
using crbase::Seconds;

namespace {

crsim::Task Client(cras::Testbed& bed, const crmedia::MediaFile& movie) {
  return bed.kernel.Spawn("quickstart", crrt::kPriorityClient,
                          [&](crrt::ThreadContext& ctx) -> crsim::Task {
    cras::CrasServer& server = bed.cras_server;

    // crs_open: hand CRAS the control-file contents (per-chunk timestamps,
    // durations, sizes). The admission test runs here.
    cras::OpenParams params;
    params.inode = movie.inode;
    params.index = movie.index;
    auto session = co_await server.Open(std::move(params));
    if (!session.ok()) {
      std::printf("open failed: %s\n", session.status().ToString().c_str());
      co_return;
    }
    std::printf("[%6.3fs] session %lld admitted (buffer reservation: %lld bytes)\n",
                crbase::ToSeconds(ctx.Now()), static_cast<long long>(*session),
                static_cast<long long>(server.buffer_bytes_reserved()));

    // crs_start: begin prefetching; allow the suggested initial delay
    // (two interval times) before logical time zero.
    const crbase::Duration delay = server.SuggestedInitialDelay();
    (void)co_await server.StartStream(*session, delay);
    std::printf("[%6.3fs] stream started, initial delay %s\n", crbase::ToSeconds(ctx.Now()),
                crbase::FormatDuration(delay).c_str());

    // Render the first second of video: one crs_get per frame, by logical
    // time. crs_get is a shared-memory access — no server round trip.
    co_await ctx.Sleep(delay);
    for (int frame = 0; frame < 30; ++frame) {
      const crbase::Time t = frame * crbase::SecondsF(1.0 / 30.0);
      while (server.LogicalNow(*session) < t) {
        co_await ctx.Sleep(Milliseconds(1));
      }
      std::optional<cras::BufferedChunk> chunk = server.Get(*session, t);
      if (frame % 10 == 0) {
        std::printf("[%6.3fs] frame %2d: %s (%lld bytes, logical %s)\n",
                    crbase::ToSeconds(ctx.Now()), frame, chunk ? "ok" : "MISSING",
                    chunk ? static_cast<long long>(chunk->size) : 0,
                    crbase::FormatDuration(t).c_str());
      }
    }

    (void)co_await server.StopStream(*session);
    (void)co_await server.Close(*session);
    std::printf("[%6.3fs] closed; server read %s from disk, %lld deadline misses\n",
                crbase::ToSeconds(ctx.Now()),
                crbase::FormatBytes(server.stats().bytes_read).c_str(),
                static_cast<long long>(server.stats().deadline_misses));
  });
}

}  // namespace

int main() {
  cras::Testbed bed;
  bed.StartServers();

  auto movie = crmedia::WriteMpeg1File(bed.fs, "clip.mpg", Seconds(10));
  if (!movie.ok()) {
    std::printf("failed to create movie: %s\n", movie.status().ToString().c_str());
    return 1;
  }
  std::printf("created %s: %s, %zu chunks, contiguity %.2f\n", movie->name.c_str(),
              crbase::FormatBytes(movie->index.total_bytes()).c_str(), movie->index.count(),
              bed.fs.ContiguityOf(movie->inode));

  crsim::Task client = Client(bed, *movie);
  bed.engine().RunFor(Seconds(5));
  return 0;
}
