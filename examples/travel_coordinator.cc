// travel_coordinator: the paper's motivating application (§1).
//
// Two people plan a trip: each browses sightseeing video clips from a local
// video database while a conferencing tool and other desktop activity hit
// the same disk through the Unix file system. The clips must keep playing
// at constant rate regardless.
//
// This example runs two concurrent CRAS video sessions (the clip each user
// is watching), a UFS-based conferencing tool logging to disk, and a
// background `cat`, then reports per-stream delivery quality.
//
//   $ ./travel_coordinator

#include <cstdio>

#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/load.h"
#include "src/media/media_file.h"

using crbase::Milliseconds;
using crbase::Seconds;

namespace {

// The conferencing tool: appends meeting state and reads shared documents
// through the Unix server every 200 ms — ordinary, non-real-time disk use.
crsim::Task SpawnConferencingTool(cras::Testbed& bed, crufs::InodeNumber doc) {
  return bed.kernel.Spawn("conference-tool", crrt::kPriorityTimesharing,
                          [&bed, doc](crrt::ThreadContext& ctx) -> crsim::Task {
    std::int64_t offset = 0;
    const std::int64_t doc_size = bed.fs.inode(doc).size_bytes;
    for (;;) {
      (void)co_await bed.unix_server.Read(doc, offset % doc_size, 16 * crbase::kKiB);
      offset += 16 * crbase::kKiB;
      co_await ctx.Sleep(Milliseconds(200));
    }
  });
}

}  // namespace

int main() {
  cras::Testbed bed;
  bed.StartServers();

  // The video database: sightseeing clips, plus a shared document store.
  auto kyoto = crmedia::WriteMpeg1File(bed.fs, "kyoto_temples.mpg", Seconds(22));
  auto kanazawa = crmedia::WriteMpeg1File(bed.fs, "kanazawa_garden.mpg", Seconds(22));
  CRAS_CHECK(kyoto.ok() && kanazawa.ok());
  crufs::InodeNumber documents = *bed.fs.Create("shared_documents");
  CRAS_CHECK_OK(bed.fs.Append(documents, 4 * crbase::kMiB));

  // Desktop contention: the conferencing tool plus a file copy.
  crsim::Task conference = SpawnConferencingTool(bed, documents);
  auto copy_source = crmedia::WriteMpeg1File(bed.fs, "mail_spool", Seconds(60));
  CRAS_CHECK(copy_source.ok());
  crsim::Task copy =
      crmedia::SpawnCat(bed.kernel, bed.unix_server, copy_source->inode, "file-copy");

  // Each user watches a clip through CRAS.
  cras::PlayerStats alice_stats;
  cras::PlayerStats bob_stats;
  cras::PlayerOptions options;
  options.play_length = Seconds(20);
  crsim::Task alice =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *kyoto, options, &alice_stats);
  options.start_delay = Seconds(2);  // Bob starts his clip a little later
  crsim::Task bob =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *kanazawa, options, &bob_stats);

  bed.engine().RunFor(Seconds(28));

  auto report = [](const char* who, const cras::PlayerStats& stats) {
    std::printf("%s: %lld frames, %lld missed, mean delay %s, max delay %s\n", who,
                static_cast<long long>(stats.frames_played),
                static_cast<long long>(stats.frames_missed),
                crbase::FormatDuration(stats.mean_delay()).c_str(),
                crbase::FormatDuration(stats.max_delay()).c_str());
  };
  std::printf("travel coordination session complete:\n");
  report("  alice (kyoto clip)   ", alice_stats);
  report("  bob   (kanazawa clip)", bob_stats);
  std::printf("  background: unix server handled %lld requests (%lld disk reads)\n",
              static_cast<long long>(bed.unix_server.stats().requests),
              static_cast<long long>(bed.unix_server.stats().disk_reads));
  std::printf("  CRAS deadline misses: %lld\n",
              static_cast<long long>(bed.cras_server.stats().deadline_misses));
  return 0;
}
