#!/usr/bin/env bash
# Tier-1 gate: configure + build + test, exactly what ROADMAP.md specifies.
# Run from anywhere; builds into <repo>/build.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$(nproc)"
ctest --test-dir "$repo/build" --output-on-failure -j "$(nproc)"
