#!/usr/bin/env bash
# Tier-1 gate: configure + build + test, exactly what ROADMAP.md specifies.
# Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh                  plain RelWithDebInfo tree (the tier-1 gate)
#   scripts/check.sh --sanitize       additionally build + test under ASan (+LSan)
#                                     and UBSan, in build-asan/ and build-ubsan/
#   scripts/check.sh --label <regex>  restrict ctest to matching labels, e.g.
#                                     --label 'fault|net' for the robustness slice.
#                                     Repeatable: --label fault --label net is
#                                     composed into -L 'fault|net'.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

sanitize=0
label=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) sanitize=1 ;;
    --label)
      [[ $# -ge 2 ]] || { echo "--label needs a regex argument" >&2; exit 2; }
      label="${label:+$label|}$2"
      shift
      ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

run_tree() {
  local dir="$1"
  shift
  cmake -B "$repo/$dir" -S "$repo" "$@"
  cmake --build "$repo/$dir" -j "$(nproc)"
  local ctest_args=(--test-dir "$repo/$dir" --output-on-failure -j "$(nproc)")
  if [[ -n "$label" ]]; then
    ctest_args+=(-L "$label")
  fi
  ctest "${ctest_args[@]}"
}

run_tree build

if [[ "$sanitize" == 1 ]]; then
  run_tree build-asan -DCRAS_SANITIZE=address
  run_tree build-ubsan -DCRAS_SANITIZE=undefined
fi
