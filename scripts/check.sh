#!/usr/bin/env bash
# Tier-1 gate: configure + build + test, exactly what ROADMAP.md specifies.
# Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh             plain RelWithDebInfo tree (the tier-1 gate)
#   scripts/check.sh --sanitize  additionally build + test under ASan (+LSan)
#                                and UBSan, in build-asan/ and build-ubsan/
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

run_tree() {
  local dir="$1"
  shift
  cmake -B "$repo/$dir" -S "$repo" "$@"
  cmake --build "$repo/$dir" -j "$(nproc)"
  ctest --test-dir "$repo/$dir" --output-on-failure -j "$(nproc)"
}

run_tree build

if [[ "${1:-}" == "--sanitize" ]]; then
  run_tree build-asan -DCRAS_SANITIZE=address
  run_tree build-ubsan -DCRAS_SANITIZE=undefined
fi
