#include "src/base/bytes.h"

#include <cstdio>
#include <cstdlib>

namespace crbase {

std::string FormatBytes(std::int64_t bytes) {
  char buf[64];
  const std::int64_t abs_b = bytes < 0 ? -bytes : bytes;
  if (abs_b >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", static_cast<double>(bytes) / kGiB);
  } else if (abs_b >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", static_cast<double>(bytes) / kMiB);
  } else if (abs_b >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace crbase
