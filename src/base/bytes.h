// Byte-size constants and rate conversions.

#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstdint>
#include <string>

#include "src/base/time_units.h"

namespace crbase {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

// The paper quotes stream rates in megabits per second (MPEG1 = 1.5 Mb/s,
// MPEG2 = 6 Mb/s) and disk bandwidth in megabytes per second.
constexpr double MbpsToBytesPerSec(double mbps) { return mbps * 1e6 / 8.0; }
constexpr double BytesPerSecToMbps(double bps) { return bps * 8.0 / 1e6; }

// Bytes transferred in `d` at `bytes_per_sec`.
constexpr std::int64_t BytesInDuration(double bytes_per_sec, Duration d) {
  return static_cast<std::int64_t>(bytes_per_sec * ToSeconds(d));
}

// Time to transfer `bytes` at `bytes_per_sec`.
constexpr Duration TransferTime(std::int64_t bytes, double bytes_per_sec) {
  return SecondsF(static_cast<double>(bytes) / bytes_per_sec);
}

// Renders e.g. "256.0KiB", "1.50MiB".
std::string FormatBytes(std::int64_t bytes);

}  // namespace crbase

#endif  // SRC_BASE_BYTES_H_
