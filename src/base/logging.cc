#include "src/base/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace crbase {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

bool SetLogLevelFromEnv() {
  const char* raw = std::getenv("CRAS_LOG");
  if (raw == nullptr || *raw == '\0') {
    return false;
  }
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "warn") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "error") {
    SetLogLevel(LogLevel::kError);
  } else {
    std::fprintf(stderr, "[W logging.cc] ignoring CRAS_LOG=%s (want debug|info|warning|error)\n",
                 raw);
    return false;
  }
  return true;
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the leading path for readability.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), base, line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace crbase
