#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace crbase {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the leading path for readability.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), base, line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace crbase
