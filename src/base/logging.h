// Minimal leveled logging and CHECK macros.
//
// Logging is deliberately tiny: benches and tests depend on deterministic
// stdout tables, so diagnostic output goes to stderr and is off below
// kWarning by default.

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace crbase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Applies the CRAS_LOG environment variable (debug|info|warning|error,
// case-insensitive) to the global threshold. Returns true when the variable
// was present and valid; an unset or unrecognized value leaves the level
// untouched (and warns when set but invalid).
bool SetLogLevelFromEnv();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits the message; aborts on kFatal

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows a log statement whose level is below threshold without
// evaluating the streamed expressions' insertion.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal
}  // namespace crbase

#define CRAS_LOG_ENABLED(level) \
  (::crbase::LogLevel::level >= ::crbase::GetLogLevel())

#define CRAS_LOG(level)                                                           \
  !CRAS_LOG_ENABLED(level)                                                        \
      ? (void)0                                                                   \
      : ::crbase::log_internal::Voidify() &                                       \
            ::crbase::log_internal::LogMessage(::crbase::LogLevel::level,         \
                                               __FILE__, __LINE__)                \
                .stream()

// Invariant checks. CHECK is always on: simulator invariants are cheap and a
// silent corruption would invalidate every measurement downstream.
#define CRAS_CHECK(cond)                                                          \
  (cond) ? (void)0                                                                \
         : ::crbase::log_internal::Voidify() &                                    \
               ::crbase::log_internal::LogMessage(::crbase::LogLevel::kFatal,     \
                                                  __FILE__, __LINE__)             \
                   .stream()                                                      \
               << "CHECK failed: " #cond " "

#define CRAS_CHECK_OK(expr)                                                       \
  do {                                                                            \
    const auto& _st = (expr);                                                     \
    CRAS_CHECK(_st.ok()) << _st.ToString();                                       \
  } while (0)

#endif  // SRC_BASE_LOGGING_H_
