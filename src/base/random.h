// Deterministic pseudo-random utilities for workload generation.
//
// Every stochastic element of an experiment takes an explicit seed so that
// each figure is exactly reproducible run to run.

#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace crbase {

// splitmix64: tiny, fast, and statistically solid for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Log-normal with the given *linear-space* mean and coefficient of
  // variation; used for JPEG/MPEG-like variable frame sizes.
  double NextLogNormal(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * NextGaussian());
  }

 private:
  std::uint64_t state_;
};

}  // namespace crbase

#endif  // SRC_BASE_RANDOM_H_
