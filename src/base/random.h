// Deterministic pseudo-random utilities for workload generation.
//
// Every stochastic element of an experiment takes an explicit seed so that
// each figure is exactly reproducible run to run.

#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crbase {

// splitmix64: tiny, fast, and statistically solid for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Log-normal with the given *linear-space* mean and coefficient of
  // variation; used for JPEG/MPEG-like variable frame sizes.
  double NextLogNormal(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * NextGaussian());
  }

 private:
  std::uint64_t state_;
};

// Zipf-distributed rank sampler: P(rank k) proportional to 1/(k+1)^alpha
// over ranks {0, ..., n-1}, rank 0 the most popular. alpha = 0 degenerates
// to uniform; alpha = 1 is the classic video-popularity fit. Deterministic
// for a given seed (inverse-CDF lookup over a precomputed table), so
// benches sweeping alpha reproduce exactly run to run.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double alpha, std::uint64_t seed)
      : rng_(seed), cdf_(n) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
      cdf_[k] = total;
    }
    for (std::size_t k = 0; k < n; ++k) {
      cdf_[k] /= total;
    }
  }

  std::size_t Next() {
    const double u = rng_.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace crbase

#endif  // SRC_BASE_RANDOM_H_
