// Lightweight status / result types.
//
// The simulator and the CRAS server report recoverable failures (admission
// rejection, missing files, out-of-space, ...) through Status and Result<T>
// rather than exceptions, following common practice in OS-level C++.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace crbase {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // no such file / stream / object
  kAlreadyExists,     // name collision on create
  kInvalidArgument,   // malformed request parameters
  kResourceExhausted, // admission test failed, disk full, buffer budget spent
  kFailedPrecondition,// operation not valid in the current state
  kOutOfRange,        // offset past EOF, bad block index
  kDeadlineExceeded,  // retries exhausted on an impaired control path
  kUnimplemented,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

// A success-or-error value with an optional human-readable message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "RESOURCE_EXHAUSTED: admission test failed".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFoundError(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
inline Status AlreadyExistsError(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status InvalidArgumentError(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status ResourceExhaustedError(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status FailedPreconditionError(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status OutOfRangeError(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
inline Status DeadlineExceededError(std::string m) {
  return Status(StatusCode::kDeadlineExceeded, std::move(m));
}
inline Status InternalError(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
inline Status UnimplementedError(std::string m) {
  return Status(StatusCode::kUnimplemented, std::move(m));
}

// A value of type T, or a non-OK Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {}          // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace crbase

// Propagates a non-OK Status from an expression. Usable in functions
// returning Status.
#define CRAS_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::crbase::Status _st = (expr);        \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

#endif  // SRC_BASE_STATUS_H_
