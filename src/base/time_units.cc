#include "src/base/time_units.h"

#include <cmath>
#include <cstdio>

namespace crbase {

std::string FormatDuration(Duration d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  } else if (abs_d >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMilliseconds(d));
  } else if (abs_d >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicroseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace crbase
