// Virtual-time units used throughout the simulator.
//
// All simulated time is kept as a signed 64-bit count of nanoseconds. The
// paper's measurements were taken with a 1 microsecond AM9513 timer board;
// nanosecond resolution is strictly finer, and 64 bits cover ±292 years of
// simulated time, far beyond any experiment here.

#ifndef SRC_BASE_TIME_UNITS_H_
#define SRC_BASE_TIME_UNITS_H_

#include <cstdint>
#include <string>

namespace crbase {

// A point in simulated time, or a span of simulated time, in nanoseconds.
using Time = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration Nanoseconds(std::int64_t n) { return n; }
constexpr Duration Microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration Milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(std::int64_t n) { return n * kSecond; }

// Converts a floating point count of seconds/milliseconds to a Duration,
// rounding to the nearest nanosecond.
constexpr Duration SecondsF(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}
constexpr Duration MillisecondsF(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond) + (ms >= 0 ? 0.5 : -0.5));
}

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMilliseconds(Duration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToMicroseconds(Duration d) { return static_cast<double>(d) / kMicrosecond; }

// Renders a duration with an adaptive unit, e.g. "3.20ms" or "1.500s".
// Intended for logs and bench output, not for parsing.
std::string FormatDuration(Duration d);

}  // namespace crbase

#endif  // SRC_BASE_TIME_UNITS_H_
