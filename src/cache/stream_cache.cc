#include "src/cache/stream_cache.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace crcache {

StreamCache::StreamCache(const CacheOptions& options) : options_(options) {
  CRAS_CHECK(options_.interval_pool_bytes >= 0);
  CRAS_CHECK(options_.prefix_pool_bytes >= 0);
  CRAS_CHECK(options_.popularity_halflife > 0);
}

void StreamCache::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_ = ObsState{};
    return;
  }
  crobs::Registry& metrics = hub->metrics();
  obs_.hub = hub;
  obs_.prefix_hits = metrics.GetCounter("cache.hit_chunks", {{"kind", "prefix"}});
  obs_.interval_hits = metrics.GetCounter("cache.hit_chunks", {{"kind", "interval"}});
  obs_.miss_chunks = metrics.GetCounter("cache.miss_chunks");
  obs_.fallbacks = metrics.GetCounter("cache.fallbacks");
  obs_.pairs_formed = metrics.GetCounter("cache.pairs_formed");
  obs_.pairs_broken = metrics.GetCounter("cache.pairs_broken");
  obs_.pairs_active = metrics.GetGauge("cache.pairs_active");
  obs_.pinned = metrics.GetGauge("cache.pinned_titles");
  obs_.interval_pool = metrics.GetGauge("cache.interval_pool_bytes");
  obs_.prefix_pool = metrics.GetGauge("cache.prefix_pool_bytes");
  UpdateGauges();
}

double StreamCache::DecayedScore(const TitleState& state, crbase::Time now) const {
  if (now <= state.score_at) {
    return state.score;
  }
  const double halflives = static_cast<double>(now - state.score_at) /
                           static_cast<double>(options_.popularity_halflife);
  return state.score * std::exp2(-halflives);
}

std::int64_t StreamCache::OffsetOf(const TitleState& state, std::int64_t chunk) const {
  if (chunk <= 0) {
    return 0;
  }
  if (chunk >= static_cast<std::int64_t>(state.index.count())) {
    return state.index.total_bytes();
  }
  return state.index.at(static_cast<std::size_t>(chunk)).offset;
}

bool StreamCache::TitleNeedsPrefix(const TitleState& state) const {
  for (StreamId id : state.streams) {
    if (streams_.at(id).scheduled_up_to < state.prefix_end_chunk) {
      return true;  // this stream's upcoming reads still land in the prefix
    }
  }
  return false;
}

void StreamCache::Unpin(TitleState& state) {
  state.pinned = false;
  prefix_pool_used_ -= state.prefix_bytes;
  --pinned_titles_;
  ++counters_.titles_unpinned;
}

void StreamCache::MaybePin(TitleId title, TitleState& state, crbase::Time now) {
  if (state.pinned || state.prefix_bytes <= 0 ||
      state.prefix_bytes > options_.prefix_pool_bytes ||
      DecayedScore(state, now) < options_.pin_min_score) {
    return;
  }
  // Make room by evicting strictly colder pinned prefixes no stream still
  // needs; give up (stay unpinned) if the pool can't be cleared.
  while (prefix_pool_used_ + state.prefix_bytes > options_.prefix_pool_bytes) {
    TitleState* coldest = nullptr;
    double coldest_score = DecayedScore(state, now);
    for (auto& [other_id, other] : titles_) {
      if (other_id == title || !other.pinned || TitleNeedsPrefix(other)) {
        continue;
      }
      const double score = DecayedScore(other, now);
      if (score < coldest_score) {
        coldest = &other;
        coldest_score = score;
      }
    }
    if (coldest == nullptr) {
      return;
    }
    Unpin(*coldest);
  }
  state.pinned = true;
  prefix_pool_used_ += state.prefix_bytes;
  ++pinned_titles_;
  ++counters_.titles_pinned;
}

void StreamCache::NoteOpen(TitleId title, const crmedia::ChunkIndex& index,
                           crbase::Time now) {
  if (!options_.enabled) {
    return;
  }
  TitleState& state = titles_.try_emplace(title).first->second;
  if (state.index.empty() && !index.empty()) {
    state.index = index;
    const auto [first, last] = index.RangeByTime(0, options_.prefix_length);
    state.prefix_end_chunk = last;
    state.prefix_bytes = OffsetOf(state, last);
  }
  state.score = DecayedScore(state, now) + 1.0;
  state.score_at = now;
  MaybePin(title, state, now);
  UpdateGauges();
}

OpenDecision StreamCache::PlanOpen(TitleId title, std::int64_t start_chunk) const {
  OpenDecision decision;
  if (!options_.enabled) {
    return decision;
  }
  auto it = titles_.find(title);
  if (it == titles_.end()) {
    return decision;
  }
  const TitleState& state = it->second;
  decision.prefix_pinned = state.pinned;
  // Cache service needs the prefix to bridge the start-up gap: the pair's
  // deposits only begin where the predecessor stands today, and everything
  // before that must come from the pinned prefix.
  if (!state.pinned || start_chunk >= state.prefix_end_chunk) {
    return decision;
  }
  // Nearest chain tail at/ahead of the opening position that is still
  // inside the prefix (so the gap is fully bridged).
  const StreamState* pred = nullptr;
  for (StreamId sid : state.streams) {
    const StreamState& s = streams_.at(sid);
    if (s.follower != kNoStream || s.scheduled_up_to < start_chunk ||
        s.scheduled_up_to > state.prefix_end_chunk) {
      continue;
    }
    if (pred == nullptr || s.scheduled_up_to < pred->scheduled_up_to ||
        (s.scheduled_up_to == pred->scheduled_up_to && s.id > pred->id)) {
      pred = &s;
    }
  }
  if (pred == nullptr) {
    return decision;
  }
  // The pair's memory cost: the byte distance between the play points.
  const std::int64_t reserved =
      OffsetOf(state, pred->scheduled_up_to) - OffsetOf(state, start_chunk);
  if (interval_pool_used_ + reserved > options_.interval_pool_bytes) {
    return decision;  // the pool ranks pairs by memory cost: no room, no pair
  }
  decision.serve = ServeClass::kCached;
  decision.predecessor = pred->id;
  decision.reserved_bytes = reserved;
  return decision;
}

void StreamCache::Register(StreamId id, TitleId title, std::int64_t start_chunk,
                           const OpenDecision& decision, crbase::Time now) {
  if (!options_.enabled) {
    return;
  }
  auto it = titles_.find(title);
  CRAS_CHECK(it != titles_.end()) << "Register before NoteOpen for title " << title;
  TitleState& state = it->second;
  StreamState stream;
  stream.id = id;
  stream.title = title;
  stream.scheduled_up_to = start_chunk;
  if (decision.serve == ServeClass::kCached) {
    StreamState& pred = streams_.at(decision.predecessor);
    CRAS_CHECK(pred.follower == kNoStream) << "predecessor already feeds a follower";
    pred.follower = id;
    stream.cache_served = true;
    stream.predecessor = decision.predecessor;
    stream.valid_from = pred.scheduled_up_to;
    stream.reserved_bytes = decision.reserved_bytes;
    interval_pool_used_ += decision.reserved_bytes;
    ++pairs_active_;
    ++counters_.pairs_formed;
    if (obs_.hub != nullptr) {
      obs_.pairs_formed->Add();
      obs_.hub->flight().Record(crobs::FlightEventKind::kCachePairFormed, id, pred.id,
                                static_cast<double>(decision.reserved_bytes));
    }
  }
  state.streams.push_back(id);
  streams_.emplace(id, stream);
  UpdateGauges();
}

void StreamCache::BreakPair(StreamState& stream, const char* reason) {
  StreamState& pred = streams_.at(stream.predecessor);
  pred.follower = kNoStream;
  interval_pool_used_ -= stream.reserved_bytes;
  --pairs_active_;
  ++counters_.pairs_broken;
  if (obs_.hub != nullptr) {
    obs_.pairs_broken->Add();
    obs_.hub->flight().Record(crobs::FlightEventKind::kCachePairBroken, stream.id, pred.id,
                              static_cast<double>(stream.reserved_bytes), reason);
  }
  stream.predecessor = kNoStream;
  stream.reserved_bytes = 0;
  stream.cache_served = false;
}

std::vector<StreamId> StreamCache::Unregister(StreamId id, crbase::Time now) {
  std::vector<StreamId> orphans;
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return orphans;
  }
  const StreamState dying = it->second;
  TitleState& title = titles_.at(dying.title);

  if (dying.follower != kNoStream) {
    StreamState& follower = streams_.at(dying.follower);
    ++counters_.pairs_broken;
    if (obs_.hub != nullptr) {
      obs_.pairs_broken->Add();
      obs_.hub->flight().Record(crobs::FlightEventKind::kCachePairBroken, follower.id, id,
                                static_cast<double>(follower.reserved_bytes),
                                dying.cache_served ? "pred-closed-merged" : "pred-closed");
    }
    if (dying.cache_served) {
      // Interior chain death: the retained windows [follower..dying] and
      // [dying..predecessor] are contiguous, so they merge into one pair
      // carrying the combined reservation; the follower keeps cache service.
      StreamState& pred = streams_.at(dying.predecessor);
      pred.follower = follower.id;
      follower.predecessor = pred.id;
      follower.reserved_bytes += dying.reserved_bytes;
      ++counters_.pairs_formed;
      if (obs_.hub != nullptr) {
        obs_.pairs_formed->Add();
        obs_.hub->flight().Record(crobs::FlightEventKind::kCachePairFormed, follower.id,
                                  pred.id, static_cast<double>(follower.reserved_bytes));
      }
      // Net pairs: two broken (below for the dying stream), one formed.
    } else {
      // Chain-head death: the feed is gone; the follower falls back to disk.
      interval_pool_used_ -= follower.reserved_bytes;
      follower.reserved_bytes = 0;
      follower.predecessor = kNoStream;
      follower.cache_served = false;
      --pairs_active_;
      ++counters_.fallbacks;
      if (obs_.hub != nullptr) {
        obs_.fallbacks->Add();
        obs_.hub->flight().Record(crobs::FlightEventKind::kCacheFallback, follower.id, 0);
      }
      orphans.push_back(follower.id);
    }
  }
  if (dying.cache_served) {
    // The dying stream's own pair: release unless merged into the follower
    // above (the merge re-charges the bytes under the follower's name).
    StreamState& pred = streams_.at(dying.predecessor);
    if (dying.follower == kNoStream) {
      pred.follower = kNoStream;
    }
    interval_pool_used_ -= dying.reserved_bytes;
    --pairs_active_;
    ++counters_.pairs_broken;
    if (obs_.hub != nullptr) {
      obs_.pairs_broken->Add();
      obs_.hub->flight().Record(crobs::FlightEventKind::kCachePairBroken, id, pred.id,
                                static_cast<double>(dying.reserved_bytes), "closed");
    }
    if (dying.follower != kNoStream) {
      interval_pool_used_ += dying.reserved_bytes;  // transferred, not freed
    }
  }

  title.streams.erase(std::find(title.streams.begin(), title.streams.end(), id));
  streams_.erase(it);
  // The title may have just lost its last in-prefix reader; keep the prefix
  // pinned regardless — eviction is on demand (MaybePin), keyed to
  // popularity, not residency.
  (void)now;
  UpdateGauges();
  return orphans;
}

ServeResult StreamCache::ServableRun(StreamId id, std::int64_t first_chunk,
                                     std::int64_t last_chunk) {
  ServeResult result;
  if (!options_.enabled || first_chunk >= last_chunk) {
    return result;
  }
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return result;
  }
  StreamState& stream = it->second;
  const TitleState& title = titles_.at(stream.title);
  const StreamState* pred =
      stream.predecessor != kNoStream ? &streams_.at(stream.predecessor) : nullptr;
  std::int64_t prefix_hits = 0;
  std::int64_t interval_hits = 0;
  for (std::int64_t c = first_chunk; c < last_chunk; ++c) {
    if (title.pinned && c < title.prefix_end_chunk) {
      ++prefix_hits;
      continue;
    }
    if (stream.cache_served && pred != nullptr && c >= stream.valid_from &&
        c < pred->scheduled_up_to) {
      ++interval_hits;
      continue;
    }
    break;
  }
  result.chunks = prefix_hits + interval_hits;
  counters_.prefix_hit_chunks += prefix_hits;
  counters_.interval_hit_chunks += interval_hits;
  if (obs_.hub != nullptr) {
    if (prefix_hits > 0) {
      obs_.prefix_hits->Add(prefix_hits);
    }
    if (interval_hits > 0) {
      obs_.interval_hits->Add(interval_hits);
    }
  }
  if (stream.cache_served && result.chunks < last_chunk - first_chunk) {
    // The follower outran its feed (stalled or stopped predecessor). The
    // missed tail rides the admission model's fallback reserve this once;
    // demote the stream so the reserve is never claimed twice.
    const std::int64_t missed = last_chunk - first_chunk - result.chunks;
    counters_.miss_chunks += missed;
    ++counters_.fallbacks;
    if (obs_.hub != nullptr) {
      obs_.miss_chunks->Add(missed);
      obs_.fallbacks->Add();
      obs_.hub->flight().Record(crobs::FlightEventKind::kCacheFallback, id, missed);
    }
    BreakPair(stream, "starved");
    result.demoted = true;
    UpdateGauges();
  }
  return result;
}

void StreamCache::NoteScheduled(StreamId id, std::int64_t up_to_chunk) {
  if (!options_.enabled) {
    return;
  }
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return;
  }
  it->second.scheduled_up_to = std::max(it->second.scheduled_up_to, up_to_chunk);
}

bool StreamCache::HasFollower(StreamId id) const {
  auto it = streams_.find(id);
  return it != streams_.end() && it->second.follower != kNoStream;
}

bool StreamCache::cache_served(StreamId id) const {
  auto it = streams_.find(id);
  return it != streams_.end() && it->second.cache_served;
}

bool StreamCache::prefix_pinned(TitleId title) const {
  auto it = titles_.find(title);
  return it != titles_.end() && it->second.pinned;
}

std::int64_t StreamCache::prefix_end_chunk(TitleId title) const {
  auto it = titles_.find(title);
  if (it == titles_.end() || !it->second.pinned) {
    return 0;
  }
  return it->second.prefix_end_chunk;
}

double StreamCache::popularity(TitleId title, crbase::Time now) const {
  auto it = titles_.find(title);
  return it == titles_.end() ? 0.0 : DecayedScore(it->second, now);
}

void StreamCache::UpdateGauges() {
  if (obs_.hub == nullptr) {
    return;
  }
  obs_.pairs_active->Set(static_cast<double>(pairs_active_));
  obs_.pinned->Set(static_cast<double>(pinned_titles_));
  obs_.interval_pool->Set(static_cast<double>(interval_pool_used_));
  obs_.prefix_pool->Set(static_cast<double>(prefix_pool_used_));
}

}  // namespace crcache
