// Stream buffer cache: interval caching + popularity-aware prefix caching.
//
// CRAS caps capacity at the admission formulas' ~14 streams/disk because
// every admitted stream pays full disk bandwidth, however popular its title.
// This subsystem sits between the prefetch scheduler and the volume and
// breaks that ceiling for skewed workloads, following the shape of interval
// caching (Dan & Sitaram) with a prefix/popularity front end (Jayarekha &
// Nair):
//
//   Interval caching. When a stream opens a title that another stream is
//   already playing a little ahead, the pair (predecessor, follower) shares
//   the predecessor's disk reads: the blocks the predecessor just read are
//   retained in a bounded *interval pool* until the follower consumes them,
//   so the follower's steady-state interval I/O is satisfied from memory
//   with zero disk time. The memory cost of a pair is the byte distance
//   between the two play points — exactly the interval-caching ranking
//   metric: short gaps are cheap, so a bounded pool admits the pairs with
//   the smallest memory-per-stream first (pool-full pairs simply don't
//   form). Streams chain: the follower of one pair can be the predecessor
//   of the next, so N consecutive streams of a hot title cost one stream's
//   disk bandwidth plus the chain's gap bytes.
//
//   Prefix caching. A follower can only join a predecessor it trails
//   *closely*; a flash crowd arrives faster than that. An EWMA popularity
//   tracker (per-title open rate, half-life Options::popularity_halflife)
//   pins the first Options::prefix_length of hot titles in a separately
//   budgeted *prefix pool*. Any stream positioned inside a pinned prefix is
//   served those chunks from memory, which (a) absorbs the start-up burst
//   and (b) bridges a new follower onto a predecessor up to a full prefix
//   ahead — the pair's retained window starts where the predecessor stood
//   at formation, and the prefix covers everything before that.
//
// The cache never copies data (the simulation carries no payloads); it is a
// bookkeeping layer deciding which scheduled reads need no disk time. The
// server charges cache-served streams accordingly at admission
// (crvol::VolumeAdmissionModel::AdmissibleCached): buffer memory plus a
// single shared fallback reserve instead of per-disk interval time.
//
// Pairs are broken — and followers *fall back to disk* — when a predecessor
// closes, is shed, is reaped, or stalls (the follower's window outruns the
// deposits). The server then re-runs admission: the fallen-back stream is
// either carried by the freed/reserved disk bandwidth or shed. Nothing is
// ever served late silently; a cache miss costs disk time the admission
// model already reserved.

#ifndef SRC_CACHE_STREAM_CACHE_H_
#define SRC_CACHE_STREAM_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/time_units.h"
#include "src/media/chunk_index.h"
#include "src/obs/obs.h"

namespace crcache {

using StreamId = std::int64_t;
using TitleId = std::int64_t;  // the title's inode number
inline constexpr StreamId kNoStream = -1;

struct CacheOptions {
  bool enabled = false;
  // Interval pool: total bytes of predecessor-read blocks retained for
  // followers. A pair reserves its gap bytes here for its whole life.
  std::int64_t interval_pool_bytes = 32 * crbase::kMiB;
  // Prefix pool: total bytes of pinned title prefixes.
  std::int64_t prefix_pool_bytes = 32 * crbase::kMiB;
  // How much of a hot title's head is pinned while it stays popular.
  crbase::Duration prefix_length = crbase::Seconds(20);
  // EWMA half-life of the per-title open-rate score.
  crbase::Duration popularity_halflife = crbase::Seconds(60);
  // Minimum decayed score (≈ opens per half-life) before a prefix pins.
  double pin_min_score = 1.5;
};

enum class ServeClass {
  kDisk,    // charged per-disk interval time (the classic admission path)
  kCached,  // charged buffer memory + the shared fallback reserve
};

// The cache's verdict on an opening stream, input to admission and to
// Register(). Computed by PlanOpen() without mutating anything, so a
// rejected open leaves no trace.
struct OpenDecision {
  ServeClass serve = ServeClass::kDisk;
  StreamId predecessor = kNoStream;   // set when serve == kCached
  std::int64_t reserved_bytes = 0;    // interval-pool charge of the pair
  bool prefix_pinned = false;         // title's prefix resident at plan time
};

// What ServableRun() found for one scheduled window.
struct ServeResult {
  std::int64_t chunks = 0;  // leading chunks servable with zero disk time
  // A cache-served stream's window outran its feed: the cache demoted it to
  // disk service (pair broken, reservation released). The caller must re-run
  // admission — the tail of this window rides the fallback reserve, but from
  // the next interval on the stream is charged full disk time.
  bool demoted = false;
};

struct CacheCounters {
  std::int64_t prefix_hit_chunks = 0;
  std::int64_t interval_hit_chunks = 0;
  std::int64_t miss_chunks = 0;   // cache-served windows only
  std::int64_t fallbacks = 0;     // streams demoted to disk service
  std::int64_t pairs_formed = 0;
  std::int64_t pairs_broken = 0;
  std::int64_t titles_pinned = 0;
  std::int64_t titles_unpinned = 0;
};

class StreamCache {
 public:
  explicit StreamCache(const CacheOptions& options);
  StreamCache(const StreamCache&) = delete;
  StreamCache& operator=(const StreamCache&) = delete;

  // Registers counters (hits/misses/fallbacks/pair churn) and gauges (pool
  // occupancy, active pairs, pinned titles), plus flight-recorder events for
  // pair formation/breakage and fallbacks.
  void AttachObs(crobs::Hub* hub);

  // ---- popularity / prefix front end ----
  // Called on every read open *before* PlanOpen: bumps the title's EWMA
  // score and pins/evicts prefixes. First call for a title retains a copy
  // of its chunk index. The pinned prefix is modelled as instantly resident
  // (filled by a background non-real-time read the admission formulas'
  // B_other term already budgets for; see DESIGN.md §5.11).
  void NoteOpen(TitleId title, const crmedia::ChunkIndex& index, crbase::Time now);

  // ---- pair lifecycle ----
  // Plans service for a stream opening `title` at `start_chunk`. Pure.
  OpenDecision PlanOpen(TitleId title, std::int64_t start_chunk) const;
  // Registers an admitted stream. Every read stream registers — disk-served
  // streams are the chain heads followers attach to. A kCached decision
  // links the pair and charges the interval pool.
  void Register(StreamId id, TitleId title, std::int64_t start_chunk,
                const OpenDecision& decision, crbase::Time now);
  // Removes a stream (close/shed/reap/seek). An interior chain death merges
  // its neighbours into one pair (the retained windows are contiguous); a
  // chain-head death orphans its follower. Returns the streams demoted to
  // disk service — the caller must flip their serving class and re-run
  // admission (re-admit on the fallback reserve, or shed).
  std::vector<StreamId> Unregister(StreamId id, crbase::Time now);

  // ---- scheduler hooks ----
  // The longest leading run of [first_chunk, last_chunk) servable with zero
  // disk time: pinned-prefix chunks (any stream of the title), then
  // deposited interval-pool chunks (cache-served streams). Only the leading
  // run counts so the disk remainder stays one contiguous range.
  ServeResult ServableRun(StreamId id, std::int64_t first_chunk, std::int64_t last_chunk);
  // Records that the stream's reads up to `up_to_chunk` (exclusive) have
  // been issued this boundary — the deposit feeding its follower.
  void NoteScheduled(StreamId id, std::int64_t up_to_chunk);

  // ---- introspection ----
  bool HasFollower(StreamId id) const;
  bool cache_served(StreamId id) const;
  bool prefix_pinned(TitleId title) const;
  // Pinned-prefix coverage: chunks [0, end) are resident; 0 when the title
  // is unknown or unpinned. The multicast group manager tests late-joiner
  // bridges against this bound.
  std::int64_t prefix_end_chunk(TitleId title) const;
  double popularity(TitleId title, crbase::Time now) const;
  std::int64_t pairs_active() const { return pairs_active_; }
  std::int64_t pinned_titles() const { return pinned_titles_; }
  std::int64_t interval_pool_used() const { return interval_pool_used_; }
  std::int64_t prefix_pool_used() const { return prefix_pool_used_; }
  const CacheCounters& counters() const { return counters_; }
  const CacheOptions& options() const { return options_; }

 private:
  struct TitleState {
    crmedia::ChunkIndex index;
    std::int64_t prefix_end_chunk = 0;  // prefix covers chunks [0, end)
    std::int64_t prefix_bytes = 0;
    double score = 0;
    crbase::Time score_at = 0;
    bool pinned = false;
    std::vector<StreamId> streams;  // registered streams of this title
  };

  struct StreamState {
    StreamId id = kNoStream;
    TitleId title = 0;
    bool cache_served = false;
    StreamId predecessor = kNoStream;  // feed (cache-served streams only)
    StreamId follower = kNoStream;     // at most one: chains, not fan-out
    // Deposits valid from here: where the predecessor stood at pair
    // formation. Chunks before this are covered by the pinned prefix.
    std::int64_t valid_from = 0;
    std::int64_t scheduled_up_to = 0;  // reads issued up to here (exclusive)
    std::int64_t reserved_bytes = 0;   // this pair's interval-pool charge
  };

  double DecayedScore(const TitleState& state, crbase::Time now) const;
  // Byte offset of `chunk` in the title (total size at/past the end).
  std::int64_t OffsetOf(const TitleState& state, std::int64_t chunk) const;
  void MaybePin(TitleId title, TitleState& state, crbase::Time now);
  void Unpin(TitleState& state);
  bool TitleNeedsPrefix(const TitleState& state) const;
  // Breaks the (stream, stream.predecessor) pair and demotes the stream to
  // disk service. `reason` labels the flight event.
  void BreakPair(StreamState& stream, const char* reason);
  void UpdateGauges();

  CacheOptions options_;
  std::map<TitleId, TitleState> titles_;
  std::map<StreamId, StreamState> streams_;
  std::int64_t interval_pool_used_ = 0;
  std::int64_t prefix_pool_used_ = 0;
  std::int64_t pairs_active_ = 0;
  std::int64_t pinned_titles_ = 0;
  CacheCounters counters_;

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* prefix_hits = nullptr;
    crobs::Counter* interval_hits = nullptr;
    crobs::Counter* miss_chunks = nullptr;
    crobs::Counter* fallbacks = nullptr;
    crobs::Counter* pairs_formed = nullptr;
    crobs::Counter* pairs_broken = nullptr;
    crobs::Gauge* pairs_active = nullptr;
    crobs::Gauge* pinned = nullptr;
    crobs::Gauge* interval_pool = nullptr;
    crobs::Gauge* prefix_pool = nullptr;
  };
  ObsState obs_;
};

}  // namespace crcache

#endif  // SRC_CACHE_STREAM_CACHE_H_
