#include "src/chaos/chaos.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "src/base/logging.h"
#include "src/base/random.h"
#include "src/cache/stream_cache.h"
#include "src/mcast/group_manager.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/ledger.h"

namespace crchaos {

namespace {

// Kinds the generator can spend budget on; recoveries are free.
enum class Pick {
  kFailStop,
  kSlowDisk,
  kTransient,
  kLinkLoss,
  kLinkBurst,
  kLinkJitter,
  kLinkDerate,
  kControlDrop,
  kClientCrash,
};

double CostOf(Pick pick) {
  switch (pick) {
    case Pick::kFailStop:
      return 3;
    case Pick::kSlowDisk:
    case Pick::kLinkBurst:
    case Pick::kControlDrop:
    case Pick::kClientCrash:
      return 2;
    case Pick::kTransient:
    case Pick::kLinkLoss:
    case Pick::kLinkJitter:
    case Pick::kLinkDerate:
      return 1;
  }
  return 1;
}

}  // namespace

crfault::FaultPlan GenerateChaosSchedule(const ChaosConfig& config) {
  CRAS_CHECK(config.disks >= 1);
  CRAS_CHECK(config.horizon > config.start);
  CRAS_CHECK(config.max_concurrent >= 1);
  CRAS_CHECK(config.min_gap > 0);
  CRAS_CHECK(config.max_gap >= config.min_gap);
  CRAS_CHECK(config.max_window >= config.min_window);
  CRAS_CHECK(config.min_window > 0);

  // Offset the seed stream so chaos draws never collide with a workload
  // generator seeded with the same small integer.
  crbase::Rng rng(config.seed ^ 0xc8a05c8a05ULL);
  crfault::FaultPlan plan;

  double points = config.intensity * crbase::ToSeconds(config.horizon - config.start);

  // Per-disk unhealthy-until instant (0 = healthy), and whether the current
  // window is a fail-stop (the unrecoverable kind on a parity group).
  std::vector<crbase::Time> disk_until(static_cast<std::size_t>(config.disks), 0);
  std::vector<bool> disk_failed(static_cast<std::size_t>(config.disks), false);
  crbase::Time data_until = 0;
  crbase::Time control_until = 0;
  std::vector<bool> crashed(config.clients > 0 ? static_cast<std::size_t>(config.clients)
                                               : 0,
                            false);
  int crashes = 0;
  // Keep at least one viewer alive to teardown.
  const int crash_budget =
      std::min(config.max_client_crashes, std::max(0, config.clients - 1));

  const auto draw_window = [&]() -> crbase::Duration {
    const crbase::Duration spread = config.max_window - config.min_window;
    return config.min_window +
           (spread > 0 ? static_cast<crbase::Duration>(
                             rng.NextBelow(static_cast<std::uint64_t>(spread) + 1))
                       : 0);
  };

  crbase::Time t = config.start;
  while (points > 0 && t < config.horizon) {
    int active = 0;
    bool any_unhealthy = false;
    std::vector<int> healthy;
    for (int d = 0; d < config.disks; ++d) {
      if (disk_until[static_cast<std::size_t>(d)] > t) {
        ++active;
        any_unhealthy = true;
      } else {
        healthy.push_back(d);
      }
    }
    if (data_until > t) {
      ++active;
    }
    if (control_until > t) {
      ++active;
    }

    std::vector<Pick> candidates;
    if (active < config.max_concurrent) {
      // Without allow_double_fault at most one disk is unhealthy at a time:
      // a parity group then never faces two failed members at once.
      const bool disk_ok =
          !healthy.empty() && (config.allow_double_fault || !any_unhealthy);
      if (disk_ok) {
        candidates.push_back(Pick::kFailStop);
        candidates.push_back(Pick::kSlowDisk);
        candidates.push_back(Pick::kTransient);
      }
      if (config.data_link_faults && data_until <= t) {
        candidates.push_back(Pick::kLinkLoss);
        candidates.push_back(Pick::kLinkBurst);
        candidates.push_back(Pick::kLinkJitter);
        candidates.push_back(Pick::kLinkDerate);
      }
      if (config.control_faults && control_until <= t) {
        candidates.push_back(Pick::kControlDrop);
      }
    }
    // A client crash is a load change, not an infrastructure failure: it
    // does not occupy a concurrency slot.
    if (crashes < crash_budget) {
      candidates.push_back(Pick::kClientCrash);
    }

    if (!candidates.empty()) {
      const Pick pick = candidates[rng.NextBelow(candidates.size())];
      switch (pick) {
        case Pick::kFailStop: {
          const int d = healthy[rng.NextBelow(healthy.size())];
          const crbase::Duration w = draw_window();
          plan.FailStop(t, d).Recover(t + w, d);
          disk_until[static_cast<std::size_t>(d)] = t + w;
          disk_failed[static_cast<std::size_t>(d)] = true;
          break;
        }
        case Pick::kSlowDisk: {
          const int d = healthy[rng.NextBelow(healthy.size())];
          const crbase::Duration w = draw_window();
          plan.SlowDisk(t, d, 1.5 + 2.5 * rng.NextDouble()).Recover(t + w, d);
          disk_until[static_cast<std::size_t>(d)] = t + w;
          disk_failed[static_cast<std::size_t>(d)] = false;
          break;
        }
        case Pick::kTransient: {
          // Self-clearing after request_count requests; no recovery event
          // and no concurrency window.
          const int d = healthy[rng.NextBelow(healthy.size())];
          plan.Transient(t, d,
                         crbase::Milliseconds(20 + static_cast<std::int64_t>(
                                                       rng.NextBelow(60))),
                         2 + static_cast<int>(rng.NextBelow(6)));
          break;
        }
        case Pick::kLinkLoss: {
          const crbase::Duration w = draw_window();
          plan.LinkLoss(t, 0.02 + 0.08 * rng.NextDouble()).LinkRecover(t + w);
          data_until = t + w;
          break;
        }
        case Pick::kLinkBurst: {
          const crbase::Duration w = draw_window();
          plan.LinkBurstLoss(t, 0.004 + 0.01 * rng.NextDouble(),
                             0.2 + 0.3 * rng.NextDouble(),
                             0.3 + 0.4 * rng.NextDouble())
              .LinkRecover(t + w);
          data_until = t + w;
          break;
        }
        case Pick::kLinkJitter: {
          const crbase::Duration w = draw_window();
          plan.LinkJitter(t,
                          crbase::Milliseconds(
                              5 + static_cast<std::int64_t>(rng.NextBelow(25))),
                          0.1 * rng.NextDouble())
              .LinkRecover(t + w);
          data_until = t + w;
          break;
        }
        case Pick::kLinkDerate: {
          const crbase::Duration w = draw_window();
          plan.LinkDerate(t, 1.5 + 1.5 * rng.NextDouble()).LinkRecover(t + w);
          data_until = t + w;
          break;
        }
        case Pick::kControlDrop: {
          const crbase::Duration w = draw_window();
          plan.ControlDrop(t, 0.1 + 0.25 * rng.NextDouble(),
                           0.05 + 0.15 * rng.NextDouble())
              .ControlRecover(t + w);
          control_until = t + w;
          break;
        }
        case Pick::kClientCrash: {
          std::vector<int> alive;
          for (int c = 0; c < config.clients; ++c) {
            if (!crashed[static_cast<std::size_t>(c)]) {
              alive.push_back(c);
            }
          }
          const int c = alive[rng.NextBelow(alive.size())];
          plan.ClientCrash(t, c);
          crashed[static_cast<std::size_t>(c)] = true;
          ++crashes;
          break;
        }
      }
      points -= CostOf(pick);
    }

    const crbase::Duration spread = config.max_gap - config.min_gap;
    t += config.min_gap +
         (spread > 0 ? static_cast<crbase::Duration>(
                           rng.NextBelow(static_cast<std::uint64_t>(spread) + 1))
                     : 0);
  }

  return plan;
}

namespace {

bool IsMemberChangingFault(const std::string& detail) {
  return detail == "fail_stop" || detail == "slow_disk" || detail == "recover";
}

bool IsDiskFaultDetail(const std::string& detail) {
  return detail == "fail_stop" || detail == "slow_disk" || detail == "recover" ||
         detail == "transient";
}

bool IsMissCause(crobs::FlightEventKind kind) {
  switch (kind) {
    case crobs::FlightEventKind::kFaultInjected:
    case crobs::FlightEventKind::kMemberChange:
    case crobs::FlightEventKind::kStreamShed:
    case crobs::FlightEventKind::kLeaseReap:
    case crobs::FlightEventKind::kNakGiveUp:
    case crobs::FlightEventKind::kCachePairBroken:
    case crobs::FlightEventKind::kCacheFallback:
    case crobs::FlightEventKind::kGroupLeft:
    case crobs::FlightEventKind::kRepairDecodeFailed:
      return true;
    default:
      return false;
  }
}

}  // namespace

AuditReport AuditRun(const AuditInput& input) {
  CRAS_CHECK(input.hub != nullptr);
  CRAS_CHECK(input.server != nullptr);
  AuditReport report;
  const auto violate = [&report](std::string invariant, std::string detail) {
    report.violations.push_back({std::move(invariant), std::move(detail)});
  };

  const crobs::FlightRecorder& flight = input.hub->flight();
  const std::deque<crobs::FlightEvent>& events = flight.events();
  // A truncated ring cannot prove an event's *absence*; absence-based checks
  // are skipped then (presence-based ones still hold).
  const bool ring_truncated = flight.dropped() > 0;
  report.ring_truncated = ring_truncated;
  report.flight_dropped = flight.dropped();

  // --- 1. Every admitted stream reached exactly one terminal state. -------
  for (const SessionFate& fate : input.fates) {
    const std::string tag = "session " + std::to_string(fate.id);
    if (input.server->HasSession(fate.id)) {
      violate("wedged_session", tag + " still open at teardown");
      continue;
    }
    const bool shed = input.server->WasShed(fate.id);
    const bool reaped = input.server->WasReaped(fate.id);
    if (!fate.closed && !shed && !reaped) {
      violate("no_terminal_state",
              tag + " vanished without a close, a shed, or a reap");
    }
    if (input.expect_no_resume && shed && reaped) {
      violate("conflicting_terminal", tag + " both shed and reaped without a resume");
    }
  }

  // --- 2. Every missed frame has an attributable cause. -------------------
  if (input.frames_missed > 0 && !ring_truncated) {
    bool attributed = false;
    for (const crobs::FlightEvent& event : events) {
      // The ring is time-ordered; causes must precede (or coincide with,
      // within a scheduling tick) the first miss.
      if (input.first_miss_at >= 0 &&
          event.ts > input.first_miss_at + crbase::Milliseconds(1)) {
        break;
      }
      if (IsMissCause(event.kind)) {
        attributed = true;
        break;
      }
    }
    if (!attributed) {
      violate("unattributed_miss",
              std::to_string(input.frames_missed) +
                  " frame(s) missed with no cause event at or before the first miss");
    }
  }

  // --- 3. Reservations balance to zero at teardown. -----------------------
  if (input.server->open_sessions() == 0) {
    if (input.server->buffer_bytes_reserved() != 0) {
      violate("buffer_reservation_leak",
              std::to_string(input.server->buffer_bytes_reserved()) +
                  " buffer bytes still reserved with no open sessions");
    }
    if (const crcache::StreamCache* cache = input.server->cache();
        cache != nullptr && cache->interval_pool_used() != 0) {
      // The prefix pool stays pinned across sessions by design; only the
      // per-pair interval pool must drain.
      violate("cache_reservation_leak",
              std::to_string(cache->interval_pool_used()) +
                  " interval-pool bytes still held with no open sessions");
    }
  }

  // Disturbance timeline: every injected fault and member change, plus the
  // set of disks that were ever targeted by a disk fault.
  std::set<std::int64_t> faulted_disks;
  std::vector<crbase::Time> disturbances;
  std::vector<crbase::Time> resettles;
  for (const crobs::FlightEvent& event : events) {
    if (event.kind == crobs::FlightEventKind::kFaultInjected) {
      disturbances.push_back(event.ts);
      if (IsDiskFaultDetail(event.detail)) {
        faulted_disks.insert(event.a);
      }
    } else if (event.kind == crobs::FlightEventKind::kMemberChange) {
      disturbances.push_back(event.ts);
    } else if (event.kind == crobs::FlightEventKind::kResettled) {
      resettles.push_back(event.ts);
    }
  }

  // --- 4. Zero budget overruns on never-faulted disks. --------------------
  if (const crobs::BudgetLedger* ledger = input.hub->ledger()) {
    for (const crobs::BudgetLedger::IntervalRow& row : ledger->rows()) {
      if (!row.closed) {
        continue;
      }
      const bool near_disturbance =
          std::any_of(disturbances.begin(), disturbances.end(),
                      [&row, &input](crbase::Time ts) {
                        return ts >= row.began_at - input.settle_grace &&
                               ts <= row.began_at + input.settle_grace;
                      });
      if (near_disturbance) {
        continue;
      }
      for (const crobs::BudgetLedger::DiskRow& disk : row.disks) {
        if (disk.overrun() && faulted_disks.count(disk.disk) == 0) {
          violate("healthy_disk_overrun",
                  "disk " + std::to_string(disk.disk) + " slot " +
                      std::to_string(row.slot) + ": actual " +
                      std::to_string(disk.actual.total_ms()) + " ms > predicted " +
                      std::to_string(disk.predicted.total_ms()) +
                      " ms with no fault on that disk");
        }
      }
    }
  }

  // --- 5. Multicast membership conservation. ------------------------------
  if (const crmcast::GroupManager* groups = input.server->mcast_groups()) {
    const crmcast::GroupManagerStats& stats = groups->stats();
    if (stats.members_joined != stats.members_left) {
      violate("mcast_member_leak",
              std::to_string(stats.members_joined) + " joins vs " +
                  std::to_string(stats.members_left) +
                  " leaves (incl. demotions and completions)");
    }
    if (stats.groups_formed != stats.groups_dissolved ||
        groups->group_count() != 0) {
      violate("mcast_group_leak",
              std::to_string(stats.groups_formed) + " formed, " +
                  std::to_string(stats.groups_dissolved) + " dissolved, " +
                  std::to_string(groups->group_count()) + " still alive");
    }
  }

  // --- 6. Parity double-fault envelope. -----------------------------------
  if (input.parity) {
    std::set<std::int64_t> failed_now;
    bool flagged = false;
    for (const crobs::FlightEvent& event : events) {
      if (event.kind != crobs::FlightEventKind::kMemberChange) {
        continue;
      }
      if (event.detail == "failed") {
        failed_now.insert(event.a);
      } else {
        failed_now.erase(event.a);
      }
      if (!flagged && failed_now.size() >= 2) {
        std::string disks;
        for (const std::int64_t d : failed_now) {
          disks += (disks.empty() ? "" : ",") + std::to_string(d);
        }
        violate("unrecoverable_double_fault",
                "disks {" + disks + "} failed simultaneously on a parity volume");
        flagged = true;
      }
    }
  }

  // --- 7. Every admission-affecting fault re-settles. ---------------------
  for (const crobs::FlightEvent& event : events) {
    if (event.kind != crobs::FlightEventKind::kFaultInjected ||
        !IsMemberChangingFault(event.detail)) {
      continue;
    }
    const auto it = std::lower_bound(resettles.begin(), resettles.end(), event.ts);
    if (it != resettles.end()) {
      report.recovery_latencies_ms.push_back(crbase::ToMilliseconds(*it - event.ts));
    } else if (!ring_truncated) {
      violate("fault_without_resettle",
              event.detail + " on disk " + std::to_string(event.a) + " at " +
                  std::to_string(crbase::ToMilliseconds(event.ts)) +
                  " ms never re-settled admission");
    }
  }

  // --- 8. Frame latency attribution conserves end-to-end time. ------------
  if (const crobs::FrameTracer& frames = input.hub->frames(); frames.enabled()) {
    const crobs::StageAttribution& totals = frames.Totals();
    if (totals.conservation_violations > 0) {
      violate("frame_attribution",
              std::to_string(totals.conservation_violations) +
                  " frame(s) resolved with non-monotone stage stamps");
    }
    if (totals.unattributed_ns != 0) {
      violate("frame_attribution",
              std::to_string(totals.unattributed_ns) +
                  " ns of end-to-end latency attributed to no stage");
    }
  }

  return report;
}

std::string AuditReport::Summary() const {
  if (ok()) {
    return "ok";
  }
  std::string out = std::to_string(violations.size()) + " violation(s):";
  for (const Violation& violation : violations) {
    out += " " + violation.invariant + " [" + violation.detail + "];";
  }
  return out;
}

bool DumpIfViolated(const crobs::Hub& hub, const AuditReport& report,
                    const std::string& path) {
  if (report.ok()) {
    return false;
  }
  return hub.WriteFlightDump(path, "chaos audit: " + report.Summary());
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(pct / 100.0 * static_cast<double>(values.size()));
  const auto index = std::min(values.size() - 1,
                              static_cast<std::size_t>(std::max(rank - 1, 0.0)));
  return values[index];
}

}  // namespace crchaos
