// Chaos campaign engine: seeded fault schedules + cross-layer invariant audit.
//
// A chaos campaign answers a question no single-fault test can: does the
// server stay *conservation-correct* under randomized, overlapping
// disturbances? Two pieces:
//
//   GenerateChaosSchedule — expands one 64-bit seed into a crfault::FaultPlan
//     drawn from the full fault vocabulary (disk fail-stop/transient/slow,
//     link loss/burst/jitter/derate, control-plane drop+duplication, client
//     crash) under explicit constraints: a total intensity budget, a cap on
//     concurrently-active failures, and — unless the campaign is explicitly
//     shed-testing — never an unrecoverable double fault (two failed members
//     of one parity group at once). The same seed always yields the same
//     plan, so any failing campaign replays exactly from its seed.
//
//   AuditRun — consumes the flight recorder, metrics and budget ledger after
//     a run and checks conservation laws that must hold across layers no
//     matter what was injected:
//       * every admitted stream reached a terminal state (closed, shed, or
//         reaped) and none is still open ("wedged") at teardown;
//       * every missed frame has an attributable cause event at or before
//         the first miss;
//       * buffer and cache *interval* reservations balance to zero once all
//         sessions are gone (the cache prefix pool stays pinned by design
//         and is exempt);
//       * the budget ledger shows zero overruns on disks that were never
//         faulted, outside a settle grace around each disturbance;
//       * multicast joins == leaves and groups formed == dissolved;
//       * on a parity volume, the member-change history never shows two
//         simultaneously-failed members (the unrecoverable envelope the
//         generator promises to avoid — a deliberate double-fault campaign
//         uses exactly this check to prove the auditor bites).
//     Any violation is returned with enough detail to dump the flight
//     recorder (DumpIfViolated) and fail the run. The report also carries
//     fault -> next-kResettled recovery latencies for percentile reporting.

#ifndef SRC_CHAOS_CHAOS_H_
#define SRC_CHAOS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace crchaos {

// Knobs for one generated campaign. Defaults describe a ~15-simulated-second
// disturbance window against a 4-disk parity volume.
struct ChaosConfig {
  std::uint64_t seed = 1;

  // Faults land in [start, horizon); recoveries may extend past horizon by
  // at most max_window. Leave warm-up before `start` so admission settles.
  crbase::Time start = crbase::Seconds(3);
  crbase::Time horizon = crbase::Seconds(18);

  // Intensity budget: the plan spends roughly intensity points per
  // simulated second of the window, each fault costing a kind-specific
  // weight (fail-stop is the most expensive). 1.0 is the default campaign.
  double intensity = 1.0;

  // Concurrently-active *infrastructure* failures (disk windows + a link
  // window + a control window). Client crashes are a load change, not an
  // infrastructure failure, and do not occupy a slot.
  int max_concurrent = 2;

  // When false (default), at most one disk is unhealthy at any instant, so
  // a parity group never sees an unrecoverable double fault. Shed-testing
  // campaigns set this to true — and the auditor will flag the envelope.
  bool allow_double_fault = false;

  int disks = 4;

  // Crash-able viewer population; 0 disables client-crash faults. At most
  // max_client_crashes fire, each against a distinct client index, so some
  // viewers always survive to teardown.
  int clients = 0;
  int max_client_crashes = 2;

  bool data_link_faults = true;
  bool control_faults = true;

  // Spacing between consecutive fault instants, and the duration window of
  // every windowed fault (its recovery event lands inside it).
  crbase::Duration min_gap = crbase::Milliseconds(250);
  crbase::Duration max_gap = crbase::Milliseconds(1500);
  crbase::Duration min_window = crbase::Seconds(2);
  crbase::Duration max_window = crbase::Seconds(5);
};

// Deterministically expands config.seed into a fault plan honoring the
// constraints above. Recovery events cost no budget.
crfault::FaultPlan GenerateChaosSchedule(const ChaosConfig& config);

// What the rig knows about one admitted session at teardown.
struct SessionFate {
  cras::SessionId id = cras::kInvalidSession;
  // The client's Close completed (including a close that raced the reaper —
  // the session is gone either way, which is what Close is for).
  bool closed = false;
  // The client crashed mid-run and never sent Close; the lease reaper (or
  // the shedder) must have collected the session.
  bool crashed = false;
};

struct AuditInput {
  const crobs::Hub* hub = nullptr;
  const cras::CrasServer* server = nullptr;
  std::vector<SessionFate> fates;  // one per admitted session

  // Playback outcome observed by the rig's viewers.
  std::int64_t frames_missed = 0;
  crbase::Time first_miss_at = -1;  // < 0: no miss timestamp recorded

  // The volume has a parity member, so two simultaneously-failed disks are
  // unrecoverable; enables the double-fault envelope check.
  bool parity = false;

  // Ledger rows whose interval began within this long of a disturbance are
  // exempt from the healthy-disk overrun check: their prediction predates
  // the disturbance their actuals include.
  crbase::Duration settle_grace = crbase::Seconds(2);

  // The rig never resumes reaped sessions, so a session marked both shed
  // and reaped indicates double bookkeeping. Set false for rigs that call
  // Reconnect.
  bool expect_no_resume = true;
};

struct Violation {
  std::string invariant;  // short slug, e.g. "wedged_session"
  std::string detail;
};

struct AuditReport {
  std::vector<Violation> violations;
  // Per admission-affecting disk fault: gap to the next kResettled, ms.
  std::vector<double> recovery_latencies_ms;
  // The flight ring overwrote events before the audit read it: every
  // absence-based check was skipped, so an "ok" verdict is weaker. Rigs
  // must surface this (a truncated ring silently passing is itself a bug).
  bool ring_truncated = false;
  std::int64_t flight_dropped = 0;  // events the ring overwrote
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

AuditReport AuditRun(const AuditInput& input);

// If the report has violations, writes the hub's flight dump to `path`
// (reason = the report summary) and returns true.
bool DumpIfViolated(const crobs::Hub& hub, const AuditReport& report,
                    const std::string& path);

// Nearest-rank percentile (pct in [0, 100]); 0 on an empty sample.
double Percentile(std::vector<double> values, double pct);

}  // namespace crchaos

#endif  // SRC_CHAOS_CHAOS_H_
