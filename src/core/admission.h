// Forwarding header. The single-disk admission test (paper formulas
// (1)-(15), class cras::AdmissionModel) moved to src/volume/admission.h so
// the striped-volume layer can run it per disk without a dependency cycle
// (disk <- volume <- core). Existing includes of this path keep working.

#ifndef SRC_CORE_ADMISSION_H_
#define SRC_CORE_ADMISSION_H_

#include "src/volume/admission.h"

#endif  // SRC_CORE_ADMISSION_H_
