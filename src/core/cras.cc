#include "src/core/cras.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/obs/ledger.h"

namespace cras {

namespace {

// Scales a duration by the session's rate factor.
crbase::Duration ScaleDuration(crbase::Duration d, double factor) {
  return static_cast<crbase::Duration>(static_cast<double>(d) * factor);
}

}  // namespace

CrasServer::CrasServer(crrt::Kernel& kernel, crdisk::DiskDriver& driver, crufs::Ufs& fs)
    : CrasServer(kernel, driver, fs, Options{}) {}

CrasServer::CrasServer(crrt::Kernel& kernel, crdisk::DiskDriver& driver, crufs::Ufs& fs,
                       const Options& options)
    : kernel_(&kernel),
      owned_volume_(std::make_unique<crvol::StripedVolume>(driver)),
      volume_(owned_volume_.get()),
      fs_(&fs),
      options_(options),
      admission_(options.disk_params, options.interval, options.max_read_bytes),
      volume_admission_(options.disk_params, volume_->disks(), options.interval,
                        options.max_read_bytes, volume_->stripe_unit_bytes()),
      control_port_(kernel.engine()),
      io_done_port_(kernel.engine()),
      deadline_port_(kernel.engine()),
      signal_port_(kernel.engine()),
      fault_port_(kernel.engine()) {
  // The server wires its code and static state (~250 KB in the paper);
  // buffers are wired as sessions open.
  kernel_->WireMemory("cras-server", 250 * crbase::kKiB);
  volume_admission_.set_parity(volume_->parity());
  volume_->SetMemberStateListener([this](int disk, crvol::MemberState state) {
    fault_port_.Send(MemberChange{disk, state});
  });
  if (options_.cache.enabled) {
    cache_ = std::make_unique<crcache::StreamCache>(options_.cache);
    // The cache's pools are wired server memory like everything else.
    kernel_->WireMemory("cras-cache",
                        options_.cache.interval_pool_bytes + options_.cache.prefix_pool_bytes);
  }
  if (options_.mcast.enabled) {
    group_mgr_ = std::make_unique<crmcast::GroupManager>(options_.mcast);
  }
  AttachObs(options_.obs);
}

CrasServer::CrasServer(crrt::Kernel& kernel, crvol::Volume& volume, crufs::Ufs& fs)
    : CrasServer(kernel, volume, fs, Options{}) {}

CrasServer::CrasServer(crrt::Kernel& kernel, crvol::Volume& volume, crufs::Ufs& fs,
                       const Options& options)
    : kernel_(&kernel),
      volume_(&volume),
      fs_(&fs),
      options_(options),
      admission_(options.disk_params, options.interval, options.max_read_bytes),
      volume_admission_(options.disk_params, volume.disks(), options.interval,
                        options.max_read_bytes, volume.stripe_unit_bytes()),
      control_port_(kernel.engine()),
      io_done_port_(kernel.engine()),
      deadline_port_(kernel.engine()),
      signal_port_(kernel.engine()),
      fault_port_(kernel.engine()) {
  kernel_->WireMemory("cras-server", 250 * crbase::kKiB);
  volume_admission_.set_parity(volume_->parity());
  volume_->SetMemberStateListener([this](int disk, crvol::MemberState state) {
    fault_port_.Send(MemberChange{disk, state});
  });
  if (options_.cache.enabled) {
    cache_ = std::make_unique<crcache::StreamCache>(options_.cache);
    kernel_->WireMemory("cras-cache",
                        options_.cache.interval_pool_bytes + options_.cache.prefix_pool_bytes);
  }
  if (options_.mcast.enabled) {
    group_mgr_ = std::make_unique<crmcast::GroupManager>(options_.mcast);
  }
  AttachObs(options_.obs);
}

void CrasServer::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  // Instrument the layers below: member disks/drivers, the admission model,
  // and the stream cache record through the same hub.
  volume_->AttachObs(hub, "disk");
  volume_admission_.AttachObs(hub);
  if (cache_ != nullptr) {
    cache_->AttachObs(hub);
  }
  if (group_mgr_ != nullptr) {
    group_mgr_->AttachObs(hub);
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  if (hub->frames().enabled()) {
    obs->frames = &hub->frames();
  }
  crobs::Tracer& trace = hub->trace();
  obs->track = trace.InternTrack("cras");
  obs->n_interval = trace.InternName("interval");
  obs->cat_batch = trace.InternName("batch");
  obs->n_prefetch = trace.InternName("prefetch");
  obs->n_slack = trace.InternName("deadline_slack_ms");
  obs->n_miss = trace.InternName("deadline_miss");
  obs->n_member = trace.InternName("member_change");
  obs->n_shed = trace.InternName("stream_shed");
  obs->n_reap = trace.InternName("session_reap");
  crobs::Registry& metrics = hub->metrics();
  obs->sessions_opened = metrics.GetCounter("cras.sessions_opened");
  obs->sessions_rejected = metrics.GetCounter("cras.sessions_rejected");
  obs->deadline_misses = metrics.GetCounter("cras.deadline_misses");
  obs->bytes_read = metrics.GetCounter("cras.bytes_read");
  obs->bytes_written = metrics.GetCounter("cras.bytes_written");
  obs->read_requests = metrics.GetCounter("cras.read_requests");
  obs->write_requests = metrics.GetCounter("cras.write_requests");
  obs->streams_shed = metrics.GetCounter("cras.streams_shed");
  obs->sessions_reaped = metrics.GetCounter("cras.sessions_reaped");
  obs->sessions_resumed = metrics.GetCounter("cras.sessions_resumed");
  obs->bytes_from_cache = metrics.GetCounter("cras.bytes_from_cache");
  obs->streams_kept = metrics.GetGauge("cras.streams_kept");
  obs->lease_age_ms = metrics.GetHistogram("cras.lease_age_ms", {}, crobs::LatencyBucketsMs());
  obs->deadline_slack_ms =
      metrics.GetHistogram("cras.deadline_slack_ms", {}, crobs::LatencyBucketsMs());
  obs->degraded_slack_ms =
      metrics.GetHistogram("cras.degraded_slack_ms", {}, crobs::LatencyBucketsMs());
  obs->ledger = std::make_unique<crobs::BudgetLedger>(&metrics);
  hub->SetLedger(obs->ledger.get());
  obs_ = std::move(obs);
}

CrasServer::~CrasServer() {
  // The volume may outlive this server; its listener must not.
  volume_->SetMemberStateListener(nullptr);
  // Likewise the hub: detach the dying ledger before dumps can touch it.
  if (obs_ != nullptr && obs_->hub->ledger() == obs_->ledger.get()) {
    obs_->hub->SetLedger(nullptr);
  }
  // Control messages still queued hold their senders' parked chains;
  // draining them lets each message's ParkedHandle reclaim its client. The
  // thread Tasks (declared after the ports) have already been destroyed.
  ControlMsg msg;
  while (control_port_.TryReceive(&msg)) {
  }
}

void CrasServer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  threads_.push_back(kernel_->Spawn("cras-request-manager", options_.priority,
                                    [this](crrt::ThreadContext& ctx) {
                                      return RequestManagerThread(ctx);
                                    }));
  threads_.push_back(kernel_->Spawn("cras-request-scheduler", options_.priority + 2,
                                    [this](crrt::ThreadContext& ctx) {
                                      return RequestSchedulerThread(ctx);
                                    }));
  threads_.push_back(kernel_->Spawn("cras-io-done-manager", options_.priority + 3,
                                    [this](crrt::ThreadContext& ctx) {
                                      return IoDoneManagerThread(ctx);
                                    }));
  threads_.push_back(kernel_->Spawn("cras-deadline-manager", options_.priority + 4,
                                    [this](crrt::ThreadContext& ctx) {
                                      return DeadlineManagerThread(ctx);
                                    }));
  threads_.push_back(kernel_->Spawn("cras-signal-handler", options_.priority + 1,
                                    [this](crrt::ThreadContext& ctx) {
                                      return SignalHandlerThread(ctx);
                                    }));
  // Above every sibling: when a member dies, re-admission must beat the
  // scheduler to the next interval boundary so no infeasible I/O is issued.
  threads_.push_back(kernel_->Spawn("cras-degradation-controller", options_.priority + 5,
                                    [this](crrt::ThreadContext& ctx) {
                                      return DegradationControllerThread(ctx);
                                    }));
  if (options_.lease_period > 0) {
    threads_.push_back(kernel_->Spawn("cras-lease-reaper", options_.priority,
                                      [this](crrt::ThreadContext& ctx) {
                                        return LeaseReaperThread(ctx);
                                      }));
  }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

crsim::Task CrasServer::RequestManagerThread(crrt::ThreadContext& ctx) {
  for (;;) {
    ControlMsg msg = co_await control_port_.Receive();
    if (msg.kind == ControlMsg::kShutdown) {
      break;
    }
    co_await ctx.Compute(options_.cpu_per_control_op);
    crbase::Result<SessionId> result = kInvalidSession;
    switch (msg.kind) {
      case ControlMsg::kOpen:
        result = HandleOpen(std::move(msg.params));
        break;
      case ControlMsg::kClose: {
        crbase::Status st = HandleClose(msg.id);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        if (cache_fallback_pending_) {
          // The close orphaned a cached follower: settle it now — re-admit
          // on the bandwidth the close just freed (plus the fallback
          // reserve), or shed.
          ShedUntilAdmissible();
        }
        break;
      }
      case ControlMsg::kStart: {
        crbase::Status st = HandleStart(msg.id, msg.initial_delay);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        break;
      }
      case ControlMsg::kStop: {
        crbase::Status st = HandleStop(msg.id);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        break;
      }
      case ControlMsg::kSeek: {
        crbase::Status st = HandleSeek(msg.id, msg.seek_to);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        break;
      }
      case ControlMsg::kSetRate: {
        crbase::Status st = HandleSetRate(msg.id, msg.params.rate_factor);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        break;
      }
      case ControlMsg::kReconnect: {
        crbase::Status st = HandleReconnect(msg.id);
        result = st.ok() ? crbase::Result<SessionId>(msg.id) : crbase::Result<SessionId>(st);
        break;
      }
      case ControlMsg::kShutdown:
        break;
    }
    if (msg.done) {
      msg.Complete(std::move(result));
    }
  }
}

crsim::Task CrasServer::RequestSchedulerThread(crrt::ThreadContext& ctx) {
  crrt::PeriodicTimer timer(kernel_->engine(), options_.interval, &deadline_port_);
  while (!shutdown_) {
    const crrt::PeriodTick tick = co_await timer.NextPeriod();
    if (shutdown_) {
      break;
    }
    if (obs_ != nullptr) {
      obs_->hub->trace().Begin(obs_->track, obs_->n_interval);
    }
    co_await ctx.Compute(options_.cpu_per_interval);

    // Phase 1: publish everything retrieved during the previous interval
    // into the time-driven shared buffers.
    const std::int64_t published = PublishCompletedBatches();
    if (published > 0) {
      co_await ctx.Compute(options_.cpu_per_publish * published);
    }

    // Phase 2: issue all reads (and staged writes) the next interval needs.
    const std::size_t slot = interval_records_.size();
    IntervalRecord record;
    record.index = tick.index;
    record.scheduler_lateness = tick.lateness;
    // The binding member disk's estimate; on a one-disk volume exactly the
    // paper's single-disk figure. With the cache on, cache-served streams
    // are charged the fallback reserve instead of per-stream disk time.
    const crvol::VolumeAdmissionModel::Estimate estimate =
        UseCachedAdmission() ? volume_admission_.EvaluateCached(CurrentCachedDemands())
                             : volume_admission_.Evaluate(CurrentDemands());
    record.estimated_io = estimate.WorstIoTime();
    interval_records_.push_back(record);

    if (obs_ != nullptr) {
      crobs::BudgetLedger& ledger = *obs_->ledger;
      // Slot-2's I/O deadline was the previous boundary; its completions are
      // all attributed by now, so its audit row is final.
      if (slot >= 2) {
        ledger.CloseInterval(static_cast<std::int64_t>(slot) - 2);
      }
      ledger.BeginInterval(static_cast<std::int64_t>(slot), kernel_->Now());
      for (int d = 0; d < static_cast<int>(estimate.per_disk.size()); ++d) {
        const crvol::VolumeAdmissionModel::DiskEstimate& disk =
            estimate.per_disk[static_cast<std::size_t>(d)];
        if (disk.requests <= 0) {
          continue;
        }
        crobs::BudgetTerms predicted;
        predicted.command_ms = crobs::ToMillis(disk.terms.command);
        predicted.seek_ms = crobs::ToMillis(disk.terms.seek);
        predicted.rotation_ms = crobs::ToMillis(disk.terms.rotation);
        predicted.transfer_ms = crobs::ToMillis(disk.transfer);
        predicted.other_ms = crobs::ToMillis(disk.terms.other);
        ledger.SetPrediction(static_cast<std::int64_t>(slot), d, predicted, disk.requests);
      }
    }

    const crbase::Time deadline = timer.BoundaryOf(tick.index + 1);
    const std::int64_t requests = IssueIntervalIo(slot, deadline);
    if (requests > 0) {
      co_await ctx.Compute(options_.cpu_per_request * requests);
    }
    if (obs_ != nullptr) {
      obs_->hub->trace().End(obs_->track, obs_->n_interval);
    }
  }
}

crsim::Task CrasServer::IoDoneManagerThread(crrt::ThreadContext& ctx) {
  for (;;) {
    IoDoneMsg msg = co_await io_done_port_.Receive();
    if (msg.batch_id == 0) {
      break;  // shutdown sentinel
    }
    co_await ctx.Compute(options_.cpu_per_completion);
    auto it = inflight_.find(msg.batch_id);
    if (it == inflight_.end()) {
      continue;  // batch of a session closed mid-flight
    }
    Batch& batch = it->second;
    CRAS_CHECK(batch.outstanding > 0);
    --batch.outstanding;
    // The disk does not announce when it starts servicing, but the
    // completion carries the full phase breakdown, so service start is the
    // completion instant minus its terms. The earliest one over the batch
    // splits the frame trace's disk-queue / disk-service attribution.
    const crbase::Time service_start = kernel_->Now() - msg.completion.service_time();
    if (batch.first_service_start < 0 || service_start < batch.first_service_start) {
      batch.first_service_start = service_start;
    }
    if (batch.interval_slot < interval_records_.size()) {
      interval_records_[batch.interval_slot].actual_io += msg.completion.service_time();
    }
    if (obs_ != nullptr && msg.disk >= 0) {
      // Fold the request's measured phase breakdown into its interval's
      // audit row. No measured "other" term: the simulated array carries no
      // non-real-time traffic, so B_other/D is pure slack.
      crobs::BudgetTerms actual;
      actual.command_ms = crobs::ToMillis(msg.completion.command_time);
      actual.seek_ms = crobs::ToMillis(msg.completion.seek_time);
      actual.rotation_ms = crobs::ToMillis(msg.completion.rotation_time);
      actual.transfer_ms = crobs::ToMillis(msg.completion.transfer_time);
      obs_->ledger->AddActual(static_cast<std::int64_t>(batch.interval_slot), msg.disk,
                              actual);
    }
    if (batch.kind == SessionKind::kRead) {
      stats_.bytes_read += msg.completion.bytes();
      if (obs_ != nullptr) {
        obs_->bytes_read->Add(msg.completion.bytes());
      }
    } else {
      stats_.bytes_written += msg.completion.bytes();
      if (obs_ != nullptr) {
        obs_->bytes_written->Add(msg.completion.bytes());
      }
    }
    if (batch.outstanding == 0) {
      if (obs_ != nullptr) {
        // Slack to the interval boundary: positive = landed early, negative
        // = this batch is about to signal a deadline miss.
        const double slack_ms = crobs::ToMillis(batch.deadline - kernel_->Now());
        obs_->deadline_slack_ms->Record(slack_ms);
        if (volume_->degraded()) {
          obs_->degraded_slack_ms->Record(slack_ms);
        }
        crobs::Tracer& trace = obs_->hub->trace();
        if (trace.enabled()) {
          trace.AsyncEnd(obs_->track, obs_->cat_batch, obs_->n_prefetch, batch.id);
          trace.CounterSample(obs_->track, obs_->n_slack, slack_ms);
        }
      }
      if (batch.kind == SessionKind::kRead) {
        if (Session* session = FindSession(batch.session);
            session != nullptr && session->ftrace != nullptr) {
          const crbase::Time start = batch.first_service_start >= 0
                                         ? batch.first_service_start
                                         : kernel_->Now();
          for (std::int64_t chunk = batch.first_chunk; chunk < batch.last_chunk;
               ++chunk) {
            session->ftrace->StampAt(chunk, crobs::FrameStage::kDiskStart, start);
            session->ftrace->Stamp(chunk, crobs::FrameStage::kDiskDone);
          }
        }
      }
      if (kernel_->Now() > batch.deadline) {
        if (batch.interval_slot < interval_records_.size()) {
          interval_records_[batch.interval_slot].completed_by_deadline = false;
        }
        if (obs_ != nullptr) {
          obs_->hub->flight().Record(crobs::FlightEventKind::kDeadlineMiss, batch.session,
                                     static_cast<std::int64_t>(batch.interval_slot),
                                     crobs::ToMillis(kernel_->Now() - batch.deadline));
        }
        // The interval's I/O did not land by its boundary: this is the
        // deadline the deadline-manager thread watches over.
        deadline_port_.Send(crrt::DeadlineMiss{
            static_cast<std::int64_t>(batch.interval_slot), batch.deadline,
            kernel_->Now() - batch.deadline});
      }
      completed_batches_.push_back(batch.id);
    }
  }
}

crsim::Task CrasServer::DeadlineManagerThread(crrt::ThreadContext& ctx) {
  for (;;) {
    crrt::DeadlineMiss miss = co_await deadline_port_.Receive();
    if (miss.period_index < 0) {
      break;  // shutdown sentinel
    }
    co_await ctx.Compute(options_.cpu_per_completion);
    // The paper's recovery action: notify a warning and continue.
    ++stats_.deadline_misses;
    if (obs_ != nullptr) {
      obs_->deadline_misses->Add();
      obs_->hub->trace().Instant(obs_->track, obs_->n_miss, crobs::ToMillis(miss.overrun));
    }
    CRAS_LOG(kWarning) << "CRAS deadline miss: interval " << miss.period_index << " overran by "
                       << crbase::FormatDuration(miss.overrun);
  }
}

crsim::Task CrasServer::SignalHandlerThread(crrt::ThreadContext&) {
  (void)co_await signal_port_.Receive();
  shutdown_ = true;
  // Wake every blocked sibling with its sentinel.
  control_port_.Send(ControlMsg{ControlMsg::kShutdown, kInvalidSession, OpenParams{}, 0, 0,
                                nullptr, {}});
  io_done_port_.Send(IoDoneMsg{0, -1, {}});
  deadline_port_.Send(crrt::DeadlineMiss{-1, 0, 0});
  fault_port_.Send(MemberChange{-1, crvol::MemberState::kHealthy});
}

crsim::Task CrasServer::DegradationControllerThread(crrt::ThreadContext& ctx) {
  for (;;) {
    MemberChange change = co_await fault_port_.Receive();
    if (change.disk < 0) {
      break;  // shutdown sentinel
    }
    co_await ctx.Compute(options_.cpu_per_control_op);
    ApplyMemberChange(change);
  }
}

crsim::Task CrasServer::LeaseReaperThread(crrt::ThreadContext& ctx) {
  // A quarter-period tick bounds reap latency at grace + 1/4 periods after
  // the last renewal (1.75 periods at the default grace of 1.5) — inside
  // the "within two lease periods" contract with room to spare.
  const crbase::Duration tick = std::max<crbase::Duration>(options_.lease_period / 4, 1);
  while (!shutdown_) {
    co_await ctx.Sleep(tick);
    if (shutdown_) {
      break;
    }
    co_await ctx.Compute(options_.cpu_per_control_op);
    ReapExpired();
  }
}

void CrasServer::SignalShutdown() { signal_port_.Send(1); }

// ---------------------------------------------------------------------------
// Request-manager operations
// ---------------------------------------------------------------------------

crbase::Result<SessionId> CrasServer::HandleOpen(OpenParams params, bool internal_feed) {
  const auto reject = [this](crbase::Status st) {
    ++stats_.sessions_rejected;
    if (obs_ != nullptr) {
      obs_->sessions_rejected->Add();
    }
    return st;
  };
  if (params.index.empty()) {
    return reject(crbase::InvalidArgumentError("empty chunk index"));
  }
  if (params.rate_factor <= 0) {
    return reject(crbase::InvalidArgumentError("rate factor must be positive"));
  }
  const crufs::Inode& inode = fs_->inode(params.inode);
  if (inode.size_bytes < params.index.total_bytes()) {
    return reject(crbase::InvalidArgumentError("chunk index extends past the file"));
  }

  StreamDemand demand;
  demand.rate_bytes_per_sec =
      (params.declared_rate > 0 ? params.declared_rate
                                : params.index.WorstRate(options_.interval)) *
      params.rate_factor;
  demand.chunk_bytes = params.index.max_chunk_bytes();

  // Delivery-group placement: a grouped read joins (or founds) the title's
  // group before its own admission, so it can be charged as a memory-only
  // member. Founding a group opens the server-owned feed session first —
  // the group's one disk stream, admitted at rate * (1 + repair_overhead)
  // so the XOR repair channel rides an audited reservation.
  crmcast::JoinPlan group_plan;
  bool founded_group = false;
  if (group_mgr_ != nullptr && !internal_feed && params.grouped &&
      params.kind == SessionKind::kRead && params.rate_factor == 1.0) {
    if (cache_ != nullptr) {
      cache_->NoteOpen(params.inode, params.index, kernel_->Now());
    }
    const std::int64_t prefix_end =
        cache_ != nullptr ? cache_->prefix_end_chunk(params.inode) : 0;
    group_plan = group_mgr_->PlanJoin(params.inode, prefix_end);
    if (!group_plan.joined) {
      OpenParams feed_params;
      feed_params.inode = params.inode;
      feed_params.index = params.index;
      feed_params.declared_rate =
          demand.rate_bytes_per_sec * (1.0 + options_.mcast.repair_overhead);
      feed_params.kind = SessionKind::kRead;
      crbase::Result<SessionId> feed =
          HandleOpen(std::move(feed_params), /*internal_feed=*/true);
      if (feed.ok()) {
        group_plan.joined = true;
        group_plan.feed = *feed;
        group_plan.group = group_mgr_->CreateGroup(params.inode, *feed);
        group_plan.merge_chunk = 0;
        founded_group = true;
        if (Session* f = FindSession(*feed)) {
          f->feed = true;
        }
      }
      // On feed rejection the open proceeds as a plain unicast session.
    }
  }
  const bool grouped = group_plan.joined;
  // Founding failed half-open state is unwound on member rejection below.
  const auto unwind_group = [&] {
    if (grouped) {
      // The member never registered; drop the placeholder and close the
      // feed we just opened if it is now the group's only occupant.
      if (founded_group) {
        group_mgr_->DissolveByFeed(group_plan.feed);
        (void)HandleClose(group_plan.feed);
      }
    }
  };

  // Plan cache service first: a stream trailing a predecessor inside a
  // pinned prefix is admitted at memory cost (never dearer than disk cost,
  // so no second admission attempt is needed on rejection). Group members
  // skip interval pairing — the multicast feed, not a predecessor's
  // deposits, covers them past the merge point.
  crcache::OpenDecision cache_plan;
  if (cache_ != nullptr && params.kind == SessionKind::kRead && !grouped) {
    cache_->NoteOpen(params.inode, params.index, kernel_->Now());
    cache_plan = cache_->PlanOpen(params.inode, 0);
  }

  // The admission test (§2.3), run per member disk: every disk's interval
  // deadline and the memory budget must hold.
  if (UseCachedAdmission()) {
    std::vector<crvol::CachedStreamDemand> demands = CurrentCachedDemands();
    demands.push_back(
        {demand, grouped || cache_plan.serve == crcache::ServeClass::kCached});
    if (!volume_admission_.AdmissibleCached(demands, options_.memory_budget_bytes)) {
      unwind_group();
      return reject(crbase::ResourceExhaustedError("admission test failed"));
    }
  } else {
    std::vector<StreamDemand> demands = CurrentDemands();
    demands.push_back(demand);
    if (!volume_admission_.Admissible(demands, options_.memory_budget_bytes)) {
      return reject(crbase::ResourceExhaustedError("admission test failed"));
    }
  }

  Session session;
  session.id = next_session_id_++;
  session.kind = params.kind;
  session.inode = params.inode;
  session.index = std::move(params.index);
  session.demand = demand;
  session.rate_factor = params.rate_factor;
  session.cache_served = cache_plan.serve == crcache::ServeClass::kCached;
  session.group_served = grouped;
  session.group_limit_chunk = grouped ? group_plan.merge_chunk : -1;
  const std::int64_t buffer_bytes = volume_admission_.BufferBytes(demand);
  session.buffer =
      std::make_unique<TimeDrivenBuffer>(buffer_bytes, options_.jitter_allowance);
  session.clock = std::make_unique<LogicalClock>(kernel_->engine());
  session.clock->SetRate(params.rate_factor);

  session.lease_renewed_at = kernel_->Now();
  buffer_bytes_reserved_ += buffer_bytes;
  kernel_->WireMemory("cras-buffer", buffer_bytes);
  ++stats_.sessions_opened;
  if (obs_ != nullptr) {
    obs_->sessions_opened->Add();
    session.buffer->AttachObs(obs_->hub, "s" + std::to_string(session.id));
    if (obs_->frames != nullptr && session.kind == SessionKind::kRead) {
      session.ftrace =
          obs_->frames->Register(session.id, "s" + std::to_string(session.id));
      // The buffer resolves frames it has to discard unconsumed, so a frame
      // that aged out of the ring still gets a missed decomposition.
      session.buffer->SetFrameTrace(session.ftrace);
    }
  }
  const SessionId id = session.id;
  const crufs::InodeNumber title = session.inode;
  const SessionKind kind = session.kind;
  sessions_.emplace(id, std::move(session));
  if (cache_ != nullptr && kind == SessionKind::kRead) {
    // Every read stream registers — a disk-served stream is the chain head
    // future followers attach to.
    cache_->Register(id, title, 0, cache_plan, kernel_->Now());
  }
  if (grouped) {
    group_mgr_->AddMember(group_plan.group, id, group_plan.merge_chunk);
  }
  return id;
}

crbase::Status CrasServer::HandleClose(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return crbase::NotFoundError("no such session");
  }
  SessionId feed_to_close = kInvalidSession;
  if (group_mgr_ != nullptr) {
    if (it->second.feed) {
      // A dying feed dissolves its group: every member falls back to
      // unicast disk service at its current position (never a silent
      // miss) and is settled — re-admitted on the freed feed bandwidth or
      // shed — by the next owner of the control flow.
      for (const crmcast::SessionId member : group_mgr_->DissolveByFeed(id)) {
        if (Session* m = FindSession(member); m != nullptr && m->group_served) {
          ResumeUnicast(*m);
          cache_fallback_pending_ = true;
        }
      }
    } else {
      feed_to_close = group_mgr_->RemoveMember(id, "close");
    }
  }
  const std::int64_t buffer_bytes = it->second.buffer->capacity_bytes();
  buffer_bytes_reserved_ -= buffer_bytes;
  kernel_->UnwireMemory("cras-buffer", buffer_bytes);
  if (cache_ != nullptr) {
    // Orphaned followers fall back to disk service. Settling them (re-admit
    // or shed) is the caller's job — HandleClose runs inside shed loops and
    // must not recurse.
    for (const crcache::StreamId orphan : cache_->Unregister(id, kernel_->Now())) {
      if (Session* o = FindSession(orphan); o != nullptr) {
        o->cache_served = false;
        cache_fallback_pending_ = true;
      }
    }
  }
  // In-flight batches for this session are dropped when they complete.
  for (auto& [batch_id, batch] : inflight_) {
    if (batch.session == id) {
      batch.session = kInvalidSession;
    }
  }
  sessions_.erase(it);
  if (feed_to_close != kInvalidSession) {
    // The last member left: the group dissolved with it, so the
    // server-owned feed has nobody to serve. One level of recursion only —
    // a feed close never returns another feed.
    (void)HandleClose(feed_to_close);
  }
  return crbase::OkStatus();
}

crbase::Status CrasServer::HandleStart(SessionId id, crbase::Duration initial_delay) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  if (initial_delay < 0) {
    return crbase::InvalidArgumentError("negative initial delay");
  }
  session->started = true;
  session->clock->Start(initial_delay);
  if (session->group_served && group_mgr_ != nullptr) {
    // The first member to start also starts the group's feed: member
    // clocks trail the feed clock by their arrival offset, which is
    // exactly the lag the prefix bridge covers.
    const crmcast::GroupId group = group_mgr_->GroupOf(id);
    const crmcast::SessionId feed = group_mgr_->FeedOf(group);
    if (Session* f = FindSession(feed); f != nullptr && !f->started) {
      f->started = true;
      f->clock->Start(initial_delay);
    }
  }
  return crbase::OkStatus();
}

crbase::Status CrasServer::HandleStop(SessionId id) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  session->started = false;
  session->clock->Stop();
  return crbase::OkStatus();
}

crbase::Status CrasServer::HandleSeek(SessionId id, crbase::Time logical) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  if (session->kind != SessionKind::kRead) {
    return crbase::FailedPreconditionError("seek on a write session");
  }
  std::int64_t chunk = session->index.FindByTime(logical);
  if (chunk < 0) {
    chunk = 0;
  }
  session->clock->SeekTo(logical);
  session->buffer->Clear();
  session->next_chunk = chunk;
  session->prefetch_pos = session->index.at(static_cast<std::size_t>(chunk)).timestamp;
  bool resettle = false;
  SessionId feed_to_close = kInvalidSession;
  if (session->group_served && group_mgr_ != nullptr) {
    // A seek breaks position compatibility with the group: the member
    // leaves and is disk-charged at its new play point.
    feed_to_close = group_mgr_->RemoveMember(id, "seek");
    session->group_served = false;
    session->group_limit_chunk = -1;
    resettle = true;
  }
  if (cache_ != nullptr) {
    // A seek invalidates any pair this stream is part of (its play point
    // jumped); simplest sound policy: drop to disk service at the new
    // position. The seeker stays admitted — its disk share was either
    // already charged or covered by the fallback reserve — but orphans may
    // overload the array, so re-settle.
    if (DetachFromCache(id)) {
      resettle = true;
    }
  }
  if (feed_to_close != kInvalidSession) {
    (void)HandleClose(feed_to_close);
  }
  if (resettle) {
    ShedUntilAdmissible();
  }
  return crbase::OkStatus();
}

crbase::Status CrasServer::HandleSetRate(SessionId id, double rate_factor) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  if (rate_factor <= 0) {
    return crbase::InvalidArgumentError("rate factor must be positive");
  }
  if (session->kind != SessionKind::kRead) {
    return crbase::FailedPreconditionError("rate change on a write session");
  }
  if (session->group_served && group_mgr_ != nullptr) {
    // A non-unit rate cannot ride the group's shared feed; the member
    // leaves before re-admission at the new rate.
    const SessionId feed_to_close = group_mgr_->RemoveMember(id, "set_rate");
    session->group_served = false;
    session->group_limit_chunk = -1;
    if (feed_to_close != kInvalidSession) {
      (void)HandleClose(feed_to_close);
    }
    ShedUntilAdmissible();
    session = FindSession(id);
    if (session == nullptr) {
      return crbase::ResourceExhaustedError("session shed settling its group demotion");
    }
  }
  if (cache_ != nullptr) {
    // A rate change breaks pair pacing (predecessor and follower no longer
    // advance in lockstep); drop this stream — and any follower — to disk
    // service before re-admitting at the new rate.
    if (DetachFromCache(id)) {
      ShedUntilAdmissible();
      session = FindSession(id);
      if (session == nullptr) {
        return crbase::ResourceExhaustedError("session shed settling its cache fallback");
      }
    }
  }
  // Re-run admission with this session's demand scaled to the new factor.
  StreamDemand new_demand = session->demand;
  new_demand.rate_bytes_per_sec =
      new_demand.rate_bytes_per_sec / session->rate_factor * rate_factor;
  if (UseCachedAdmission()) {
    std::vector<crvol::CachedStreamDemand> demands;
    demands.reserve(sessions_.size());
    for (const auto& [other_id, other] : sessions_) {
      demands.push_back({other_id == id ? new_demand : other.demand,
                         other.cache_served || other.group_served});
    }
    if (!volume_admission_.AdmissibleCached(demands, options_.memory_budget_bytes)) {
      return crbase::ResourceExhaustedError("admission test failed at the new rate");
    }
  } else {
    std::vector<StreamDemand> demands;
    demands.reserve(sessions_.size());
    for (const auto& [other_id, other] : sessions_) {
      demands.push_back(other_id == id ? new_demand : other.demand);
    }
    if (!volume_admission_.Admissible(demands, options_.memory_budget_bytes)) {
      return crbase::ResourceExhaustedError("admission test failed at the new rate");
    }
  }
  // Re-reserve the buffer at the new B_i. Resident data stays valid (the
  // buffer object is preserved; only the accounting and cap change through
  // a new buffer would lose data, so we keep the larger of the two caps in
  // the object and track the reservation delta).
  const std::int64_t new_buffer_bytes = volume_admission_.BufferBytes(new_demand);
  const std::int64_t old_buffer_bytes = session->buffer->capacity_bytes();
  if (new_buffer_bytes > old_buffer_bytes) {
    kernel_->WireMemory("cras-buffer", new_buffer_bytes - old_buffer_bytes);
    buffer_bytes_reserved_ += new_buffer_bytes - old_buffer_bytes;
    auto grown = std::make_unique<TimeDrivenBuffer>(new_buffer_bytes,
                                                    options_.jitter_allowance);
    // Carry resident chunks across.
    const crbase::Time logical_now = session->clock->Now();
    for (crbase::Time t = logical_now - options_.jitter_allowance;; ) {
      std::optional<BufferedChunk> chunk = session->buffer->Get(t);
      if (!chunk.has_value()) {
        break;
      }
      grown->Put(*chunk, logical_now);
      t = chunk->timestamp + chunk->duration;
    }
    if (obs_ != nullptr) {
      grown->AttachObs(obs_->hub, "s" + std::to_string(id));
    }
    grown->SetFrameTrace(session->ftrace);
    session->buffer = std::move(grown);
  }
  session->demand = new_demand;
  session->rate_factor = rate_factor;
  session->clock->SetRate(rate_factor);
  return crbase::OkStatus();
}

crbase::Status CrasServer::HandleReconnect(SessionId id) {
  // Still live: the client outran the reaper — renew and carry on.
  if (Session* session = FindSession(id); session != nullptr) {
    session->lease_renewed_at = kernel_->Now();
    return crbase::OkStatus();
  }
  auto it = reaped_.find(id);
  if (it == reaped_.end()) {
    return crbase::NotFoundError("no such session (never opened, or resume state evicted)");
  }
  ReapedSession& old = it->second;

  // Resume position, needed up front: the cache plans service at the chunk
  // the stream will actually resume from.
  std::int64_t resume_chunk = 0;
  if (old.kind == SessionKind::kRead) {
    resume_chunk = old.index.FindByTime(old.logical_pos);
    if (resume_chunk < 0) {
      resume_chunk = 0;
    }
  }
  crcache::OpenDecision cache_plan;
  if (cache_ != nullptr && old.kind == SessionKind::kRead) {
    cache_->NoteOpen(old.inode, old.index, kernel_->Now());
    cache_plan = cache_->PlanOpen(old.inode, resume_chunk);
  }

  // Re-run the admission test: the array may have degraded (or filled up)
  // since the session was reaped, and a resumed stream gets no special
  // claim over the ones admitted meanwhile.
  if (UseCachedAdmission()) {
    std::vector<crvol::CachedStreamDemand> demands = CurrentCachedDemands();
    demands.push_back({old.demand, cache_plan.serve == crcache::ServeClass::kCached});
    if (!volume_admission_.AdmissibleCached(demands, options_.memory_budget_bytes)) {
      return crbase::ResourceExhaustedError("admission test failed on resume");
    }
  } else {
    std::vector<StreamDemand> demands = CurrentDemands();
    demands.push_back(old.demand);
    if (!volume_admission_.Admissible(demands, options_.memory_budget_bytes)) {
      return crbase::ResourceExhaustedError("admission test failed on resume");
    }
  }

  Session session;
  session.id = id;
  session.kind = old.kind;
  session.inode = old.inode;
  session.index = std::move(old.index);
  session.demand = old.demand;
  session.rate_factor = old.rate_factor;
  const std::int64_t buffer_bytes = volume_admission_.BufferBytes(session.demand);
  session.buffer = std::make_unique<TimeDrivenBuffer>(buffer_bytes, options_.jitter_allowance);
  session.clock = std::make_unique<LogicalClock>(kernel_->engine());
  session.clock->SetRate(session.rate_factor);
  session.clock->SeekTo(old.logical_pos);
  if (old.kind == SessionKind::kRead) {
    session.next_chunk = resume_chunk;
    session.prefetch_pos =
        session.index.at(static_cast<std::size_t>(resume_chunk)).timestamp;
    session.cache_served = cache_plan.serve == crcache::ServeClass::kCached;
  }
  if (old.started) {
    // Resume playing from where the reaper froze it, after the same
    // pipeline-fill latency a fresh start needs.
    session.started = true;
    session.clock->Start(SuggestedInitialDelay());
  }
  session.lease_renewed_at = kernel_->Now();
  buffer_bytes_reserved_ += buffer_bytes;
  kernel_->WireMemory("cras-buffer", buffer_bytes);
  ++stats_.sessions_resumed;
  if (obs_ != nullptr) {
    obs_->sessions_resumed->Add();
    session.buffer->AttachObs(obs_->hub, "s" + std::to_string(id));
    if (obs_->frames != nullptr && session.kind == SessionKind::kRead) {
      session.ftrace = obs_->frames->Register(id, "s" + std::to_string(id));
      session.buffer->SetFrameTrace(session.ftrace);
    }
  }
  const SessionKind resumed_kind = old.kind;
  const crufs::InodeNumber resumed_title = old.inode;
  reaped_.erase(it);
  sessions_.emplace(id, std::move(session));
  if (cache_ != nullptr && resumed_kind == SessionKind::kRead) {
    cache_->Register(id, resumed_title, resume_chunk, cache_plan, kernel_->Now());
  }
  CRAS_LOG(kInfo) << "CRAS session " << id << " reconnected and resumed";
  return crbase::OkStatus();
}

// ---------------------------------------------------------------------------
// Multicast demotion
// ---------------------------------------------------------------------------

void CrasServer::ResumeUnicast(Session& session) {
  session.group_served = false;
  session.group_limit_chunk = -1;
  const std::int64_t count = static_cast<std::int64_t>(session.index.count());
  std::int64_t chunk = session.index.FindByTime(session.clock->Now());
  if (chunk < 0) {
    chunk = 0;
  }
  // Never re-fetch behind either the clock or the bridge patch already
  // scheduled; the multicast-delivered middle is the receiver's to keep.
  session.next_chunk = std::min(std::max(session.next_chunk, chunk), count);
  if (session.next_chunk < count) {
    session.prefetch_pos =
        session.index.at(static_cast<std::size_t>(session.next_chunk)).timestamp;
  } else {
    const crmedia::Chunk& tail = session.index.at(static_cast<std::size_t>(count - 1));
    session.prefetch_pos = tail.timestamp + tail.duration;
  }
}

bool CrasServer::DemoteGroupMember(SessionId id, const std::string& reason) {
  Session* session = FindSession(id);
  if (session == nullptr || !session->group_served || group_mgr_ == nullptr) {
    return false;
  }
  const SessionId feed_to_close = group_mgr_->RemoveMember(id, reason);
  ResumeUnicast(*session);
  if (feed_to_close != kInvalidSession) {
    // The demoted member was the group's last: nobody left to feed.
    (void)HandleClose(feed_to_close);
  }
  // Re-settle: the member is disk-charged from here on (the fallback
  // reserve covered the flip); the freed feed bandwidth may re-admit it,
  // or the settle sheds the costliest streams.
  ShedUntilAdmissible();
  return HasSession(id);
}

void CrasServer::RenewLease(SessionId id) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return;  // heartbeat racing the reaper (or a stale client)
  }
  const crbase::Time now = kernel_->Now();
  if (obs_ != nullptr) {
    obs_->lease_age_ms->Record(crobs::ToMillis(now - session->lease_renewed_at));
  }
  session->lease_renewed_at = now;
  ++stats_.lease_renewals;
}

void CrasServer::ReapExpired() {
  const crbase::Time now = kernel_->Now();
  const auto deadline = static_cast<crbase::Duration>(
      options_.lease_grace * static_cast<double>(options_.lease_period));
  std::vector<SessionId> expired;
  for (const auto& [id, session] : sessions_) {
    if (session.feed) {
      continue;  // server-owned: no client lease to lapse
    }
    if (now - session.lease_renewed_at > deadline) {
      expired.push_back(id);
    }
  }
  for (SessionId id : expired) {
    Session& session = sessions_.at(id);
    ReapedSession record;
    record.kind = session.kind;
    record.inode = session.inode;
    record.index = std::move(session.index);
    record.demand = session.demand;
    record.rate_factor = session.rate_factor;
    record.logical_pos = session.clock->Now();
    record.started = session.started;
    record.reaped_at = now;
    const crbase::Duration lease_age = now - session.lease_renewed_at;
    CRAS_LOG(kWarning) << "CRAS reaping session " << id << " (lease lapsed "
                       << crbase::FormatDuration(lease_age) << " ago)";
    CRAS_CHECK(HandleClose(id).ok());
    reaped_ids_.insert(id);
    reaped_.emplace(id, std::move(record));
    while (reaped_.size() > options_.reaped_history) {
      // Evict the oldest resume state (smallest id is the oldest session).
      reaped_.erase(reaped_.begin());
    }
    ++stats_.sessions_reaped;
    if (obs_ != nullptr) {
      obs_->sessions_reaped->Add();
      obs_->hub->flight().Record(crobs::FlightEventKind::kLeaseReap, id, 0,
                                 crobs::ToMillis(lease_age));
      obs_->hub->trace().Instant(obs_->track, obs_->n_reap, static_cast<double>(id));
    }
  }
  if (cache_fallback_pending_) {
    // A reaped predecessor orphaned a cached follower: re-admit it on the
    // freed bandwidth, or shed.
    ShedUntilAdmissible();
  }
}

// ---------------------------------------------------------------------------
// Degradation controller
// ---------------------------------------------------------------------------

void CrasServer::ApplyMemberChange(const MemberChange& change) {
  ++stats_.member_changes;
  CRAS_LOG(kWarning) << "CRAS member disk " << change.disk << " is now "
                     << crvol::MemberStateName(change.state);
  switch (change.state) {
    case crvol::MemberState::kFailed:
      volume_admission_.SetMemberFailed(change.disk, true);
      break;
    case crvol::MemberState::kSlow: {
      // Re-derive the member's worst-case parameters from its actual
      // derating; only the media rate degrades, the mechanics don't.
      DiskParams derated = options_.disk_params;
      derated.transfer_rate /= volume_->device(change.disk).throughput_derating();
      volume_admission_.SetMemberParams(change.disk, derated);
      break;
    }
    case crvol::MemberState::kHealthy:
      volume_admission_.SetMemberFailed(change.disk, false);
      volume_admission_.SetMemberParams(change.disk, options_.disk_params);
      break;
  }
  if (obs_ != nullptr) {
    obs_->hub->flight().Record(crobs::FlightEventKind::kMemberChange, change.disk, 0, 0,
                               crvol::MemberStateName(change.state));
    obs_->hub->trace().Instant(obs_->track, obs_->n_member,
                               static_cast<double>(change.disk));
  }
  ShedUntilAdmissible();
}

void CrasServer::ShedUntilAdmissible() {
  const std::int64_t shed_before = stats_.streams_shed;
  // Sheds one victim per round, re-evaluating between rounds: with the
  // cache on, closing a victim can change other streams' serving classes
  // (an orphaned follower falls back to disk), so a precomputed victim list
  // would test stale demand sets. Victim order within a round:
  //   1. disk-charged streams feeding no cached follower — closing one
  //      frees a full disk share and breaks nothing;
  //   2. disk-charged chain heads — the follower falls back, so the net
  //      relief is smaller and a fallback cascades;
  //   3. cache-served and group-member streams — nearly free to serve,
  //      shed late;
  //   4. delivery-group feeds — each carries a whole group (shedding one
  //      demotes every member to disk service), shed last.
  // Within a class: highest-rate first (the degraded array loses the fewest
  // streams), ties toward younger sessions. Cache off: every stream is
  // class 1's complement — plain highest-rate-first, the classic order.
  for (;;) {
    if (sessions_.empty()) {
      break;
    }
    const bool admissible =
        UseCachedAdmission()
            ? volume_admission_.AdmissibleCached(CurrentCachedDemands(),
                                                 options_.memory_budget_bytes)
            : volume_admission_.Admissible(CurrentDemands(), options_.memory_budget_bytes);
    if (admissible) {
      break;
    }
    Session* victim = nullptr;
    int victim_class = 0;
    for (auto& [id, session] : sessions_) {
      int cls = 0;
      if (session.feed) {
        cls = 3;
      } else if (session.cache_served || session.group_served) {
        cls = 2;
      } else if (cache_ != nullptr && cache_->HasFollower(id)) {
        cls = 1;
      }
      bool better = victim == nullptr;
      if (!better && cls != victim_class) {
        better = cls < victim_class;
      } else if (!better) {
        if (session.demand.rate_bytes_per_sec != victim->demand.rate_bytes_per_sec) {
          better = session.demand.rate_bytes_per_sec > victim->demand.rate_bytes_per_sec;
        } else {
          better = session.id > victim->id;
        }
      }
      if (better) {
        victim = &session;
        victim_class = cls;
      }
    }
    const SessionId id = victim->id;
    shed_ids_.insert(id);
    ++stats_.streams_shed;
    CRAS_LOG(kWarning) << "CRAS shedding session " << id << " (degraded array)";
    if (obs_ != nullptr) {
      obs_->streams_shed->Add();
      obs_->hub->flight().Record(crobs::FlightEventKind::kStreamShed, id);
      obs_->hub->trace().Instant(obs_->track, obs_->n_shed, static_cast<double>(id));
    }
    CRAS_CHECK(HandleClose(id).ok());
  }
  cache_fallback_pending_ = false;
  if (obs_ != nullptr) {
    obs_->streams_kept->Set(static_cast<double>(sessions_.size()));
    // The admission settle is complete: whatever disturbance brought us
    // here (member change, cache fallback, group demote), the surviving set
    // passes the current model again. The auditor measures recovery latency
    // as fault -> this event.
    obs_->hub->flight().Record(crobs::FlightEventKind::kResettled,
                               static_cast<std::int64_t>(sessions_.size()),
                               stats_.streams_shed - shed_before);
  }
}

// ---------------------------------------------------------------------------
// Scheduler phases
// ---------------------------------------------------------------------------

std::int64_t CrasServer::PublishCompletedBatches() {
  std::int64_t published = 0;
  while (!completed_batches_.empty()) {
    const std::uint64_t batch_id = completed_batches_.front();
    completed_batches_.pop_front();
    auto it = inflight_.find(batch_id);
    if (it == inflight_.end()) {
      continue;
    }
    Batch batch = it->second;
    inflight_.erase(it);
    Session* session = FindSession(batch.session);
    if (session == nullptr) {
      continue;  // closed while the I/O was in flight
    }
    const crbase::Time now = kernel_->Now();
    if (now > batch.deadline) {
      session->stats.max_publish_lag =
          std::max(session->stats.max_publish_lag, now - batch.deadline);
    }
    if (batch.kind == SessionKind::kWrite) {
      session->stats.chunks_written += batch.last_chunk - batch.first_chunk;
      session->stats.bytes_written += batch.bytes;
      continue;
    }
    const crbase::Time logical_now = session->clock->Now();
    for (std::int64_t c = batch.first_chunk; c < batch.last_chunk; ++c) {
      const crmedia::Chunk& chunk = session->index.at(static_cast<std::size_t>(c));
      BufferedChunk buffered;
      buffered.chunk_index = c;
      buffered.timestamp = chunk.timestamp;
      buffered.duration = chunk.duration;
      buffered.size = chunk.size;
      buffered.filled_at = now;
      if (session->ftrace != nullptr) {
        session->ftrace->Stamp(c, crobs::FrameStage::kPublished);
      }
      session->buffer->Put(buffered, logical_now);
      ++session->stats.chunks_published;
      session->stats.bytes_published += chunk.size;
      ++published;
    }
  }
  return published;
}

std::int64_t CrasServer::IssueIntervalIo(std::size_t interval_slot, crbase::Time deadline) {
  struct Planned {
    std::uint64_t batch_id;
    crvol::Volume::Segment segment;
    crdisk::DiskRequest request;
    std::int64_t cylinder;
  };
  std::vector<Planned> planned;
  std::vector<SessionId> feeds_to_close;

  auto plan_range = [&](Session& session, std::int64_t first, std::int64_t last,
                        SessionKind kind) {
    if (first >= last) {
      return;
    }
    const crmedia::Chunk& head = session.index.at(static_cast<std::size_t>(first));
    const crmedia::Chunk& tail = session.index.at(static_cast<std::size_t>(last - 1));
    const std::int64_t offset = head.offset;
    const std::int64_t length = tail.offset + tail.size - offset;
    auto extents = fs_->GetExtents(session.inode, offset, length, options_.max_read_bytes);
    CRAS_CHECK(extents.ok()) << extents.status().ToString();

    Batch batch;
    batch.id = next_batch_id_++;
    batch.session = session.id;
    batch.first_chunk = first;
    batch.last_chunk = last;
    batch.kind = kind;
    batch.interval_slot = interval_slot;
    batch.deadline = deadline;
    batch.planned_at = kernel_->Now();
    const crdisk::IoKind io_kind =
        kind == SessionKind::kRead ? crdisk::IoKind::kRead : crdisk::IoKind::kWrite;
    for (const crufs::Extent& extent : *extents) {
      batch.bytes += extent.bytes();
      // Fan the logical extent out to the member disks owning its stripe
      // units (a one-disk volume maps it to a single identical request). A
      // degraded parity volume substitutes reconstruction reads on the
      // survivors for the failed member's pieces; a write adds the row's
      // parity-update pieces.
      for (const crvol::Volume::Segment& segment :
           volume_->MapRange(extent.lba, extent.sectors, io_kind)) {
        crdisk::DiskRequest request;
        request.kind = io_kind;
        request.lba = segment.lba;
        request.sectors = segment.sectors;
        request.realtime = true;
        const std::uint64_t batch_id = batch.id;
        const int disk = segment.disk;
        request.on_complete = [this, batch_id, disk](const crdisk::DiskCompletion& completion) {
          io_done_port_.Send(IoDoneMsg{batch_id, disk, completion});
        };
        ++batch.outstanding;
        planned.push_back(
            Planned{batch.id, segment, std::move(request),
                    volume_->device(segment.disk).geometry().CylinderOf(segment.lba)});
      }
    }
    if (batch.outstanding == 0) {
      return;  // zero-length range
    }
    interval_records_[interval_slot].bytes += batch.bytes;
    if (obs_ != nullptr) {
      obs_->hub->trace().AsyncBegin(obs_->track, obs_->cat_batch, obs_->n_prefetch, batch.id);
    }
    if (kind == SessionKind::kRead && session.ftrace != nullptr) {
      for (std::int64_t c = first; c < last; ++c) {
        session.ftrace->Stamp(c, crobs::FrameStage::kScheduled);
        session.ftrace->SetPath(c, crobs::FramePath::kDisk);
      }
    }
    inflight_.emplace(batch.id, batch);
  };

  for (auto& [id, session] : sessions_) {
    if (!session.started) {
      continue;
    }
    if (session.kind == SessionKind::kRead) {
      const crbase::Duration advance = ScaleDuration(options_.interval, session.rate_factor);
      // "CRAS schedules pre-fetches according to the logical rate": stay at
      // most two interval-windows ahead of the logical clock — exactly the
      // double-buffered depth B_i was sized for. A client that allowed a
      // longer initial delay (clock still deeply negative) simply causes
      // prefetching to idle until the pipeline is needed, instead of
      // overrunning its own buffer. After a rate increase the pipeline may
      // lag the accelerated clock; issue up to a few windows in one
      // interval to re-prime it (bounded burst so one session cannot
      // monopolize an interval).
      const std::int64_t count = static_cast<std::int64_t>(session.index.count());
      for (int window = 0; window < 4; ++window) {
        // A delivery-group member schedules only its bridge patch
        // [0, merge): everything past the merge point arrives through the
        // group's multicast feed, never through this session's own I/O.
        const std::int64_t limit =
            session.group_served && session.group_limit_chunk >= 0
                ? std::min(count, session.group_limit_chunk)
                : count;
        if (session.group_served && session.next_chunk >= limit) {
          break;  // patch complete; the multicast feed carries the rest
        }
        if (session.prefetch_pos > session.clock->Now() + 2 * advance) {
          break;
        }
        const crbase::Time window_end = session.prefetch_pos + advance;
        std::int64_t first = session.next_chunk;
        std::int64_t last = first;
        while (last < limit &&
               session.index.at(static_cast<std::size_t>(last)).timestamp < window_end) {
          ++last;
        }
        if (cache_ != nullptr && first < last) {
          // The leading run servable from the cache (pinned prefix or the
          // predecessor's deposited blocks) becomes a zero-I/O batch,
          // published at the next boundary exactly like a disk batch; only
          // the remainder touches the disks.
          const crcache::ServeResult run = cache_->ServableRun(id, first, last);
          if (run.demoted) {
            session.cache_served = false;
            cache_fallback_pending_ = true;
          }
          if (run.chunks > 0) {
            Batch batch;
            batch.id = next_batch_id_++;
            batch.session = id;
            batch.first_chunk = first;
            batch.last_chunk = first + run.chunks;
            batch.kind = SessionKind::kRead;
            batch.interval_slot = interval_slot;
            batch.deadline = deadline;
            batch.planned_at = kernel_->Now();
            for (std::int64_t c = first; c < first + run.chunks; ++c) {
              batch.bytes += session.index.at(static_cast<std::size_t>(c)).size;
              if (session.ftrace != nullptr) {
                session.ftrace->Stamp(c, crobs::FrameStage::kScheduled);
                session.ftrace->SetPath(c, crobs::FramePath::kCache);
              }
            }
            stats_.bytes_from_cache += batch.bytes;
            if (obs_ != nullptr) {
              obs_->bytes_from_cache->Add(batch.bytes);
            }
            inflight_.emplace(batch.id, batch);
            completed_batches_.push_back(batch.id);
            first += run.chunks;
          }
        }
        if (session.group_served && first < last) {
          // The pinned prefix no longer covers this member's bridge patch
          // (unpinned under pressure, or never reached this far): the
          // remainder is disk I/O a memory-only member must not issue
          // silently. Demote to unicast — this window's tail rides the
          // fallback reserve, and the settle below re-admits the stream
          // disk-charged or sheds it. Mirrors the cache's demote-to-disk.
          const SessionId feed_orphan = group_mgr_->RemoveMember(id, "patch_miss");
          if (feed_orphan != kInvalidSession) {
            feeds_to_close.push_back(feed_orphan);
          }
          session.group_served = false;
          session.group_limit_chunk = -1;
          cache_fallback_pending_ = true;
        }
        plan_range(session, first, last, SessionKind::kRead);
        if (cache_ != nullptr && last > session.next_chunk) {
          // Deposit at issue time: these blocks are what a follower's next
          // window reads from the interval pool.
          cache_->NoteScheduled(id, last);
        }
        session.next_chunk = last;
        session.prefetch_pos = window_end;
      }
    } else {
      // Write session: stage up to one interval's admitted bytes from the
      // produced-chunk queue, in maximal consecutive runs.
      std::int64_t budget = admission_.BytesPerInterval(session.demand);
      while (!session.write_queue.empty() && budget > 0) {
        const std::int64_t first = session.write_queue.front();
        std::int64_t last = first;
        std::int64_t run_bytes = 0;
        while (!session.write_queue.empty() && session.write_queue.front() == last &&
               run_bytes <= budget) {
          run_bytes += session.index.at(static_cast<std::size_t>(last)).size;
          session.write_queue.pop_front();
          ++last;
        }
        plan_range(session, first, last, SessionKind::kWrite);
        budget -= run_bytes;
      }
    }
  }

  for (const SessionId feed : feeds_to_close) {
    // A patch-miss demote emptied its group mid-planning; the feed closes
    // here, outside the session iteration (HandleClose mutates the map).
    (void)HandleClose(feed);
  }
  if (cache_fallback_pending_) {
    // A stream was demoted mid-planning (its window outran its feed). Its
    // own tail rides the fallback reserve, but the set may no longer be
    // admissible with it disk-charged: settle before submitting, and drop
    // the work planned for any session the settling shed (its batches were
    // orphaned by HandleClose).
    ShedUntilAdmissible();
    std::erase_if(planned, [this](const Planned& p) {
      auto it = inflight_.find(p.batch_id);
      if (it == inflight_.end()) {
        return true;  // batch erased when an earlier row of it was dropped
      }
      if (it->second.session == kInvalidSession) {
        inflight_.erase(it);
        return true;
      }
      return false;
    });
  }

  // The paper: "making all the read requests to disks in cylinder order to
  // minimize the seek time" — here per member disk, since each disk's RT
  // queue sweeps its own surface independently.
  if (options_.sort_requests_by_cylinder) {
    std::sort(planned.begin(), planned.end(), [](const Planned& a, const Planned& b) {
      return a.segment.disk != b.segment.disk ? a.segment.disk < b.segment.disk
                                              : a.cylinder < b.cylinder;
    });
  }
  for (Planned& p : planned) {
    if (p.request.kind == crdisk::IoKind::kRead) {
      ++stats_.read_requests;
      if (obs_ != nullptr) {
        obs_->read_requests->Add();
      }
    } else {
      ++stats_.write_requests;
      if (obs_ != nullptr) {
        obs_->write_requests->Add();
      }
    }
    volume_->NotePiece(p.segment);
    volume_->driver(p.segment.disk).Submit(std::move(p.request));
  }
  const std::int64_t issued = static_cast<std::int64_t>(planned.size());
  interval_records_[interval_slot].requests += issued;
  return issued;
}

// ---------------------------------------------------------------------------
// Data path and introspection
// ---------------------------------------------------------------------------

std::optional<BufferedChunk> CrasServer::Get(SessionId id, crbase::Time logical) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return std::nullopt;
  }
  // The time-driven sweep: data behind the logical clock ages out on every
  // buffer touch, with no server round trip.
  session->buffer->DiscardObsolete(session->clock->Now());
  return session->buffer->Get(logical);
}

crobs::SessionTrace* CrasServer::FrameTrace(SessionId id) const {
  const Session* session = FindSession(id);
  return session == nullptr ? nullptr : session->ftrace;
}

crbase::Time CrasServer::LogicalNow(SessionId id) const {
  const Session* session = FindSession(id);
  if (session == nullptr) {
    return 0;
  }
  return session->clock->Now();
}

crbase::Status CrasServer::PutChunk(SessionId id, std::int64_t chunk) {
  Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  if (session->kind != SessionKind::kWrite) {
    return crbase::FailedPreconditionError("PutChunk on a read session");
  }
  if (chunk < 0 || chunk >= static_cast<std::int64_t>(session->index.count())) {
    return crbase::OutOfRangeError("chunk index out of range");
  }
  session->write_queue.push_back(chunk);
  return crbase::OkStatus();
}

crbase::Result<SessionStats> CrasServer::GetSessionStats(SessionId id) const {
  const Session* session = FindSession(id);
  if (session == nullptr) {
    return crbase::NotFoundError("no such session");
  }
  return session->stats;
}

const TimeDrivenBufferStats* CrasServer::GetBufferStats(SessionId id) const {
  const Session* session = FindSession(id);
  if (session == nullptr) {
    return nullptr;
  }
  return &session->buffer->stats();
}

CrasServer::Session* CrasServer::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const CrasServer::Session* CrasServer::FindSession(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

std::vector<StreamDemand> CrasServer::CurrentDemands() const {
  std::vector<StreamDemand> demands;
  demands.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    demands.push_back(session.demand);
  }
  return demands;
}

std::vector<crvol::CachedStreamDemand> CrasServer::CurrentCachedDemands() const {
  std::vector<crvol::CachedStreamDemand> demands;
  demands.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    // Group members are memory-only like cache-served streams: the group's
    // disk time is charged once, through its feed session.
    demands.push_back({session.demand, session.cache_served || session.group_served});
  }
  return demands;
}

bool CrasServer::DetachFromCache(SessionId id) {
  Session* session = FindSession(id);
  if (session == nullptr || session->kind != SessionKind::kRead) {
    return false;
  }
  bool changed = session->cache_served;
  for (const crcache::StreamId orphan : cache_->Unregister(id, kernel_->Now())) {
    if (Session* o = FindSession(orphan); o != nullptr) {
      o->cache_served = false;
      changed = true;
    }
  }
  session->cache_served = false;
  // Re-register as a disk-served chain member at the current scheduling
  // position, so future opens can still attach behind this stream.
  cache_->Register(id, session->inode, session->next_chunk, crcache::OpenDecision{},
                   kernel_->Now());
  return changed;
}

}  // namespace cras
