// CRAS — the Constant Rate Access Server (§2).
//
// A user-level continuous-media storage server providing exactly one
// service: retrieving streams from disk at a constant rate. Its structure
// follows Figure 3 of the paper:
//
//   request manager   — accepts open/close/start/stop/seek, runs the
//                       admission test, owns the session table;
//   request scheduler — periodic with period T (the *interval time*); at
//                       each boundary it (1) publishes the data retrieved
//                       during the previous interval into the time-driven
//                       shared buffers and (2) issues, in per-disk cylinder
//                       order, every disk read the next interval needs,
//                       coalescing contiguous blocks up to 256 KiB per
//                       request and fanning each request out to the member
//                       disk of the striped volume that owns its blocks;
//   I/O-done manager  — receives completion notifications from the driver
//                       and queues them for the scheduler;
//   deadline manager  — consumes deadline-miss notifications (CRAS logs a
//                       warning and carries on);
//   signal handler    — odd jobs: stat dumps and shutdown.
//
// All requests go to the driver's real-time queue. Memory is wired: the
// server never touches a pageable byte or a non-real-time OS service during
// retrieval.
//
// Extension (paper §4, built here): constant-rate *write* sessions over
// contiguously preallocated files, staged through the same interval
// scheduler and admission formulas.
//
// Extension (beyond the paper): the server retrieves from a multi-disk
// volume (crvol::Volume — striped or rotating-parity). Admission runs the
// paper's formulas per member disk (crvol::VolumeAdmissionModel), so an
// N-disk volume admits ~N times the Fig. 6 stream count. The single-driver
// constructors wrap the driver in a degenerate one-disk volume and behave
// exactly as before.
//
// Extension (fault tolerance): a sixth thread, the *degradation
// controller*, listens for member-disk state changes (fail-stop, slow,
// recovered — see crfault). On a change it updates the admission model to
// the degraded array (a parity volume's survivors are charged the
// reconstruction reads; a slow member gets derated worst-case parameters)
// and re-runs the admission test over the open sessions. If the degraded
// array can no longer carry them all, it sheds the fewest streams —
// highest-rate sessions go first, so the low-rate majority keeps playing —
// and every surviving stream retains the full constant-rate guarantee.
//
// Extension (session leases): with Options::lease_period set, every session
// is covered by a lease the client renews with lightweight heartbeats
// (RenewLease — a direct call, cheap enough to ride a network delivery
// event; see crnet::LeaseClient). A lease-reaper thread closes sessions
// whose lease has lapsed — buffer reclaimed, wired memory unwired,
// admission share released — so a crashed or partitioned client can never
// strand server resources. A reaped session's resume state (position,
// demand, index) is remembered for a bounded history; Reconnect(id) renews
// a live lease, or re-admits and resumes a reaped session at its last
// logical position.

#ifndef SRC_CORE_CRAS_H_
#define SRC_CORE_CRAS_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/time_units.h"
#include "src/cache/stream_cache.h"
#include "src/core/admission.h"
#include "src/core/logical_clock.h"
#include "src/core/time_driven_buffer.h"
#include "src/disk/driver.h"
#include "src/mcast/group_manager.h"
#include "src/media/chunk_index.h"
#include "src/rtmach/kernel.h"
#include "src/rtmach/periodic.h"
#include "src/sim/port.h"
#include "src/sim/task.h"
#include "src/ufs/ufs.h"
#include "src/volume/striped_volume.h"
#include "src/volume/volume.h"
#include "src/volume/volume_admission.h"

namespace cras {

using SessionId = std::int64_t;
inline constexpr SessionId kInvalidSession = -1;

enum class SessionKind {
  kRead,   // constant-rate retrieval (the paper's only mode)
  kWrite,  // constant-rate recording (the paper's §4 extension)
};

// crs_open parameters. The client supplies the control-file contents (chunk
// timestamps/durations/sizes) and the worst-case data rate CRAS must
// reserve.
struct OpenParams {
  crufs::InodeNumber inode = crufs::kInvalidInode;
  crmedia::ChunkIndex index;
  // R_i. Zero means "derive from the index": its worst-case rate over one
  // interval window.
  double declared_rate = 0;
  SessionKind kind = SessionKind::kRead;
  // Clock/prefetch rate factor (1.0 = recorded rate; 2.0 = the paper's
  // fast-forward example, which retrieves *every* frame at double speed).
  double rate_factor = 1.0;
  // Ask for grouped (multicast) delivery. With Options::mcast.enabled the
  // server batches this viewer onto a delivery group of its title — one
  // server-owned disk feed per group, members admission-charged like
  // cache-served streams. Ignored (plain unicast open) when multicast is
  // off, for write sessions, or at a non-unit rate factor.
  bool grouped = false;
};

struct SessionStats {
  std::int64_t chunks_published = 0;  // placed into the shared buffer
  std::int64_t bytes_published = 0;
  std::int64_t chunks_written = 0;    // write sessions
  std::int64_t bytes_written = 0;
  crbase::Duration max_publish_lag = 0;  // completion-to-boundary worst case
};

// One row per elapsed interval: what the scheduler issued and what it cost.
// Figures 8-9 are the ratio actual_io/estimated_io.
struct IntervalRecord {
  std::int64_t index = 0;
  std::int64_t requests = 0;
  std::int64_t bytes = 0;
  crbase::Duration estimated_io = 0;  // admission model, issued set
  crbase::Duration actual_io = 0;     // measured device time of those requests
  crbase::Duration scheduler_lateness = 0;
  bool completed_by_deadline = true;  // all I/O landed before the next boundary
};

struct ServerStats {
  std::int64_t sessions_opened = 0;
  std::int64_t sessions_rejected = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t read_requests = 0;
  std::int64_t write_requests = 0;
  // Sessions closed by the degradation controller because the degraded
  // array could no longer carry them.
  std::int64_t streams_shed = 0;
  // Member state changes the degradation controller processed.
  std::int64_t member_changes = 0;
  // Lease bookkeeping (all zero when leases are disabled).
  std::int64_t lease_renewals = 0;
  std::int64_t sessions_reaped = 0;   // lease lapsed; closed by the reaper
  std::int64_t sessions_resumed = 0;  // reaped, then reconnected and resumed
  // Bytes the scheduler served from the stream cache (prefix or interval
  // pool) instead of issuing disk reads. Zero when the cache is disabled.
  std::int64_t bytes_from_cache = 0;
};

class CrasServer {
 public:
  struct Options {
    crbase::Duration interval = crbase::Milliseconds(500);
    std::int64_t max_read_bytes = 256 * crbase::kKiB;
    // Wired-buffer budget for all time-driven buffers (B_total bound). The
    // paper's server wires ~250 KB of code/state plus the buffer space.
    std::int64_t memory_budget_bytes = 12 * crbase::kMiB;
    crbase::Duration jitter_allowance = crbase::Milliseconds(100);
    DiskParams disk_params;
    // CPU charges, modelling the server's execution on the paper's hardware.
    crbase::Duration cpu_per_control_op = crbase::Microseconds(300);
    crbase::Duration cpu_per_interval = crbase::Microseconds(200);
    crbase::Duration cpu_per_request = crbase::Microseconds(60);
    crbase::Duration cpu_per_completion = crbase::Microseconds(30);
    crbase::Duration cpu_per_publish = crbase::Microseconds(5);
    int priority = crrt::kPriorityServer;
    // Session-lease period (0 = leases disabled, the classic trusting
    // server). A client must renew within lease_grace periods or its
    // session is reaped: closed, buffer reclaimed, admission released.
    crbase::Duration lease_period = 0;
    double lease_grace = 1.5;
    // Reaped sessions whose resume state is kept for Reconnect(); oldest
    // evicted beyond this bound.
    std::size_t reaped_history = 16;
    // "Making all the read requests to disks in cylinder order to minimize
    // the seek time" (§2.2). Off only for the A2 ablation.
    bool sort_requests_by_cylinder = true;
    // Stream buffer cache (interval + prefix caching). Disabled by default;
    // with cache.enabled the server plans each read open against the cache,
    // admits cache-served streams at memory cost (AdmissibleCached), serves
    // cached windows with zero disk time, and falls back to disk — re-running
    // admission — whenever a predecessor dies or stalls.
    crcache::CacheOptions cache;
    // Multicast delivery groups (src/mcast). With mcast.enabled, grouped
    // opens of one title share a single server-owned disk feed session
    // (admitted at the stream rate times 1 + repair_overhead); the members
    // are charged memory only, like cache-served streams. Late joiners
    // bridge from the pinned prefix when the cache is also enabled.
    crmcast::McastOptions mcast;
    // Observability hub (nullable). When set, the server instruments the
    // whole stack: the volume's member disks and drivers, the admission
    // model, per-stream buffers, interval spans, per-batch prefetch spans,
    // and a deadline-slack histogram. Null costs one pointer test per site.
    crobs::Hub* obs = nullptr;
  };

  // Single-disk constructors: wrap `driver` in a one-disk volume; behaviour
  // is identical to the pre-volume server.
  CrasServer(crrt::Kernel& kernel, crdisk::DiskDriver& driver, crufs::Ufs& fs);
  CrasServer(crrt::Kernel& kernel, crdisk::DiskDriver& driver, crufs::Ufs& fs,
             const Options& options);
  // Multi-disk volume constructors (striped or parity): `fs` must span the
  // volume's logical space (see crufs::Ufs::Options::total_sectors).
  // Options::disk_params describes one member disk; admission runs per
  // disk. The server installs itself as the volume's member-state listener
  // (degradation controller).
  CrasServer(crrt::Kernel& kernel, crvol::Volume& volume, crufs::Ufs& fs);
  CrasServer(crrt::Kernel& kernel, crvol::Volume& volume, crufs::Ufs& fs,
             const Options& options);
  CrasServer(const CrasServer&) = delete;
  CrasServer& operator=(const CrasServer&) = delete;
  // Reclaims client frames whose control messages were still queued
  // unprocessed (the ports themselves reclaim blocked receivers).
  ~CrasServer();

  // Spawns the six server threads (idempotent).
  void Start();

  // Initial playback latency a client should allow: data scheduled in the
  // interval after crs_start becomes visible two boundaries later.
  crbase::Duration SuggestedInitialDelay() const { return 2 * options_.interval; }

  // ---- control interface (crs_open/close/start/stop/seek; Table 2) ----
  // Each is a coroutine awaitable resolving when the request manager has
  // processed the request:  `auto r = co_await server.Open(params);`

  auto Open(OpenParams params) {
    return ControlAwaiter<crbase::Result<SessionId>>{
        this, ControlMsg{ControlMsg::kOpen, kInvalidSession, std::move(params), 0, 0, nullptr, {}}};
  }
  auto Close(SessionId id) {
    return ControlAwaiter<crbase::Status>{
        this, ControlMsg{ControlMsg::kClose, id, OpenParams{}, 0, 0, nullptr, {}}};
  }
  // Starts prefetching and the logical clock; logical zero is reached after
  // `initial_delay` (use SuggestedInitialDelay()).
  auto StartStream(SessionId id, crbase::Duration initial_delay) {
    return ControlAwaiter<crbase::Status>{
        this, ControlMsg{ControlMsg::kStart, id, OpenParams{}, initial_delay, 0, nullptr, {}}};
  }
  auto StopStream(SessionId id) {
    return ControlAwaiter<crbase::Status>{
        this, ControlMsg{ControlMsg::kStop, id, OpenParams{}, 0, 0, nullptr, {}}};
  }
  auto Seek(SessionId id, crbase::Time logical) {
    return ControlAwaiter<crbase::Status>{
        this, ControlMsg{ControlMsg::kSeek, id, OpenParams{}, 0, logical, nullptr, {}}};
  }
  // Changes the retrieval/clock rate factor mid-session (fast-forward or
  // return to normal speed). Re-runs the admission test at the new rate:
  // speeding up can be refused with RESOURCE_EXHAUSTED, in which case the
  // session continues unchanged. Buffer reservation is adjusted to the new
  // B_i.
  auto SetRate(SessionId id, double rate_factor) {
    ControlMsg msg{ControlMsg::kSetRate, id, OpenParams{}, 0, 0, nullptr, {}};
    msg.params.rate_factor = rate_factor;
    return ControlAwaiter<crbase::Status>{this, std::move(msg)};
  }
  // Reconnect-and-resume by session id. A live session's lease is renewed
  // (a partition that healed before the reaper noticed). A reaped session
  // whose resume state is still remembered is re-admitted and resumed at
  // its last logical position (RESOURCE_EXHAUSTED if the array can no
  // longer carry it); anything else is NOT_FOUND.
  auto Reconnect(SessionId id) {
    return ControlAwaiter<crbase::Status>{
        this, ControlMsg{ControlMsg::kReconnect, id, OpenParams{}, 0, 0, nullptr, {}}};
  }

  // ---- multicast interface ----
  // Demotes a delivery-group member back to unicast disk service — the
  // transport calls this when a receiver has fallen past the repair window
  // (mirrors the cache's demote-to-disk rule: re-settle admission, never a
  // silent miss). The member resumes scheduling from its clock position; if
  // it emptied the group, the feed closes with it. Re-runs the admission
  // settle, so the demoted stream may be shed (observable via WasShed).
  // Direct like RenewLease: cheap enough to call from a delivery event.
  // Returns false when `id` is unknown or not a group member.
  bool DemoteGroupMember(SessionId id, const std::string& reason);

  // ---- lease interface ----
  // Renews session `id`'s lease (no-op on an unknown id — a heartbeat
  // racing the reaper). Direct like Get(): cheap enough to be called from a
  // network delivery event, which is exactly what crnet::LeaseClient does.
  void RenewLease(SessionId id);

  // ---- data interface (crs_get) ----
  // Direct shared-buffer access; no IPC, exactly as in the paper.
  std::optional<BufferedChunk> Get(SessionId id, crbase::Time logical);
  crbase::Time LogicalNow(SessionId id) const;

  // Session `id`'s frame-trace ring, or nullptr (unknown session, or frame
  // tracing disabled). The delivery layer — local player, NPS sender, group
  // transport — caches this once per session and stamps the downstream
  // stages; Get() itself never stamps playout, because server-side senders
  // call it long before the client consumes the frame.
  crobs::SessionTrace* FrameTrace(SessionId id) const;

  // Write-session data path: the client marks `chunk` of the session's
  // index as produced (resident in the shared buffer, ready to hit disk).
  crbase::Status PutChunk(SessionId id, std::int64_t chunk);

  // ---- introspection ----
  const Options& options() const { return options_; }
  // The paper's single-disk admission model (one member disk's parameters).
  // Decisions are made by volume_admission(), which degenerates to exactly
  // this model on a one-disk volume.
  const AdmissionModel& admission() const { return admission_; }
  const crvol::VolumeAdmissionModel& volume_admission() const { return volume_admission_; }
  crvol::Volume& volume() { return *volume_; }
  // The stream cache; null when Options::cache.enabled is false.
  const crcache::StreamCache* cache() const { return cache_.get(); }
  // Delivery-group bookkeeping; null when Options::mcast.enabled is false.
  crmcast::GroupManager* mcast_groups() { return group_mgr_.get(); }
  const crmcast::GroupManager* mcast_groups() const { return group_mgr_.get(); }
  bool HasSession(SessionId id) const { return FindSession(id) != nullptr; }
  const ServerStats& stats() const { return stats_; }
  // Whether the degradation controller shed session `id` (closed it to keep
  // the degraded array's guarantees for the remaining streams). Remembered
  // past the close, so a client polling a vanished session can tell "shed"
  // from "never existed".
  bool WasShed(SessionId id) const { return shed_ids_.count(id) != 0; }
  // Whether the lease reaper ever reaped session `id` (it may have been
  // resumed since). Lets a silent client distinguish "lease lapsed" from
  // "never existed".
  bool WasReaped(SessionId id) const { return reaped_ids_.count(id) != 0; }
  std::size_t resumable_sessions() const { return reaped_.size(); }
  const std::vector<IntervalRecord>& interval_records() const { return interval_records_; }
  std::int64_t buffer_bytes_reserved() const { return buffer_bytes_reserved_; }
  std::size_t open_sessions() const { return sessions_.size(); }
  crbase::Result<SessionStats> GetSessionStats(SessionId id) const;
  const TimeDrivenBufferStats* GetBufferStats(SessionId id) const;

  // Asks the signal-handler thread to shut the server down; threads drain
  // and exit at the next opportunity.
  void SignalShutdown();

 private:
  struct ControlMsg {
    enum Kind {
      kOpen,
      kClose,
      kStart,
      kStop,
      kSeek,
      kSetRate,
      kReconnect,
      kShutdown
    } kind = kShutdown;
    SessionId id = kInvalidSession;
    OpenParams params;
    crbase::Duration initial_delay = 0;
    crbase::Time seek_to = 0;
    std::function<void(crbase::Result<SessionId>)> done;
    // The client frame suspended until `done` fires. Owning: dropping the
    // message (queued at teardown, or held in a reclaimed server frame)
    // destroys the client's chain with it.
    crsim::ParkedHandle parked;

    // Resumes the client. Releases `parked` first: once resumed the client
    // frame is live again and no longer ours to reclaim.
    void Complete(crbase::Result<SessionId> result) {
      parked.release();
      done(std::move(result));
    }
  };

  template <typename R>
  struct ControlAwaiter {
    CrasServer* server;
    ControlMsg msg;
    crbase::Result<SessionId> raw = kInvalidSession;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      msg.done = [this, h](crbase::Result<SessionId> r) {
        raw = std::move(r);
        h.resume();
      };
      msg.parked = crsim::ParkedHandle(h);
      server->control_port_.Send(std::move(msg));
    }
    R await_resume() {
      if constexpr (std::is_same_v<R, crbase::Status>) {
        return raw.status();
      } else {
        return std::move(raw);
      }
    }
  };

  struct Session {
    SessionId id = kInvalidSession;
    SessionKind kind = SessionKind::kRead;
    crufs::InodeNumber inode = crufs::kInvalidInode;
    crmedia::ChunkIndex index;
    StreamDemand demand;
    double rate_factor = 1.0;
    std::unique_ptr<TimeDrivenBuffer> buffer;
    std::unique_ptr<LogicalClock> clock;
    bool started = false;
    // Serving class: true while the stream's interval demand is fed from
    // the cache and admission charges it memory only (mirrors the cache's
    // own state; flipped on fallback).
    bool cache_served = false;
    // Delivery-group member: interval data arrives via the group's
    // multicast feed, so admission charges memory only and the scheduler
    // plans I/O only for the cache-bridged patch [0, group_limit_chunk).
    bool group_served = false;
    // Server-owned feed session of a delivery group: carries the group's
    // one disk stream. No client lease (the reaper skips it); shed last.
    bool feed = false;
    std::int64_t group_limit_chunk = -1;  // member patch bound; -1 = none
    crbase::Time prefetch_pos = 0;   // logical time of the next window
    std::int64_t next_chunk = 0;     // first chunk not yet scheduled
    std::deque<std::int64_t> write_queue;  // produced, not yet written
    crbase::Time lease_renewed_at = 0;     // last RenewLease (or open) time
    // Frame-trace ring for this session (owned by the hub's FrameTracer);
    // null when frame tracing is off, so stamping costs one pointer test.
    crobs::SessionTrace* ftrace = nullptr;
    SessionStats stats;
  };

  // Resume state of a reaped session, kept for Reconnect().
  struct ReapedSession {
    SessionKind kind = SessionKind::kRead;
    crufs::InodeNumber inode = crufs::kInvalidInode;
    crmedia::ChunkIndex index;
    StreamDemand demand;
    double rate_factor = 1.0;
    crbase::Time logical_pos = 0;  // clock reading at reap time
    bool started = false;
    crbase::Time reaped_at = 0;
  };

  struct Batch {
    std::uint64_t id = 0;
    SessionId session = kInvalidSession;
    std::int64_t first_chunk = 0;
    std::int64_t last_chunk = 0;  // exclusive
    SessionKind kind = SessionKind::kRead;
    int outstanding = 0;
    std::int64_t bytes = 0;
    std::size_t interval_slot = 0;  // index into interval_records_
    crbase::Time deadline = 0;      // next boundary after issue
    crbase::Time planned_at = 0;    // scheduler boundary that issued it
    // Earliest member-disk service start among the batch's completions
    // (derived: completion time minus its service terms). Feeds the frame
    // trace's disk-queue / disk-service split; -1 until a completion lands.
    crbase::Time first_service_start = -1;
  };

  struct IoDoneMsg {
    std::uint64_t batch_id = 0;
    int disk = -1;  // member disk that served it (budget-ledger attribution)
    crdisk::DiskCompletion completion;
  };

  // A member-disk state transition, forwarded from the volume's listener to
  // the degradation-controller thread. disk < 0 is the shutdown sentinel.
  struct MemberChange {
    int disk = -1;
    crvol::MemberState state = crvol::MemberState::kHealthy;
  };

  // Thread bodies.
  crsim::Task RequestManagerThread(crrt::ThreadContext& ctx);
  crsim::Task RequestSchedulerThread(crrt::ThreadContext& ctx);
  crsim::Task IoDoneManagerThread(crrt::ThreadContext& ctx);
  crsim::Task DeadlineManagerThread(crrt::ThreadContext& ctx);
  crsim::Task SignalHandlerThread(crrt::ThreadContext& ctx);
  crsim::Task DegradationControllerThread(crrt::ThreadContext& ctx);
  crsim::Task LeaseReaperThread(crrt::ThreadContext& ctx);

  // Request-manager operations. `internal_feed` marks the server's own
  // recursive open of a delivery-group feed session.
  crbase::Result<SessionId> HandleOpen(OpenParams params, bool internal_feed = false);
  crbase::Status HandleClose(SessionId id);
  crbase::Status HandleStart(SessionId id, crbase::Duration initial_delay);
  crbase::Status HandleStop(SessionId id);
  crbase::Status HandleSeek(SessionId id, crbase::Time logical);
  crbase::Status HandleSetRate(SessionId id, double rate_factor);
  crbase::Status HandleReconnect(SessionId id);

  // Lease-reaper operations: closes every session whose lease lapsed,
  // remembering its resume state.
  void ReapExpired();

  // Scheduler phases.
  // Returns the number of chunks published.
  std::int64_t PublishCompletedBatches();
  // Collects this interval's disk work; returns the number of requests
  // issued (after cylinder-order sorting).
  std::int64_t IssueIntervalIo(std::size_t interval_slot, crbase::Time deadline);

  Session* FindSession(SessionId id);
  const Session* FindSession(SessionId id) const;
  std::vector<StreamDemand> CurrentDemands() const;
  // The open sessions' demands tagged with their serving class, the input
  // to AdmissibleCached/EvaluateCached.
  std::vector<crvol::CachedStreamDemand> CurrentCachedDemands() const;
  // Drops session `id`'s cache service (and its follower's pair, if any)
  // and re-registers it as a plain disk-served chain member at its current
  // scheduling position. Returns true if any stream's serving class changed
  // (the caller then re-runs ShedUntilAdmissible).
  bool DetachFromCache(SessionId id);
  // Whether admission decisions use the serving-class-aware cached path
  // (cache or multicast groups active — both admit memory-only streams).
  bool UseCachedAdmission() const {
    return cache_ != nullptr || group_mgr_ != nullptr;
  }
  // Flips a group member back to plain unicast disk service: clears the
  // group flags and resumes scheduling at the clock's current position.
  // Membership bookkeeping (GroupManager) is the caller's to update.
  void ResumeUnicast(Session& session);

  // Degradation-controller operations.
  // Applies a member state change to the admission model (failed flag,
  // derated parameters) and re-runs admission over the open sessions.
  void ApplyMemberChange(const MemberChange& change);
  // Sheds sessions until the remaining set passes the (degraded) admission
  // test — highest-rate first, so the fewest streams are lost.
  void ShedUntilAdmissible();

  struct ObsState {
    crobs::Hub* hub = nullptr;
    // Cached hub->frames() when frame tracing is enabled; per-session rings
    // are registered at open and cached on the Session itself.
    crobs::FrameTracer* frames = nullptr;
    std::uint32_t track = 0;          // "cras" — the scheduler's track
    std::uint32_t n_interval = 0;     // B/E span per scheduler tick
    std::uint32_t cat_batch = 0;      // async category for prefetch batches
    std::uint32_t n_prefetch = 0;     // async span, issue -> last completion
    std::uint32_t n_slack = 0;        // counter samples of deadline slack
    std::uint32_t n_miss = 0;         // instant per deadline miss
    std::uint32_t n_member = 0;       // instant per member state change
    std::uint32_t n_shed = 0;         // instant per shed stream
    std::uint32_t n_reap = 0;         // instant per reaped session
    crobs::Counter* sessions_opened = nullptr;
    crobs::Counter* sessions_rejected = nullptr;
    crobs::Counter* deadline_misses = nullptr;
    crobs::Counter* bytes_read = nullptr;
    crobs::Counter* bytes_written = nullptr;
    crobs::Counter* read_requests = nullptr;
    crobs::Counter* write_requests = nullptr;
    crobs::Counter* streams_shed = nullptr;
    crobs::Counter* sessions_reaped = nullptr;
    crobs::Counter* sessions_resumed = nullptr;
    crobs::Counter* bytes_from_cache = nullptr;
    crobs::Gauge* streams_kept = nullptr;
    // Age of the lease at each renewal — the observed heartbeat cadence.
    crobs::Histogram* lease_age_ms = nullptr;
    crobs::Histogram* deadline_slack_ms = nullptr;
    // Slack recorded only while the volume is degraded: how much margin the
    // reconstruction-loaded array keeps to the interval boundary.
    crobs::Histogram* degraded_slack_ms = nullptr;
    // Admission-audit ledger: per-interval, per-disk predicted-vs-measured
    // budget terms. Owned here (it audits this server's admission state);
    // the hub holds a borrowed pointer for flight-recorder dumps.
    std::unique_ptr<crobs::BudgetLedger> ledger;
  };
  void AttachObs(crobs::Hub* hub);

  crrt::Kernel* kernel_;
  // Set only by the single-driver constructors (the wrapping volume).
  std::unique_ptr<crvol::Volume> owned_volume_;
  crvol::Volume* volume_;
  crufs::Ufs* fs_;
  Options options_;
  AdmissionModel admission_;
  crvol::VolumeAdmissionModel volume_admission_;
  // Null unless options_.cache.enabled.
  std::unique_ptr<crcache::StreamCache> cache_;
  // Null unless options_.mcast.enabled.
  std::unique_ptr<crmcast::GroupManager> group_mgr_;
  // Set when a close/reap orphaned a cached follower; the next owner of the
  // control flow re-runs ShedUntilAdmissible to settle the fallen-back
  // stream (re-admit on the freed bandwidth, or shed).
  bool cache_fallback_pending_ = false;

  crsim::Port<ControlMsg> control_port_;
  crsim::Port<IoDoneMsg> io_done_port_;
  crsim::Port<crrt::DeadlineMiss> deadline_port_;
  crsim::Port<int> signal_port_;
  crsim::Port<MemberChange> fault_port_;

  std::map<SessionId, Session> sessions_;
  SessionId next_session_id_ = 1;
  std::int64_t buffer_bytes_reserved_ = 0;
  std::set<SessionId> shed_ids_;
  std::set<SessionId> reaped_ids_;
  std::map<SessionId, ReapedSession> reaped_;

  std::map<std::uint64_t, Batch> inflight_;
  std::deque<std::uint64_t> completed_batches_;
  std::uint64_t next_batch_id_ = 1;

  std::vector<IntervalRecord> interval_records_;
  ServerStats stats_;

  std::unique_ptr<ObsState> obs_;

  std::vector<crsim::Task> threads_;
  bool started_ = false;
  bool shutdown_ = false;
};

}  // namespace cras

#endif  // SRC_CORE_CRAS_H_
