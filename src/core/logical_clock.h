// Per-stream logical clock (§2.4).
//
// Each stream owns a logical clock, distinct from the system clock. When a
// stream is opened its logical clock reads zero and is stopped; crs_start
// starts it advancing at the stream's recording rate times an optional rate
// factor; crs_stop freezes it; crs_seek repositions it. Clients address
// media data by logical time, and the time-driven buffer discards data whose
// timestamps the logical clock has passed.

#ifndef SRC_CORE_LOGICAL_CLOCK_H_
#define SRC_CORE_LOGICAL_CLOCK_H_

#include "src/base/logging.h"
#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace cras {

using crbase::Duration;
using crbase::Time;

class LogicalClock {
 public:
  explicit LogicalClock(crsim::Engine& engine) : engine_(&engine) {}

  bool running() const { return running_; }
  double rate() const { return rate_; }

  // Current logical time. May be negative while an initial delay elapses.
  Time Now() const {
    if (!running_) {
      return base_logical_;
    }
    const Duration real_elapsed = engine_->Now() - base_real_;
    return base_logical_ + static_cast<Duration>(rate_ * static_cast<double>(real_elapsed));
  }

  // Starts (or resumes) the clock from its current reading, backed off by
  // `initial_delay` of real time: a freshly opened stream started with delay
  // d reads -d*rate now and exactly zero after d (the startup latency while
  // CRAS fills the first buffers); a stopped stream resumes where it froze.
  void Start(Duration initial_delay = 0) {
    CRAS_CHECK(initial_delay >= 0);
    base_logical_ -= static_cast<Time>(rate_ * static_cast<double>(initial_delay));
    base_real_ = engine_->Now();
    running_ = true;
  }

  // Freezes the clock at its current reading.
  void Stop() {
    base_logical_ = Now();
    running_ = false;
  }

  // Repositions the clock; keeps its running/stopped state.
  void SeekTo(Time logical) {
    base_logical_ = logical;
    base_real_ = engine_->Now();
  }

  // Changes the advance rate without disturbing the current reading.
  void SetRate(double rate) {
    CRAS_CHECK(rate > 0);
    base_logical_ = Now();
    base_real_ = engine_->Now();
    rate_ = rate;
  }

 private:
  crsim::Engine* engine_;
  bool running_ = false;
  double rate_ = 1.0;
  Time base_logical_ = 0;
  Time base_real_ = 0;
};

}  // namespace cras

#endif  // SRC_CORE_LOGICAL_CLOCK_H_
