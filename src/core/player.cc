#include "src/core/player.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/sim/awaitables.h"

namespace cras {

crbase::Duration PlayerStats::max_delay() const {
  crbase::Duration worst = 0;
  for (const FrameRecord& f : frames) {
    worst = std::max(worst, f.delay());
  }
  return worst;
}

std::int64_t PlayerStats::OnTimeBytes(crbase::Duration threshold) const {
  std::int64_t bytes = 0;
  for (const FrameRecord& f : frames) {
    if (f.delay() <= threshold) {
      bytes += f.bytes;
    }
  }
  return bytes;
}

crbase::Duration PlayerStats::mean_delay() const {
  if (frames.empty()) {
    return 0;
  }
  crbase::Duration total = 0;
  for (const FrameRecord& f : frames) {
    total += f.delay();
  }
  return total / static_cast<crbase::Duration>(frames.size());
}

crsim::Task SpawnCrasPlayer(crrt::Kernel& kernel, CrasServer& server,
                            const crmedia::MediaFile& file, const PlayerOptions& options,
                            PlayerStats* stats) {
  return kernel.Spawn(
      "player-" + file.name, options.priority,
      [&server, &file, options, stats](crrt::ThreadContext& ctx) -> crsim::Task {
        if (options.start_delay > 0) {
          co_await ctx.Sleep(options.start_delay);
        }
        OpenParams params;
        params.inode = file.inode;
        params.index = file.index;
        auto opened = co_await server.Open(std::move(params));
        if (!opened.ok()) {
          stats->open_rejected = true;
          co_return;
        }
        const SessionId id = *opened;
        const crbase::Duration initial_delay =
            options.initial_delay >= 0 ? options.initial_delay : server.SuggestedInitialDelay();
        (void)co_await server.StartStream(id, initial_delay);
        const crbase::Time logical_zero_at = ctx.Now() + initial_delay;
        // The frame-trace ring, if the hub has frame tracing on: the player
        // owns the playout verdict for a locally consumed stream.
        crobs::SessionTrace* ftrace = server.FrameTrace(id);

        const auto& chunks = file.index.chunks();
        const std::int64_t frame_count = static_cast<std::int64_t>(chunks.size());
        for (std::int64_t frame = 0; frame < frame_count; frame += options.frame_step) {
          const crmedia::Chunk& chunk = chunks[static_cast<std::size_t>(frame)];
          if (chunk.timestamp > options.play_length) {
            break;
          }
          const crbase::Time due_at = logical_zero_at + chunk.timestamp;
          if (due_at > ctx.Now()) {
            co_await ctx.Sleep(due_at - ctx.Now());
          }
          // The application must get the CPU before it can fetch the frame:
          // under contention this wait is part of the measured delay (the
          // paper's Figure 10 effect).
          co_await ctx.Compute(options.cpu_per_frame);
          // crs_get touches only the shared buffer; poll until the frame
          // lands or the give-up horizon passes.
          bool got = false;
          while (ctx.Now() - due_at < options.give_up) {
            if (server.WasShed(id)) {
              // The degradation controller closed the session; the stream is
              // over, not late.
              stats->shed = true;
              co_return;
            }
            std::optional<BufferedChunk> buffered = server.Get(id, chunk.timestamp);
            if (buffered.has_value()) {
              FrameRecord record;
              record.frame = frame;
              record.bytes = buffered->size;
              record.due_at = due_at;
              record.obtained_at = std::max(due_at, ctx.Now());
              stats->frames.push_back(record);
              ++stats->frames_played;
              stats->bytes_consumed += buffered->size;
              if (ftrace != nullptr) {
                ftrace->Deliver(frame);
              }
              got = true;
              break;
            }
            co_await ctx.Sleep(options.poll);
          }
          if (!got) {
            if (server.WasShed(id)) {
              stats->shed = true;
              co_return;
            }
            ++stats->frames_missed;
            if (ftrace != nullptr) {
              ftrace->Miss(frame, crobs::FrameStage::kPlayout);
            }
            continue;
          }
        }
        (void)co_await server.StopStream(id);
        (void)co_await server.Close(id);
      });
}

crsim::Task SpawnUfsPlayer(crrt::Kernel& kernel, crufs::UnixServer& server,
                           const crmedia::MediaFile& file, const PlayerOptions& options,
                           PlayerStats* stats) {
  return kernel.Spawn(
      "ufs-player-" + file.name, options.priority,
      [&server, &file, options, stats](crrt::ThreadContext& ctx) -> crsim::Task {
        if (options.start_delay > 0) {
          co_await ctx.Sleep(options.start_delay);
        }
        const crbase::Time start = ctx.Now();
        const auto& chunks = file.index.chunks();
        const std::int64_t frame_count = static_cast<std::int64_t>(chunks.size());
        for (std::int64_t frame = 0; frame < frame_count; frame += options.frame_step) {
          const crmedia::Chunk& chunk = chunks[static_cast<std::size_t>(frame)];
          if (chunk.timestamp > options.play_length) {
            break;
          }
          const crbase::Time due_at = start + chunk.timestamp;
          if (due_at > ctx.Now()) {
            co_await ctx.Sleep(due_at - ctx.Now());
          }
          co_await ctx.Compute(options.cpu_per_frame);
          crbase::Status st = co_await server.Read(file.inode, chunk.offset, chunk.size);
          if (!st.ok()) {
            ++stats->frames_missed;
            continue;
          }
          FrameRecord record;
          record.frame = frame;
          record.bytes = chunk.size;
          record.due_at = due_at;
          record.obtained_at = ctx.Now();
          stats->frames.push_back(record);
          ++stats->frames_played;
          stats->bytes_consumed += chunk.size;
        }
      });
}

}  // namespace cras
