// Playback clients used by the evaluation.
//
// A player renders a stream frame by frame at its recorded rate and records
// each frame's *delay* — the difference between the wall time at which the
// frame's data was actually obtainable and the wall time at which its
// logical timestamp fell due (the paper's Figure 7/10 metric).
//
// Two implementations mirror the paper's comparison:
//  * CrasPlayer — crs_open / crs_start / crs_get against a CRAS server;
//  * UfsPlayer  — read() against the Unix server at the frame schedule (the
//    baseline with no rate guarantee).

#ifndef SRC_CORE_PLAYER_H_
#define SRC_CORE_PLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/media/media_file.h"
#include "src/rtmach/kernel.h"
#include "src/sim/task.h"
#include "src/ufs/unix_server.h"

namespace cras {

struct FrameRecord {
  std::int64_t frame = 0;
  std::int64_t bytes = 0;
  crbase::Time due_at = 0;       // wall time the frame's logical timestamp fell due
  crbase::Time obtained_at = 0;  // wall time its data was available to the client
  crbase::Duration delay() const { return obtained_at - due_at; }
};

struct PlayerStats {
  std::vector<FrameRecord> frames;
  std::int64_t frames_played = 0;
  std::int64_t frames_missed = 0;  // data never arrived within the give-up window
  std::int64_t bytes_consumed = 0;
  bool open_rejected = false;      // CRAS admission refused the stream
  // The degradation controller closed this session mid-playback (degraded
  // array could no longer carry it). Frames rendered before the shed still
  // count in `frames`; frames after it count nowhere.
  bool shed = false;

  crbase::Duration max_delay() const;
  crbase::Duration mean_delay() const;
  // Bytes of frames delivered within `threshold` of their due time — the
  // "can it actually play back" throughput the paper's Figure 6 reports.
  std::int64_t OnTimeBytes(crbase::Duration threshold) const;
};

struct PlayerOptions {
  crbase::Duration play_length = crbase::Seconds(10);
  // Sleep before opening the stream. Staggering players avoids the
  // unrealistic lock-step wakeup of N identical clients started in the same
  // microsecond.
  crbase::Duration start_delay = 0;
  // CRAS only: initial delay allowed before logical zero (defaults to the
  // server's suggested 2*T when negative).
  crbase::Duration initial_delay = -1;
  // Consumption rate divisor for dynamic-QoS experiments: 3 plays every 3rd
  // frame (10 fps from a 30 fps stream), as in §2.4's example.
  std::int64_t frame_step = 1;
  // Polling grain while waiting for late data, and the give-up horizon.
  // The give-up must not exceed the server's jitter allowance J: a frame
  // later than J is discarded by the time-driven rule anyway, and a player
  // that keeps waiting for it slips so far that every subsequent chunk has
  // aged out before it asks (an unrecoverable spiral). Give up, count the
  // miss, and stay on schedule — which is what crs_get semantics imply.
  crbase::Duration poll = crbase::Milliseconds(2);
  crbase::Duration give_up = crbase::Milliseconds(100);
  // CPU charged per rendered frame (decode/display stand-in).
  crbase::Duration cpu_per_frame = crbase::Microseconds(200);
  int priority = crrt::kPriorityClient;
};

// Spawns a player against a CRAS server. `stats` must outlive the task.
crsim::Task SpawnCrasPlayer(crrt::Kernel& kernel, CrasServer& server,
                            const crmedia::MediaFile& file, const PlayerOptions& options,
                            PlayerStats* stats);

// Spawns a player reading through the Unix server (no guarantees).
crsim::Task SpawnUfsPlayer(crrt::Kernel& kernel, crufs::UnixServer& server,
                           const crmedia::MediaFile& file, const PlayerOptions& options,
                           PlayerStats* stats);

}  // namespace cras

#endif  // SRC_CORE_PLAYER_H_
