// A fully wired simulated machine: the paper's Gateway2000 P5-100 with one
// ST32550N disk, Real-Time Mach, the Unix server, and a CRAS server.
// `VolumeTestbed` is the multi-disk variant: the same rig over a striped
// volume of N identical disks.
//
// Used by integration tests, benches, and examples so every experiment runs
// on an identical rig.

#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include <memory>

#include "src/core/cras.h"
#include "src/obs/obs.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/rtmach/kernel.h"
#include "src/ufs/unix_server.h"
#include "src/volume/volume.h"

namespace cras {

struct TestbedOptions {
  crrt::Kernel::Options kernel;
  crdisk::DiskDevice::Options device;
  crdisk::DiskDriver::Options driver;
  crufs::Ufs::Options ufs;
  crufs::UnixServer::Options unix_server;
  CrasServer::Options cras;
  // Hub configuration (tracing off by default; metrics always on — the
  // registry only holds what attached components register).
  crobs::Hub::Options obs;
  // false: the hub exists but no component attaches to it — the zero-cost
  // baseline of bench/obs_overhead. Everything else leaves this true.
  bool attach_obs = true;
};

class Testbed {
 public:
  Testbed() : Testbed(TestbedOptions{}) {}

  explicit Testbed(const TestbedOptions& options)
      : kernel(options.kernel),
        hub(kernel.engine(), options.obs),
        device(kernel.engine(), options.device),
        driver(kernel.engine(), device, options.driver),
        fs(options.ufs),
        unix_server(kernel, driver, fs, options.unix_server),
        cras_server(kernel, driver, fs,
                    WithObs(options.cras, options.attach_obs ? &hub : nullptr)) {}

  // Starts both servers.
  void StartServers() {
    unix_server.Start();
    cras_server.Start();
  }

  crsim::Engine& engine() { return kernel.engine(); }
  crbase::Time Now() const { return kernel.Now(); }

  crrt::Kernel kernel;
  // Attached to every layer through the CRAS server's options; benches and
  // tests read snapshots (hub.MetricsJson()) or dump traces from here.
  crobs::Hub hub;
  crdisk::DiskDevice device;
  crdisk::DiskDriver driver;
  crufs::Ufs fs;
  crufs::UnixServer unix_server;
  CrasServer cras_server;

 private:
  static CrasServer::Options WithObs(CrasServer::Options cras, crobs::Hub* hub) {
    cras.obs = hub;
    return cras;
  }
};

struct VolumeTestbedOptions {
  crrt::Kernel::Options kernel;
  crvol::VolumeOptions volume;
  crufs::Ufs::Options ufs;
  crufs::UnixServer::Options unix_server;
  CrasServer::Options cras;
  crobs::Hub::Options obs;
  // See TestbedOptions::attach_obs.
  bool attach_obs = true;
};

// The multi-disk rig: N identical member disks behind a striped or parity
// volume (options.volume.parity selects the layout), with the file system
// laid out over the volume's logical block space.
class VolumeTestbed {
 public:
  VolumeTestbed() : VolumeTestbed(VolumeTestbedOptions{}) {}

  explicit VolumeTestbed(const VolumeTestbedOptions& options)
      : kernel(options.kernel),
        hub(kernel.engine(), options.obs),
        volume_owner(crvol::MakeVolume(kernel.engine(), options.volume)),
        volume(*volume_owner),
        fs(UfsOptionsFor(volume, options.ufs)),
        unix_server(kernel, volume, fs, options.unix_server),
        cras_server(kernel, volume, fs,
                    WithObs(options.cras, options.attach_obs ? &hub : nullptr)) {}

  // Starts both servers.
  void StartServers() {
    unix_server.Start();
    cras_server.Start();
  }

  crsim::Engine& engine() { return kernel.engine(); }
  crbase::Time Now() const { return kernel.Now(); }

  crrt::Kernel kernel;
  crobs::Hub hub;
  std::unique_ptr<crvol::Volume> volume_owner;
  crvol::Volume& volume;
  crufs::Ufs fs;
  crufs::UnixServer unix_server;
  CrasServer cras_server;

 private:
  static CrasServer::Options WithObs(CrasServer::Options cras, crobs::Hub* hub) {
    cras.obs = hub;
    return cras;
  }

  static crufs::Ufs::Options UfsOptionsFor(const crvol::Volume& volume,
                                           crufs::Ufs::Options ufs) {
    ufs.geometry = volume.geometry();
    ufs.total_sectors = volume.total_sectors();
    if (volume.data_disks() > 1) {
      // A file "stripe" covers one full row of *data* units, so consecutive
      // rate-matched allocations rotate across the members that actually
      // hold data.
      ufs.stripe_unit_sectors = volume.stripe_unit_sectors();
      ufs.stripe_width_sectors = volume.stripe_unit_sectors() * volume.data_disks();
    }
    return ufs;
  }
};

}  // namespace cras

#endif  // SRC_CORE_TESTBED_H_
