// A fully wired simulated machine: the paper's Gateway2000 P5-100 with one
// ST32550N disk, Real-Time Mach, the Unix server, and a CRAS server.
//
// Used by integration tests, benches, and examples so every experiment runs
// on an identical rig.

#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include <memory>

#include "src/core/cras.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/rtmach/kernel.h"
#include "src/ufs/unix_server.h"

namespace cras {

struct TestbedOptions {
  crrt::Kernel::Options kernel;
  crdisk::DiskDevice::Options device;
  crdisk::DiskDriver::Options driver;
  crufs::Ufs::Options ufs;
  crufs::UnixServer::Options unix_server;
  CrasServer::Options cras;
};

class Testbed {
 public:
  Testbed() : Testbed(TestbedOptions{}) {}

  explicit Testbed(const TestbedOptions& options)
      : kernel(options.kernel),
        device(kernel.engine(), options.device),
        driver(kernel.engine(), device, options.driver),
        fs(options.ufs),
        unix_server(kernel, driver, fs, options.unix_server),
        cras_server(kernel, driver, fs, options.cras) {}

  // Starts both servers.
  void StartServers() {
    unix_server.Start();
    cras_server.Start();
  }

  crsim::Engine& engine() { return kernel.engine(); }
  crbase::Time Now() const { return kernel.Now(); }

  crrt::Kernel kernel;
  crdisk::DiskDevice device;
  crdisk::DiskDriver driver;
  crufs::Ufs fs;
  crufs::UnixServer unix_server;
  CrasServer cras_server;
};

}  // namespace cras

#endif  // SRC_CORE_TESTBED_H_
