#include "src/core/time_driven_buffer.h"

#include <algorithm>

#include "src/base/logging.h"

namespace cras {

TimeDrivenBuffer::TimeDrivenBuffer(std::int64_t capacity_bytes, Duration jitter_allowance)
    : capacity_bytes_(capacity_bytes), jitter_allowance_(jitter_allowance) {
  CRAS_CHECK(capacity_bytes > 0);
  CRAS_CHECK(jitter_allowance >= 0);
}

void TimeDrivenBuffer::AttachObs(crobs::Hub* hub, const std::string& stream) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Tracer& trace = hub->trace();
  obs->track = trace.InternTrack("buffers");
  obs->name = trace.InternName(stream);
  crobs::Registry& metrics = hub->metrics();
  obs->resident = metrics.GetGauge("buffer.resident_bytes", {{"stream", stream}});
  obs->puts = metrics.GetCounter("buffer.puts", {{"stream", stream}});
  obs->discarded = metrics.GetCounter("buffer.discarded", {{"stream", stream}});
  obs->evictions = metrics.GetCounter("buffer.overflow_evictions", {{"stream", stream}});
  obs_ = std::move(obs);
  RecordOccupancy();
}

void TimeDrivenBuffer::SetFrameTrace(crobs::SessionTrace* trace,
                                     crobs::FrameStage miss_stage) {
  ftrace_ = trace;
  miss_stage_ = miss_stage;
}

void TimeDrivenBuffer::NoteDropped(const Entry& entry) {
  if (ftrace_ != nullptr && !entry.taken) {
    ftrace_->Miss(entry.chunk.chunk_index, miss_stage_);
  }
}

void TimeDrivenBuffer::RecordOccupancy() {
  if (obs_ == nullptr) {
    return;
  }
  obs_->resident->Set(static_cast<double>(resident_bytes_));
  crobs::Tracer& trace = obs_->hub->trace();
  if (trace.enabled()) {
    trace.CounterSample(obs_->track, obs_->name, static_cast<double>(resident_bytes_));
  }
}

void TimeDrivenBuffer::DiscardObsolete(Time logical_now) {
  const Time discard_before = logical_now - jitter_allowance_;
  auto it = chunks_.begin();
  std::int64_t discarded = 0;
  while (it != chunks_.end()) {
    const BufferedChunk& c = it->second.chunk;
    if (c.timestamp + c.duration <= discard_before) {
      resident_bytes_ -= c.size;
      ++stats_.discarded_obsolete;
      ++discarded;
      NoteDropped(it->second);
      it = chunks_.erase(it);
    } else {
      // Keyed by timestamp: everything later is still live.
      break;
    }
  }
  if (discarded > 0 && obs_ != nullptr) {
    obs_->discarded->Add(discarded);
    RecordOccupancy();
  }
}

void TimeDrivenBuffer::Put(const BufferedChunk& chunk, Time logical_now) {
  DiscardObsolete(logical_now);
  if (chunk.timestamp + chunk.duration <= logical_now - jitter_allowance_) {
    // The data arrived after its playback window closed (a deadline miss
    // upstream); the time-driven rule says it is already garbage.
    ++stats_.rejected_late;
    if (ftrace_ != nullptr) {
      ftrace_->Miss(chunk.chunk_index, miss_stage_);
    }
    return;
  }
  // A duplicate put (e.g. after a seek re-fetches a window) replaces the
  // resident copy.
  auto existing = chunks_.find(chunk.timestamp);
  if (existing != chunks_.end()) {
    resident_bytes_ -= existing->second.chunk.size;
    chunks_.erase(existing);
    ++stats_.replaced;
  }
  while (resident_bytes_ + chunk.size > capacity_bytes_ && !chunks_.empty()) {
    auto oldest = chunks_.begin();
    resident_bytes_ -= oldest->second.chunk.size;
    NoteDropped(oldest->second);
    chunks_.erase(oldest);
    ++stats_.overflow_evictions;
    if (obs_ != nullptr) {
      obs_->evictions->Add();
    }
  }
  chunks_.emplace(chunk.timestamp, Entry{chunk, false});
  resident_bytes_ += chunk.size;
  stats_.max_resident_bytes = std::max(stats_.max_resident_bytes, resident_bytes_);
  ++stats_.puts;
  if (obs_ != nullptr) {
    obs_->puts->Add();
    RecordOccupancy();
  }
}

std::optional<BufferedChunk> TimeDrivenBuffer::Get(Time t) {
  // Last chunk with timestamp <= t whose interval covers t.
  auto it = chunks_.upper_bound(t);
  if (it == chunks_.begin()) {
    ++stats_.get_misses;
    return std::nullopt;
  }
  --it;
  const BufferedChunk& c = it->second.chunk;
  if (t >= c.timestamp + c.duration) {
    ++stats_.get_misses;
    return std::nullopt;
  }
  it->second.taken = true;
  ++stats_.get_hits;
  return c;
}

void TimeDrivenBuffer::Clear() {
  chunks_.clear();
  resident_bytes_ = 0;
  RecordOccupancy();
}

}  // namespace cras
