// Time-driven shared-memory buffer (§2.4).
//
// The shared buffer between CRAS and a client is indexed by *logical time*,
// not FIFO order. The server puts chunks with their timestamps; a chunk is
// discarded automatically once its timestamp falls behind
// `T_discard = logical_now - J` (J absorbs small jitters). Clients fetch the
// chunk covering any logical time without talking to the server.
//
// This is what decouples the server's constant-rate production from the
// client's arbitrary consumption rate: a client rendering at a third of the
// frame rate simply fetches every third chunk; the skipped ones age out on
// their own. A FIFO buffer would instead fill up and drop *new* data — the
// wrong data — which is the failure the paper designs this around.

#ifndef SRC_CORE_TIME_DRIVEN_BUFFER_H_
#define SRC_CORE_TIME_DRIVEN_BUFFER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/base/time_units.h"
#include "src/obs/obs.h"

namespace cras {

using crbase::Duration;
using crbase::Time;

// A resident chunk, as visible to the client through crs_get.
struct BufferedChunk {
  std::int64_t chunk_index = 0;  // position in the stream's chunk index
  Time timestamp = 0;
  Duration duration = 0;
  std::int64_t size = 0;
  Time filled_at = 0;  // real time the data landed in the buffer
};

struct TimeDrivenBufferStats {
  std::int64_t puts = 0;
  std::int64_t get_hits = 0;
  std::int64_t get_misses = 0;
  std::int64_t discarded_obsolete = 0;  // aged out past T_discard
  std::int64_t overflow_evictions = 0;  // capacity pressure (should be 0 when
                                        // admission holds)
  std::int64_t rejected_late = 0;       // arrived already obsolete
  std::int64_t replaced = 0;            // duplicate put superseded a resident chunk
  std::int64_t max_resident_bytes = 0;  // high-water mark of buffer occupancy
};

class TimeDrivenBuffer {
 public:
  // `capacity_bytes` is B_i from the admission test: 2*(T*R_i + C_i).
  // `jitter_allowance` is J.
  TimeDrivenBuffer(std::int64_t capacity_bytes, Duration jitter_allowance);

  std::int64_t capacity_bytes() const { return capacity_bytes_; }
  std::int64_t resident_bytes() const { return resident_bytes_; }
  std::size_t resident_chunks() const { return chunks_.size(); }
  Duration jitter_allowance() const { return jitter_allowance_; }
  const TimeDrivenBufferStats& stats() const { return stats_; }

  // Server side: inserts a chunk. `logical_now` drives the discard sweep
  // first; a chunk that is already obsolete on arrival is rejected. Never
  // blocks: under capacity pressure the oldest chunk is evicted (counted —
  // a correctly admitted stream never triggers this).
  void Put(const BufferedChunk& chunk, Time logical_now);

  // Client side (crs_get): the chunk covering logical time `t`, if resident.
  std::optional<BufferedChunk> Get(Time t);

  // Discards every chunk wholly earlier than `logical_now - J`.
  void DiscardObsolete(Time logical_now);

  // Drops everything (crs_seek repositions the stream).
  void Clear();

  // Registers per-stream occupancy/discard instruments keyed {stream}
  // ("s1", "s2", ...): an occupancy gauge (high-water via the snapshot's
  // max), put/discard counters, and an occupancy counter-sample series on
  // the "buffers" trace track.
  void AttachObs(crobs::Hub* hub, const std::string& stream);

  // Points the buffer at the session's frame-trace ring (nullptr detaches).
  // A chunk that ages out, overflows, or arrives late *without ever being
  // consumed* is resolved as missed at `miss_stage` — the last stage it
  // demonstrably reached (kPublished for a server-side buffer, kCompleted
  // for a receive-side reassembly buffer). Resolution is idempotent, so a
  // racing player- or sender-side verdict is safe either way.
  void SetFrameTrace(crobs::SessionTrace* trace,
                     crobs::FrameStage miss_stage = crobs::FrameStage::kPublished);

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    std::uint32_t track = 0;
    std::uint32_t name = 0;
    crobs::Gauge* resident = nullptr;
    crobs::Counter* puts = nullptr;
    crobs::Counter* discarded = nullptr;
    crobs::Counter* evictions = nullptr;
  };

  struct Entry {
    BufferedChunk chunk;
    bool taken = false;  // consumed by Get at least once
  };

  void RecordOccupancy();
  // Frame-trace a chunk leaving the buffer unconsumed (no-op otherwise).
  void NoteDropped(const Entry& entry);

  std::int64_t capacity_bytes_;
  Duration jitter_allowance_;
  std::map<Time, Entry> chunks_;  // keyed by timestamp
  std::int64_t resident_bytes_ = 0;
  TimeDrivenBufferStats stats_;
  std::unique_ptr<ObsState> obs_;
  crobs::SessionTrace* ftrace_ = nullptr;
  crobs::FrameStage miss_stage_ = crobs::FrameStage::kPublished;
};

}  // namespace cras

#endif  // SRC_CORE_TIME_DRIVEN_BUFFER_H_
