#include "src/disk/device.h"

#include <cmath>
#include <cstdlib>

#include "src/base/logging.h"

namespace crdisk {

DiskDevice::DiskDevice(crsim::Engine& engine, const Options& options)
    : engine_(&engine), options_(options) {
  CRAS_CHECK(options_.command_overhead >= 0);
}

double DiskDevice::AngleAt(crbase::Time t) const {
  const Duration rot = options_.geometry.rotation_time();
  return static_cast<double>(t % rot) / static_cast<double>(rot);
}

Duration DiskDevice::MeasureSeek(std::int64_t from_cylinder, std::int64_t to_cylinder) const {
  return options_.seek_model.SeekTime(std::abs(to_cylinder - from_cylinder));
}

void DiskDevice::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Tracer& trace = hub->trace();
  obs->track = trace.InternTrack(name);
  obs->n_io_rt = trace.InternName("io.rt");
  obs->n_io_nr = trace.InternName("io.nr");
  obs->n_command = trace.InternName("command");
  obs->n_seek = trace.InternName("seek");
  obs->n_rotation = trace.InternName("rotation");
  obs->n_transfer = trace.InternName("transfer");
  crobs::Registry& metrics = hub->metrics();
  obs->requests = metrics.GetCounter("disk.requests", {{"disk", name}});
  obs->sectors = metrics.GetCounter("disk.sectors", {{"disk", name}});
  obs->service_ms_rt = metrics.GetHistogram("disk.service_ms", {{"disk", name}, {"queue", "rt"}},
                                            crobs::LatencyBucketsMs());
  obs->service_ms_nr = metrics.GetHistogram("disk.service_ms", {{"disk", name}, {"queue", "nr"}},
                                            crobs::LatencyBucketsMs());
  obs_ = std::move(obs);
}

void DiskDevice::InjectTransientFault(Duration extra_latency, int request_count) {
  CRAS_CHECK(extra_latency >= 0);
  CRAS_CHECK(request_count >= 0);
  fault_extra_latency_ = extra_latency;
  fault_requests_remaining_ = request_count;
}

void DiskDevice::SetThroughputDerating(double factor) {
  CRAS_CHECK(factor >= 1.0) << "derating only slows a disk down: " << factor;
  throughput_derating_ = factor;
}

void DiskDevice::StartIo(const DiskRequest& req, std::uint64_t request_id,
                         crbase::Time enqueued_at) {
  CRAS_CHECK(!busy_) << "device services one request at a time";
  CRAS_CHECK(req.sectors > 0);
  const DiskGeometry& geo = options_.geometry;
  CRAS_CHECK(req.lba >= 0 && req.lba + req.sectors <= geo.total_sectors())
      << "I/O beyond end of disk: lba=" << req.lba << " sectors=" << req.sectors;
  busy_ = true;

  const crbase::Time now = engine_->Now();
  const std::int64_t target_cylinder = geo.CylinderOf(req.lba);

  const Duration command = options_.command_overhead;
  const Duration seek = options_.seek_model.SeekTime(std::abs(target_cylinder - current_cylinder_));

  // Rotational latency: the platter keeps spinning during command processing
  // and the seek; we wait from the angle at seek completion to the angle of
  // the first requested sector.
  const crbase::Time head_settled = now + command + seek;
  const double angle_now = AngleAt(head_settled);
  const double angle_target = geo.AngleOf(req.lba);
  double delta = angle_target - angle_now;
  if (delta < 0) {
    delta += 1.0;
  }
  const Duration rotation =
      static_cast<Duration>(delta * static_cast<double>(geo.rotation_time()));

  // Media transfer: sequential sectors stream at one track per revolution.
  // Track and cylinder switches within a transfer are folded into the media
  // rate (head switch time on this class of drive is well under one sector
  // time). On a zoned disk the rate is the starting track's zone rate —
  // transfers rarely span zones (zones are hundreds of cylinders wide).
  const Duration per_sector = geo.rotation_time() / geo.SectorsPerTrackAt(target_cylinder);
  const Duration transfer = static_cast<Duration>(
      static_cast<double>(per_sector * req.sectors) * throughput_derating_);

  crbase::Time finish = head_settled + rotation + transfer;
  if (fault_requests_remaining_ > 0) {
    finish += fault_extra_latency_;
    --fault_requests_remaining_;
    ++faults_applied_;
  }

  DiskCompletion completion;
  completion.request_id = request_id;
  completion.kind = req.kind;
  completion.lba = req.lba;
  completion.sectors = req.sectors;
  completion.realtime = req.realtime;
  completion.enqueued_at = enqueued_at;
  completion.started_at = now;
  completion.finished_at = finish;
  completion.command_time = command;
  completion.seek_time = seek;
  completion.rotation_time = rotation;
  completion.transfer_time = transfer;

  current_cylinder_ = geo.CylinderOf(req.lba + req.sectors - 1);

  stats_.requests += 1;
  stats_.sectors += req.sectors;
  stats_.busy_time += finish - now;
  stats_.seek_time += seek;
  stats_.rotation_time += rotation;
  stats_.transfer_time += transfer;
  stats_.command_time += command;

  if (obs_ != nullptr) {
    obs_->requests->Add();
    obs_->sectors->Add(req.sectors);
    (req.realtime ? obs_->service_ms_rt : obs_->service_ms_nr)
        ->Record(crobs::ToMillis(finish - now));
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      // The whole service span, with its mechanical phases nested inside.
      trace.Complete(obs_->track, req.realtime ? obs_->n_io_rt : obs_->n_io_nr, now, finish - now);
      trace.Complete(obs_->track, obs_->n_command, now, command);
      trace.Complete(obs_->track, obs_->n_seek, now + command, seek);
      trace.Complete(obs_->track, obs_->n_rotation, head_settled, rotation);
      trace.Complete(obs_->track, obs_->n_transfer, head_settled + rotation, transfer);
    }
  }

  auto on_complete = req.on_complete;
  engine_->ScheduleAt(
      finish,
      [this, completion, on_complete] {
        busy_ = false;
        if (on_complete) {
          on_complete(completion);
        }
        if (on_idle_) {
          on_idle_();
        }
      },
      req.parked);
}

}  // namespace crdisk
