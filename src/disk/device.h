// The disk device: services one request at a time, charging command
// overhead, seek, rotational latency, and transfer time against the current
// head position and platter angle.

#ifndef SRC_DISK_DEVICE_H_
#define SRC_DISK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/base/time_units.h"
#include "src/disk/geometry.h"
#include "src/disk/request.h"
#include "src/disk/seek_model.h"
#include "src/obs/obs.h"
#include "src/sim/engine.h"

namespace crdisk {

struct DeviceStats {
  std::int64_t requests = 0;
  std::int64_t sectors = 0;
  Duration busy_time = 0;
  Duration seek_time = 0;
  Duration rotation_time = 0;
  Duration transfer_time = 0;
  Duration command_time = 0;
};

class DiskDevice {
 public:
  struct Options {
    DiskGeometry geometry;
    PhysicalSeekModel seek_model;
    // Fixed per-command setup cost (SCSI command processing; Table 4's
    // T_cmd = 2 ms).
    Duration command_overhead = crbase::Milliseconds(2);
  };

  DiskDevice(crsim::Engine& engine, const Options& options);
  DiskDevice(const DiskDevice&) = delete;
  DiskDevice& operator=(const DiskDevice&) = delete;

  // Begins servicing `req`. The device must be idle. `done` fires (through
  // the engine) when the transfer completes; the driver dispatches the next
  // queued request from that callback.
  void StartIo(const DiskRequest& req, std::uint64_t request_id, crbase::Time enqueued_at);

  bool busy() const { return busy_; }
  std::int64_t current_cylinder() const { return current_cylinder_; }
  const DiskGeometry& geometry() const { return options_.geometry; }
  Duration command_overhead() const { return options_.command_overhead; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  // Diagnostic used by the calibration micro-benchmarks (Figure 12): the
  // true seek time between two cylinders, without issuing I/O.
  Duration MeasureSeek(std::int64_t from_cylinder, std::int64_t to_cylinder) const;

  // Failure injection: the next `request_count` requests each take
  // `extra_latency` longer (a thermal-recalibration stall, a retried read).
  // Used to verify that deadline handling degrades and recovers gracefully.
  void InjectTransientFault(Duration extra_latency, int request_count);
  std::int64_t faults_applied() const { return faults_applied_; }

  // Failure injection: scales every transfer from now on by `factor` >= 1
  // (a drive limping along at reduced media rate — firmware in permanent
  // retry, a dying head). 1.0 restores nominal throughput.
  void SetThroughputDerating(double factor);
  double throughput_derating() const { return throughput_derating_; }

  // Invoked for every completion, after the request's own callback. The
  // driver installs itself here.
  void set_on_idle(std::function<void()> fn) { on_idle_ = std::move(fn); }

  // Registers this device's metrics and trace track under `name` ("disk0").
  // Each request then records an "io.rt"/"io.nr" span with nested
  // command/seek/rotation/transfer phases, plus request/sector counters and
  // a service-time histogram keyed {disk, queue}.
  void AttachObs(crobs::Hub* hub, const std::string& name);

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    std::uint32_t track = 0;
    std::uint32_t n_io_rt = 0;
    std::uint32_t n_io_nr = 0;
    std::uint32_t n_command = 0;
    std::uint32_t n_seek = 0;
    std::uint32_t n_rotation = 0;
    std::uint32_t n_transfer = 0;
    crobs::Counter* requests = nullptr;
    crobs::Counter* sectors = nullptr;
    crobs::Histogram* service_ms_rt = nullptr;
    crobs::Histogram* service_ms_nr = nullptr;
  };

  // Platter angle in [0,1) revolutions at virtual time `t`.
  double AngleAt(crbase::Time t) const;

  crsim::Engine* engine_;
  Options options_;
  bool busy_ = false;
  std::int64_t current_cylinder_ = 0;
  DeviceStats stats_;
  std::function<void()> on_idle_;
  Duration fault_extra_latency_ = 0;
  int fault_requests_remaining_ = 0;
  std::int64_t faults_applied_ = 0;
  double throughput_derating_ = 1.0;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crdisk

#endif  // SRC_DISK_DEVICE_H_
