#include "src/disk/driver.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace crdisk {

DiskDriver::DiskDriver(crsim::Engine& engine, DiskDevice& device)
    : DiskDriver(engine, device, Options{}) {}

DiskDriver::DiskDriver(crsim::Engine& engine, DiskDevice& device, const Options& options)
    : engine_(&engine), device_(&device), options_(options) {
  device_->set_on_idle([this] { MaybeDispatch(); });
}

std::uint64_t DiskDriver::Submit(DiskRequest req) {
  const std::uint64_t id = next_id_++;
  const bool realtime = req.realtime && !options_.unified_queue;
  Pending pending{std::move(req), id, engine_->Now(), 0, next_seq_++};
  pending.cylinder = device_->geometry().CylinderOf(pending.req.lba);

  std::vector<Pending>& queue = realtime ? rt_queue_ : normal_queue_;
  DriverQueueStats& stats = realtime ? rt_stats_ : normal_stats_;
  queue.push_back(std::move(pending));
  stats.submitted += 1;
  stats.max_depth = std::max(stats.max_depth, queue.size());

  MaybeDispatch();
  return id;
}

DiskDriver::Pending DiskDriver::PopNext(std::vector<Pending>& queue) {
  CRAS_CHECK(!queue.empty());
  std::size_t best = 0;
  if (options_.discipline == QueueDiscipline::kFifo) {
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].seq < queue[best].seq) {
        best = i;
      }
    }
  } else {
    // C-SCAN relative to the head's current cylinder: lowest cylinder at or
    // beyond the head wins; if the sweep is past every request, wrap to the
    // lowest cylinder overall. Ties break FIFO.
    const std::int64_t head = device_->current_cylinder();
    auto better = [&](const Pending& a, const Pending& b) {
      const bool a_ahead = a.cylinder >= head;
      const bool b_ahead = b.cylinder >= head;
      if (a_ahead != b_ahead) {
        return a_ahead;  // requests ahead of the sweep beat wrapped ones
      }
      if (a.cylinder != b.cylinder) {
        return a.cylinder < b.cylinder;
      }
      return a.seq < b.seq;
    };
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (better(queue[i], queue[best])) {
        best = i;
      }
    }
  }
  Pending chosen = std::move(queue[best]);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
  return chosen;
}

void DiskDriver::MaybeDispatch() {
  if (device_->busy()) {
    return;
  }
  const bool from_rt = !rt_queue_.empty();
  if (!from_rt && normal_queue_.empty()) {
    return;
  }
  Pending next = PopNext(from_rt ? rt_queue_ : normal_queue_);
  DriverQueueStats& stats = from_rt ? rt_stats_ : normal_stats_;
  const Duration waited = engine_->Now() - next.enqueued_at;
  stats.completed += 1;
  stats.total_queue_time += waited;
  stats.max_queue_time = std::max(stats.max_queue_time, waited);
  device_->StartIo(next.req, next.id, next.enqueued_at);
}

}  // namespace crdisk
