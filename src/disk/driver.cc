#include "src/disk/driver.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/task.h"

namespace crdisk {

DiskDriver::DiskDriver(crsim::Engine& engine, DiskDevice& device)
    : DiskDriver(engine, device, Options{}) {}

DiskDriver::DiskDriver(crsim::Engine& engine, DiskDevice& device, const Options& options)
    : engine_(&engine), device_(&device), options_(options) {
  device_->set_on_idle([this] { MaybeDispatch(); });
}

DiskDriver::~DiskDriver() {
  device_->set_on_idle({});
  for (std::vector<Pending>* queue : {&rt_queue_, &normal_queue_}) {
    // A queued request dispatched to the device would also be reachable via
    // the completion event, but queued-and-undispatched ones only live here.
    std::vector<Pending> pending = std::move(*queue);
    for (const Pending& p : pending) {
      if (p.req.parked) {
        crsim::DestroyParkedChain(p.req.parked);
      }
    }
  }
}

void DiskDriver::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Tracer& trace = hub->trace();
  obs->track = trace.InternTrack(name + ".queue");
  obs->cat_queue = trace.InternName("queue");
  obs->n_rt = trace.InternName("rt");
  obs->n_nr = trace.InternName("nr");
  obs->n_depth_rt = trace.InternName("depth.rt");
  obs->n_depth_nr = trace.InternName("depth.nr");
  crobs::Registry& metrics = hub->metrics();
  obs->submitted_rt = metrics.GetCounter("driver.submitted", {{"disk", name}, {"queue", "rt"}});
  obs->submitted_nr = metrics.GetCounter("driver.submitted", {{"disk", name}, {"queue", "nr"}});
  obs->queue_ms_rt = metrics.GetHistogram("driver.queue_ms", {{"disk", name}, {"queue", "rt"}},
                                          crobs::LatencyBucketsMs());
  obs->queue_ms_nr = metrics.GetHistogram("driver.queue_ms", {{"disk", name}, {"queue", "nr"}},
                                          crobs::LatencyBucketsMs());
  obs_ = std::move(obs);
}

std::uint64_t DiskDriver::Submit(DiskRequest req) {
  const std::uint64_t id = next_id_++;
  const bool realtime = req.realtime && !options_.unified_queue;
  Pending pending{std::move(req), id, engine_->Now(), 0, next_seq_++};
  pending.cylinder = device_->geometry().CylinderOf(pending.req.lba);

  std::vector<Pending>& queue = realtime ? rt_queue_ : normal_queue_;
  DriverQueueStats& stats = realtime ? rt_stats_ : normal_stats_;
  queue.push_back(std::move(pending));
  stats.submitted += 1;
  stats.max_depth = std::max(stats.max_depth, queue.size());

  if (obs_ != nullptr) {
    (realtime ? obs_->submitted_rt : obs_->submitted_nr)->Add();
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      trace.AsyncBegin(obs_->track, obs_->cat_queue, realtime ? obs_->n_rt : obs_->n_nr, id);
      trace.CounterSample(obs_->track, realtime ? obs_->n_depth_rt : obs_->n_depth_nr,
                          static_cast<double>(queue.size()));
    }
  }

  MaybeDispatch();
  return id;
}

DiskDriver::Pending DiskDriver::PopNext(std::vector<Pending>& queue) {
  CRAS_CHECK(!queue.empty());
  std::size_t best = 0;
  if (options_.discipline == QueueDiscipline::kFifo) {
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].seq < queue[best].seq) {
        best = i;
      }
    }
  } else {
    // C-SCAN relative to the head's current cylinder: lowest cylinder at or
    // beyond the head wins; if the sweep is past every request, wrap to the
    // lowest cylinder overall. Ties break FIFO.
    const std::int64_t head = device_->current_cylinder();
    auto better = [&](const Pending& a, const Pending& b) {
      const bool a_ahead = a.cylinder >= head;
      const bool b_ahead = b.cylinder >= head;
      if (a_ahead != b_ahead) {
        return a_ahead;  // requests ahead of the sweep beat wrapped ones
      }
      if (a.cylinder != b.cylinder) {
        return a.cylinder < b.cylinder;
      }
      return a.seq < b.seq;
    };
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (better(queue[i], queue[best])) {
        best = i;
      }
    }
  }
  Pending chosen = std::move(queue[best]);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
  return chosen;
}

void DiskDriver::MaybeDispatch() {
  if (device_->busy()) {
    return;
  }
  const bool from_rt = !rt_queue_.empty();
  if (!from_rt && normal_queue_.empty()) {
    return;
  }
  Pending next = PopNext(from_rt ? rt_queue_ : normal_queue_);
  DriverQueueStats& stats = from_rt ? rt_stats_ : normal_stats_;
  const Duration waited = engine_->Now() - next.enqueued_at;
  stats.completed += 1;
  stats.total_queue_time += waited;
  stats.max_queue_time = std::max(stats.max_queue_time, waited);

  if (obs_ != nullptr) {
    (from_rt ? obs_->queue_ms_rt : obs_->queue_ms_nr)->Record(crobs::ToMillis(waited));
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      trace.AsyncEnd(obs_->track, obs_->cat_queue, from_rt ? obs_->n_rt : obs_->n_nr, next.id);
      trace.CounterSample(obs_->track, from_rt ? obs_->n_depth_rt : obs_->n_depth_nr,
                          static_cast<double>((from_rt ? rt_queue_ : normal_queue_).size()));
    }
  }

  device_->StartIo(next.req, next.id, next.enqueued_at);
}

}  // namespace crdisk
