// The disk device driver, including the paper's Real-Time Mach modification:
// the request queue is split into a real-time queue and a normal queue. Any
// request in the real-time queue is dispatched before any request in the
// normal queue; each queue is ordered by the C-SCAN algorithm. A request
// already at the device is never preempted — a real-time arrival therefore
// waits at most one normal-request service time (the admission test's
// O_other term).
//
// For ablation studies the discipline (C-SCAN vs FIFO) and the queue split
// (dual vs unified) are configurable.

#ifndef SRC_DISK_DRIVER_H_
#define SRC_DISK_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/disk/device.h"
#include "src/disk/io_target.h"
#include "src/disk/request.h"
#include "src/obs/obs.h"
#include "src/sim/engine.h"

namespace crdisk {

enum class QueueDiscipline {
  kCScan,
  kFifo,
};

struct DriverQueueStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  Duration total_queue_time = 0;
  Duration max_queue_time = 0;
  std::size_t max_depth = 0;
};

class DiskDriver : public IoTarget {
 public:
  struct Options {
    QueueDiscipline discipline = QueueDiscipline::kCScan;
    // Ablation A1: when true the realtime flag is ignored and all requests
    // share the normal queue (the stock driver the paper started from).
    bool unified_queue = false;
  };

  DiskDriver(crsim::Engine& engine, DiskDevice& device);
  DiskDriver(crsim::Engine& engine, DiskDevice& device, const Options& options);
  DiskDriver(const DiskDriver&) = delete;
  DiskDriver& operator=(const DiskDriver&) = delete;
  // Reclaims frames parked on requests still queued (never dispatched).
  ~DiskDriver() override;

  // Enqueues a request; its on_complete callback fires at completion.
  // (Execute() for coroutine-friendly submission comes from IoTarget.)
  std::uint64_t Submit(DiskRequest req) override;

  // Registers this driver's queue metrics and trace track under `name`
  // ("disk0"). Each request records an async "rt"/"nr" span on the
  // "<name>.queue" track from submission to dispatch, a queue-delay
  // histogram keyed {disk, queue}, submitted counters, and depth counter
  // samples.
  void AttachObs(crobs::Hub* hub, const std::string& name);

  std::size_t realtime_depth() const { return rt_queue_.size(); }
  std::size_t normal_depth() const { return normal_queue_.size(); }
  const DriverQueueStats& realtime_stats() const { return rt_stats_; }
  const DriverQueueStats& normal_stats() const { return normal_stats_; }
  DiskDevice& device() { return *device_; }
  const Options& options() const { return options_; }

 private:
  struct Pending {
    DiskRequest req;
    std::uint64_t id;
    crbase::Time enqueued_at;
    std::int64_t cylinder;
    std::uint64_t seq;  // FIFO tiebreak / FIFO discipline order
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    std::uint32_t track = 0;
    std::uint32_t cat_queue = 0;
    std::uint32_t n_rt = 0;
    std::uint32_t n_nr = 0;
    std::uint32_t n_depth_rt = 0;
    std::uint32_t n_depth_nr = 0;
    crobs::Counter* submitted_rt = nullptr;
    crobs::Counter* submitted_nr = nullptr;
    crobs::Histogram* queue_ms_rt = nullptr;
    crobs::Histogram* queue_ms_nr = nullptr;
  };

  void MaybeDispatch();
  // Removes and returns the next request per the discipline. C-SCAN picks
  // the lowest cylinder at or beyond the current head position, wrapping to
  // the lowest cylinder overall when the sweep passes the last request.
  Pending PopNext(std::vector<Pending>& queue);

  crsim::Engine* engine_;
  DiskDevice* device_;
  Options options_;
  std::vector<Pending> rt_queue_;
  std::vector<Pending> normal_queue_;
  DriverQueueStats rt_stats_;
  DriverQueueStats normal_stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crdisk

#endif  // SRC_DISK_DRIVER_H_
