// Disk geometry and address arithmetic.
//
// The model disk is calibrated to the paper's Seagate ST32550N (Barracuda
// 2LP): ~2 GB, 7200 rpm (8.33 ms rotation), ~6.5 MB/s media rate, seeks
// between 4 ms and 17 ms. Addresses are linear sector numbers (LBA) mapped
// to (cylinder, head, sector) in the classic order: all sectors of a track,
// all tracks of a cylinder, then the next cylinder.
//
// Two recording layouts are supported:
//  * uniform — every track holds `sectors_per_track` sectors (the default;
//    all paper results are calibrated against it);
//  * zoned (ZBR) — the drive's real layout: outer zones pack more sectors
//    per track, so the media rate falls from the outside in. Enable by
//    filling `zones` (outermost first). A conservative consumer (the
//    admission test) must then use MinTransferRate().

#ifndef SRC_DISK_GEOMETRY_H_
#define SRC_DISK_GEOMETRY_H_

#include <cstdint>
#include <vector>

#include "src/base/logging.h"
#include "src/base/time_units.h"

namespace crdisk {

using crbase::Duration;
using crbase::Time;

using Lba = std::int64_t;

// One recording zone: a band of cylinders sharing a sectors-per-track
// count. Zones are listed outermost (highest density) first and are
// addressed cylinder 0 upward.
struct DiskZone {
  std::int64_t cylinders = 0;
  std::int64_t sectors_per_track = 0;
};

struct DiskGeometry {
  std::int64_t cylinders = 3510;
  std::int64_t heads = 11;
  std::int64_t sectors_per_track = 108;  // uniform layout (ignored when zoned)
  std::int64_t sector_size = 512;
  std::int64_t rpm = 7200;
  // Non-empty enables zoned bit recording; zone cylinder counts must sum to
  // `cylinders`.
  std::vector<DiskZone> zones;

  bool zoned() const { return !zones.empty(); }

  // Sectors per track in the zone containing `cylinder`.
  std::int64_t SectorsPerTrackAt(std::int64_t cylinder) const {
    if (!zoned()) {
      return sectors_per_track;
    }
    std::int64_t first = 0;
    for (const DiskZone& zone : zones) {
      if (cylinder < first + zone.cylinders) {
        return zone.sectors_per_track;
      }
      first += zone.cylinders;
    }
    CRAS_CHECK(false) << "cylinder " << cylinder << " beyond the last zone";
    return 0;
  }

  std::int64_t SectorsPerCylinderAt(std::int64_t cylinder) const {
    return heads * SectorsPerTrackAt(cylinder);
  }

  // Uniform-layout helper; for zoned disks this is the outermost zone (used
  // only for coarse sizing such as UFS cylinder groups).
  std::int64_t sectors_per_cylinder() const {
    return heads * (zoned() ? zones.front().sectors_per_track : sectors_per_track);
  }

  std::int64_t total_sectors() const {
    if (!zoned()) {
      return cylinders * sectors_per_cylinder();
    }
    std::int64_t total = 0;
    for (const DiskZone& zone : zones) {
      total += zone.cylinders * heads * zone.sectors_per_track;
    }
    return total;
  }

  std::int64_t capacity_bytes() const { return total_sectors() * sector_size; }

  // One full platter revolution.
  Duration rotation_time() const { return crbase::Seconds(60) / rpm; }

  // Media rate of the track holding `cylinder`.
  double TransferRateAt(std::int64_t cylinder) const {
    return static_cast<double>(SectorsPerTrackAt(cylinder) * sector_size) /
           crbase::ToSeconds(rotation_time());
  }

  // Uniform rate, or the *outermost* (fastest) zone's rate when zoned.
  double transfer_rate() const { return TransferRateAt(0); }

  // Worst-case media rate: the innermost zone. What a rate guarantee must
  // assume when file placement is not controlled.
  double MinTransferRate() const { return TransferRateAt(cylinders - 1); }

  std::int64_t CylinderOf(Lba lba) const {
    CRAS_CHECK(lba >= 0 && lba < total_sectors()) << "LBA out of range: " << lba;
    if (!zoned()) {
      return lba / sectors_per_cylinder();
    }
    std::int64_t first_cylinder = 0;
    for (const DiskZone& zone : zones) {
      const std::int64_t zone_sectors = zone.cylinders * heads * zone.sectors_per_track;
      if (lba < zone_sectors) {
        return first_cylinder + lba / (heads * zone.sectors_per_track);
      }
      lba -= zone_sectors;
      first_cylinder += zone.cylinders;
    }
    CRAS_CHECK(false) << "unreachable";
    return 0;
  }

  // Index of the sector within its track; determines angular position.
  std::int64_t SectorInTrack(Lba lba) const {
    if (!zoned()) {
      return lba % sectors_per_track;
    }
    for (const DiskZone& zone : zones) {
      const std::int64_t zone_sectors = zone.cylinders * heads * zone.sectors_per_track;
      if (lba < zone_sectors) {
        return lba % zone.sectors_per_track;
      }
      lba -= zone_sectors;
    }
    CRAS_CHECK(false) << "unreachable";
    return 0;
  }

  // Angular position of a sector's start, in [0, 1) revolutions.
  double AngleOf(Lba lba) const {
    const std::int64_t spt =
        zoned() ? SectorsPerTrackAt(CylinderOf(lba)) : sectors_per_track;
    return static_cast<double>(SectorInTrack(lba)) / static_cast<double>(spt);
  }

  // Sanity check for zoned configurations.
  void Validate() const {
    if (!zoned()) {
      return;
    }
    std::int64_t total_cylinders = 0;
    std::int64_t previous_spt = 1 << 30;
    for (const DiskZone& zone : zones) {
      CRAS_CHECK(zone.cylinders > 0 && zone.sectors_per_track > 0);
      CRAS_CHECK(zone.sectors_per_track <= previous_spt)
          << "zones must be outermost (densest) first";
      previous_spt = zone.sectors_per_track;
      total_cylinders += zone.cylinders;
    }
    CRAS_CHECK(total_cylinders == cylinders)
        << "zone cylinders sum to " << total_cylinders << ", geometry says " << cylinders;
  }
};

// The disk the paper measured (Table 4 context), uniform layout calibrated
// to its average media rate.
inline DiskGeometry St32550nGeometry() { return DiskGeometry{}; }

// The same drive with its zoned layout modelled: four bands from 126 to 90
// sectors/track (7.7 down to 5.5 MB/s), averaging ~6.6 MB/s.
inline DiskGeometry St32550nZonedGeometry() {
  DiskGeometry geometry;
  geometry.zones = {
      {878, 126},
      {878, 114},
      {877, 102},
      {877, 90},
  };
  geometry.Validate();
  return geometry;
}

}  // namespace crdisk

#endif  // SRC_DISK_GEOMETRY_H_
