// The submission interface shared by everything that accepts disk requests:
// a single disk's driver (crdisk::DiskDriver) and a striped multi-disk
// volume (crvol::StripedVolume). Callers that only need "send this request
// somewhere and get a completion" — the Unix server, bulk-I/O load
// generators — program against this interface, so the same code path runs
// unchanged over one spindle or eight.

#ifndef SRC_DISK_IO_TARGET_H_
#define SRC_DISK_IO_TARGET_H_

#include <coroutine>
#include <cstdint>
#include <utility>

#include "src/disk/request.h"

namespace crdisk {

class IoTarget {
 public:
  virtual ~IoTarget() = default;

  // Enqueues a request; its on_complete callback fires at completion.
  // Returns an identifier unique within this target.
  virtual std::uint64_t Submit(DiskRequest req) = 0;

  // Coroutine-friendly submission:
  //   `DiskCompletion c = co_await target.Execute(req);`
  auto Execute(DiskRequest req) { return IoAwaiter{this, std::move(req), {}}; }

 private:
  struct IoAwaiter {
    IoTarget* target;
    DiskRequest req;
    DiskCompletion result;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      req.on_complete = [this, h](const DiskCompletion& c) {
        result = c;
        h.resume();
      };
      req.parked = h;
      target->Submit(std::move(req));
    }
    DiskCompletion await_resume() { return result; }
  };
};

}  // namespace crdisk

#endif  // SRC_DISK_IO_TARGET_H_
