// Disk request and completion records.

#ifndef SRC_DISK_REQUEST_H_
#define SRC_DISK_REQUEST_H_

#include <coroutine>
#include <cstdint>
#include <functional>

#include "src/base/time_units.h"
#include "src/disk/geometry.h"

namespace crdisk {

enum class IoKind { kRead, kWrite };

// Timing breakdown of one serviced request; the per-component costs are what
// calibration benches and the admission-accuracy figures consume.
struct DiskCompletion {
  std::uint64_t request_id = 0;
  IoKind kind = IoKind::kRead;
  Lba lba = 0;
  std::int64_t sectors = 0;
  bool realtime = false;

  crbase::Time enqueued_at = 0;   // handed to the driver
  crbase::Time started_at = 0;    // device began servicing
  crbase::Time finished_at = 0;

  Duration command_time = 0;
  Duration seek_time = 0;
  Duration rotation_time = 0;
  Duration transfer_time = 0;

  std::int64_t bytes() const { return sectors * 512; }
  Duration service_time() const { return finished_at - started_at; }
  Duration queue_time() const { return started_at - enqueued_at; }
  Duration total_time() const { return finished_at - enqueued_at; }
};

// A request as submitted to the driver. Payload bytes are not materialized:
// the simulation carries sizes and addresses only, which fully determines
// timing (the paper's results are functions of timing alone).
struct DiskRequest {
  IoKind kind = IoKind::kRead;
  Lba lba = 0;
  std::int64_t sectors = 0;
  // Real-time requests go to the driver's real-time queue, which is always
  // served ahead of the normal queue (the paper's first Real-Time Mach
  // modification).
  bool realtime = false;
  std::function<void(const DiskCompletion&)> on_complete;
  // When the request was submitted via IoTarget::Execute, the coroutine
  // frame suspended until completion (on_complete resumes it). Lets queues
  // and in-flight completion events reclaim the frame if the simulation is
  // torn down before the request finishes.
  std::coroutine_handle<> parked{};
};

}  // namespace crdisk

#endif  // SRC_DISK_REQUEST_H_
