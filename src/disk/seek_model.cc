#include "src/disk/seek_model.h"

#include <cmath>

#include "src/base/logging.h"

namespace crdisk {

Duration PhysicalSeekModel::SeekTime(std::int64_t distance_cylinders) const {
  if (distance_cylinders <= 0) {
    return 0;
  }
  const double x = static_cast<double>(distance_cylinders);
  double ms = 0;
  if (distance_cylinders < params_.crossover_cylinders) {
    ms = params_.sqrt_base_ms + params_.sqrt_coeff_ms * std::sqrt(x);
  } else {
    ms = params_.lin_base_ms + params_.lin_coeff_ms * x;
  }
  return crbase::MillisecondsF(ms);
}

LinearSeekModel::LinearSeekModel(Duration t_seek_min, Duration t_seek_max,
                                 std::int64_t total_cylinders)
    : t_seek_min_(t_seek_min),
      t_seek_max_(t_seek_max),
      alpha_(static_cast<double>(t_seek_max - t_seek_min) / static_cast<double>(total_cylinders)),
      total_cylinders_(total_cylinders) {
  CRAS_CHECK(total_cylinders > 0);
  CRAS_CHECK(t_seek_max >= t_seek_min);
}

Duration LinearSeekModel::SeekTime(std::int64_t distance_cylinders) const {
  if (distance_cylinders <= 0) {
    return 0;
  }
  return t_seek_min_ + static_cast<Duration>(alpha_ * static_cast<double>(distance_cylinders));
}

LinearSeekModel FitLinearSeekModel(const std::vector<SeekSample>& samples,
                                   std::int64_t total_cylinders) {
  CRAS_CHECK(samples.size() >= 2) << "need at least two samples to fit a line";
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  const double n = static_cast<double>(samples.size());
  for (const SeekSample& s : samples) {
    const double x = static_cast<double>(s.distance_cylinders);
    const double y = static_cast<double>(s.seek_time);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  CRAS_CHECK(denom != 0) << "degenerate sample set: all distances equal";
  double slope = (n * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / n;
  if (intercept < 0) {
    intercept = 0;
  }
  if (slope < 0) {
    slope = 0;
  }
  const Duration t_min = static_cast<Duration>(intercept);
  const Duration t_max =
      static_cast<Duration>(intercept + slope * static_cast<double>(total_cylinders));
  return LinearSeekModel(t_min, t_max, total_cylinders);
}

}  // namespace crdisk
