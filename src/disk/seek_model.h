// Seek-time models.
//
// Two models coexist on purpose, mirroring the paper's methodology:
//
//  * PhysicalSeekModel — the "ground truth" curve of the simulated hardware:
//    a square-root region for short seeks (arm acceleration dominates)
//    crossing over into a linear region for long seeks (coast dominates).
//    This is the shape Ruemmler & Wilkes [15] report and what the paper's
//    Figure 12 "measured" series shows.
//
//  * LinearSeekModel — the straight-line approximation the paper fits to
//    its measurements and uses inside the admission test:
//    t(x) = alpha*x + beta, with T_seek_min = t(~0) = beta and
//    T_seek_max = t(N_cyl). The gap between the two models is precisely the
//    admission test's pessimism measured in Figures 8 and 9.

#ifndef SRC_DISK_SEEK_MODEL_H_
#define SRC_DISK_SEEK_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/base/time_units.h"

namespace crdisk {

using crbase::Duration;

// The simulated drive's true seek curve. A zero-distance seek is free.
class PhysicalSeekModel {
 public:
  struct Params {
    // Square-root region: t = sqrt_base + sqrt_coeff * sqrt(x), x < crossover.
    double sqrt_base_ms = 2.0;
    double sqrt_coeff_ms = 0.174;
    std::int64_t crossover_cylinders = 400;
    // Linear region: t = lin_base + lin_coeff * x, x >= crossover.
    // Defaults are calibrated so that (a) the full stroke is Table 4's
    // T_seek_max = 17.0 ms, (b) the curve is continuous at the crossover
    // (t(400) = 5.48 ms either way), and (c) a linear least-squares fit of
    // the whole curve — the paper's calibration procedure — recovers
    // Table 4's T_seek_min ~= 4 ms intercept.
    double lin_base_ms = 4.0;
    double lin_coeff_ms = 0.0037037;
  };

  PhysicalSeekModel() : PhysicalSeekModel(Params{}) {}
  explicit PhysicalSeekModel(const Params& params) : params_(params) {}

  Duration SeekTime(std::int64_t distance_cylinders) const;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

// The paper's linear approximation: t(x) = alpha*x + beta for x > 0.
class LinearSeekModel {
 public:
  LinearSeekModel(Duration t_seek_min, Duration t_seek_max, std::int64_t total_cylinders);

  Duration SeekTime(std::int64_t distance_cylinders) const;

  Duration t_seek_min() const { return t_seek_min_; }
  Duration t_seek_max() const { return t_seek_max_; }
  double alpha_ns_per_cylinder() const { return alpha_; }

 private:
  Duration t_seek_min_;  // beta: intercept
  Duration t_seek_max_;  // value at full stroke
  double alpha_;         // slope, ns per cylinder
  std::int64_t total_cylinders_;
};

// One measured (distance, time) sample from a seek micro-benchmark.
struct SeekSample {
  std::int64_t distance_cylinders;
  Duration seek_time;
};

// Least-squares fit of measured samples to a line, exactly what the authors
// did to obtain Table 4's T_seek_min / T_seek_max. The fit is clamped so the
// intercept is never negative.
LinearSeekModel FitLinearSeekModel(const std::vector<SeekSample>& samples,
                                   std::int64_t total_cylinders);

}  // namespace crdisk

#endif  // SRC_DISK_SEEK_MODEL_H_
