#include "src/fault/fault.h"

#include <charconv>
#include <utility>

#include "src/base/logging.h"

namespace crfault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail_stop";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kSlowDisk:
      return "slow_disk";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kLinkLoss:
      return "link_loss";
    case FaultKind::kLinkBurstLoss:
      return "link_burst_loss";
    case FaultKind::kLinkJitter:
      return "link_jitter";
    case FaultKind::kLinkDerate:
      return "link_derate";
    case FaultKind::kLinkRecover:
      return "link_recover";
    case FaultKind::kClientCrash:
      return "client_crash";
    case FaultKind::kControlDrop:
      return "control_drop";
    case FaultKind::kControlRecover:
      return "control_recover";
  }
  return "unknown";
}

bool IsLinkFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkLoss:
    case FaultKind::kLinkBurstLoss:
    case FaultKind::kLinkJitter:
    case FaultKind::kLinkDerate:
    case FaultKind::kLinkRecover:
      return true;
    case FaultKind::kFailStop:
    case FaultKind::kTransient:
    case FaultKind::kSlowDisk:
    case FaultKind::kRecover:
    case FaultKind::kClientCrash:
    case FaultKind::kControlDrop:
    case FaultKind::kControlRecover:
      return false;
  }
  return false;
}

bool IsControlFault(FaultKind kind) {
  return kind == FaultKind::kControlDrop || kind == FaultKind::kControlRecover;
}

bool IsClientFault(FaultKind kind) { return kind == FaultKind::kClientCrash; }

FaultPlan& FaultPlan::FailStop(Time at, int disk) {
  return Add(FaultEvent{at, disk, FaultKind::kFailStop});
}

FaultPlan& FaultPlan::Transient(Time at, int disk, Duration extra_latency, int request_count) {
  FaultEvent event{at, disk, FaultKind::kTransient};
  event.extra_latency = extra_latency;
  event.request_count = request_count;
  return Add(event);
}

FaultPlan& FaultPlan::SlowDisk(Time at, int disk, double throughput_derating) {
  FaultEvent event{at, disk, FaultKind::kSlowDisk};
  event.throughput_derating = throughput_derating;
  return Add(event);
}

FaultPlan& FaultPlan::Recover(Time at, int disk) {
  return Add(FaultEvent{at, disk, FaultKind::kRecover});
}

FaultPlan& FaultPlan::LinkLoss(Time at, double probability) {
  CRAS_CHECK(probability >= 0.0 && probability <= 1.0);
  FaultEvent event{at, 0, FaultKind::kLinkLoss};
  event.loss_probability = probability;
  return Add(event);
}

FaultPlan& FaultPlan::LinkBurstLoss(Time at, double p_enter_bad, double p_exit_bad,
                                    double loss_bad) {
  FaultEvent event{at, 0, FaultKind::kLinkBurstLoss};
  event.ge_p_enter_bad = p_enter_bad;
  event.ge_p_exit_bad = p_exit_bad;
  event.ge_loss_bad = loss_bad;
  return Add(event);
}

FaultPlan& FaultPlan::LinkJitter(Time at, Duration jitter, double reorder_probability,
                                 Duration reorder_delay) {
  FaultEvent event{at, 0, FaultKind::kLinkJitter};
  event.jitter = jitter;
  event.reorder_probability = reorder_probability;
  event.reorder_delay = reorder_delay;
  return Add(event);
}

FaultPlan& FaultPlan::LinkDerate(Time at, double factor) {
  CRAS_CHECK(factor >= 1.0);
  FaultEvent event{at, 0, FaultKind::kLinkDerate};
  event.throughput_derating = factor;
  return Add(event);
}

FaultPlan& FaultPlan::LinkRecover(Time at) {
  return Add(FaultEvent{at, 0, FaultKind::kLinkRecover});
}

FaultPlan& FaultPlan::ClientCrash(Time at, int client) {
  return Add(FaultEvent{at, client, FaultKind::kClientCrash});
}

FaultPlan& FaultPlan::ControlDrop(Time at, double loss_probability,
                                  double duplicate_probability) {
  CRAS_CHECK(loss_probability >= 0.0 && loss_probability <= 1.0);
  CRAS_CHECK(duplicate_probability >= 0.0 && duplicate_probability <= 1.0);
  FaultEvent event{at, 0, FaultKind::kControlDrop};
  event.loss_probability = loss_probability;
  event.duplicate_probability = duplicate_probability;
  return Add(event);
}

FaultPlan& FaultPlan::ControlRecover(Time at) {
  return Add(FaultEvent{at, 0, FaultKind::kControlRecover});
}

FaultPlan& FaultPlan::Add(const FaultEvent& event) {
  CRAS_CHECK(event.at >= 0) << "fault scheduled before the simulation epoch";
  CRAS_CHECK(event.disk >= 0) << "no such disk: " << event.disk;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::Merge(const FaultPlan& other) {
  for (const FaultEvent& event : other.events_) {
    events_.push_back(event);
  }
  return *this;
}

namespace {

// Comma-separated numeric args between the ':' and the '@' of a spec.
// Returns false on any malformed number or trailing garbage.
bool ParseArgs(const char* begin, const char* end, std::vector<double>* out) {
  while (begin != end) {
    double value = 0;
    auto [next, err] = std::from_chars(begin, end, value);
    if (err != std::errc()) {
      return false;
    }
    out->push_back(value);
    begin = next;
    if (begin == end) {
      break;
    }
    if (*begin != ',') {
      return false;
    }
    ++begin;
    if (begin == end) {
      return false;  // trailing comma
    }
  }
  return true;
}

}  // namespace

crbase::Result<FaultEvent> FaultPlan::ParseSpec(const std::string& spec) {
  const auto fail = [&spec](const std::string& why) {
    return crbase::InvalidArgumentError("bad fault spec \"" + spec + "\": " + why +
                                        " (expected <kind>[:<args>]@<t_ms>)");
  };
  const std::size_t at_pos = spec.rfind('@');
  if (at_pos == std::string::npos) {
    return fail("missing @<t_ms>");
  }
  const char* end = spec.data() + spec.size();
  std::int64_t ms = 0;
  auto [after_ms, ms_err] = std::from_chars(spec.data() + at_pos + 1, end, ms);
  if (ms_err != std::errc() || after_ms != end || ms < 0) {
    return fail("bad timestamp");
  }

  std::string kind_name = spec.substr(0, at_pos);
  std::vector<double> args;
  const std::size_t colon = kind_name.find(':');
  if (colon != std::string::npos) {
    const char* args_begin = spec.data() + colon + 1;
    if (!ParseArgs(args_begin, spec.data() + at_pos, &args)) {
      return fail("bad args");
    }
    kind_name.resize(colon);
  }

  // Legacy form "<disk>@<t_ms>": a bare member index is a fail-stop.
  if (colon == std::string::npos && !kind_name.empty() &&
      kind_name.find_first_not_of("0123456789") == std::string::npos) {
    args.assign(1, static_cast<double>(std::stoll(kind_name)));
    kind_name = "fail_stop";
  }

  const Time at = crbase::Milliseconds(ms);
  const auto arity = [&](std::size_t min, std::size_t max) {
    return args.size() >= min && args.size() <= max;
  };
  const auto disk_arg = [&](std::size_t i) { return static_cast<int>(args[i]); };
  FaultPlan plan;
  if (kind_name == "fail_stop" && arity(1, 1) && args[0] >= 0) {
    plan.FailStop(at, disk_arg(0));
  } else if (kind_name == "transient" && arity(3, 3) && args[0] >= 0) {
    plan.Transient(at, disk_arg(0), crbase::Milliseconds(static_cast<std::int64_t>(args[1])),
                   static_cast<int>(args[2]));
  } else if (kind_name == "slow_disk" && arity(2, 2) && args[0] >= 0) {
    plan.SlowDisk(at, disk_arg(0), args[1]);
  } else if (kind_name == "recover" && arity(1, 1) && args[0] >= 0) {
    plan.Recover(at, disk_arg(0));
  } else if (kind_name == "link_loss" && arity(1, 1) && args[0] >= 0.0 && args[0] <= 1.0) {
    plan.LinkLoss(at, args[0]);
  } else if (kind_name == "link_burst_loss" && arity(3, 3) && args[0] >= 0.0 &&
             args[0] <= 1.0 && args[1] > 0.0 && args[1] <= 1.0 && args[2] >= 0.0 &&
             args[2] <= 1.0) {
    plan.LinkBurstLoss(at, args[0], args[1], args[2]);
  } else if (kind_name == "link_jitter" && arity(1, 3)) {
    plan.LinkJitter(at, crbase::Milliseconds(static_cast<std::int64_t>(args[0])),
                    args.size() > 1 ? args[1] : 0.0,
                    args.size() > 2
                        ? crbase::Milliseconds(static_cast<std::int64_t>(args[2]))
                        : 0);
  } else if (kind_name == "link_derate" && arity(1, 1) && args[0] >= 1.0) {
    plan.LinkDerate(at, args[0]);
  } else if (kind_name == "link_recover" && arity(0, 0)) {
    plan.LinkRecover(at);
  } else if (kind_name == "client_crash" && arity(1, 1) && args[0] >= 0) {
    plan.ClientCrash(at, disk_arg(0));
  } else if (kind_name == "control_drop" && arity(1, 2) && args[0] >= 0.0 &&
             args[0] <= 1.0 && (args.size() < 2 || (args[1] >= 0.0 && args[1] <= 1.0))) {
    plan.ControlDrop(at, args[0], args.size() > 1 ? args[1] : 0.0);
  } else if (kind_name == "control_recover" && arity(0, 0)) {
    plan.ControlRecover(at);
  } else {
    return fail("unknown kind or wrong arg count for \"" + kind_name + "\"");
  }
  return plan.events().front();
}

crbase::Result<FaultEvent> FaultPlan::ParseFailStopSpec(const std::string& spec) {
  return ParseSpec(spec);
}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume& volume, FaultPlan plan)
    : FaultInjector(engine, &volume, nullptr, std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crnet::Link& link, FaultPlan plan)
    : FaultInjector(engine, nullptr, &link, std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume* volume, crnet::Link* link,
                             FaultPlan plan)
    : FaultInjector(engine, volume,
                    link != nullptr ? std::vector<crnet::Link*>{link}
                                    : std::vector<crnet::Link*>{},
                    std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume* volume,
                             std::vector<crnet::Link*> links, FaultPlan plan)
    : engine_(&engine), volume_(volume), links_(std::move(links)), plan_(std::move(plan)) {
  for (crnet::Link* link : links_) {
    CRAS_CHECK(link != nullptr);
  }
  for (const FaultEvent& event : plan_.events()) {
    if (IsControlFault(event.kind) || IsClientFault(event.kind)) {
      // Targets arrive after construction (SetControlLinks /
      // SetClientCrashHandler); validated at Arm().
      continue;
    }
    if (IsLinkFault(event.kind)) {
      CRAS_CHECK(!links_.empty()) << FaultKindName(event.kind) << " event without a link";
    } else {
      CRAS_CHECK(volume_ != nullptr) << FaultKindName(event.kind) << " event without a volume";
      CRAS_CHECK(event.disk < volume_->disks())
          << "fault targets disk " << event.disk << " of a " << volume_->disks()
          << "-disk volume";
    }
  }
}

void FaultInjector::SetControlLinks(std::vector<crnet::Link*> links) {
  for (crnet::Link* link : links) {
    CRAS_CHECK(link != nullptr);
  }
  control_links_ = std::move(links);
}

FaultInjector::~FaultInjector() {
  for (crsim::EventId id : pending_) {
    engine_->Cancel(id);
  }
}

void FaultInjector::Arm() {
  CRAS_CHECK(!armed_) << "a FaultInjector arms its plan once";
  armed_ = true;
  for (const FaultEvent& event : plan_.events()) {
    if (IsClientFault(event.kind)) {
      CRAS_CHECK(crash_handler_ != nullptr)
          << FaultKindName(event.kind) << " event without a crash handler";
    }
    if (IsControlFault(event.kind)) {
      CRAS_CHECK(!control_links_.empty() || !links_.empty())
          << FaultKindName(event.kind) << " event without a link";
    }
    // A merged plan may be armed after some of its timestamps have passed;
    // those events fire immediately rather than silently never.
    const Duration delay = event.at > engine_->Now() ? event.at - engine_->Now() : 0;
    pending_.push_back(engine_->ScheduleAfter(delay, [this, event] { Apply(event); }));
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++fired_;
  switch (event.kind) {
    case FaultKind::kFailStop:
      volume_->SetMemberState(event.disk, crvol::MemberState::kFailed);
      break;
    case FaultKind::kTransient:
      volume_->device(event.disk).InjectTransientFault(event.extra_latency,
                                                       event.request_count);
      break;
    case FaultKind::kSlowDisk:
      volume_->device(event.disk).SetThroughputDerating(event.throughput_derating);
      volume_->SetMemberState(event.disk, crvol::MemberState::kSlow);
      break;
    case FaultKind::kRecover:
      volume_->device(event.disk).SetThroughputDerating(1.0);
      volume_->SetMemberState(event.disk, crvol::MemberState::kHealthy);
      break;
    case FaultKind::kLinkLoss:
      for (crnet::Link* link : links_) {
        link->SetLoss(event.loss_probability);
      }
      break;
    case FaultKind::kLinkBurstLoss:
      for (crnet::Link* link : links_) {
        link->SetBurstLoss(event.ge_p_enter_bad, event.ge_p_exit_bad, event.ge_loss_bad);
      }
      break;
    case FaultKind::kLinkJitter:
      for (crnet::Link* link : links_) {
        link->SetJitter(event.jitter);
        link->SetReordering(event.reorder_probability, event.reorder_delay);
      }
      break;
    case FaultKind::kLinkDerate:
      for (crnet::Link* link : links_) {
        link->SetBandwidthDerating(event.throughput_derating);
      }
      break;
    case FaultKind::kLinkRecover:
      for (crnet::Link* link : links_) {
        link->ClearImpairments();
      }
      break;
    case FaultKind::kClientCrash:
      crash_handler_(event.disk);
      break;
    case FaultKind::kControlDrop:
      for (crnet::Link* link : ControlTargets()) {
        link->SetLoss(event.loss_probability);
        link->SetDuplication(event.duplicate_probability);
      }
      break;
    case FaultKind::kControlRecover:
      for (crnet::Link* link : ControlTargets()) {
        link->ClearImpairments();
      }
      break;
  }
  const bool is_link = IsLinkFault(event.kind) || IsControlFault(event.kind);
  const std::string target = IsControlFault(event.kind) ? "control"
                             : IsClientFault(event.kind)
                                 ? "client" + std::to_string(event.disk)
                             : is_link ? "link"
                                       : "disk" + std::to_string(event.disk);
  CRAS_LOG(kInfo) << "fault: " << FaultKindName(event.kind) << " " << target << " at "
                  << crbase::FormatDuration(event.at);
  if (obs_ != nullptr) {
    obs_->hub->metrics()
        .GetCounter("fault.injected",
                    {{"kind", FaultKindName(event.kind)}, {"target", target}})
        ->Add();
    obs_->hub->flight().Record(crobs::FlightEventKind::kFaultInjected,
                               is_link ? 0 : event.disk, 0, 0, FaultKindName(event.kind));
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      trace.Instant(obs_->track, trace.InternName(FaultKindName(event.kind)),
                    static_cast<double>(event.disk));
    }
  }
}

void FaultInjector::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  obs->track = hub->trace().InternTrack("fault");
  obs_ = std::move(obs);
}

}  // namespace crfault
