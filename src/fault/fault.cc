#include "src/fault/fault.h"

#include <charconv>
#include <utility>

#include "src/base/logging.h"

namespace crfault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail_stop";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kSlowDisk:
      return "slow_disk";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kLinkLoss:
      return "link_loss";
    case FaultKind::kLinkBurstLoss:
      return "link_burst_loss";
    case FaultKind::kLinkJitter:
      return "link_jitter";
    case FaultKind::kLinkDerate:
      return "link_derate";
    case FaultKind::kLinkRecover:
      return "link_recover";
  }
  return "unknown";
}

bool IsLinkFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkLoss:
    case FaultKind::kLinkBurstLoss:
    case FaultKind::kLinkJitter:
    case FaultKind::kLinkDerate:
    case FaultKind::kLinkRecover:
      return true;
    case FaultKind::kFailStop:
    case FaultKind::kTransient:
    case FaultKind::kSlowDisk:
    case FaultKind::kRecover:
      return false;
  }
  return false;
}

FaultPlan& FaultPlan::FailStop(Time at, int disk) {
  return Add(FaultEvent{at, disk, FaultKind::kFailStop});
}

FaultPlan& FaultPlan::Transient(Time at, int disk, Duration extra_latency, int request_count) {
  FaultEvent event{at, disk, FaultKind::kTransient};
  event.extra_latency = extra_latency;
  event.request_count = request_count;
  return Add(event);
}

FaultPlan& FaultPlan::SlowDisk(Time at, int disk, double throughput_derating) {
  FaultEvent event{at, disk, FaultKind::kSlowDisk};
  event.throughput_derating = throughput_derating;
  return Add(event);
}

FaultPlan& FaultPlan::Recover(Time at, int disk) {
  return Add(FaultEvent{at, disk, FaultKind::kRecover});
}

FaultPlan& FaultPlan::LinkLoss(Time at, double probability) {
  CRAS_CHECK(probability >= 0.0 && probability <= 1.0);
  FaultEvent event{at, 0, FaultKind::kLinkLoss};
  event.loss_probability = probability;
  return Add(event);
}

FaultPlan& FaultPlan::LinkBurstLoss(Time at, double p_enter_bad, double p_exit_bad,
                                    double loss_bad) {
  FaultEvent event{at, 0, FaultKind::kLinkBurstLoss};
  event.ge_p_enter_bad = p_enter_bad;
  event.ge_p_exit_bad = p_exit_bad;
  event.ge_loss_bad = loss_bad;
  return Add(event);
}

FaultPlan& FaultPlan::LinkJitter(Time at, Duration jitter, double reorder_probability,
                                 Duration reorder_delay) {
  FaultEvent event{at, 0, FaultKind::kLinkJitter};
  event.jitter = jitter;
  event.reorder_probability = reorder_probability;
  event.reorder_delay = reorder_delay;
  return Add(event);
}

FaultPlan& FaultPlan::LinkDerate(Time at, double factor) {
  CRAS_CHECK(factor >= 1.0);
  FaultEvent event{at, 0, FaultKind::kLinkDerate};
  event.throughput_derating = factor;
  return Add(event);
}

FaultPlan& FaultPlan::LinkRecover(Time at) {
  return Add(FaultEvent{at, 0, FaultKind::kLinkRecover});
}

FaultPlan& FaultPlan::Add(const FaultEvent& event) {
  CRAS_CHECK(event.at >= 0) << "fault scheduled before the simulation epoch";
  CRAS_CHECK(event.disk >= 0) << "no such disk: " << event.disk;
  events_.push_back(event);
  return *this;
}

crbase::Result<FaultEvent> FaultPlan::ParseFailStopSpec(const std::string& spec) {
  const auto fail = [&spec] {
    return crbase::InvalidArgumentError("expected <disk>@<t_ms>, got \"" + spec + "\"");
  };
  const char* begin = spec.data();
  const char* end = begin + spec.size();
  int disk = 0;
  auto [after_disk, disk_err] = std::from_chars(begin, end, disk);
  if (disk_err != std::errc() || after_disk == end || *after_disk != '@' || disk < 0) {
    return fail();
  }
  std::int64_t ms = 0;
  auto [after_ms, ms_err] = std::from_chars(after_disk + 1, end, ms);
  if (ms_err != std::errc() || after_ms != end || ms < 0) {
    return fail();
  }
  FaultEvent event;
  event.at = crbase::Milliseconds(ms);
  event.disk = disk;
  event.kind = FaultKind::kFailStop;
  return event;
}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume& volume, FaultPlan plan)
    : FaultInjector(engine, &volume, nullptr, std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crnet::Link& link, FaultPlan plan)
    : FaultInjector(engine, nullptr, &link, std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume* volume, crnet::Link* link,
                             FaultPlan plan)
    : FaultInjector(engine, volume,
                    link != nullptr ? std::vector<crnet::Link*>{link}
                                    : std::vector<crnet::Link*>{},
                    std::move(plan)) {}

FaultInjector::FaultInjector(crsim::Engine& engine, crvol::Volume* volume,
                             std::vector<crnet::Link*> links, FaultPlan plan)
    : engine_(&engine), volume_(volume), links_(std::move(links)), plan_(std::move(plan)) {
  for (crnet::Link* link : links_) {
    CRAS_CHECK(link != nullptr);
  }
  for (const FaultEvent& event : plan_.events()) {
    if (IsLinkFault(event.kind)) {
      CRAS_CHECK(!links_.empty()) << FaultKindName(event.kind) << " event without a link";
    } else {
      CRAS_CHECK(volume_ != nullptr) << FaultKindName(event.kind) << " event without a volume";
      CRAS_CHECK(event.disk < volume_->disks())
          << "fault targets disk " << event.disk << " of a " << volume_->disks()
          << "-disk volume";
    }
  }
}

FaultInjector::~FaultInjector() {
  for (crsim::EventId id : pending_) {
    engine_->Cancel(id);
  }
}

void FaultInjector::Arm() {
  CRAS_CHECK(!armed_) << "a FaultInjector arms its plan once";
  armed_ = true;
  for (const FaultEvent& event : plan_.events()) {
    pending_.push_back(engine_->ScheduleAt(event.at, [this, event] { Apply(event); }));
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++fired_;
  switch (event.kind) {
    case FaultKind::kFailStop:
      volume_->SetMemberState(event.disk, crvol::MemberState::kFailed);
      break;
    case FaultKind::kTransient:
      volume_->device(event.disk).InjectTransientFault(event.extra_latency,
                                                       event.request_count);
      break;
    case FaultKind::kSlowDisk:
      volume_->device(event.disk).SetThroughputDerating(event.throughput_derating);
      volume_->SetMemberState(event.disk, crvol::MemberState::kSlow);
      break;
    case FaultKind::kRecover:
      volume_->device(event.disk).SetThroughputDerating(1.0);
      volume_->SetMemberState(event.disk, crvol::MemberState::kHealthy);
      break;
    case FaultKind::kLinkLoss:
      for (crnet::Link* link : links_) {
        link->SetLoss(event.loss_probability);
      }
      break;
    case FaultKind::kLinkBurstLoss:
      for (crnet::Link* link : links_) {
        link->SetBurstLoss(event.ge_p_enter_bad, event.ge_p_exit_bad, event.ge_loss_bad);
      }
      break;
    case FaultKind::kLinkJitter:
      for (crnet::Link* link : links_) {
        link->SetJitter(event.jitter);
        link->SetReordering(event.reorder_probability, event.reorder_delay);
      }
      break;
    case FaultKind::kLinkDerate:
      for (crnet::Link* link : links_) {
        link->SetBandwidthDerating(event.throughput_derating);
      }
      break;
    case FaultKind::kLinkRecover:
      for (crnet::Link* link : links_) {
        link->ClearImpairments();
      }
      break;
  }
  const bool is_link = IsLinkFault(event.kind);
  CRAS_LOG(kInfo) << "fault: " << FaultKindName(event.kind)
                  << (is_link ? " link" : " disk " + std::to_string(event.disk)) << " at "
                  << crbase::FormatDuration(event.at);
  if (obs_ != nullptr) {
    obs_->hub->metrics()
        .GetCounter("fault.injected",
                    {{"kind", FaultKindName(event.kind)},
                     {"target", is_link ? "link" : "disk" + std::to_string(event.disk)}})
        ->Add();
    obs_->hub->flight().Record(crobs::FlightEventKind::kFaultInjected,
                               is_link ? 0 : event.disk, 0, 0, FaultKindName(event.kind));
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      trace.Instant(obs_->track, trace.InternName(FaultKindName(event.kind)),
                    static_cast<double>(event.disk));
    }
  }
}

void FaultInjector::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  obs->track = hub->trace().InternTrack("fault");
  obs_ = std::move(obs);
}

}  // namespace crfault
