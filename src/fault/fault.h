// Fault injection for the storage array and the network path.
//
// A FaultPlan is a script of misbehaviours at absolute simulation
// timestamps; a FaultInjector arms the plan against a crvol::Volume and/or
// a crnet::Link, turning each event into the matching low-level action when
// its time arrives.
//
// Disk events (target a member disk of the volume):
//
//   fail-stop   — Volume::SetMemberState(kFailed): the member serves its
//                 already-queued requests but is never routed to again (a
//                 parity volume reconstructs its reads; the CRAS
//                 degradation controller re-runs admission).
//   transient   — DiskDevice::InjectTransientFault: the next `count`
//                 requests each take `extra` longer (recalibration stall,
//                 retried read). No routing change.
//   slow-disk   — DiskDevice::SetThroughputDerating(factor) plus
//                 SetMemberState(kSlow): the member keeps serving at a
//                 derated media rate, and admission is re-run against the
//                 heterogeneous per-member model.
//   recover     — derating back to 1.0, state back to kHealthy.
//
// Link events (target the armed link; see crnet::LinkImpairments):
//
//   link-loss       — i.i.d. per-packet wire loss at the given probability;
//   link-burst-loss — Gilbert–Elliott bursty loss (enter/exit/loss-in-bad);
//   link-jitter     — uniform extra propagation in [0, jitter], plus
//                     optional explicit reordering;
//   link-derate     — serialization bandwidth divided by a factor;
//   link-recover    — back to a perfect link.
//
// Client and control-plane events (the chaos-campaign vocabulary):
//
//   client-crash    — abrupt viewer death: the registered crash handler is
//                     invoked with the client index. The client never sends
//                     another heartbeat or a Close, so the server's lease
//                     reaper (and the mcast member-left path) must reclaim
//                     everything it held.
//   control-drop    — the *control* links (SetControlLinks) start losing
//                     and duplicating packets: lost and replayed control
//                     RPCs, the idempotency/retry hazard.
//   control-recover — control links back to perfect.
//
// The injector carries no thread of its own — events ride the simulation
// engine's queue — and is safe to destroy before or after they fire
// (pending events are cancelled on destruction).

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/time_units.h"
#include "src/net/link.h"
#include "src/obs/obs.h"
#include "src/sim/engine.h"
#include "src/volume/volume.h"

namespace crfault {

using crbase::Duration;
using crbase::Time;

enum class FaultKind {
  kFailStop,
  kTransient,
  kSlowDisk,
  kRecover,
  kLinkLoss,
  kLinkBurstLoss,
  kLinkJitter,
  kLinkDerate,
  kLinkRecover,
  kClientCrash,
  kControlDrop,
  kControlRecover,
};

const char* FaultKindName(FaultKind kind);
// True for the kinds applied to a link rather than a member disk.
bool IsLinkFault(FaultKind kind);
// True for the kinds applied to the control links.
bool IsControlFault(FaultKind kind);
// True for kClientCrash (needs a registered crash handler).
bool IsClientFault(FaultKind kind);

struct FaultEvent {
  Time at = 0;  // absolute simulation time
  int disk = 0;  // disk events: member disk; kClientCrash: client index
  FaultKind kind = FaultKind::kFailStop;
  // kTransient:
  Duration extra_latency = 0;
  int request_count = 0;
  // kSlowDisk / kLinkDerate:
  double throughput_derating = 1.0;
  // kLinkLoss / kLinkBurstLoss / kControlDrop:
  double loss_probability = 0.0;
  // kControlDrop: probability a delivered control packet is replayed.
  double duplicate_probability = 0.0;
  double ge_p_enter_bad = 0.0;
  double ge_p_exit_bad = 0.0;
  double ge_loss_bad = 1.0;
  // kLinkJitter:
  Duration jitter = 0;
  double reorder_probability = 0.0;
  Duration reorder_delay = 0;
};

// An ordered script of fault events. Build with the fluent helpers:
//
//   crfault::FaultPlan plan;
//   plan.FailStop(crbase::Seconds(2), /*disk=*/1)
//       .LinkLoss(crbase::Seconds(3), /*probability=*/0.01)
//       .LinkRecover(crbase::Seconds(8));
class FaultPlan {
 public:
  FaultPlan& FailStop(Time at, int disk);
  FaultPlan& Transient(Time at, int disk, Duration extra_latency, int request_count);
  FaultPlan& SlowDisk(Time at, int disk, double throughput_derating);
  FaultPlan& Recover(Time at, int disk);
  FaultPlan& LinkLoss(Time at, double probability);
  FaultPlan& LinkBurstLoss(Time at, double p_enter_bad, double p_exit_bad, double loss_bad);
  FaultPlan& LinkJitter(Time at, Duration jitter, double reorder_probability = 0.0,
                        Duration reorder_delay = 0);
  FaultPlan& LinkDerate(Time at, double factor);
  FaultPlan& LinkRecover(Time at);
  FaultPlan& ClientCrash(Time at, int client);
  FaultPlan& ControlDrop(Time at, double loss_probability, double duplicate_probability);
  FaultPlan& ControlRecover(Time at);
  FaultPlan& Add(const FaultEvent& event);

  // Appends every event of `other` — composed chaos schedules splice
  // hand-written plans into generated ones. Order is irrelevant: each event
  // is scheduled independently at its own timestamp.
  FaultPlan& Merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Parses the bench-flag spec "<kind>:<args>@<t_ms>" into one event, so
  // any bench can script any fault from the CLI:
  //
  //   fail_stop:1@2000            transient:1,800,3@2000
  //   slow_disk:1,2.0@2000        recover:1@8000
  //   link_loss:0.01@3000         link_burst_loss:0.005,0.3,0.5@3000
  //   link_jitter:20,0.1,5@3000   link_derate:2.0@3000
  //   link_recover@8000           client_crash:2@4000
  //   control_drop:0.2,0.1@3000   control_recover@8000
  //
  // Numeric args follow each builder's parameter order; durations are in
  // milliseconds. The pre-chaos form "<disk>@<t_ms>" (e.g. "1@2000") still
  // parses as a fail-stop of that member.
  static crbase::Result<FaultEvent> ParseSpec(const std::string& spec);
  // Alias for the legacy call sites; accepts the full ParseSpec grammar.
  static crbase::Result<FaultEvent> ParseFailStopSpec(const std::string& spec);

 private:
  std::vector<FaultEvent> events_;
};

// Schedules a plan's events against one volume and/or a set of links.
// Arm() may be called once; the injector must outlive the armed events or
// be destroyed to cancel the ones still pending (the targets must outlive
// the injector). A plan's disk events require a volume, its link events at
// least one link. With several links — e.g. the shared forward link of a
// multicast delivery group plus its members' reverse links — every link
// event applies to all of them, so one script degrades the whole path.
// Control events target the SetControlLinks set (falling back to the data
// links when none is registered); client-crash events invoke the handler
// registered with SetClientCrashHandler. An event whose timestamp is
// already past when Arm() runs fires immediately — a merged plan armed
// mid-run loses nothing.
class FaultInjector {
 public:
  FaultInjector(crsim::Engine& engine, crvol::Volume& volume, FaultPlan plan);
  FaultInjector(crsim::Engine& engine, crnet::Link& link, FaultPlan plan);
  FaultInjector(crsim::Engine& engine, crvol::Volume* volume, crnet::Link* link,
                FaultPlan plan);
  FaultInjector(crsim::Engine& engine, crvol::Volume* volume,
                std::vector<crnet::Link*> links, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  void Arm();
  bool armed() const { return armed_; }
  std::int64_t events_fired() const { return fired_; }

  // Registers the target of kClientCrash events: called with the event's
  // client index. Must be set before Arm() if the plan crashes clients.
  void SetClientCrashHandler(std::function<void(int)> handler) {
    crash_handler_ = std::move(handler);
  }
  // Registers the links control events apply to (the request/reply path of
  // crnet::ControlService). Without this, control events fall back to the
  // data links.
  void SetControlLinks(std::vector<crnet::Link*> links);

  // Registers a counter of injected events keyed {kind, target} and an
  // instant per event on the "fault" trace track.
  void AttachObs(crobs::Hub* hub);

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    std::uint32_t track = 0;
  };

  void Apply(const FaultEvent& event);
  // Links a control event applies to: the registered control links, or the
  // data links when none were registered.
  const std::vector<crnet::Link*>& ControlTargets() const {
    return control_links_.empty() ? links_ : control_links_;
  }

  crsim::Engine* engine_;
  crvol::Volume* volume_;
  std::vector<crnet::Link*> links_;
  std::vector<crnet::Link*> control_links_;
  std::function<void(int)> crash_handler_;
  FaultPlan plan_;
  bool armed_ = false;
  std::int64_t fired_ = 0;
  std::vector<crsim::EventId> pending_;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crfault

#endif  // SRC_FAULT_FAULT_H_
