#include "src/mcast/group_manager.h"

#include <algorithm>

namespace crmcast {

void GroupManager::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_ = ObsState{};
    return;
  }
  crobs::Registry& metrics = hub->metrics();
  obs_.hub = hub;
  obs_.groups = metrics.GetGauge("mcast.groups");
  obs_.group_size = metrics.GetGauge("mcast.group_size");
  obs_.formed = metrics.GetCounter("mcast.groups_formed");
  obs_.joined = metrics.GetCounter("mcast.members_joined");
  obs_.left = metrics.GetCounter("mcast.members_left");
  UpdateGauges();
}

void GroupManager::UpdateGauges() {
  if (obs_.groups != nullptr) {
    obs_.groups->Set(static_cast<double>(groups_.size()));
  }
  if (obs_.group_size != nullptr) {
    std::size_t largest = 0;
    for (const auto& [id, group] : groups_) {
      largest = std::max(largest, group.members.size());
    }
    obs_.group_size->Set(static_cast<double>(largest));
  }
}

JoinPlan GroupManager::PlanJoin(TitleId title, std::int64_t prefix_end_chunk) const {
  JoinPlan plan;
  // Newest group first: its cursor is the least advanced, so its merge
  // point needs the least prefix coverage.
  for (auto it = groups_.rbegin(); it != groups_.rend(); ++it) {
    const Group& group = it->second;
    if (group.title != title) {
      continue;
    }
    std::int64_t merge = 0;
    if (group.ship_cursor > 0) {
      // Feed already rolling: the joiner must bridge [0, merge) from the
      // pinned prefix — no coverage, no group.
      merge = group.ship_cursor + options_.merge_margin_chunks;
      if (merge > prefix_end_chunk) {
        continue;
      }
    }
    plan.joined = true;
    plan.group = group.id;
    plan.feed = group.feed;
    plan.merge_chunk = merge;
    return plan;
  }
  return plan;
}

GroupId GroupManager::CreateGroup(TitleId title, SessionId feed) {
  const GroupId id = next_group_++;
  Group group;
  group.id = id;
  group.title = title;
  group.feed = feed;
  groups_.emplace(id, std::move(group));
  feed_group_.emplace(feed, id);
  ++stats_.groups_formed;
  if (obs_.formed != nullptr) {
    obs_.formed->Add();
  }
  if (obs_.hub != nullptr) {
    obs_.hub->flight().Record(crobs::FlightEventKind::kGroupFormed, id, feed);
  }
  UpdateGauges();
  return id;
}

void GroupManager::AddMember(GroupId group, SessionId member, std::int64_t merge_chunk) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return;
  }
  it->second.members.push_back(member);
  member_group_[member] = group;
  member_merge_[member] = merge_chunk;
  ++stats_.members_joined;
  if (obs_.joined != nullptr) {
    obs_.joined->Add();
  }
  if (obs_.hub != nullptr) {
    obs_.hub->flight().Record(crobs::FlightEventKind::kGroupJoined, member, group,
                              static_cast<double>(merge_chunk));
  }
  UpdateGauges();
}

SessionId GroupManager::RemoveMember(SessionId member, const std::string& reason) {
  auto mit = member_group_.find(member);
  if (mit == member_group_.end()) {
    return kNoSession;
  }
  const GroupId group_id = mit->second;
  member_group_.erase(mit);
  member_merge_.erase(member);
  ++stats_.members_left;
  if (obs_.left != nullptr) {
    obs_.left->Add();
  }
  if (obs_.hub != nullptr) {
    obs_.hub->flight().Record(crobs::FlightEventKind::kGroupLeft, member, group_id, 0,
                              reason);
  }
  SessionId feed_to_close = kNoSession;
  auto git = groups_.find(group_id);
  if (git != groups_.end()) {
    Group& group = git->second;
    group.members.erase(std::remove(group.members.begin(), group.members.end(), member),
                        group.members.end());
    if (group.members.empty()) {
      feed_to_close = group.feed;
      feed_group_.erase(group.feed);
      groups_.erase(git);
      ++stats_.groups_dissolved;
    }
  }
  UpdateGauges();
  return feed_to_close;
}

std::vector<SessionId> GroupManager::DissolveByFeed(SessionId feed) {
  std::vector<SessionId> members;
  auto fit = feed_group_.find(feed);
  if (fit == feed_group_.end()) {
    return members;
  }
  const GroupId group_id = fit->second;
  feed_group_.erase(fit);
  auto git = groups_.find(group_id);
  if (git != groups_.end()) {
    members = git->second.members;
    groups_.erase(git);
    ++stats_.groups_dissolved;
  }
  for (const SessionId member : members) {
    member_group_.erase(member);
    member_merge_.erase(member);
    ++stats_.members_left;
    if (obs_.left != nullptr) {
      obs_.left->Add();
    }
    if (obs_.hub != nullptr) {
      obs_.hub->flight().Record(crobs::FlightEventKind::kGroupLeft, member, group_id, 0,
                                "dissolved");
    }
  }
  UpdateGauges();
  return members;
}

GroupId GroupManager::GroupOf(SessionId member) const {
  auto it = member_group_.find(member);
  return it == member_group_.end() ? kNoGroup : it->second;
}

SessionId GroupManager::FeedOf(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? kNoSession : it->second.feed;
}

TitleId GroupManager::TitleOf(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.title;
}

std::int64_t GroupManager::MergeChunkOf(SessionId member) const {
  auto it = member_merge_.find(member);
  return it == member_merge_.end() ? 0 : it->second;
}

std::vector<SessionId> GroupManager::Members(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<SessionId>{} : it->second.members;
}

std::size_t GroupManager::MemberCount(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.members.size();
}

void GroupManager::NoteShipCursor(GroupId group, std::int64_t next_chunk) {
  auto it = groups_.find(group);
  if (it != groups_.end()) {
    it->second.ship_cursor = std::max(it->second.ship_cursor, next_chunk);
  }
}

std::int64_t GroupManager::ShipCursor(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.ship_cursor;
}

}  // namespace crmcast
