// Delivery groups: batching same-title viewers onto one disk feed.
//
// A *delivery group* is a set of viewer sessions of one title whose playout
// positions are compatible enough to share a single server-side *feed*
// session. The feed is the only disk-charged stream of the group — it reads
// each interval once and the multicast layer (GroupSender, src/mcast/
// group_transport.h) fans the chunks out to every member. Members are
// admission-charged like cache-served streams: their buffer memory is real,
// their disk time is not, and the shared fallback reserve covers the
// transition window when a member is demoted back to unicast disk service.
//
// Joining is position-aware. A group that has not shipped anything yet
// accepts any newcomer (the classic batching window before the first viewer
// starts). Once the feed is rolling, a late joiner may only join when the
// pinned prefix of the title (PR 6 prefix cache) covers the *bridge*: the
// chunks between the newcomer's start and the merge point just ahead of the
// feed's shipping cursor. The bridge is served unicast from the prefix
// cache (zero disk I/O) until the member merges into the multicast stream
// at `merge_chunk`.
//
// The manager is pure bookkeeping — no I/O, no timers — so CrasServer can
// consult it synchronously inside admission, and the transport can poll it
// between shipping rounds. Demotion/teardown policy lives in CrasServer
// (DemoteGroupMember, HandleClose); the manager only records membership and
// emits the group_formed / group_joined / group_left flight events.

#ifndef SRC_MCAST_GROUP_MANAGER_H_
#define SRC_MCAST_GROUP_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace crmcast {

using SessionId = std::int64_t;
using TitleId = std::int64_t;
using GroupId = std::int64_t;

inline constexpr SessionId kNoSession = -1;
inline constexpr GroupId kNoGroup = -1;

struct McastOptions {
  bool enabled = false;
  // Slack added to the feed's shipping cursor when computing a late
  // joiner's merge point, covering fragments already past the cursor but
  // still in flight.
  std::int64_t merge_margin_chunks = 2;
  // Fraction of the feed's stream rate reserved for XOR repair traffic.
  // The feed session is admitted at rate * (1 + repair_overhead), so the
  // repair channel rides a reservation the budget ledger audits instead of
  // stealing slack from other admitted streams.
  double repair_overhead = 0.05;
};

// Outcome of PlanJoin / the feed-creation path in CrasServer::HandleOpen.
struct JoinPlan {
  bool joined = false;
  GroupId group = kNoGroup;
  SessionId feed = kNoSession;
  // Members schedule their own (cache-bridged) I/O only for chunks
  // [0, merge_chunk); everything at or past it arrives via multicast.
  std::int64_t merge_chunk = 0;
};

struct GroupManagerStats {
  std::int64_t groups_formed = 0;
  std::int64_t groups_dissolved = 0;
  std::int64_t members_joined = 0;
  std::int64_t members_left = 0;
};

class GroupManager {
 public:
  explicit GroupManager(const McastOptions& options) : options_(options) {}
  GroupManager(const GroupManager&) = delete;
  GroupManager& operator=(const GroupManager&) = delete;

  void AttachObs(crobs::Hub* hub);

  // Whether (and where) a new viewer of `title` can join an existing group.
  // `prefix_end_chunk` is the pinned-prefix coverage of the title (0 when
  // nothing is pinned); the newest group whose merge point the prefix can
  // bridge wins. Returns joined=false when the caller must open a feed and
  // form a fresh group.
  JoinPlan PlanJoin(TitleId title, std::int64_t prefix_end_chunk) const;

  GroupId CreateGroup(TitleId title, SessionId feed);
  void AddMember(GroupId group, SessionId member, std::int64_t merge_chunk);

  // Removes a member (close, shed, or demote-to-unicast). Returns the
  // group's feed session when the departure emptied the group — the caller
  // owns closing it — else kNoSession.
  SessionId RemoveMember(SessionId member, const std::string& reason);

  // The feed session is going away: the whole group dissolves. Returns the
  // members that were attached; the caller demotes each to unicast disk
  // service (never a silent miss).
  std::vector<SessionId> DissolveByFeed(SessionId feed);

  GroupId GroupOf(SessionId member) const;
  bool IsFeed(SessionId session) const { return feed_group_.count(session) != 0; }
  SessionId FeedOf(GroupId group) const;
  TitleId TitleOf(GroupId group) const;
  std::int64_t MergeChunkOf(SessionId member) const;
  std::vector<SessionId> Members(GroupId group) const;
  std::size_t MemberCount(GroupId group) const;
  bool Alive(GroupId group) const { return groups_.count(group) != 0; }

  // The transport reports how far the feed has multicast; PlanJoin uses the
  // cursor to place merge points for late joiners.
  void NoteShipCursor(GroupId group, std::int64_t next_chunk);
  std::int64_t ShipCursor(GroupId group) const;

  std::size_t group_count() const { return groups_.size(); }
  const GroupManagerStats& stats() const { return stats_; }
  const McastOptions& options() const { return options_; }

 private:
  struct Group {
    GroupId id = kNoGroup;
    TitleId title = 0;
    SessionId feed = kNoSession;
    std::int64_t ship_cursor = 0;
    std::vector<SessionId> members;
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Gauge* groups = nullptr;
    crobs::Gauge* group_size = nullptr;
    crobs::Counter* formed = nullptr;
    crobs::Counter* joined = nullptr;
    crobs::Counter* left = nullptr;
  };

  void UpdateGauges();

  McastOptions options_;
  std::map<GroupId, Group> groups_;
  std::map<SessionId, GroupId> member_group_;
  std::map<SessionId, std::int64_t> member_merge_;
  std::map<SessionId, GroupId> feed_group_;
  GroupId next_group_ = 1;
  GroupManagerStats stats_;
  ObsState obs_;
};

}  // namespace crmcast

#endif  // SRC_MCAST_GROUP_MANAGER_H_
