#include "src/mcast/group_transport.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/mcast/xor_codec.h"

namespace crmcast {

// ---------------------------------------------------------------------------
// GroupReceiver
// ---------------------------------------------------------------------------

GroupReceiver::GroupReceiver(crrt::Kernel& kernel, const crmedia::ChunkIndex* index,
                             const Options& options)
    : kernel_(&kernel),
      index_(index),
      options_(options),
      buffer_(options.buffer_bytes, options.jitter_allowance),
      clock_(kernel.engine()) {
  CRAS_CHECK(index_ != nullptr);
  CRAS_CHECK(options_.report_interval > 0);
}

GroupReceiver::GroupReceiver(crrt::Kernel& kernel, const crmedia::ChunkIndex* index)
    : GroupReceiver(kernel, index, Options{}) {}

void GroupReceiver::set_merge_chunk(std::int64_t merge_chunk) {
  CRAS_CHECK(merge_chunk >= 0);
  merge_chunk_ = merge_chunk;
  mcast_expected_ = static_cast<std::uint64_t>(merge_chunk);
}

void GroupReceiver::ConnectReverse(crnet::Link& reverse, GroupSender& sender,
                                   SessionId member) {
  reverse_ = &reverse;
  sender_ = &sender;
  member_ = member;
}

void GroupReceiver::set_frame_trace(crobs::SessionTrace* trace) {
  ftrace_ = trace;
  // Chunks that complete reassembly but age out unconsumed were last seen
  // completing; the buffer resolves them there.
  buffer_.SetFrameTrace(trace, crobs::FrameStage::kCompleted);
}

crsim::Task GroupReceiver::Start() {
  return kernel_->Spawn("mcast-report", options_.priority,
                        [this](crrt::ThreadContext& ctx) { return ReportThread(ctx); });
}

crbase::Time GroupReceiver::DeadlineOf(std::uint64_t seq) const {
  if (seq >= index_->count()) {
    return 0;
  }
  return crnet::ChunkDeadline(index_->at(static_cast<std::size_t>(seq)));
}

GroupReceiver::Reassembly& GroupReceiver::EnsureEntry(std::uint64_t seq) {
  auto [it, inserted] = pending_.try_emplace(seq);
  if (inserted) {
    it->second.created_at = kernel_->Now();
  }
  return it->second;
}

void GroupReceiver::OnFragment(const crnet::NpsFragment& fragment) {
  ++stats_.fragments_received;
  if (fragment.retransmit) {
    ++stats_.retransmitted_fragments;
  }
  if (done_.count(fragment.seq) != 0) {
    ++stats_.duplicate_fragments;
    return;
  }
  // Gap detection runs against two independent cursors: the multicast
  // stream (sequence numbers from the merge point up) and the unicast
  // bridge (from 0 up to the merge point). Retransmitted/repaired
  // fragments never move a cursor — they fill holes, they don't reveal new
  // ones.
  if (!fragment.retransmit) {
    if (fragment.multicast) {
      const std::uint64_t base =
          std::max(mcast_expected_, static_cast<std::uint64_t>(merge_chunk_));
      for (std::uint64_t seq = base; seq < fragment.seq; ++seq) {
        if (done_.count(seq) == 0) {
          EnsureEntry(seq);
        }
      }
      if (fragment.seq >= mcast_expected_) {
        mcast_expected_ = fragment.seq + 1;
      }
    } else {
      for (std::uint64_t seq = unicast_expected_; seq < fragment.seq; ++seq) {
        if (done_.count(seq) == 0) {
          EnsureEntry(seq);
        }
      }
      if (fragment.seq >= unicast_expected_) {
        unicast_expected_ = fragment.seq + 1;
      }
    }
  }
  Reassembly& entry = EnsureEntry(fragment.seq);
  if (entry.frag_count == 0) {
    CRAS_CHECK(fragment.frag_count > 0);
    entry.chunk = fragment.chunk;
    entry.frag_count = fragment.frag_count;
    entry.have.assign(static_cast<std::size_t>(fragment.frag_count), false);
    entry.sent_at = fragment.sent_at;
  }
  CRAS_CHECK(fragment.frag_index >= 0 && fragment.frag_index < entry.frag_count);
  if (entry.have[static_cast<std::size_t>(fragment.frag_index)]) {
    ++stats_.duplicate_fragments;
    return;
  }
  entry.have[static_cast<std::size_t>(fragment.frag_index)] = true;
  ++entry.received;
  if (!fragment.retransmit) {
    entry.last_fresh_at = kernel_->Now();
  }
  if (entry.received == entry.frag_count) {
    Complete(fragment.seq, entry);
  }
}

bool GroupReceiver::Holds(std::uint64_t seq, int frag_index) const {
  if (abandoned_.count(seq) != 0) {
    return false;
  }
  if (done_.count(seq) != 0) {
    return true;  // completed: every fragment is on hand
  }
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.frag_count == 0) {
    return false;
  }
  const Reassembly& entry = it->second;
  if (frag_index < 0 || frag_index >= entry.frag_count) {
    return false;
  }
  return entry.have[static_cast<std::size_t>(frag_index)];
}

void GroupReceiver::OnRepair(const RepairPacket& packet) {
  // XOR decode: the parity recovers a window member iff exactly one is
  // absent here. Count the absences, remember the last one.
  const RepairRef* missing = nullptr;
  int absent = 0;
  bool blocked = false;  // an absent member was abandoned: data gone for good
  for (const RepairRef& ref : packet.window) {
    if (!Holds(ref.seq, ref.frag_index)) {
      ++absent;
      missing = &ref;
      if (abandoned_.count(ref.seq) != 0) {
        blocked = true;
      }
    }
  }
  if (absent == 0) {
    ++stats_.repair_useless;
    return;
  }
  if (absent > 1 || blocked) {
    ++stats_.repair_decode_failed;
    if (obs_ != nullptr) {
      obs_->repair_decode_failed->Add();
      obs_->hub->flight().Record(crobs::FlightEventKind::kRepairDecodeFailed,
                                 static_cast<std::int64_t>(missing->seq), absent, 0,
                                 "receiver");
    }
    return;
  }
  // One absence — but only spend the decode if we actually want the data.
  const bool wanted = missing->seq >= static_cast<std::uint64_t>(merge_chunk_) &&
                      done_.count(missing->seq) == 0;
  if (!wanted) {
    ++stats_.repair_useless;
    return;
  }
  ++stats_.repair_decodes;
  if (obs_ != nullptr) {
    obs_->repair_decodes->Add();
  }
  crnet::NpsFragment recovered;
  recovered.seq = missing->seq;
  recovered.frag_index = missing->frag_index;
  recovered.frag_count = missing->frag_count;
  recovered.bytes = missing->bytes;
  recovered.chunk = missing->chunk;
  recovered.sent_at = missing->sent_at;
  recovered.retransmit = true;
  recovered.multicast = true;
  OnFragment(recovered);
}

void GroupReceiver::Complete(std::uint64_t seq, Reassembly& entry) {
  const crbase::Time now = kernel_->Now();
  cras::BufferedChunk local = entry.chunk;
  local.filled_at = now;
  if (ftrace_ != nullptr) {
    // Wire ends at the last fresh fragment; time after that is coded
    // repair. A loss-free chunk completes on arrival with zero repair; a
    // chunk none of whose fresh fragments survived has zero wire time and
    // charges the full sent-to-completed wait to repair.
    ftrace_->StampAt(local.chunk_index, crobs::FrameStage::kArrived,
                     entry.last_fresh_at >= 0 ? entry.last_fresh_at : entry.sent_at);
    ftrace_->StampAt(local.chunk_index, crobs::FrameStage::kCompleted, now);
  }
  buffer_.Put(local, clock_.Now());
  ++stats_.chunks_received;
  stats_.bytes_received += entry.chunk.size;
  stats_.max_network_latency = std::max(stats_.max_network_latency, now - entry.sent_at);
  if (obs_ != nullptr) {
    obs_->chunks_received->Add();
  }
  done_.insert(seq);
  pending_.erase(seq);
}

void GroupReceiver::Abandon(std::uint64_t seq, Reassembly& entry) {
  ++stats_.chunks_abandoned;
  if (obs_ != nullptr) {
    obs_->chunks_abandoned->Add();
    obs_->hub->flight().Record(crobs::FlightEventKind::kNakGiveUp,
                               static_cast<std::int64_t>(seq), 0, 0, "mcast-receiver");
  }
  if (ftrace_ != nullptr) {
    // Multicast sequence numbers are chunk indices, so even a metadata-less
    // placeholder resolves against the right frame.
    const std::int64_t chunk_index =
        entry.frag_count > 0 ? entry.chunk.chunk_index : static_cast<std::int64_t>(seq);
    if (entry.last_fresh_at >= 0) {
      ftrace_->StampAt(chunk_index, crobs::FrameStage::kArrived, entry.last_fresh_at);
    } else if (entry.frag_count > 0) {
      // Only repair traffic arrived: zero wire time, the wait was all repair.
      ftrace_->StampAt(chunk_index, crobs::FrameStage::kArrived, entry.sent_at);
    }
    ftrace_->Miss(chunk_index, entry.received > 0 ? crobs::FrameStage::kCompleted
                                                  : crobs::FrameStage::kArrived);
  }
  done_.insert(seq);
  abandoned_.insert(seq);
  pending_.erase(seq);
}

crsim::Task GroupReceiver::ReportThread(crrt::ThreadContext& ctx) {
  while (!stopped_) {
    co_await ctx.Sleep(options_.report_interval);
    // Sweep: give up on anything playout has moved past. The chunk index
    // supplies the deadline, so even a metadata-less placeholder dies on
    // schedule instead of lingering on a TTL.
    const crbase::Time logical = clock_.Now();
    for (auto it = pending_.begin(); it != pending_.end();) {
      const std::uint64_t seq = it->first;
      if (logical > DeadlineOf(seq)) {
        Reassembly& entry = it->second;
        ++it;  // Abandon erases; advance first
        Abandon(seq, entry);
      } else {
        ++it;
      }
    }
    if (reverse_ == nullptr || sender_ == nullptr) {
      continue;
    }
    // Due sweep: arrival-driven gap detection cannot reveal a loss no
    // later packet follows — the tail of the unicast bridge, or the last
    // chunks of the movie. Walk the index once (monotone cursor) and
    // placeholder any chunk whose playout time is imminent and still
    // absent, so it gets reported and, failing repair, swept at its
    // deadline. The jitter allowance of slack keeps an on-schedule stream
    // from generating phantom reports for chunks simply not sent yet.
    while (due_swept_ < index_->count() &&
           index_->at(static_cast<std::size_t>(due_swept_)).timestamp <=
               logical + options_.jitter_allowance) {
      if (done_.count(due_swept_) == 0 && pending_.count(due_swept_) == 0) {
        EnsureEntry(due_swept_);
      }
      ++due_swept_;
    }
    // Bitmap report: every surviving gap older than the reordering grace,
    // in one packet.
    LossReport report;
    report.member = member_;
    const crbase::Time now = kernel_->Now();
    for (const auto& [seq, entry] : pending_) {
      if (now - entry.created_at <= options_.reorder_grace) {
        continue;
      }
      LossReportEntry loss;
      loss.seq = seq;
      for (int i = 0; i < entry.frag_count; ++i) {
        if (!entry.have[static_cast<std::size_t>(i)]) {
          loss.missing.push_back(i);
        }
      }
      report.entries.push_back(std::move(loss));
    }
    if (report.entries.empty()) {
      continue;
    }
    ++stats_.reports_sent;
    if (obs_ != nullptr) {
      obs_->reports_sent->Add();
    }
    GroupSender* sender = sender_;
    reverse_->Send(options_.report_bytes,
                   [sender, report = std::move(report)] { sender->OnLossReport(report); });
  }
}

std::optional<cras::BufferedChunk> GroupReceiver::Get(crbase::Time t) {
  buffer_.DiscardObsolete(clock_.Now());
  std::optional<cras::BufferedChunk> chunk = buffer_.Get(t);
  if (chunk.has_value() && ftrace_ != nullptr) {
    ftrace_->Deliver(chunk->chunk_index);
  }
  return chunk;
}

void GroupReceiver::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  const crobs::Labels labels = {{"stream", name}};
  obs->chunks_received = metrics.GetCounter("mcast.rx_chunks", labels);
  obs->reports_sent = metrics.GetCounter("mcast.rx_reports_sent", labels);
  obs->chunks_abandoned = metrics.GetCounter("mcast.rx_chunks_abandoned", labels);
  obs->repair_decodes = metrics.GetCounter("mcast.rx_repair_decodes", labels);
  obs->repair_decode_failed = metrics.GetCounter("mcast.rx_repair_decode_failed", labels);
  obs_ = std::move(obs);
}

// ---------------------------------------------------------------------------
// GroupSender
// ---------------------------------------------------------------------------

GroupSender::GroupSender(crrt::Kernel& kernel, cras::CrasServer& server,
                         crnet::Link& forward, const Options& options)
    : kernel_(&kernel), server_(&server), link_(&forward), options_(options) {
  CRAS_CHECK(options_.repair_window_chunks > 0);
  CRAS_CHECK(options_.max_window_entries > 0);
}

GroupSender::GroupSender(crrt::Kernel& kernel, cras::CrasServer& server, crnet::Link& forward)
    : GroupSender(kernel, server, forward, Options{}) {}

void GroupSender::AddMember(SessionId session, GroupReceiver& receiver) {
  Member member;
  member.session = session;
  member.receiver = &receiver;
  const crmcast::GroupManager* mgr = server_->mcast_groups();
  CRAS_CHECK(mgr != nullptr);
  member.merge_chunk = mgr->MergeChunkOf(session);
  receiver.set_merge_chunk(member.merge_chunk);
  // Frame identity rides the member session: both ends of this member's
  // delivery stamp the same trace ring.
  member.trace = server_->FrameTrace(session);
  receiver.set_frame_trace(member.trace);
  members_.push_back(std::move(member));
}

GroupSender::Member* GroupSender::FindMember(SessionId session) {
  for (Member& member : members_) {
    if (member.session == session) {
      return &member;
    }
  }
  return nullptr;
}

crsim::Task GroupSender::Start(GroupId group, const crmedia::ChunkIndex* index) {
  group_ = group;
  index_ = index;
  return kernel_->Spawn("mcast-sender", options_.priority,
                        [this, index](crrt::ThreadContext& ctx) {
                          return SenderThread(ctx, index);
                        });
}

std::size_t GroupSender::ShipMulticast(std::uint64_t seq, const cras::BufferedChunk& chunk,
                                       crbase::Time sent_at) {
  std::vector<std::int64_t> frag_bytes;
  for (std::int64_t remaining = chunk.size; remaining > 0;) {
    const std::int64_t fragment = std::min(remaining, options_.max_packet_bytes);
    frag_bytes.push_back(fragment);
    remaining -= fragment;
  }
  const int frag_count = static_cast<int>(frag_bytes.size());

  std::vector<Member*> targets;
  for (Member& member : members_) {
    if (!member.dead && !member.unicast &&
        static_cast<std::uint64_t>(member.merge_chunk) <= seq) {
      targets.push_back(&member);
    }
  }
  StoredChunk stored;
  stored.chunk = chunk;
  stored.sent_at = sent_at;
  stored.frag_bytes = frag_bytes;
  stored.deadline = crnet::ChunkDeadline(chunk);
  store_.emplace(seq, std::move(stored));

  for (int i = 0; i < frag_count; ++i) {
    crnet::NpsFragment fragment;
    fragment.seq = seq;
    fragment.frag_index = i;
    fragment.frag_count = frag_count;
    fragment.bytes = frag_bytes[static_cast<std::size_t>(i)];
    fragment.chunk = chunk;
    fragment.sent_at = sent_at;
    fragment.multicast = true;
    std::vector<std::function<void()>> delivers;
    delivers.reserve(targets.size());
    for (Member* target : targets) {
      GroupReceiver* receiver = target->receiver;
      delivers.push_back([receiver, fragment] { receiver->OnFragment(fragment); });
    }
    if (!delivers.empty()) {
      link_->Multicast(fragment.bytes, std::move(delivers));
    }
    ++stats_.packets_multicast;
    stats_.bytes_multicast += fragment.bytes;
  }
  for (Member* target : targets) {
    if (target->trace != nullptr) {
      // Each member's frame enters the wire here; the fan-out itself is the
      // member's first traced stage (no per-member disk work exists).
      target->trace->SetPath(chunk.chunk_index, crobs::FramePath::kMcastMember);
      target->trace->StampAt(chunk.chunk_index, crobs::FrameStage::kSent, sent_at);
    }
  }
  ++stats_.chunks_multicast;
  if (obs_ != nullptr) {
    obs_->chunks_multicast->Add();
  }
  // One disk read served every multicast target; each target beyond the
  // first is a read a unicast server would have issued.
  if (targets.size() > 1) {
    const std::int64_t saved = static_cast<std::int64_t>(targets.size()) - 1;
    stats_.deduped_chunk_reads += saved;
    if (obs_ != nullptr) {
      obs_->deduped_chunk_reads->Add(saved);
    }
  }
  return targets.size();
}

void GroupSender::SendUnicast(Member& member, std::uint64_t seq,
                              const cras::BufferedChunk& chunk, crbase::Time sent_at,
                              bool retransmit) {
  std::vector<std::int64_t> frag_bytes;
  for (std::int64_t remaining = chunk.size; remaining > 0;) {
    const std::int64_t fragment = std::min(remaining, options_.max_packet_bytes);
    frag_bytes.push_back(fragment);
    remaining -= fragment;
  }
  const int frag_count = static_cast<int>(frag_bytes.size());
  GroupReceiver* receiver = member.receiver;
  for (int i = 0; i < frag_count; ++i) {
    crnet::NpsFragment fragment;
    fragment.seq = seq;
    fragment.frag_index = i;
    fragment.frag_count = frag_count;
    fragment.bytes = frag_bytes[static_cast<std::size_t>(i)];
    fragment.chunk = chunk;
    fragment.sent_at = sent_at;
    fragment.retransmit = retransmit;
    link_->Send(fragment.bytes, [receiver, fragment] { receiver->OnFragment(fragment); });
  }
  if (member.trace != nullptr && !retransmit) {
    // Bridge/unicast chunks come from the member's own CRAS session, which
    // already set the path (cache or disk); only the send is new here.
    member.trace->StampAt(chunk.chunk_index, crobs::FrameStage::kSent, sent_at);
  }
}

void GroupSender::RefreshMember(Member& member, const crmedia::ChunkIndex* index) {
  if (member.dead) {
    return;
  }
  if (!server_->HasSession(member.session)) {
    member.dead = true;
    return;
  }
  if (member.unicast) {
    return;
  }
  const crmcast::GroupManager* mgr = server_->mcast_groups();
  if (mgr != nullptr && mgr->GroupOf(member.session) == kNoGroup) {
    // The server demoted this member behind our back (bridge cache miss,
    // seek, shed settle). Pick up the unicast walk from its play point.
    member.unicast = true;
    std::int64_t at = index->FindByTime(server_->LogicalNow(member.session));
    if (at < 0) {
      at = 0;
    }
    member.unicast_cursor = std::max(member.unicast_cursor, at);
    member.missing.clear();
  }
}

void GroupSender::RetransmitUnicast(Member& member, const LossReportEntry& entry) {
  if (entry.seq >= index_->count()) {
    return;
  }
  const crmedia::Chunk& chunk = index_->at(static_cast<std::size_t>(entry.seq));
  if (server_->LogicalNow(member.session) >
      crnet::ChunkDeadline(chunk) + options_.playout_slack) {
    ++stats_.retransmits_abandoned;
    return;
  }
  // Re-fetch from the member's own session buffer — bridge chunks are
  // cache-served there and stay resident within the jitter allowance.
  std::optional<cras::BufferedChunk> buffered =
      server_->Get(member.session, chunk.timestamp);
  if (!buffered.has_value()) {
    auto it = store_.find(entry.seq);
    if (it == store_.end()) {
      ++stats_.retransmits_abandoned;
      return;
    }
    buffered = it->second.chunk;
  }
  SendUnicast(member, entry.seq, *buffered, kernel_->Now(), /*retransmit=*/true);
  ++stats_.fragments_retransmitted;
}

void GroupSender::OnLossReport(const LossReport& report) {
  ++stats_.reports_received;
  Member* member = FindMember(report.member);
  if (member == nullptr || member->dead) {
    return;
  }
  RefreshMember(*member, index_);
  if (member->dead) {
    return;
  }
  for (const LossReportEntry& entry : report.entries) {
    if (skipped_.count(entry.seq) != 0) {
      continue;  // never sent: the server-side skip is already accounted
    }
    if (member->unicast || entry.seq < static_cast<std::uint64_t>(member->merge_chunk)) {
      RetransmitUnicast(*member, entry);
    } else {
      member->missing[entry.seq] = entry.missing;
    }
  }
}

void GroupSender::PruneStore() {
  // The repair window: keep the last repair_window_chunks multicast chunks,
  // and nothing whose playout deadline every remaining member has passed.
  while (store_.size() > static_cast<std::size_t>(options_.repair_window_chunks)) {
    store_.erase(store_.begin());
  }
  crbase::Time min_logical = 0;
  bool any = false;
  for (const Member& member : members_) {
    if (member.dead || member.unicast) {
      continue;
    }
    const crbase::Time logical = server_->LogicalNow(member.session);
    min_logical = any ? std::min(min_logical, logical) : logical;
    any = true;
  }
  if (!any) {
    return;
  }
  while (!store_.empty() &&
         store_.begin()->second.deadline + options_.playout_slack < min_logical) {
    store_.erase(store_.begin());
  }
}

void GroupSender::RepairTick() {
  // Expand each member's reported multicast losses into concrete
  // (seq, frag) needs; a loss that already left the repair window demotes
  // the member to unicast if its own clock says the chunk were still
  // repairable — it fell behind the group, not behind its deadline.
  struct Need {
    std::uint64_t seq = 0;
    int frag_index = 0;
    std::vector<std::size_t> needers;  // indices into members_
  };
  std::map<std::pair<std::uint64_t, int>, std::vector<std::size_t>> needs;
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    Member& member = members_[mi];
    if (member.dead || member.unicast) {
      member.missing.clear();
      continue;
    }
    for (const auto& [seq, frags] : member.missing) {
      auto it = store_.find(seq);
      if (it == store_.end()) {
        if (seq < index_->count()) {
          const crmedia::Chunk& chunk = index_->at(static_cast<std::size_t>(seq));
          if (server_->LogicalNow(member.session) <=
              crnet::ChunkDeadline(chunk) + options_.playout_slack) {
            if (server_->DemoteGroupMember(member.session, "behind_window")) {
              member.unicast = true;
              member.unicast_cursor =
                  std::max(member.unicast_cursor, static_cast<std::int64_t>(seq));
              ++stats_.members_demoted;
            } else {
              member.dead = !server_->HasSession(member.session);
            }
            break;  // member left the multicast path; drop its needs
          }
        }
        continue;  // past deadline everywhere: nothing to repair
      }
      const StoredChunk& stored = it->second;
      const int frag_count = static_cast<int>(stored.frag_bytes.size());
      if (frags.empty()) {
        for (int i = 0; i < frag_count; ++i) {
          needs[{seq, i}].push_back(mi);
        }
      } else {
        for (int frag : frags) {
          if (frag >= 0 && frag < frag_count) {
            needs[{seq, frag}].push_back(mi);
          }
        }
      }
    }
    member.missing.clear();
  }
  if (needs.empty()) {
    return;
  }
  // A member that flipped to unicast mid-expansion may have stale needs
  // recorded; filter them out.
  std::vector<Need> need_list;
  for (auto& [key, needers] : needs) {
    Need need;
    need.seq = key.first;
    need.frag_index = key.second;
    for (std::size_t mi : needers) {
      if (!members_[mi].dead && !members_[mi].unicast) {
        need.needers.push_back(mi);
      }
    }
    if (!need.needers.empty()) {
      need_list.push_back(std::move(need));
    }
  }

  // Greedy window packing: a fragment joins the open window unless some
  // receiver would then be missing two window members (its own need plus
  // this one) — each receiver must hold all-but-one to decode.
  std::vector<GroupReceiver*> targets;
  for (Member& member : members_) {
    if (!member.dead && !member.unicast) {
      targets.push_back(member.receiver);
    }
  }
  if (targets.empty()) {
    return;
  }
  std::vector<const Need*> window;
  std::set<std::size_t> window_needers;
  auto flush = [&] {
    if (window.empty()) {
      return;
    }
    RepairPacket packet;
    std::vector<std::int64_t> sizes;
    for (const Need* need : window) {
      const StoredChunk& stored = store_.at(need->seq);
      RepairRef ref;
      ref.seq = need->seq;
      ref.frag_index = need->frag_index;
      ref.frag_count = static_cast<int>(stored.frag_bytes.size());
      ref.bytes = stored.frag_bytes[static_cast<std::size_t>(need->frag_index)];
      ref.chunk = stored.chunk;
      ref.sent_at = stored.sent_at;
      sizes.push_back(ref.bytes);
      packet.window.push_back(std::move(ref));
    }
    packet.bytes = XorParityBytes(sizes) + options_.repair_packet_overhead;
    std::vector<std::function<void()>> delivers;
    delivers.reserve(targets.size());
    for (GroupReceiver* receiver : targets) {
      delivers.push_back([receiver, packet] { receiver->OnRepair(packet); });
    }
    link_->Multicast(packet.bytes, std::move(delivers));
    ++stats_.repair_packets;
    stats_.repair_bytes += packet.bytes;
    if (obs_ != nullptr) {
      obs_->repair_packets->Add();
      obs_->repair_bytes->Add(packet.bytes);
      obs_->hub->flight().Record(crobs::FlightEventKind::kRepairSent, group_,
                                 static_cast<std::int64_t>(packet.window.size()),
                                 packet.bytes, "");
    }
    window.clear();
    window_needers.clear();
  };
  for (const Need& need : need_list) {
    bool conflict = window.size() >= options_.max_window_entries;
    if (!conflict) {
      for (std::size_t mi : need.needers) {
        if (window_needers.count(mi) != 0) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      flush();
    }
    window.push_back(&need);
    window_needers.insert(need.needers.begin(), need.needers.end());
  }
  flush();
}

crsim::Task GroupSender::SenderThread(crrt::ThreadContext& ctx,
                                      const crmedia::ChunkIndex* index) {
  const GroupManager* mgr = server_->mcast_groups();
  CRAS_CHECK(mgr != nullptr);
  const std::uint64_t count = index->count();
  crbase::Time last_repair = ctx.Now();
  crbase::Time drain_until = 0;
  for (;;) {
    // Phase 1: multicast everything due from the feed's shared buffer.
    while (mgr->Alive(group_) && cursor_ < count) {
      const SessionId feed = mgr->FeedOf(group_);
      if (!server_->HasSession(feed)) {
        break;
      }
      const crmedia::Chunk& chunk = index->at(static_cast<std::size_t>(cursor_));
      if (server_->LogicalNow(feed) < chunk.timestamp - options_.lookahead) {
        break;
      }
      std::optional<cras::BufferedChunk> buffered = server_->Get(feed, chunk.timestamp);
      if (!buffered.has_value()) {
        if (server_->LogicalNow(feed) > crnet::ChunkDeadline(chunk)) {
          skipped_.insert(cursor_);
          ++stats_.chunks_skipped;
          if (crobs::SessionTrace* feed_trace = server_->FrameTrace(feed)) {
            feed_trace->Miss(static_cast<std::int64_t>(cursor_),
                             crobs::FrameStage::kSent);
          }
          // Members never see this chunk on the feed; their own deadline
          // sweeps resolve the per-member misses.
          ++cursor_;
          server_->mcast_groups()->NoteShipCursor(group_, static_cast<std::int64_t>(cursor_));
          continue;
        }
        break;  // not filled yet; retry next poll
      }
      co_await ctx.Compute(options_.cpu_per_chunk);
      ShipMulticast(cursor_, *buffered, ctx.Now());
      if (crobs::SessionTrace* feed_trace = server_->FrameTrace(feed)) {
        // The feed session's own frame ends its life at the fan-out: it is
        // "delivered" to the group, not played out locally.
        feed_trace->SetPath(buffered->chunk_index, crobs::FramePath::kMcastFeed);
        feed_trace->ResolveDelivered(buffered->chunk_index);
      }
      ++cursor_;
      server_->mcast_groups()->NoteShipCursor(group_, static_cast<std::int64_t>(cursor_));
    }
    PruneStore();

    // Phase 2: unicast walks — bridge patches below each merge point, and
    // full streams for demoted members. Index loop: AddMember may grow the
    // vector across suspension points.
    for (std::size_t mi = 0; mi < members_.size(); ++mi) {
      RefreshMember(members_[mi], index);
      for (;;) {
        Member& member = members_[mi];
        if (member.dead) {
          break;
        }
        const std::int64_t limit =
            member.unicast ? static_cast<std::int64_t>(count) : member.merge_chunk;
        const std::int64_t cur = member.unicast ? member.unicast_cursor : member.patch_cursor;
        if (cur >= limit) {
          break;
        }
        const crmedia::Chunk& chunk = index->at(static_cast<std::size_t>(cur));
        if (server_->LogicalNow(member.session) < chunk.timestamp - options_.lookahead) {
          break;
        }
        std::optional<cras::BufferedChunk> buffered =
            server_->Get(member.session, chunk.timestamp);
        if (!buffered.has_value()) {
          if (server_->LogicalNow(member.session) > crnet::ChunkDeadline(chunk)) {
            ++stats_.chunks_skipped;
            if (member.trace != nullptr) {
              member.trace->Miss(cur, crobs::FrameStage::kSent);
            }
            (member.unicast ? member.unicast_cursor : member.patch_cursor) = cur + 1;
            continue;
          }
          break;
        }
        co_await ctx.Compute(options_.cpu_per_chunk);
        {
          Member& fresh = members_[mi];  // re-take: vector may have moved
          SendUnicast(fresh, static_cast<std::uint64_t>(cur), *buffered, ctx.Now(),
                      /*retransmit=*/false);
          (fresh.unicast ? fresh.unicast_cursor : fresh.patch_cursor) = cur + 1;
          if (fresh.unicast) {
            ++stats_.unicast_chunks;
          } else {
            ++stats_.patch_chunks;
          }
        }
      }
    }

    // Phase 3: coded repair over the accumulated loss bitmaps.
    if (ctx.Now() - last_repair >= options_.repair_interval) {
      RepairTick();
      last_repair = ctx.Now();
    }

    // Exit: all shipping done, then a short drain so in-flight reports can
    // still be repaired.
    bool shipping_done = !mgr->Alive(group_) || cursor_ >= count;
    if (shipping_done) {
      for (const Member& member : members_) {
        if (member.dead) {
          continue;
        }
        const std::int64_t limit =
            member.unicast ? static_cast<std::int64_t>(count) : member.merge_chunk;
        const std::int64_t cur = member.unicast ? member.unicast_cursor : member.patch_cursor;
        if (cur < limit) {
          shipping_done = false;
          break;
        }
      }
    }
    // A member's reveal of a tail loss happens on its own playout clock,
    // which trails the feed by its join offset — a fixed post-ship linger
    // cannot cover a late joiner. Hold the drain countdown until every
    // live member's clock is past the final chunk's deadline.
    if (shipping_done && count > 0) {
      const crbase::Time last_deadline =
          crnet::ChunkDeadline(index->at(static_cast<std::size_t>(count - 1)));
      for (const Member& member : members_) {
        if (member.dead || !server_->HasSession(member.session)) {
          continue;
        }
        if (server_->LogicalNow(member.session) <=
            last_deadline + options_.playout_slack) {
          shipping_done = false;
          break;
        }
      }
    }
    if (shipping_done) {
      if (drain_until == 0) {
        drain_until = ctx.Now() + options_.lookahead + options_.drain;
      } else if (ctx.Now() >= drain_until) {
        break;
      }
    } else {
      drain_until = 0;
    }
    co_await ctx.Sleep(options_.poll);
  }
}

void GroupSender::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  const crobs::Labels labels = {{"group", name}};
  obs->chunks_multicast = metrics.GetCounter("mcast.tx_chunks", labels);
  obs->repair_packets = metrics.GetCounter("mcast.tx_repair_packets", labels);
  obs->repair_bytes = metrics.GetCounter("mcast.tx_repair_bytes", labels);
  obs->deduped_chunk_reads = metrics.GetCounter("mcast.deduped_chunk_reads", labels);
  obs_ = std::move(obs);
}

}  // namespace crmcast
