// Grouped delivery transport: one multicast feed, N receivers, coded repair.
//
// GroupSender is the server-host transmitter for one delivery group
// (src/mcast/group_manager.h). It walks the title's chunk index once,
// slightly ahead of the *feed* session's logical clock, fetches each chunk
// from the feed's shared buffer (one disk read per interval however many
// viewers watch) and fans the fragments out with crnet::Link::Multicast —
// serialized once, delivered to every member with independent impairment
// draws. Late joiners are bridged unicast: until a member's merge point the
// sender walks the member's own (prefix-cache-served) session, so the
// bridge costs wire time but no disk time.
//
// Repair is coded, not per-client. Each GroupReceiver periodically reports
// the sequence numbers/fragments it is still missing over its reverse link
// (a loss *bitmap*, not a NAK per gap). The sender aggregates the reports
// and, every repair_interval, multicasts XOR parity packets over windows of
// recently sent fragments (src/mcast/xor_codec.h), partitioned so no
// receiver is missing two fragments of one window — a single parity packet
// then fixes a *different* loss at every receiver. Both ends test
// crnet::ChunkDeadline before spending wire time or decode effort.
//
// Degradation is explicit, mirroring the cache's demote-to-disk rule: a
// reported loss that has already left the sender's repair window (the
// receiver fell too far behind) while still being repairable on the
// member's own clock demotes the member to unicast — the sender calls
// CrasServer::DemoteGroupMember, admission re-settles, and from then on the
// member is served like a plain NPS stream. Never a silent miss.

#ifndef SRC_MCAST_GROUP_TRANSPORT_H_
#define SRC_MCAST_GROUP_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/core/time_driven_buffer.h"
#include "src/mcast/group_manager.h"
#include "src/net/link.h"
#include "src/net/nps.h"
#include "src/obs/obs.h"
#include "src/rtmach/kernel.h"
#include "src/sim/task.h"

namespace crmcast {

class GroupSender;

// One entry of a receiver's periodic loss report: the fragments of `seq`
// still missing. An empty `missing` list means the whole chunk (the
// receiver saw the sequence gap but holds no metadata).
struct LossReportEntry {
  std::uint64_t seq = 0;
  std::vector<int> missing;
};

// A receiver's aggregate loss bitmap, shipped on the reverse link every
// report interval — one packet regardless of how many gaps it covers.
struct LossReport {
  SessionId member = kNoSession;
  std::vector<LossReportEntry> entries;
};

// Identifies one fragment covered by a parity window. Carries the full
// chunk metadata (like crnet::NpsFragment) so a decode can synthesize the
// lost fragment outright.
struct RepairRef {
  std::uint64_t seq = 0;
  int frag_index = 0;
  int frag_count = 1;
  std::int64_t bytes = 0;
  cras::BufferedChunk chunk;
  crbase::Time sent_at = 0;
};

// One multicast XOR parity packet: the bytewise XOR of every fragment in
// `window`. A receiver holding all but one window member recovers it.
struct RepairPacket {
  std::vector<RepairRef> window;
  std::int64_t bytes = 0;  // wire size: max fragment size + header overhead
};

struct GroupReceiverStats {
  std::int64_t chunks_received = 0;
  std::int64_t bytes_received = 0;
  std::int64_t fragments_received = 0;
  std::int64_t duplicate_fragments = 0;
  std::int64_t retransmitted_fragments = 0;
  std::int64_t reports_sent = 0;
  std::int64_t chunks_abandoned = 0;   // playout deadline passed unrepaired
  std::int64_t repair_decodes = 0;     // parity packet recovered a fragment
  std::int64_t repair_useless = 0;     // parity covered nothing we miss
  std::int64_t repair_decode_failed = 0;  // >1 window member absent
  crbase::Duration max_network_latency = 0;
};

// Client-host endpoint of a grouped stream. Reassembles multicast, bridge
// and repaired fragments into a time-driven buffer, tracks gaps against
// both the multicast cursor and the unicast bridge cursor, and reports
// losses as periodic bitmaps instead of per-gap NAKs.
class GroupReceiver {
 public:
  struct Options {
    std::int64_t buffer_bytes = 4 << 20;
    crbase::Duration jitter_allowance = crbase::Milliseconds(100);
    // Cadence of the loss-bitmap report thread (also the deadline sweep).
    crbase::Duration report_interval = crbase::Milliseconds(25);
    // A gap younger than this is assumed reordering, not loss.
    crbase::Duration reorder_grace = crbase::Milliseconds(10);
    std::int64_t report_bytes = 96;  // wire size of one loss report
    int priority = crrt::kPriorityClient;
  };

  // `index` is the title's chunk index — the receiver knows the stream
  // layout (the player has it too), which gives every gap a playout
  // deadline even when no fragment metadata ever arrived.
  GroupReceiver(crrt::Kernel& kernel, const crmedia::ChunkIndex* index,
                const Options& options);
  GroupReceiver(crrt::Kernel& kernel, const crmedia::ChunkIndex* index);
  GroupReceiver(const GroupReceiver&) = delete;
  GroupReceiver& operator=(const GroupReceiver&) = delete;

  // Chunks below the merge point arrive on the unicast bridge; the
  // multicast gap tracker starts expecting sequence numbers from here.
  void set_merge_chunk(std::int64_t merge_chunk);

  // Loss reports travel over `reverse` to `sender`, identified as `member`
  // (the CRAS session id). Starts nothing by itself — Start() runs the
  // report thread.
  void ConnectReverse(crnet::Link& reverse, GroupSender& sender, SessionId member);

  // Spawns the report/sweep thread. Runs until Stop().
  crsim::Task Start();
  void Stop() { stopped_ = true; }

  // Packet arrival, invoked by the forward link's delivery events.
  void OnFragment(const crnet::NpsFragment& fragment);
  void OnRepair(const RepairPacket& packet);

  // The remote application's crs_get equivalent.
  std::optional<cras::BufferedChunk> Get(crbase::Time t);

  // Points the receiver at the member session's frame-trace ring (the
  // sender wires this in AddMember). Completed chunks stamp kArrived (last
  // fresh fragment) and kCompleted; deadline-swept gaps resolve as misses;
  // Get() stamps playout. nullptr detaches.
  void set_frame_trace(crobs::SessionTrace* trace);
  crobs::SessionTrace* frame_trace() const { return ftrace_; }

  cras::LogicalClock& clock() { return clock_; }
  const GroupReceiverStats& stats() const { return stats_; }
  const cras::TimeDrivenBufferStats& buffer_stats() const { return buffer_.stats(); }
  std::size_t incomplete_chunks() const { return pending_.size(); }

  // Counters (mcast.rx_*), labeled {stream}.
  void AttachObs(crobs::Hub* hub, const std::string& name);

 private:
  struct Reassembly {
    cras::BufferedChunk chunk;
    int frag_count = 0;  // 0 while only a gap placeholder
    std::vector<bool> have;
    int received = 0;
    crbase::Time sent_at = 0;
    crbase::Time created_at = 0;  // receiver host time
    // Arrival of the newest *fresh* (non-repair) fragment: the wire/repair
    // attribution boundary. -1 until one arrives.
    crbase::Time last_fresh_at = -1;
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* chunks_received = nullptr;
    crobs::Counter* reports_sent = nullptr;
    crobs::Counter* chunks_abandoned = nullptr;
    crobs::Counter* repair_decodes = nullptr;
    crobs::Counter* repair_decode_failed = nullptr;
  };

  Reassembly& EnsureEntry(std::uint64_t seq);
  void Complete(std::uint64_t seq, Reassembly& entry);
  void Abandon(std::uint64_t seq, Reassembly& entry);
  // Playout deadline of `seq` from the chunk index — defined even for
  // placeholders that never saw metadata.
  crbase::Time DeadlineOf(std::uint64_t seq) const;
  crsim::Task ReportThread(crrt::ThreadContext& ctx);
  // True when this receiver holds fragment (seq, frag_index) — completed
  // chunks hold everything; abandoned ones hold nothing.
  bool Holds(std::uint64_t seq, int frag_index) const;

  crrt::Kernel* kernel_;
  const crmedia::ChunkIndex* index_;
  Options options_;
  cras::TimeDrivenBuffer buffer_;
  cras::LogicalClock clock_;
  crnet::Link* reverse_ = nullptr;
  GroupSender* sender_ = nullptr;
  SessionId member_ = kNoSession;
  std::int64_t merge_chunk_ = 0;
  bool stopped_ = false;
  std::map<std::uint64_t, Reassembly> pending_;
  std::set<std::uint64_t> done_;       // completed or abandoned
  std::set<std::uint64_t> abandoned_;  // subset of done_: holds no data
  // Gap trackers: every seq below a cursor has an entry or is done.
  std::uint64_t mcast_expected_ = 0;    // multicast stream, from merge_chunk_
  std::uint64_t unicast_expected_ = 0;  // bridge/unicast stream, from 0
  std::uint64_t due_swept_ = 0;         // due sweep: playout-imminent check
  GroupReceiverStats stats_;
  std::unique_ptr<ObsState> obs_;
  crobs::SessionTrace* ftrace_ = nullptr;
};

struct GroupSenderStats {
  std::int64_t chunks_multicast = 0;
  std::int64_t packets_multicast = 0;  // original fragments, paid once each
  std::int64_t bytes_multicast = 0;
  std::int64_t chunks_skipped = 0;  // never appeared in the shared buffer
  std::int64_t patch_chunks = 0;    // bridge chunks below a merge point
  std::int64_t unicast_chunks = 0;  // demoted-member chunks
  std::int64_t fragments_retransmitted = 0;
  std::int64_t retransmits_abandoned = 0;
  std::int64_t repair_packets = 0;
  std::int64_t repair_bytes = 0;
  std::int64_t reports_received = 0;
  std::int64_t deduped_chunk_reads = 0;  // reads the fan-out saved vs unicast
  std::int64_t members_demoted = 0;      // fell past the repair window
};

// Server-host transmitter for one delivery group.
class GroupSender {
 public:
  struct Options {
    crbase::Duration lookahead = crbase::Milliseconds(250);
    crbase::Duration poll = crbase::Milliseconds(5);
    std::int64_t max_packet_bytes = 8 * 1024;
    crbase::Duration cpu_per_chunk = crbase::Microseconds(150);
    // Cadence of the coded-repair pass over accumulated loss reports.
    crbase::Duration repair_interval = crbase::Milliseconds(30);
    // How many recently multicast chunks stay repairable. A reported loss
    // older than this (and still in deadline on the member's clock) demotes
    // the member to unicast.
    std::int64_t repair_window_chunks = 64;
    std::int64_t repair_packet_overhead = 96;  // header bytes atop the parity
    // Cap on fragments XOR-ed into one parity packet.
    std::size_t max_window_entries = 16;
    // Extra linger after every member's clock has passed the final chunk's
    // deadline, so reports and repairs already on the wire still land. The
    // wait for the slowest member is clock-driven, not part of this knob.
    crbase::Duration drain = crbase::Seconds(1);
    // Receiver playout clocks trail their session clocks by the client's
    // chosen startup lag, which the server cannot observe. Deadline checks
    // on the session clock (store pruning, the demote rule, bridge
    // retransmits) extend the chunk's life by this much so a repair the
    // receiver can still use is not refused as already-dead.
    crbase::Duration playout_slack = crbase::Milliseconds(500);
    int priority = crrt::kPriorityServer - 1;
  };

  GroupSender(crrt::Kernel& kernel, cras::CrasServer& server, crnet::Link& forward,
              const Options& options);
  GroupSender(crrt::Kernel& kernel, cras::CrasServer& server, crnet::Link& forward);
  GroupSender(const GroupSender&) = delete;
  GroupSender& operator=(const GroupSender&) = delete;

  // Registers a member session and its client-host receiver. Call after the
  // server admitted the session into the group (any time, including while
  // the feed is already rolling — that is the late-join path).
  void AddMember(SessionId session, GroupReceiver& receiver);

  // Spawns the transmitter thread for `group`, walking `index` to its end
  // plus a short repair drain. The returned task may be awaited or dropped.
  crsim::Task Start(GroupId group, const crmedia::ChunkIndex* index);

  // Loss-report arrival, invoked by a reverse link's delivery events.
  // Bridge/unicast losses are retransmitted immediately (deadline-checked);
  // multicast losses accumulate for the next coded-repair pass.
  void OnLossReport(const LossReport& report);

  const GroupSenderStats& stats() const { return stats_; }
  std::size_t retained_chunks() const { return store_.size(); }

  // Counters (mcast.tx_*), labeled {group}.
  void AttachObs(crobs::Hub* hub, const std::string& name);

 private:
  struct Member {
    SessionId session = kNoSession;
    GroupReceiver* receiver = nullptr;
    std::int64_t merge_chunk = 0;
    std::int64_t patch_cursor = 0;    // unicast bridge progress, [0, merge)
    std::int64_t unicast_cursor = 0;  // demoted-member progress
    bool unicast = false;             // demoted: served like a plain stream
    bool dead = false;                // session gone
    // The member session's frame-trace ring (nullptr when tracing is off).
    crobs::SessionTrace* trace = nullptr;
    // Multicast losses reported since the last repair pass.
    std::map<std::uint64_t, std::vector<int>> missing;
  };

  // A multicast chunk retained for coded repair while inside the window.
  struct StoredChunk {
    cras::BufferedChunk chunk;
    crbase::Time sent_at = 0;
    std::vector<std::int64_t> frag_bytes;
    crbase::Time deadline = 0;
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* chunks_multicast = nullptr;
    crobs::Counter* repair_packets = nullptr;
    crobs::Counter* repair_bytes = nullptr;
    crobs::Counter* deduped_chunk_reads = nullptr;
  };

  crsim::Task SenderThread(crrt::ThreadContext& ctx, const crmedia::ChunkIndex* index);
  // Fans one chunk out to every multicast-eligible member. Returns the
  // number of members it reached.
  std::size_t ShipMulticast(std::uint64_t seq, const cras::BufferedChunk& chunk,
                            crbase::Time sent_at);
  void SendUnicast(Member& member, std::uint64_t seq, const cras::BufferedChunk& chunk,
                   crbase::Time sent_at, bool retransmit);
  // Re-detects server-side state changes (demotions, closed sessions).
  void RefreshMember(Member& member, const crmedia::ChunkIndex* index);
  void RetransmitUnicast(Member& member, const LossReportEntry& entry);
  void RepairTick();
  void PruneStore();
  Member* FindMember(SessionId session);

  crrt::Kernel* kernel_;
  cras::CrasServer* server_;
  crnet::Link* link_;
  Options options_;
  GroupId group_ = kNoGroup;
  const crmedia::ChunkIndex* index_ = nullptr;
  std::uint64_t cursor_ = 0;  // next chunk the feed multicasts
  std::vector<Member> members_;
  std::map<std::uint64_t, StoredChunk> store_;
  std::set<std::uint64_t> skipped_;  // never sent; repair requests ignored
  GroupSenderStats stats_;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crmcast

#endif  // SRC_MCAST_GROUP_TRANSPORT_H_
