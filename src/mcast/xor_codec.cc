#include "src/mcast/xor_codec.h"

#include <algorithm>

namespace crmcast {

std::vector<std::uint8_t> XorParity(
    const std::vector<std::vector<std::uint8_t>>& fragments) {
  std::size_t longest = 0;
  for (const std::vector<std::uint8_t>& fragment : fragments) {
    longest = std::max(longest, fragment.size());
  }
  std::vector<std::uint8_t> parity(longest, 0);
  for (const std::vector<std::uint8_t>& fragment : fragments) {
    for (std::size_t i = 0; i < fragment.size(); ++i) {
      parity[i] ^= fragment[i];
    }
  }
  return parity;
}

std::vector<std::uint8_t> XorRecover(
    const std::vector<std::uint8_t>& parity,
    const std::vector<const std::vector<std::uint8_t>*>& present,
    std::size_t missing_size) {
  std::vector<std::uint8_t> recovered = parity;
  for (const std::vector<std::uint8_t>* fragment : present) {
    for (std::size_t i = 0; i < fragment->size() && i < recovered.size(); ++i) {
      recovered[i] ^= (*fragment)[i];
    }
  }
  recovered.resize(missing_size, 0);
  return recovered;
}

std::int64_t XorParityBytes(const std::vector<std::int64_t>& fragment_bytes) {
  std::int64_t longest = 0;
  for (const std::int64_t bytes : fragment_bytes) {
    longest = std::max(longest, bytes);
  }
  return longest;
}

}  // namespace crmcast
