// XOR parity codec for grouped repair.
//
// A repair packet carries the bytewise XOR of a *window* of previously sent
// fragments (zero-padded to the longest member). Any receiver that holds all
// but one window fragment recovers the missing one by XOR-ing the parity
// with everything it has — so a single multicast repair packet can fix a
// *different* loss at each receiver, as long as the sender partitions the
// reported gaps so that no receiver is missing two fragments of the same
// window (see GroupSender::RepairTick).

#ifndef SRC_MCAST_XOR_CODEC_H_
#define SRC_MCAST_XOR_CODEC_H_

#include <cstdint>
#include <vector>

namespace crmcast {

// Bytewise XOR over all fragments, zero-padded to the longest.
std::vector<std::uint8_t> XorParity(
    const std::vector<std::vector<std::uint8_t>>& fragments);

// Recovers the single missing fragment of a window from the parity and the
// fragments that did arrive. `missing_size` truncates the zero-padded result
// back to the lost fragment's true length.
std::vector<std::uint8_t> XorRecover(
    const std::vector<std::uint8_t>& parity,
    const std::vector<const std::vector<std::uint8_t>*>& present,
    std::size_t missing_size);

// Wire size of a parity packet over fragments of the given sizes: the
// longest fragment (the zero-padding never travels compressed — parity is
// as long as its biggest member).
std::int64_t XorParityBytes(const std::vector<std::int64_t>& fragment_bytes);

}  // namespace crmcast

#endif  // SRC_MCAST_XOR_CODEC_H_
