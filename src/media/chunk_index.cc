#include "src/media/chunk_index.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace crmedia {

ChunkIndex::ChunkIndex(std::vector<Chunk> chunks) : chunks_(std::move(chunks)) {
  Time expected_ts = 0;
  std::int64_t expected_offset = 0;
  for (const Chunk& c : chunks_) {
    CRAS_CHECK(c.size > 0 && c.duration > 0) << "chunks must have positive size and duration";
    CRAS_CHECK(c.timestamp == expected_ts) << "timestamps must be cumulative durations";
    CRAS_CHECK(c.offset == expected_offset) << "chunks must be back to back in the file";
    expected_ts += c.duration;
    expected_offset += c.size;
    total_bytes_ += c.size;
    total_duration_ += c.duration;
    max_chunk_bytes_ = std::max(max_chunk_bytes_, c.size);
  }
}

double ChunkIndex::average_rate() const {
  if (total_duration_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_bytes_) / crbase::ToSeconds(total_duration_);
}

double ChunkIndex::WorstRate(Duration window) const {
  CRAS_CHECK(window > 0);
  if (chunks_.empty()) {
    return 0.0;
  }
  // Slide a [t, t+window) window over chunk start times; a chunk whose
  // timestamp falls inside the window must be delivered within it.
  double worst = 0.0;
  std::size_t tail = 0;
  std::int64_t bytes_in_window = 0;
  for (std::size_t head = 0; head < chunks_.size(); ++head) {
    bytes_in_window += chunks_[head].size;
    while (chunks_[head].timestamp - chunks_[tail].timestamp >= window) {
      bytes_in_window -= chunks_[tail].size;
      ++tail;
    }
    worst = std::max(worst, static_cast<double>(bytes_in_window) / crbase::ToSeconds(window));
  }
  return worst;
}

std::int64_t ChunkIndex::FindByTime(Time t) const {
  if (chunks_.empty() || t < 0) {
    return -1;
  }
  // Binary search for the last chunk with timestamp <= t.
  auto it = std::upper_bound(chunks_.begin(), chunks_.end(), t,
                             [](Time value, const Chunk& c) { return value < c.timestamp; });
  return static_cast<std::int64_t>(it - chunks_.begin()) - 1;
}

std::pair<std::int64_t, std::int64_t> ChunkIndex::RangeByTime(Time from, Time to) const {
  if (chunks_.empty() || to <= from) {
    return {0, 0};
  }
  std::int64_t first = FindByTime(from);
  if (first < 0) {
    first = 0;
  } else if (chunks_[static_cast<std::size_t>(first)].timestamp +
                 chunks_[static_cast<std::size_t>(first)].duration <=
             from) {
    ++first;  // `from` is past the end of this chunk
  }
  auto it = std::lower_bound(chunks_.begin(), chunks_.end(), to,
                             [](const Chunk& c, Time value) { return c.timestamp < value; });
  const std::int64_t last = static_cast<std::int64_t>(it - chunks_.begin());
  if (first >= last) {
    return {first, first};
  }
  return {first, last};
}

namespace {

// Timestamp of frame i at `fps`, rounded so that frame k*fps lands exactly
// on the k-second boundary (per-frame rounding would drift and push chunk
// starts across scheduling-window boundaries).
Time FrameTimestamp(std::int64_t i, double fps) {
  return crbase::SecondsF(static_cast<double>(i) / fps);
}

}  // namespace

ChunkIndex BuildCbrIndex(double bytes_per_sec, double fps, Duration length) {
  CRAS_CHECK(bytes_per_sec > 0 && fps > 0 && length > 0);
  const std::int64_t frame_bytes = static_cast<std::int64_t>(bytes_per_sec / fps);
  const std::int64_t frames = length / crbase::SecondsF(1.0 / fps);
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<std::size_t>(frames));
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < frames; ++i) {
    const Time ts = FrameTimestamp(i, fps);
    chunks.push_back(Chunk{offset, frame_bytes, ts, FrameTimestamp(i + 1, fps) - ts});
    offset += frame_bytes;
  }
  return ChunkIndex(std::move(chunks));
}

ChunkIndex BuildVbrIndex(double mean_bytes_per_sec, double cv, double fps, Duration length,
                         crbase::Rng& rng) {
  CRAS_CHECK(mean_bytes_per_sec > 0 && fps > 0 && length > 0 && cv >= 0);
  const double mean_frame = mean_bytes_per_sec / fps;
  const std::int64_t frames = length / crbase::SecondsF(1.0 / fps);
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<std::size_t>(frames));
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < frames; ++i) {
    std::int64_t size = static_cast<std::int64_t>(rng.NextLogNormal(mean_frame, cv));
    size = std::max<std::int64_t>(size, 256);
    const Time ts = FrameTimestamp(i, fps);
    chunks.push_back(Chunk{offset, size, ts, FrameTimestamp(i + 1, fps) - ts});
    offset += size;
  }
  return ChunkIndex(std::move(chunks));
}

}  // namespace crmedia
