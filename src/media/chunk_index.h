// Continuous-media chunk index (the "control file").
//
// The paper's client passes CRAS, at open time, the timestamp, duration, and
// size of every chunk of the stream; this timing information normally lives
// in a control file beside the media file. The timestamp of a chunk is the
// sum of the durations of all chunks before it (§2.5). CRAS uses the index
// to schedule prefetches and discard obsolete buffers; players use it to
// locate frames by logical time.

#ifndef SRC_MEDIA_CHUNK_INDEX_H_
#define SRC_MEDIA_CHUNK_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/base/random.h"
#include "src/base/time_units.h"

namespace crmedia {

using crbase::Duration;
using crbase::Time;

struct Chunk {
  std::int64_t offset = 0;   // byte offset in the media file
  std::int64_t size = 0;     // bytes
  Time timestamp = 0;        // logical time of this chunk (sum of prior durations)
  Duration duration = 0;     // playback duration
};

class ChunkIndex {
 public:
  ChunkIndex() = default;
  explicit ChunkIndex(std::vector<Chunk> chunks);

  const std::vector<Chunk>& chunks() const { return chunks_; }
  std::size_t count() const { return chunks_.size(); }
  bool empty() const { return chunks_.empty(); }
  const Chunk& at(std::size_t i) const { return chunks_[i]; }

  std::int64_t total_bytes() const { return total_bytes_; }
  Duration total_duration() const { return total_duration_; }
  std::int64_t max_chunk_bytes() const { return max_chunk_bytes_; }

  // Mean data rate over the whole stream, bytes/second.
  double average_rate() const;

  // Worst-case data rate over any window of `window` logical time — the
  // rate a VBR stream must declare to CRAS so that every interval's demand
  // is covered (§3.2 problem 1 is exactly the gap between this and the
  // average rate).
  double WorstRate(Duration window) const;

  // Index of the chunk whose [timestamp, timestamp+duration) covers `t`;
  // -1 before the first chunk, count()-1 clamped at/after the end.
  std::int64_t FindByTime(Time t) const;

  // Chunks whose logical interval intersects [from, to).
  // Returned as [first, last) index pair; first == last when none.
  std::pair<std::int64_t, std::int64_t> RangeByTime(Time from, Time to) const;

 private:
  std::vector<Chunk> chunks_;
  std::int64_t total_bytes_ = 0;
  Duration total_duration_ = 0;
  std::int64_t max_chunk_bytes_ = 0;
};

// Constant-bit-rate stream: `fps` equal-sized chunks per second at
// `bytes_per_sec`, for `length` of playback. Models the paper's MPEG1
// (1.5 Mb/s) and MPEG2 (6 Mb/s) test streams.
ChunkIndex BuildCbrIndex(double bytes_per_sec, double fps, Duration length);

// Variable-bit-rate stream: log-normal chunk sizes with the given mean rate
// and coefficient of variation (JPEG/MPEG-like, §3.2 problem 1).
ChunkIndex BuildVbrIndex(double mean_bytes_per_sec, double cv, double fps, Duration length,
                         crbase::Rng& rng);

}  // namespace crmedia

#endif  // SRC_MEDIA_CHUNK_INDEX_H_
