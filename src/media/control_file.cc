#include "src/media/control_file.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

namespace crmedia {

namespace {

constexpr char kMagic[] = "CRASCTL";
constexpr int kVersion = 1;

crbase::Status LineError(int line, const std::string& what) {
  return crbase::InvalidArgumentError("control file line " + std::to_string(line) + ": " + what);
}

}  // namespace

std::string SerializeControlFile(const ChunkIndex& index) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %d %zu\n", kMagic, kVersion, index.count());
  out += buf;
  for (const Chunk& chunk : index.chunks()) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 "\n",
                  chunk.offset, chunk.size, chunk.timestamp, chunk.duration);
    out += buf;
  }
  return out;
}

crbase::Result<ChunkIndex> ParseControlFile(const std::string& text) {
  // Split into lines without copying where possible.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty()) {
    return crbase::InvalidArgumentError("control file is empty");
  }

  char magic[16];
  int version = 0;
  std::uint64_t count = 0;
  if (std::sscanf(lines[0].c_str(), "%15s %d %" PRIu64, magic, &version, &count) != 3 ||
      std::strcmp(magic, kMagic) != 0) {
    return LineError(1, "bad header (expected 'CRASCTL <version> <count>')");
  }
  if (version != kVersion) {
    return crbase::InvalidArgumentError("unsupported control file version " +
                                        std::to_string(version));
  }
  if (lines.size() < count + 1) {
    return crbase::InvalidArgumentError("control file truncated: header promises " +
                                        std::to_string(count) + " chunks, found " +
                                        std::to_string(lines.size() - 1));
  }

  std::vector<Chunk> chunks;
  chunks.reserve(count);
  std::int64_t expected_offset = 0;
  Time expected_ts = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const int line_number = static_cast<int>(i) + 2;
    Chunk chunk;
    if (std::sscanf(lines[i + 1].c_str(),
                    "%" SCNd64 " %" SCNd64 " %" SCNd64 " %" SCNd64, &chunk.offset,
                    &chunk.size, &chunk.timestamp, &chunk.duration) != 4) {
      return LineError(line_number, "expected four integer fields");
    }
    if (chunk.size <= 0 || chunk.duration <= 0) {
      return LineError(line_number, "size and duration must be positive");
    }
    if (chunk.offset != expected_offset) {
      return LineError(line_number, "offset " + std::to_string(chunk.offset) +
                                        " breaks the cumulative-sum invariant (expected " +
                                        std::to_string(expected_offset) + ")");
    }
    if (chunk.timestamp != expected_ts) {
      return LineError(line_number, "timestamp " + std::to_string(chunk.timestamp) +
                                        " breaks the cumulative-sum invariant (expected " +
                                        std::to_string(expected_ts) + ")");
    }
    expected_offset += chunk.size;
    expected_ts += chunk.duration;
    chunks.push_back(chunk);
  }
  return ChunkIndex(std::move(chunks));
}

}  // namespace crmedia
