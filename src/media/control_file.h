// Control files (§2.5).
//
// "Usually, this timing information is stored in a control file separate
// from the continuous media data file." This module defines that file: a
// line-oriented text format carrying the stream's chunk table, written next
// to the media file and parsed by clients at crs_open time.
//
// Format (one header line, then one line per chunk):
//
//   CRASCTL 1 <chunk-count>
//   <offset> <size> <timestamp-ns> <duration-ns>
//   ...
//
// Offsets/timestamps are redundant (cumulative sums) and are validated on
// parse; any inconsistency is rejected rather than repaired.

#ifndef SRC_MEDIA_CONTROL_FILE_H_
#define SRC_MEDIA_CONTROL_FILE_H_

#include <string>

#include "src/base/status.h"
#include "src/media/chunk_index.h"

namespace crmedia {

// Renders the index in control-file format.
std::string SerializeControlFile(const ChunkIndex& index);

// Parses control-file text; returns InvalidArgument with a line-numbered
// message on any malformed or inconsistent input.
crbase::Result<ChunkIndex> ParseControlFile(const std::string& text);

}  // namespace crmedia

#endif  // SRC_MEDIA_CONTROL_FILE_H_
