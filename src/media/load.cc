#include "src/media/load.h"

#include "src/base/logging.h"

namespace crmedia {

crsim::Task SpawnCat(crrt::Kernel& kernel, crufs::UnixServer& server, crufs::InodeNumber inode,
                     const std::string& name, const CatOptions& options) {
  return kernel.Spawn(name, options.priority,
                      [&server, inode, options](crrt::ThreadContext& ctx) -> crsim::Task {
                        std::int64_t offset = 0;
                        for (;;) {
                          crbase::Status st =
                              co_await server.Read(inode, offset, options.read_size);
                          if (!st.ok()) {
                            // Past EOF: wrap around and keep streaming.
                            offset = 0;
                            continue;
                          }
                          offset += options.read_size;
                          if (options.think_time > 0) {
                            co_await ctx.Sleep(options.think_time);
                          }
                        }
                      });
}

crsim::Task SpawnCpuHog(crrt::Kernel& kernel, const std::string& name,
                        const CpuHogOptions& options) {
  return kernel.Spawn(name, options.priority, [options](crrt::ThreadContext& ctx) -> crsim::Task {
    for (;;) {
      co_await ctx.Compute(options.burst);
    }
  });
}

}  // namespace crmedia
