// Background-load generators used throughout the evaluation:
//
//  * `cat` tasks — low-priority sequential readers that loop over a large
//    file through the Unix server, contending for the disk (the paper runs
//    two of them against every "load" configuration);
//  * CPU burners — timesharing tasks that consume the processor in bursts
//    (Figure 10's competing activity).

#ifndef SRC_MEDIA_LOAD_H_
#define SRC_MEDIA_LOAD_H_

#include <cstdint>
#include <string>

#include "src/base/time_units.h"
#include "src/rtmach/kernel.h"
#include "src/sim/task.h"
#include "src/ufs/unix_server.h"

namespace crmedia {

struct CatOptions {
  // Bytes per read() call; `cat` on an 8 KiB-block FFS reads a block at a
  // time and triggers 64 KiB clustered read-ahead in the server.
  std::int64_t read_size = 8 * 1024;
  // Pause between reads. Zero models a flat-out `cat` (saturates the disk);
  // a positive value models intermittent activity (a compile, a page-in)
  // that contends in bursts.
  crbase::Duration think_time = 0;
  int priority = crrt::kPriorityTimesharing;
};

// Spawns a thread that reads `inode` sequentially through `server`, forever
// (wrapping at EOF). Detach or hold the returned task.
crsim::Task SpawnCat(crrt::Kernel& kernel, crufs::UnixServer& server, crufs::InodeNumber inode,
                     const std::string& name, const CatOptions& options = {});

struct CpuHogOptions {
  // Each burst of CPU work, back to back: a pure compute-bound loop.
  crbase::Duration burst = crbase::Milliseconds(20);
  int priority = crrt::kPriorityTimesharing;
};

// Spawns a compute-bound thread that never blocks for I/O.
crsim::Task SpawnCpuHog(crrt::Kernel& kernel, const std::string& name,
                        const CpuHogOptions& options = {});

}  // namespace crmedia

#endif  // SRC_MEDIA_LOAD_H_
