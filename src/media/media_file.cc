#include "src/media/media_file.h"

namespace crmedia {

crbase::Result<MediaFile> WriteMediaFile(crufs::Ufs& fs, const std::string& name,
                                         ChunkIndex index) {
  auto inode = fs.Create(name);
  if (!inode.ok()) {
    return inode.status();
  }
  const crbase::Status appended = fs.Append(*inode, index.total_bytes());
  if (!appended.ok()) {
    (void)fs.Remove(name);
    return appended;
  }
  MediaFile file;
  file.name = name;
  file.inode = *inode;
  file.index = std::move(index);
  return file;
}

crbase::Result<MediaFile> WriteMpeg1File(crufs::Ufs& fs, const std::string& name,
                                         Duration length) {
  return WriteMediaFile(fs, name, BuildCbrIndex(kMpeg1BytesPerSec, kVideoFps, length));
}

crbase::Result<MediaFile> WriteMpeg2File(crufs::Ufs& fs, const std::string& name,
                                         Duration length) {
  return WriteMediaFile(fs, name, BuildCbrIndex(kMpeg2BytesPerSec, kVideoFps, length));
}

}  // namespace crmedia
