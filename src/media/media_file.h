// Media files: a chunk index bound to a UFS file.

#ifndef SRC_MEDIA_MEDIA_FILE_H_
#define SRC_MEDIA_MEDIA_FILE_H_

#include <string>

#include "src/base/status.h"
#include "src/media/chunk_index.h"
#include "src/ufs/ufs.h"

namespace crmedia {

// Stream-rate presets from the paper's evaluation.
inline constexpr double kMpeg1BytesPerSec = 1.5e6 / 8.0;  // 1.5 Mb/s
inline constexpr double kMpeg2BytesPerSec = 6.0e6 / 8.0;  // 6 Mb/s
inline constexpr double kVideoFps = 30.0;

struct MediaFile {
  std::string name;
  crufs::InodeNumber inode = crufs::kInvalidInode;
  ChunkIndex index;
};

// Creates `name` on the file system and appends the index's bytes under the
// file system's current allocation policy (an "offline" population step; no
// simulated time passes).
crbase::Result<MediaFile> WriteMediaFile(crufs::Ufs& fs, const std::string& name,
                                         ChunkIndex index);

// Convenience builders for the paper's standard test streams.
crbase::Result<MediaFile> WriteMpeg1File(crufs::Ufs& fs, const std::string& name,
                                         Duration length);
crbase::Result<MediaFile> WriteMpeg2File(crufs::Ufs& fs, const std::string& name,
                                         Duration length);

}  // namespace crmedia

#endif  // SRC_MEDIA_MEDIA_FILE_H_
