#include "src/net/control.h"

#include <algorithm>

#include "src/base/logging.h"

namespace crnet {

const char* ControlOpName(ControlOp op) {
  switch (op) {
    case ControlOp::kOpen:
      return "open";
    case ControlOp::kClose:
      return "close";
    case ControlOp::kStart:
      return "start";
    case ControlOp::kStop:
      return "stop";
    case ControlOp::kReconnect:
      return "reconnect";
    case ControlOp::kRenewLease:
      return "renew_lease";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ControlService

ControlService::ControlService(crrt::Kernel& kernel, cras::CrasServer& server,
                               const Options& options)
    : kernel_(&kernel), server_(&server), options_(options), port_(kernel.engine()) {}

ControlService::ControlService(crrt::Kernel& kernel, cras::CrasServer& server)
    : ControlService(kernel, server, Options{}) {}

ControlService::~ControlService() {
  // Requests still queued are plain data (the callers' parked frames live in
  // their ControlClients); drop them.
  ControlRequest request;
  while (port_.TryReceive(&request)) {
  }
}

void ControlService::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  thread_ = kernel_->Spawn("control", options_.priority,
                           [this](crrt::ThreadContext& ctx) { return ServiceThread(ctx); });
}

void ControlService::Deliver(ControlRequest request) { port_.Send(std::move(request)); }

namespace {

crbase::Result<cras::SessionId> StatusToResult(const crbase::Status& status,
                                               cras::SessionId id) {
  if (status.ok()) {
    return id;
  }
  return status;
}

}  // namespace

crsim::Task ControlService::ServiceThread(crrt::ThreadContext& ctx) {
  for (;;) {
    ControlRequest request = co_await port_.Receive();
    ++stats_.requests;
    // Idempotency: a request id executes at most once. A duplicate of a
    // completed call — a network replay, or a retry whose original did land
    // — is answered from the cache without touching the server.
    if (const auto it = completed_.find(request.request_id); it != completed_.end()) {
      ++stats_.duplicates_suppressed;
      SendReply(request, it->second);
      continue;
    }
    co_await ctx.Compute(options_.cpu_per_op);
    ++stats_.executed;
    crbase::Result<cras::SessionId> result = cras::kInvalidSession;
    switch (request.op) {
      case ControlOp::kOpen:
        result = co_await server_->Open(std::move(request.params));
        break;
      case ControlOp::kClose:
        result = StatusToResult(co_await server_->Close(request.session), request.session);
        break;
      case ControlOp::kStart:
        result = StatusToResult(
            co_await server_->StartStream(request.session, request.initial_delay),
            request.session);
        break;
      case ControlOp::kStop:
        result = StatusToResult(co_await server_->StopStream(request.session),
                                request.session);
        break;
      case ControlOp::kReconnect:
        result = StatusToResult(co_await server_->Reconnect(request.session),
                                request.session);
        break;
      case ControlOp::kRenewLease:
        // Direct like the heartbeat path; unknown ids are a benign race.
        server_->RenewLease(request.session);
        result = request.session;
        break;
    }
    completed_.emplace(request.request_id, result);
    completed_order_.push_back(request.request_id);
    while (completed_order_.size() > options_.reply_cache) {
      completed_.erase(completed_order_.front());
      completed_order_.pop_front();
    }
    SendReply(request, result);
  }
}

void ControlService::SendReply(const ControlRequest& request,
                               const crbase::Result<cras::SessionId>& result) {
  if (request.origin == nullptr) {
    return;
  }
  if (request.reply_link == nullptr) {
    ++stats_.replies_sent;
    request.origin->OnReply(request.request_id, result);
    return;
  }
  ControlClient* origin = request.origin;
  const std::uint64_t id = request.request_id;
  const bool sent =
      request.reply_link->Send(options_.reply_bytes, [origin, id, result] {
        origin->OnReply(id, result);
      });
  if (sent) {
    ++stats_.replies_sent;
  } else {
    // Transmit queue full: the client's retry will ask again and hit the
    // reply cache — dropping here never wedges the caller.
    ++stats_.reply_drops;
  }
}

// ---------------------------------------------------------------------------
// ControlClient

ControlClient::ControlClient(crsim::Engine& engine, ControlService& service, Link* forward,
                             Link* reverse, const Options& options)
    : engine_(&engine),
      service_(&service),
      forward_(forward),
      reverse_(reverse),
      options_(options) {
  CRAS_CHECK(options_.max_attempts >= 1);
  CRAS_CHECK(options_.initial_rto > 0);
  CRAS_CHECK(options_.rto_cap >= options_.initial_rto);
}

ControlClient::ControlClient(crsim::Engine& engine, ControlService& service, Link* forward,
                             Link* reverse)
    : ControlClient(engine, service, forward, reverse, Options{}) {}

ControlClient::~ControlClient() {
  // Calls still pending hold their callers' parked frames; cancelling the
  // timers and dropping the map reclaims each chain via its ParkedHandle.
  for (auto& [id, pending] : pending_) {
    engine_->Cancel(pending.timer);
  }
}

void ControlClient::Begin(ControlRequest request, std::coroutine_handle<> h,
                          crbase::Result<cras::SessionId>* out) {
  ++stats_.calls;
  request.request_id = (options_.client_id << 40) | next_seq_++;
  request.origin = this;
  request.reply_link = reverse_;
  const std::uint64_t id = request.request_id;
  Pending& pending = pending_[id];
  pending.request = std::move(request);
  pending.rto = options_.initial_rto;
  pending.done = [h, out](crbase::Result<cras::SessionId> result) {
    *out = std::move(result);
    h.resume();
  };
  pending.parked = crsim::ParkedHandle(h);
  SendAttempt(pending);
}

void ControlClient::SendAttempt(Pending& pending) {
  ++pending.attempts;
  const std::uint64_t id = pending.request.request_id;
  if (forward_ == nullptr) {
    service_->Deliver(pending.request);
  } else {
    // A refused send (tx queue full) still counts as an attempt: the
    // retry timer below recovers, exactly as for a wire loss.
    ControlService* service = service_;
    (void)forward_->Send(options_.request_bytes,
                         [service, request = pending.request]() mutable {
                           service->Deliver(std::move(request));
                         });
  }
  pending.timer = engine_->ScheduleAfter(pending.rto, [this, id] { OnTimeout(id); });
}

void ControlClient::OnTimeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;  // reply landed; the cancel raced this event
  }
  Pending& pending = it->second;
  if (pending.attempts >= options_.max_attempts) {
    ++stats_.timeouts;
    Complete(request_id,
             crbase::DeadlineExceededError(std::string("control ") +
                                           ControlOpName(pending.request.op) + " timed out after " +
                                           std::to_string(pending.attempts) + " attempts"));
    return;
  }
  ++stats_.retries;
  pending.rto = std::min(2 * pending.rto, options_.rto_cap);
  SendAttempt(pending);
}

void ControlClient::OnReply(std::uint64_t request_id,
                            crbase::Result<cras::SessionId> result) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    ++stats_.duplicate_replies;
    return;
  }
  engine_->Cancel(it->second.timer);
  Complete(request_id, std::move(result));
}

void ControlClient::Complete(std::uint64_t request_id,
                             crbase::Result<cras::SessionId> result) {
  auto node = pending_.extract(request_id);
  CRAS_CHECK(!node.empty());
  Pending& pending = node.mapped();
  engine_->Cancel(pending.timer);
  // Duplicate Close tolerance: a close answered NOT_FOUND lost a race with
  // an earlier close of the same session (a retried duplicate past the
  // reply cache, or the lease reaper). The session is gone, which is what
  // the caller asked for.
  if (pending.request.op == ControlOp::kClose &&
      result.status().code() == crbase::StatusCode::kNotFound) {
    ++stats_.close_races;
    result = pending.request.session;
  }
  if (result.ok()) {
    ++stats_.calls_ok;
  } else {
    ++stats_.calls_failed;
  }
  // Resume outside the map: the caller may immediately begin another call.
  pending.parked.release();
  pending.done(std::move(result));
}

}  // namespace crnet
