// Hardened control plane: CRAS control RPCs over an impairable link.
//
// The in-process control interface (CrasServer::Open/Close/...) assumes the
// caller and the server share a reliable channel. A chaos campaign does
// not: control packets are lost, delayed and *duplicated* mid-run, and a
// wedged Open would hang a viewer forever. This pair hardens the path:
//
//   ControlClient  — client-host endpoint. Every call carries a globally
//                    unique request id and is retried with capped
//                    exponential backoff until a reply lands or the attempt
//                    budget is spent (then DEADLINE_EXCEEDED — the caller
//                    is never wedged). Duplicate replies are dropped by id.
//   ControlService — server-host endpoint. Executes each request id at
//                    most once: a duplicate of a completed request is
//                    answered from a bounded reply cache without touching
//                    the server, so a replayed Open admits no second
//                    stream and a duplicate Close is a no-op.
//
// Close has at-least-once-tolerant semantics end to end: a retry whose
// original already closed the session is answered from the reply cache,
// and a close racing the lease reaper (NOT_FOUND — the session is already
// gone) is reported as success to the caller, because "already gone" is
// what Close was for. Reconnect racing the reaper stays deterministic: the
// request manager serializes both, so the reply is whichever side won,
// never a half-reaped session.
//
// The request and reply links are ordinary crnet::Links, so crfault's
// control-drop events (loss + duplication) apply to exactly this traffic.
// Either link may be null: that hop then resolves without network delay.

#ifndef SRC_NET_CONTROL_H_
#define SRC_NET_CONTROL_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <utility>

#include "src/base/status.h"
#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/net/link.h"
#include "src/rtmach/kernel.h"
#include "src/sim/port.h"
#include "src/sim/task.h"

namespace crnet {

class ControlClient;

enum class ControlOp {
  kOpen,
  kClose,
  kStart,
  kStop,
  kReconnect,
  kRenewLease,
};

const char* ControlOpName(ControlOp op);

// One control RPC on the wire. The id is unique per (client, call) and
// identical across that call's retries — the service's idempotency key.
struct ControlRequest {
  std::uint64_t request_id = 0;
  ControlOp op = ControlOp::kRenewLease;
  cras::SessionId session = cras::kInvalidSession;
  cras::OpenParams params;              // kOpen
  crbase::Duration initial_delay = 0;   // kStart
  ControlClient* origin = nullptr;      // reply target
  Link* reply_link = nullptr;           // server -> client hop (may be null)
};

struct ControlServiceStats {
  std::int64_t requests = 0;              // requests received (incl. duplicates)
  std::int64_t executed = 0;              // dispatched to the server
  std::int64_t duplicates_suppressed = 0; // answered from the reply cache
  std::int64_t replies_sent = 0;
  std::int64_t reply_drops = 0;           // reply refused by a full tx queue
};

struct ControlClientStats {
  std::int64_t calls = 0;
  std::int64_t calls_ok = 0;
  std::int64_t calls_failed = 0;     // non-OK reply surfaced to the caller
  std::int64_t timeouts = 0;         // attempt budget spent, DEADLINE_EXCEEDED
  std::int64_t retries = 0;          // resends past each call's first attempt
  std::int64_t duplicate_replies = 0;
  std::int64_t close_races = 0;      // Close answered NOT_FOUND -> success
};

// Server-host service thread: drains delivered requests in order and
// executes each against the CRAS control port, deduplicating by request id.
class ControlService {
 public:
  struct Options {
    // CPU to parse/dispatch one request (cheap; the real work is the
    // server's own control-op charge).
    crbase::Duration cpu_per_op = crbase::Microseconds(100);
    int priority = crrt::kPriorityServer - 1;
    // Completed request ids whose replies are retained for duplicates;
    // oldest evicted past this bound.
    std::size_t reply_cache = 512;
    std::int64_t reply_bytes = 96;  // wire size of one reply
  };

  ControlService(crrt::Kernel& kernel, cras::CrasServer& server, const Options& options);
  ControlService(crrt::Kernel& kernel, cras::CrasServer& server);
  ControlService(const ControlService&) = delete;
  ControlService& operator=(const ControlService&) = delete;
  ~ControlService();

  // Spawns the service thread (idempotent).
  void Start();

  // Server-host entry point — the forward link's deliver closure.
  void Deliver(ControlRequest request);

  const ControlServiceStats& stats() const { return stats_; }

 private:
  crsim::Task ServiceThread(crrt::ThreadContext& ctx);
  void SendReply(const ControlRequest& request,
                 const crbase::Result<cras::SessionId>& result);

  crrt::Kernel* kernel_;
  cras::CrasServer* server_;
  Options options_;
  crsim::Port<ControlRequest> port_;
  // Reply cache: id -> result, FIFO-evicted.
  std::map<std::uint64_t, crbase::Result<cras::SessionId>> completed_;
  std::deque<std::uint64_t> completed_order_;
  ControlServiceStats stats_;
  crsim::Task thread_;
  bool started_ = false;
};

// Client-host endpoint. Calls are awaitable from any simulated thread:
//
//   crnet::ControlClient ctl(kernel.engine(), service, &fwd, &rev, {.client_id = 3});
//   auto opened = co_await ctl.Open(params);          // Result<SessionId>
//   co_await ctl.RenewLease(*opened);                 // Status
//   co_await ctl.Close(*opened);                      // Status; retry-safe
class ControlClient {
 public:
  struct Options {
    // Disambiguates request ids across clients sharing one service.
    std::uint64_t client_id = 0;
    // First retry after initial_rto; doubles per retry up to rto_cap.
    crbase::Duration initial_rto = crbase::Milliseconds(60);
    crbase::Duration rto_cap = crbase::Milliseconds(480);
    // Total attempts (first send + retries) before DEADLINE_EXCEEDED.
    int max_attempts = 8;
    std::int64_t request_bytes = 160;  // wire size of one request
  };

  // `forward` carries requests (client -> server), `reverse` replies; either
  // may be null for a same-host hop.
  ControlClient(crsim::Engine& engine, ControlService& service, Link* forward,
                Link* reverse, const Options& options);
  ControlClient(crsim::Engine& engine, ControlService& service, Link* forward,
                Link* reverse);
  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;
  // Reclaims the parked frames of calls still awaiting a reply.
  ~ControlClient();

  auto Open(cras::OpenParams params) {
    ControlRequest request;
    request.op = ControlOp::kOpen;
    request.params = std::move(params);
    return CallAwaiter<crbase::Result<cras::SessionId>>{this, std::move(request)};
  }
  auto Close(cras::SessionId id) {
    return CallAwaiter<crbase::Status>{this, MakeRequest(ControlOp::kClose, id)};
  }
  auto StartStream(cras::SessionId id, crbase::Duration initial_delay) {
    ControlRequest request = MakeRequest(ControlOp::kStart, id);
    request.initial_delay = initial_delay;
    return CallAwaiter<crbase::Status>{this, std::move(request)};
  }
  auto StopStream(cras::SessionId id) {
    return CallAwaiter<crbase::Status>{this, MakeRequest(ControlOp::kStop, id)};
  }
  auto Reconnect(cras::SessionId id) {
    return CallAwaiter<crbase::Status>{this, MakeRequest(ControlOp::kReconnect, id)};
  }
  auto RenewLease(cras::SessionId id) {
    return CallAwaiter<crbase::Status>{this, MakeRequest(ControlOp::kRenewLease, id)};
  }

  // Client-host entry point — the reply link's deliver closure. Replies for
  // ids no longer pending (a duplicate, or the original landed first) are
  // dropped here.
  void OnReply(std::uint64_t request_id, crbase::Result<cras::SessionId> result);

  const ControlClientStats& stats() const { return stats_; }
  std::size_t pending_calls() const { return pending_.size(); }

 private:
  struct Pending {
    ControlRequest request;  // resend template
    int attempts = 0;
    crbase::Duration rto = 0;
    crsim::EventId timer = crsim::kInvalidEventId;
    std::function<void(crbase::Result<cras::SessionId>)> done;
    crsim::ParkedHandle parked;
  };

  template <typename R>
  struct CallAwaiter {
    ControlClient* client;
    ControlRequest request;
    crbase::Result<cras::SessionId> raw = cras::kInvalidSession;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      client->Begin(std::move(request), h, &raw);
    }
    R await_resume() {
      if constexpr (std::is_same_v<R, crbase::Status>) {
        return raw.status();
      } else {
        return std::move(raw);
      }
    }
  };

  ControlRequest MakeRequest(ControlOp op, cras::SessionId id) {
    ControlRequest request;
    request.op = op;
    request.session = id;
    return request;
  }

  void Begin(ControlRequest request, std::coroutine_handle<> h,
             crbase::Result<cras::SessionId>* out);
  void SendAttempt(Pending& pending);
  void OnTimeout(std::uint64_t request_id);
  // Removes the pending entry and resumes its caller with `result`.
  void Complete(std::uint64_t request_id, crbase::Result<cras::SessionId> result);

  crsim::Engine* engine_;
  ControlService* service_;
  Link* forward_;
  Link* reverse_;
  Options options_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  ControlClientStats stats_;
};

}  // namespace crnet

#endif  // SRC_NET_CONTROL_H_
