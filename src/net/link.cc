#include "src/net/link.h"

#include <algorithm>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/logging.h"

namespace crnet {

Link::Link(crsim::Engine& engine, const Options& options)
    : engine_(&engine),
      options_(options),
      impairments_(options.impairments),
      rng_(options.impairment_seed) {
  CRAS_CHECK(options.bandwidth_bytes_per_sec > 0);
  CRAS_CHECK(options.propagation_delay >= 0);
  CRAS_CHECK(impairments_.bandwidth_derating >= 1.0);
}

Link::Link(crsim::Engine& engine) : Link(engine, Options{}) {}

bool Link::Send(std::int64_t bytes, std::function<void()> deliver) {
  CRAS_CHECK(bytes > 0);
  if (options_.queue_limit != 0 && queue_.size() >= options_.queue_limit) {
    ++stats_.packets_dropped;
    ++stats_.tx_queue_drops;
    if (obs_ != nullptr) {
      obs_->tx_queue_drops->Add();
    }
    return false;
  }
  ++stats_.packets_sent;
  stats_.bytes_sent += bytes;
  if (obs_ != nullptr) {
    obs_->packets_sent->Add();
  }
  queue_.push_back(Packet{bytes, std::move(deliver), {}});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  if (!transmitting_) {
    StartTransmit();
  }
  return true;
}

bool Link::Multicast(std::int64_t bytes, std::vector<std::function<void()>> delivers) {
  CRAS_CHECK(bytes > 0);
  CRAS_CHECK(!delivers.empty());
  if (options_.queue_limit != 0 && queue_.size() >= options_.queue_limit) {
    ++stats_.packets_dropped;
    ++stats_.tx_queue_drops;
    if (obs_ != nullptr) {
      obs_->tx_queue_drops->Add();
    }
    return false;
  }
  ++stats_.mcast_packets_sent;
  stats_.bytes_sent += bytes;
  queue_.push_back(Packet{bytes, nullptr, std::move(delivers)});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  if (!transmitting_) {
    StartTransmit();
  }
  return true;
}

void Link::SetImpairments(const LinkImpairments& impairments) {
  CRAS_CHECK(impairments.bandwidth_derating >= 1.0);
  impairments_ = impairments;
}

void Link::SetLoss(double probability) {
  CRAS_CHECK(probability >= 0.0 && probability <= 1.0);
  impairments_.loss_probability = probability;
  impairments_.gilbert_elliott = false;
}

void Link::SetBurstLoss(double p_enter_bad, double p_exit_bad, double loss_bad) {
  CRAS_CHECK(p_enter_bad >= 0.0 && p_enter_bad <= 1.0);
  CRAS_CHECK(p_exit_bad > 0.0 && p_exit_bad <= 1.0);
  CRAS_CHECK(loss_bad >= 0.0 && loss_bad <= 1.0);
  impairments_.gilbert_elliott = true;
  impairments_.ge_p_enter_bad = p_enter_bad;
  impairments_.ge_p_exit_bad = p_exit_bad;
  impairments_.ge_loss_bad = loss_bad;
}

void Link::SetJitter(Duration jitter) {
  CRAS_CHECK(jitter >= 0);
  impairments_.jitter = jitter;
}

void Link::SetReordering(double probability, Duration delay) {
  CRAS_CHECK(probability >= 0.0 && probability <= 1.0);
  CRAS_CHECK(delay >= 0);
  impairments_.reorder_probability = probability;
  impairments_.reorder_delay = delay;
}

void Link::SetDuplication(double probability, Duration delay) {
  CRAS_CHECK(probability >= 0.0 && probability <= 1.0);
  CRAS_CHECK(delay >= 0);
  impairments_.duplicate_probability = probability;
  impairments_.duplicate_delay = delay;
}

void Link::SetBandwidthDerating(double factor) {
  CRAS_CHECK(factor >= 1.0);
  impairments_.bandwidth_derating = factor;
}

void Link::ClearImpairments() {
  impairments_ = LinkImpairments{};
  ge_in_bad_state_ = false;
}

void Link::StepLossState() {
  if (!impairments_.gilbert_elliott) {
    return;
  }
  if (ge_in_bad_state_) {
    if (rng_.NextDouble() < impairments_.ge_p_exit_bad) {
      ge_in_bad_state_ = false;
    }
  } else {
    if (rng_.NextDouble() < impairments_.ge_p_enter_bad) {
      ge_in_bad_state_ = true;
    }
  }
}

bool Link::DrawLossNow() {
  if (impairments_.gilbert_elliott) {
    const double p = ge_in_bad_state_ ? impairments_.ge_loss_bad : impairments_.ge_loss_good;
    return p > 0.0 && rng_.NextDouble() < p;
  }
  return impairments_.loss_probability > 0.0 &&
         rng_.NextDouble() < impairments_.loss_probability;
}

bool Link::DrawWireLoss() {
  // Step the chain, then draw against the state the packet sees.
  StepLossState();
  return DrawLossNow();
}

Duration Link::DrawExtraDelay() {
  Duration extra = 0;
  if (impairments_.jitter > 0) {
    extra += static_cast<Duration>(rng_.NextBelow(
        static_cast<std::uint64_t>(impairments_.jitter) + 1));
  }
  if (impairments_.reorder_probability > 0.0 &&
      rng_.NextDouble() < impairments_.reorder_probability) {
    extra += impairments_.reorder_delay;
  }
  return extra;
}

void Link::StartTransmit() {
  CRAS_CHECK(!transmitting_);
  if (queue_.empty()) {
    return;
  }
  transmitting_ = true;
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  const double rate = options_.bandwidth_bytes_per_sec / impairments_.bandwidth_derating;
  const Duration wire_time =
      crbase::TransferTime(packet.bytes + options_.per_packet_overhead, rate);
  stats_.busy_time += wire_time;
  // Serialization completes, then the bits propagate. The next packet may
  // begin serializing as soon as this one leaves the interface. Loss and
  // jitter are drawn at serialization end, in send order, so the random
  // sequence is independent of delivery interleaving.
  engine_->ScheduleAfter(wire_time, [this, packet = std::move(packet)]() mutable {
    transmitting_ = false;
    if (!packet.multi.empty()) {
      // One serialized packet, N receivers: the shared loss state advances
      // once, then every receiver draws its fate (and jitter) on its own.
      StepLossState();
      for (std::function<void()>& deliver : packet.multi) {
        if (DrawLossNow()) {
          ++stats_.mcast_receiver_drops;
        } else {
          DeliverOne(packet.bytes, std::move(deliver), /*multicast=*/true);
        }
      }
    } else if (DrawWireLoss()) {
      ++stats_.packets_dropped;
      ++stats_.wire_drops;
      if (obs_ != nullptr) {
        obs_->wire_drops->Add();
      }
    } else {
      DeliverOne(packet.bytes, std::move(packet.deliver), /*multicast=*/false);
    }
    StartTransmit();
  });
}

void Link::DeliverOne(std::int64_t bytes, std::function<void()> deliver, bool multicast) {
  // Duplication: the receiver sees the same unicast packet again shortly
  // after the original — drawn here so the copy shares the original's
  // jitter fate and costs no extra wire time (the bits only went out once;
  // the switch replayed them).
  if (!multicast && impairments_.duplicate_probability > 0.0 &&
      rng_.NextDouble() < impairments_.duplicate_probability) {
    engine_->ScheduleAfter(
        options_.propagation_delay + impairments_.duplicate_delay, [this, deliver] {
          ++stats_.duplicate_deliveries;
          if (deliver) {
            deliver();
          }
        });
  }
  engine_->ScheduleAfter(options_.propagation_delay + DrawExtraDelay(),
                         [this, bytes, multicast, deliver = std::move(deliver)] {
                           if (multicast) {
                             ++stats_.mcast_deliveries;
                           } else {
                             ++stats_.packets_delivered;
                           }
                           stats_.bytes_delivered += bytes;
                           if (obs_ != nullptr) {
                             if (!multicast) {
                               obs_->packets_delivered->Add();
                             }
                             obs_->bytes_delivered->Add(bytes);
                           }
                           if (deliver) {
                             deliver();
                           }
                         });
}

void Link::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  const crobs::Labels labels = {{"link", name}};
  obs->packets_sent = metrics.GetCounter("link.packets_sent", labels);
  obs->packets_delivered = metrics.GetCounter("link.packets_delivered", labels);
  obs->bytes_delivered = metrics.GetCounter("link.bytes_delivered", labels);
  obs->tx_queue_drops = metrics.GetCounter("link.tx_queue_drops", labels);
  obs->wire_drops = metrics.GetCounter("link.wire_drops", labels);
  obs_ = std::move(obs);
}

}  // namespace crnet
