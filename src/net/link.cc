#include "src/net/link.h"

#include <algorithm>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/logging.h"

namespace crnet {

Link::Link(crsim::Engine& engine, const Options& options) : engine_(&engine), options_(options) {
  CRAS_CHECK(options.bandwidth_bytes_per_sec > 0);
  CRAS_CHECK(options.propagation_delay >= 0);
}

Link::Link(crsim::Engine& engine) : Link(engine, Options{}) {}

bool Link::Send(std::int64_t bytes, std::function<void()> deliver) {
  CRAS_CHECK(bytes > 0);
  if (options_.queue_limit != 0 && queue_.size() >= options_.queue_limit) {
    ++stats_.packets_dropped;
    return false;
  }
  ++stats_.packets_sent;
  queue_.push_back(Packet{bytes, std::move(deliver)});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  if (!transmitting_) {
    StartTransmit();
  }
  return true;
}

void Link::StartTransmit() {
  CRAS_CHECK(!transmitting_);
  if (queue_.empty()) {
    return;
  }
  transmitting_ = true;
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  const Duration wire_time = crbase::TransferTime(packet.bytes + options_.per_packet_overhead,
                                                  options_.bandwidth_bytes_per_sec);
  stats_.busy_time += wire_time;
  // Serialization completes, then the bits propagate. The next packet may
  // begin serializing as soon as this one leaves the interface.
  engine_->ScheduleAfter(wire_time, [this, packet = std::move(packet)]() mutable {
    transmitting_ = false;
    engine_->ScheduleAfter(options_.propagation_delay,
                           [this, bytes = packet.bytes, deliver = std::move(packet.deliver)] {
                             ++stats_.packets_delivered;
                             stats_.bytes_delivered += bytes;
                             if (deliver) {
                               deliver();
                             }
                           });
    StartTransmit();
  });
}

}  // namespace crnet
