// A point-to-point network link.
//
// Models the paper's 10 Mb/s Ethernet between the QtPlay server and client
// (Figure 11): packets serialize onto the wire at the link bandwidth, then
// arrive after the propagation delay. Transmission is FIFO at the interface;
// an optional queue bound forces transmit-queue drops.
//
// Beyond the paper's perfect segment, the link carries a scriptable
// *impairment model* (driven live by crfault link events) for lossy-network
// experiments:
//
//   loss        — i.i.d. per-packet wire loss, or a Gilbert–Elliott
//                 two-state Markov chain for bursty loss (good/bad states
//                 with per-state loss probabilities, stepped once per
//                 packet);
//   jitter      — uniform extra propagation delay in [0, jitter]; because
//                 every packet propagates independently, jitter larger than
//                 the serialization gap reorders deliveries;
//   reordering  — explicit tail-holding: with probability p a packet is
//                 held `reorder_delay` beyond its normal arrival;
//   derating    — bandwidth divided by a factor (a congested or
//                 renegotiated segment).
//
// A wire-lost packet still consumed its serialization time — the bits went
// out, nobody heard them — so loss wastes exactly the wire time the sender
// paid, which is what makes deadline-aware retransmission worth modelling.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/base/time_units.h"
#include "src/obs/obs.h"
#include "src/sim/engine.h"

namespace crnet {

using crbase::Duration;
using crbase::Time;

struct LinkStats {
  std::int64_t packets_sent = 0;
  std::int64_t packets_delivered = 0;
  // Total drops = tx_queue_drops + wire_drops. Kept as the sum so existing
  // "did anything drop" call sites keep working.
  std::int64_t packets_dropped = 0;
  std::int64_t tx_queue_drops = 0;  // refused at Send(): transmit queue full
  std::int64_t wire_drops = 0;      // serialized, then lost on the wire
  std::int64_t bytes_delivered = 0;
  // Payload bytes accepted for serialization — paid once per transmission,
  // unicast or multicast, so this is the sender-side cost a fan-out saves.
  std::int64_t bytes_sent = 0;
  // Multicast fan-out. A multicast transmission serializes once (one entry
  // in busy_time, one bytes_sent charge) and then every attached receiver
  // draws its own wire loss: deliveries/drops count per receiver. Kept
  // apart from the unicast counters so packets_sent = delivered + dropped
  // keeps holding for unicast traffic.
  std::int64_t mcast_packets_sent = 0;
  std::int64_t mcast_deliveries = 0;
  std::int64_t mcast_receiver_drops = 0;
  // Extra deliveries manufactured by the duplication impairment (not
  // included in packets_delivered, so sent = delivered + dropped holds).
  std::int64_t duplicate_deliveries = 0;
  Duration busy_time = 0;
  std::size_t max_queue_depth = 0;
};

// Scriptable link misbehaviour. All fields off by default; a
// default-constructed value means a perfect link.
struct LinkImpairments {
  // i.i.d. per-packet wire loss probability (ignored when gilbert_elliott).
  double loss_probability = 0.0;
  // Gilbert–Elliott burst loss: the chain steps once per serialized packet;
  // the packet is then lost with the current state's probability.
  bool gilbert_elliott = false;
  double ge_p_enter_bad = 0.0;  // P(good -> bad) per packet
  double ge_p_exit_bad = 0.0;   // P(bad -> good) per packet
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
  // Uniform extra propagation delay in [0, jitter].
  Duration jitter = 0;
  // With probability reorder_probability, a packet is additionally held
  // reorder_delay past its (jittered) arrival time.
  double reorder_probability = 0.0;
  Duration reorder_delay = 0;
  // With probability duplicate_probability, a delivered unicast packet is
  // delivered a second time, `duplicate_delay` after the original — a
  // misbehaving switch or a retransmission the first copy of which was not
  // actually lost. The idempotency hazard for control RPCs.
  double duplicate_probability = 0.0;
  Duration duplicate_delay = crbase::Milliseconds(2);
  // Serialization bandwidth divided by this factor (>= 1).
  double bandwidth_derating = 1.0;

  bool perfect() const {
    return loss_probability == 0.0 && !gilbert_elliott && jitter == 0 &&
           reorder_probability == 0.0 && duplicate_probability == 0.0 &&
           bandwidth_derating == 1.0;
  }
};

class Link {
 public:
  struct Options {
    double bandwidth_bytes_per_sec = 10e6 / 8.0;  // 10 Mb/s Ethernet
    Duration propagation_delay = crbase::Microseconds(500);
    // Per-packet framing overhead (headers, interframe gap) in bytes.
    std::int64_t per_packet_overhead = 64;
    // Transmit queue bound in packets; 0 = unbounded.
    std::size_t queue_limit = 0;
    // Impairments active from construction (scripted changes come later
    // through the setters / crfault).
    LinkImpairments impairments;
    // Seed for the loss/jitter draws; every run is reproducible.
    std::uint64_t impairment_seed = 0x6c696e6bULL;  // "link"
  };

  Link(crsim::Engine& engine, const Options& options);
  Link(crsim::Engine& engine);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queues `bytes` for transmission; `deliver` fires at the receiver once
  // the packet has fully serialized and propagated. Returns false (and
  // counts a tx-queue drop) if the transmit queue is full. A wire-lost
  // packet's `deliver` never fires.
  bool Send(std::int64_t bytes, std::function<void()> deliver);

  // Multicast: one serialized transmission fanned out to every receiver of
  // a group address. Wire time is paid once; at serialization end the loss
  // model steps once (the shared-medium burst state advances per packet)
  // and then *each* receiver draws its own loss and jitter independently —
  // one multicast packet can reach some receivers and miss others. A
  // receiver whose draw loses the packet never sees its deliver closure.
  bool Multicast(std::int64_t bytes, std::vector<std::function<void()>> delivers);

  // ---- impairment control (live; crfault's link events land here) ----
  void SetImpairments(const LinkImpairments& impairments);
  void SetLoss(double probability);
  void SetBurstLoss(double p_enter_bad, double p_exit_bad, double loss_bad);
  void SetJitter(Duration jitter);
  void SetReordering(double probability, Duration delay);
  // Duplicated *deliveries*: the receiver sees some unicast packets twice.
  void SetDuplication(double probability, Duration delay = crbase::Milliseconds(2));
  void SetBandwidthDerating(double factor);
  // Back to a perfect link (the Gilbert–Elliott chain also resets to good).
  void ClearImpairments();
  const LinkImpairments& impairments() const { return impairments_; }

  const LinkStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size() + (transmitting_ ? 1 : 0); }
  const Options& options() const { return options_; }

  // Offered-load utilization over the life of the link.
  double Utilization() const {
    return engine_->Now() == 0
               ? 0.0
               : static_cast<double>(stats_.busy_time) / static_cast<double>(engine_->Now());
  }

  // Registers the link's counters keyed {link: name} — sent/delivered
  // bytes and the split drop counters — mirroring the device/driver stats.
  void AttachObs(crobs::Hub* hub, const std::string& name);

 private:
  struct Packet {
    std::int64_t bytes;
    std::function<void()> deliver;           // unicast receiver
    std::vector<std::function<void()>> multi;  // multicast receivers (if any)
  };
  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* packets_sent = nullptr;
    crobs::Counter* packets_delivered = nullptr;
    crobs::Counter* bytes_delivered = nullptr;
    crobs::Counter* tx_queue_drops = nullptr;
    crobs::Counter* wire_drops = nullptr;
  };

  void StartTransmit();
  void DeliverOne(std::int64_t bytes, std::function<void()> deliver, bool multicast);
  // Steps the loss model one packet; true = this packet dies on the wire.
  bool DrawWireLoss();
  // Advances the Gilbert–Elliott chain one packet (no-op for i.i.d. loss).
  void StepLossState();
  // Draws a loss against the *current* state without advancing it — the
  // per-receiver draw of a multicast delivery.
  bool DrawLossNow();
  // Extra delivery delay past the nominal propagation (jitter + reorder).
  Duration DrawExtraDelay();

  crsim::Engine* engine_;
  Options options_;
  LinkImpairments impairments_;
  crbase::Rng rng_;
  bool ge_in_bad_state_ = false;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  LinkStats stats_;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crnet

#endif  // SRC_NET_LINK_H_
