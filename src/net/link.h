// A point-to-point network link.
//
// Models the paper's 10 Mb/s Ethernet between the QtPlay server and client
// (Figure 11): packets serialize onto the wire at the link bandwidth, then
// arrive after the propagation delay. Transmission is FIFO; the link never
// drops (a switched full-duplex segment) but an optional queue bound can
// force drops to exercise loss handling.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crnet {

using crbase::Duration;
using crbase::Time;

struct LinkStats {
  std::int64_t packets_sent = 0;
  std::int64_t packets_delivered = 0;
  std::int64_t packets_dropped = 0;
  std::int64_t bytes_delivered = 0;
  Duration busy_time = 0;
  std::size_t max_queue_depth = 0;
};

class Link {
 public:
  struct Options {
    double bandwidth_bytes_per_sec = 10e6 / 8.0;  // 10 Mb/s Ethernet
    Duration propagation_delay = crbase::Microseconds(500);
    // Per-packet framing overhead (headers, interframe gap) in bytes.
    std::int64_t per_packet_overhead = 64;
    // Transmit queue bound in packets; 0 = unbounded.
    std::size_t queue_limit = 0;
  };

  Link(crsim::Engine& engine, const Options& options);
  Link(crsim::Engine& engine);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queues `bytes` for transmission; `deliver` fires at the receiver once
  // the packet has fully serialized and propagated. Returns false (and
  // counts a drop) if the transmit queue is full.
  bool Send(std::int64_t bytes, std::function<void()> deliver);

  const LinkStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size() + (transmitting_ ? 1 : 0); }
  const Options& options() const { return options_; }

  // Offered-load utilization over the life of the link.
  double Utilization() const {
    return engine_->Now() == 0
               ? 0.0
               : static_cast<double>(stats_.busy_time) / static_cast<double>(engine_->Now());
  }

 private:
  struct Packet {
    std::int64_t bytes;
    std::function<void()> deliver;
  };

  void StartTransmit();

  crsim::Engine* engine_;
  Options options_;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  LinkStats stats_;
};

}  // namespace crnet

#endif  // SRC_NET_LINK_H_
