#include "src/net/nps.h"

#include <algorithm>

#include "src/base/logging.h"

namespace crnet {

NpsReceiver::NpsReceiver(crrt::Kernel& kernel, const Options& options)
    : kernel_(&kernel),
      buffer_(options.buffer_bytes, options.jitter_allowance),
      clock_(kernel.engine()) {}

NpsReceiver::NpsReceiver(crrt::Kernel& kernel) : NpsReceiver(kernel, Options{}) {}

void NpsReceiver::Deliver(const cras::BufferedChunk& chunk, crbase::Time sent_at) {
  cras::BufferedChunk local = chunk;
  local.filled_at = kernel_->Now();
  buffer_.Put(local, clock_.Now());
  ++stats_.chunks_received;
  stats_.bytes_received += chunk.size;
  stats_.max_network_latency =
      std::max(stats_.max_network_latency, kernel_->Now() - sent_at);
}

std::optional<cras::BufferedChunk> NpsReceiver::Get(crbase::Time t) {
  buffer_.DiscardObsolete(clock_.Now());
  return buffer_.Get(t);
}

NpsSender::NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                     NpsReceiver& receiver, const Options& options)
    : kernel_(&kernel), server_(&server), link_(&link), receiver_(&receiver), options_(options) {}

NpsSender::NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                     NpsReceiver& receiver)
    : NpsSender(kernel, server, link, receiver, Options{}) {}

crsim::Task NpsSender::Start(cras::SessionId session, const crmedia::ChunkIndex* index) {
  return kernel_->Spawn("nps-sender", options_.priority,
                        [this, session, index](crrt::ThreadContext& ctx) {
                          return SenderThread(ctx, session, index);
                        });
}

crsim::Task NpsSender::SenderThread(crrt::ThreadContext& ctx, cras::SessionId session,
                                    const crmedia::ChunkIndex* index) {
  for (std::size_t cursor = 0; cursor < index->count(); ++cursor) {
    const crmedia::Chunk& chunk = index->at(cursor);
    // Ship each chunk `lookahead` before its logical due time. The logical
    // clock may still be negative during the stream's initial delay.
    while (server_->LogicalNow(session) < chunk.timestamp - options_.lookahead) {
      co_await ctx.Sleep(options_.poll);
    }
    // Fetch from the shared buffer (crs_get). Data normally precedes the
    // clock by a full interval, so this succeeds immediately; a chunk that
    // never shows up by its due time is skipped (the receiver's buffer
    // would discard it anyway).
    std::optional<cras::BufferedChunk> buffered;
    for (;;) {
      buffered = server_->Get(session, chunk.timestamp);
      if (buffered.has_value()) {
        break;
      }
      if (server_->LogicalNow(session) > chunk.timestamp + chunk.duration) {
        break;
      }
      co_await ctx.Sleep(options_.poll);
    }
    if (!buffered.has_value()) {
      ++stats_.chunks_skipped;
      continue;
    }
    co_await ctx.Compute(options_.cpu_per_chunk);

    // Fragment onto the wire; the last fragment completes the chunk at the
    // receiver. Links deliver FIFO, so fragment order is preserved.
    const crbase::Time sent_at = ctx.Now();
    std::int64_t remaining = buffered->size;
    cras::BufferedChunk to_deliver = *buffered;
    while (remaining > 0) {
      const std::int64_t fragment = std::min(remaining, options_.max_packet_bytes);
      remaining -= fragment;
      ++stats_.packets_sent;
      stats_.bytes_sent += fragment;
      if (remaining == 0) {
        NpsReceiver* receiver = receiver_;
        link_->Send(fragment, [receiver, to_deliver, sent_at] {
          receiver->Deliver(to_deliver, sent_at);
        });
      } else {
        link_->Send(fragment, nullptr);
      }
    }
    ++stats_.chunks_sent;
  }
}

}  // namespace crnet
