#include "src/net/nps.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace crnet {

// ---------------------------------------------------------------------------
// NpsReceiver
// ---------------------------------------------------------------------------

NpsReceiver::NpsReceiver(crrt::Kernel& kernel, const Options& options)
    : kernel_(&kernel),
      options_(options),
      buffer_(options.buffer_bytes, options.jitter_allowance),
      clock_(kernel.engine()) {
  CRAS_CHECK(options_.nak_delay > 0);
  CRAS_CHECK(options_.nak_backoff_cap >= options_.nak_delay);
}

NpsReceiver::NpsReceiver(crrt::Kernel& kernel) : NpsReceiver(kernel, Options{}) {}

NpsReceiver::~NpsReceiver() {
  for (auto& [seq, entry] : pending_) {
    if (entry.timer_armed) {
      kernel_->engine().Cancel(entry.timer);
    }
  }
}

void NpsReceiver::ConnectReverse(Link& reverse, NpsSender& sender) {
  reverse_ = &reverse;
  sender_ = &sender;
  sender.EnableRetransmit();
}

void NpsReceiver::set_frame_trace(crobs::SessionTrace* trace) {
  ftrace_ = trace;
  // The local playout buffer resolves frames that complete reassembly but
  // age out unconsumed.
  buffer_.SetFrameTrace(trace, crobs::FrameStage::kCompleted);
}

void NpsReceiver::OnFragment(const NpsFragment& fragment) {
  ++stats_.fragments_received;
  if (fragment.retransmit) {
    ++stats_.retransmitted_fragments;
  }
  if (done_.count(fragment.seq) != 0) {
    ++stats_.duplicate_fragments;  // late retransmit of a finished chunk
    return;
  }
  // A jump past the expected next sequence number reveals wholly lost
  // chunks: open a placeholder (metadata unknown) for each skipped one so
  // its NAK timer starts running.
  if (fragment.seq >= expected_next_) {
    for (std::uint64_t seq = expected_next_; seq < fragment.seq; ++seq) {
      EnsureEntry(seq);
    }
    expected_next_ = fragment.seq + 1;
  }
  Reassembly& entry = EnsureEntry(fragment.seq);
  if (entry.frag_count == 0) {
    // First fragment to arrive for this sequence number: adopt the chunk
    // metadata every fragment carries.
    CRAS_CHECK(fragment.frag_count > 0);
    entry.chunk = fragment.chunk;
    entry.frag_count = fragment.frag_count;
    entry.have.assign(static_cast<std::size_t>(fragment.frag_count), false);
    entry.sent_at = fragment.sent_at;
  }
  CRAS_CHECK(fragment.frag_index >= 0 && fragment.frag_index < entry.frag_count);
  if (fragment.frag_index < entry.max_frag_seen) {
    ++stats_.out_of_order_fragments;
  }
  entry.max_frag_seen = std::max(entry.max_frag_seen, fragment.frag_index);
  if (entry.have[static_cast<std::size_t>(fragment.frag_index)]) {
    ++stats_.duplicate_fragments;
    return;
  }
  entry.have[static_cast<std::size_t>(fragment.frag_index)] = true;
  ++entry.received;
  if (!fragment.retransmit) {
    entry.last_fresh_at = kernel_->Now();
  }
  if (entry.received == entry.frag_count) {
    Complete(fragment.seq, entry);
  }
}

NpsReceiver::Reassembly& NpsReceiver::EnsureEntry(std::uint64_t seq) {
  auto [it, inserted] = pending_.try_emplace(seq);
  Reassembly& entry = it->second;
  if (inserted) {
    entry.created_at = kernel_->Now();
    entry.backoff = options_.nak_delay;
    ArmTimer(seq, options_.nak_delay);
  }
  return entry;
}

void NpsReceiver::ArmTimer(std::uint64_t seq, crbase::Duration delay) {
  Reassembly& entry = pending_.at(seq);
  entry.timer = kernel_->engine().ScheduleAfter(delay, [this, seq] { OnTimer(seq); });
  entry.timer_armed = true;
}

void NpsReceiver::OnTimer(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return;
  }
  Reassembly& entry = it->second;
  entry.timer_armed = false;
  const bool has_metadata = entry.frag_count > 0;
  bool give_up = false;
  if (reverse_ == nullptr || sender_ == nullptr) {
    // No repair path: the reordering grace has passed, the chunk will
    // never complete.
    give_up = true;
  } else if (entry.naks >= options_.max_naks) {
    give_up = true;
  } else if (has_metadata && clock_.Now() > ChunkDeadline(entry.chunk)) {
    // Playout has moved past this chunk; repaired data would be discarded
    // on arrival.
    give_up = true;
  } else if (!has_metadata &&
             kernel_->Now() - entry.created_at > options_.placeholder_ttl) {
    give_up = true;
  }
  if (give_up) {
    Abandon(seq, entry);
    return;
  }
  NpsNak nak;
  nak.seq = seq;
  if (has_metadata) {
    for (int i = 0; i < entry.frag_count; ++i) {
      if (!entry.have[static_cast<std::size_t>(i)]) {
        nak.missing.push_back(i);
      }
    }
  }
  ++entry.naks;
  ++stats_.naks_sent;
  if (obs_ != nullptr) {
    obs_->naks_sent->Add();
  }
  NpsSender* sender = sender_;
  reverse_->Send(options_.nak_bytes, [sender, nak] { sender->OnNak(nak); });
  entry.backoff = std::min(entry.backoff * 2, options_.nak_backoff_cap);
  ArmTimer(seq, entry.backoff);
}

void NpsReceiver::Complete(std::uint64_t seq, Reassembly& entry) {
  if (entry.timer_armed) {
    kernel_->engine().Cancel(entry.timer);
  }
  const crbase::Time now = kernel_->Now();
  cras::BufferedChunk local = entry.chunk;
  local.filled_at = now;
  if (ftrace_ != nullptr) {
    // Wire ends at the last fresh fragment; everything after that is
    // repair. A chunk none of whose fresh fragments survived has zero wire
    // time — the wire delivered nothing — so its entire sent-to-completed
    // latency is repair: anchor kArrived at the original send time (carried
    // in every fragment, equal to the sender's kSent stamp).
    ftrace_->StampAt(local.chunk_index, crobs::FrameStage::kArrived,
                     entry.last_fresh_at >= 0 ? entry.last_fresh_at : entry.sent_at);
    ftrace_->StampAt(local.chunk_index, crobs::FrameStage::kCompleted, now);
  }
  buffer_.Put(local, clock_.Now());
  ++stats_.chunks_received;
  stats_.bytes_received += entry.chunk.size;
  stats_.max_network_latency = std::max(stats_.max_network_latency, now - entry.sent_at);
  if (obs_ != nullptr) {
    obs_->chunks_received->Add();
    obs_->reassembly_ms->Record(crobs::ToMillis(now - entry.sent_at));
  }
  done_.insert(seq);
  pending_.erase(seq);
}

void NpsReceiver::Abandon(std::uint64_t seq, Reassembly& entry) {
  if (entry.timer_armed) {
    kernel_->engine().Cancel(entry.timer);
  }
  ++stats_.chunks_abandoned;
  if (obs_ != nullptr) {
    obs_->chunks_abandoned->Add();
    obs_->hub->flight().Record(crobs::FlightEventKind::kNakGiveUp,
                               static_cast<std::int64_t>(seq), entry.naks, 0, "receiver");
  }
  if (ftrace_ != nullptr) {
    // Frame identity: a fragment-carrying entry knows its chunk index; a
    // wholly-lost placeholder maps its sequence number through the sender's
    // durable send log (present whenever a reverse link is connected).
    const std::int64_t chunk_index =
        entry.frag_count > 0 ? entry.chunk.chunk_index
                             : (sender_ != nullptr ? sender_->ChunkIndexOf(seq) : -1);
    if (chunk_index >= 0) {
      if (entry.last_fresh_at >= 0) {
        ftrace_->StampAt(chunk_index, crobs::FrameStage::kArrived, entry.last_fresh_at);
      } else if (entry.frag_count > 0) {
        // Only retransmits arrived: zero wire time, the wait was all repair.
        ftrace_->StampAt(chunk_index, crobs::FrameStage::kArrived, entry.sent_at);
      }
      ftrace_->Miss(chunk_index, entry.received > 0 ? crobs::FrameStage::kCompleted
                                                    : crobs::FrameStage::kArrived);
    }
  }
  done_.insert(seq);
  pending_.erase(seq);
}

std::optional<cras::BufferedChunk> NpsReceiver::Get(crbase::Time t) {
  buffer_.DiscardObsolete(clock_.Now());
  std::optional<cras::BufferedChunk> chunk = buffer_.Get(t);
  if (chunk.has_value() && ftrace_ != nullptr) {
    ftrace_->Deliver(chunk->chunk_index);
  }
  return chunk;
}

void NpsReceiver::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  const crobs::Labels labels = {{"stream", name}};
  obs->chunks_received = metrics.GetCounter("nps.rx_chunks", labels);
  obs->naks_sent = metrics.GetCounter("nps.rx_naks_sent", labels);
  obs->chunks_abandoned = metrics.GetCounter("nps.rx_chunks_abandoned", labels);
  obs->reassembly_ms =
      metrics.GetHistogram("nps.reassembly_ms", labels, crobs::LatencyBucketsMs());
  obs_ = std::move(obs);
}

// ---------------------------------------------------------------------------
// NpsSender
// ---------------------------------------------------------------------------

NpsSender::NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                     NpsReceiver& receiver, const Options& options)
    : kernel_(&kernel), server_(&server), link_(&link), receiver_(&receiver), options_(options) {}

NpsSender::NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                     NpsReceiver& receiver)
    : NpsSender(kernel, server, link, receiver, Options{}) {}

crsim::Task NpsSender::Start(cras::SessionId session, const crmedia::ChunkIndex* index) {
  session_ = session;
  // Frame identity rides the session: cache the server's trace ring once and
  // hand it to the receiver so both ends stamp the same records.
  ftrace_ = server_->FrameTrace(session);
  receiver_->set_frame_trace(ftrace_);
  return kernel_->Spawn("nps-sender", options_.priority,
                        [this, session, index](crrt::ThreadContext& ctx) {
                          return SenderThread(ctx, session, index);
                        });
}

std::int64_t NpsSender::ChunkIndexOf(std::uint64_t seq) const {
  return seq < sent_chunk_index_.size()
             ? sent_chunk_index_[static_cast<std::size_t>(seq)]
             : -1;
}

void NpsSender::SendFragment(const NpsFragment& fragment) {
  NpsReceiver* receiver = receiver_;
  link_->Send(fragment.bytes, [receiver, fragment] { receiver->OnFragment(fragment); });
}

void NpsSender::OnNak(const NpsNak& nak) {
  ++stats_.naks_received;
  if (obs_ != nullptr) {
    obs_->naks_received->Add();
  }
  auto it = store_.find(nak.seq);
  if (it == store_.end()) {
    ++stats_.naks_unknown;  // already pruned (deadline passed long ago)
    return;
  }
  const StoredChunk& stored = it->second;
  // Deadline-aware give-up: once the chunk's playout deadline has passed,
  // a retransmission could only arrive to be discarded — drop it here.
  if (server_->LogicalNow(session_) > stored.deadline) {
    ++stats_.retransmits_abandoned;
    if (obs_ != nullptr) {
      obs_->retransmits_abandoned->Add();
      obs_->hub->flight().Record(crobs::FlightEventKind::kNakGiveUp,
                                 static_cast<std::int64_t>(nak.seq), 0, 0, "sender");
    }
    store_.erase(it);
    return;
  }
  const int frag_count = static_cast<int>(stored.frag_bytes.size());
  auto resend = [&](int index) {
    NpsFragment fragment;
    fragment.seq = nak.seq;
    fragment.frag_index = index;
    fragment.frag_count = frag_count;
    fragment.bytes = stored.frag_bytes[static_cast<std::size_t>(index)];
    fragment.chunk = stored.chunk;
    fragment.sent_at = stored.sent_at;
    fragment.retransmit = true;
    SendFragment(fragment);
    ++stats_.fragments_retransmitted;
    if (obs_ != nullptr) {
      obs_->fragments_retransmitted->Add();
    }
  };
  if (nak.missing.empty()) {
    for (int i = 0; i < frag_count; ++i) {
      resend(i);
    }
  } else {
    for (int index : nak.missing) {
      if (index >= 0 && index < frag_count) {
        resend(index);
      }
    }
  }
}

crsim::Task NpsSender::SenderThread(crrt::ThreadContext& ctx, cras::SessionId session,
                                    const crmedia::ChunkIndex* index) {
  for (std::size_t cursor = 0; cursor < index->count(); ++cursor) {
    const crmedia::Chunk& chunk = index->at(cursor);
    // Ship each chunk `lookahead` before its logical due time. The logical
    // clock may still be negative during the stream's initial delay.
    while (server_->LogicalNow(session) < chunk.timestamp - options_.lookahead) {
      co_await ctx.Sleep(options_.poll);
    }
    // Drop retained chunks whose playout deadline has passed: a NAK for
    // them would be refused anyway.
    if (retransmit_enabled_) {
      const crbase::Time logical = server_->LogicalNow(session);
      while (!store_.empty() && store_.begin()->second.deadline < logical) {
        store_.erase(store_.begin());
      }
    }
    // Fetch from the shared buffer (crs_get). Data normally precedes the
    // clock by a full interval, so this succeeds immediately; a chunk that
    // never shows up by its due time is skipped (the receiver's buffer
    // would discard it anyway).
    std::optional<cras::BufferedChunk> buffered;
    for (;;) {
      buffered = server_->Get(session, chunk.timestamp);
      if (buffered.has_value()) {
        break;
      }
      if (server_->LogicalNow(session) > ChunkDeadline(chunk)) {
        break;
      }
      co_await ctx.Sleep(options_.poll);
    }
    if (!buffered.has_value()) {
      ++stats_.chunks_skipped;
      if (ftrace_ != nullptr) {
        // Never reached the wire: the last stage it provably missed is the
        // send itself.
        ftrace_->Miss(static_cast<std::int64_t>(cursor), crobs::FrameStage::kSent);
      }
      continue;
    }
    co_await ctx.Compute(options_.cpu_per_chunk);

    // Fragment onto the wire. Each fragment carries the chunk's sequence
    // number, its own index, and the full metadata, so the receiver
    // reassembles explicitly — loss and reordering are the receiver's to
    // detect, not ours to signal.
    const crbase::Time sent_at = ctx.Now();
    const std::uint64_t seq = next_seq_++;
    sent_chunk_index_.push_back(buffered->chunk_index);
    std::vector<std::int64_t> frag_bytes;
    for (std::int64_t remaining = buffered->size; remaining > 0;) {
      const std::int64_t fragment = std::min(remaining, options_.max_packet_bytes);
      frag_bytes.push_back(fragment);
      remaining -= fragment;
    }
    const int frag_count = static_cast<int>(frag_bytes.size());
    if (retransmit_enabled_) {
      StoredChunk stored;
      stored.chunk = *buffered;
      stored.sent_at = sent_at;
      stored.frag_bytes = frag_bytes;
      stored.deadline = ChunkDeadline(*buffered);
      store_.emplace(seq, std::move(stored));
    }
    for (int i = 0; i < frag_count; ++i) {
      NpsFragment fragment;
      fragment.seq = seq;
      fragment.frag_index = i;
      fragment.frag_count = frag_count;
      fragment.bytes = frag_bytes[static_cast<std::size_t>(i)];
      fragment.chunk = *buffered;
      fragment.sent_at = sent_at;
      SendFragment(fragment);
      ++stats_.packets_sent;
      stats_.bytes_sent += fragment.bytes;
    }
    ++stats_.chunks_sent;
    if (ftrace_ != nullptr) {
      ftrace_->StampAt(buffered->chunk_index, crobs::FrameStage::kSent, sent_at);
    }
  }
}

void NpsSender::AttachObs(crobs::Hub* hub, const std::string& name) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  const crobs::Labels labels = {{"stream", name}};
  obs->naks_received = metrics.GetCounter("nps.tx_naks_received", labels);
  obs->fragments_retransmitted = metrics.GetCounter("nps.tx_retransmits", labels);
  obs->retransmits_abandoned = metrics.GetCounter("nps.tx_retransmits_abandoned", labels);
  obs_ = std::move(obs);
}

// ---------------------------------------------------------------------------
// LeaseClient
// ---------------------------------------------------------------------------

LeaseClient::LeaseClient(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                         cras::SessionId session, const Options& options)
    : kernel_(&kernel), server_(&server), link_(&link), session_(session), options_(options) {
  CRAS_CHECK(options_.period > 0);
}

LeaseClient::LeaseClient(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
                         cras::SessionId session)
    : LeaseClient(kernel, server, link, session, Options{}) {}

crsim::Task LeaseClient::Start() {
  return kernel_->Spawn("lease-client", options_.priority,
                        [this](crrt::ThreadContext& ctx) { return HeartbeatThread(ctx); });
}

crsim::Task LeaseClient::HeartbeatThread(crrt::ThreadContext& ctx) {
  while (!stopped_) {
    // The heartbeat rides the (possibly impaired) link: a lost packet is a
    // missed renewal, exactly as a real lossy network would miss one.
    cras::CrasServer* server = server_;
    const cras::SessionId id = session_;
    link_->Send(options_.heartbeat_bytes, [server, id] { server->RenewLease(id); });
    ++heartbeats_sent_;
    co_await ctx.Sleep(options_.period);
  }
}

}  // namespace crnet
