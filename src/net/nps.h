// NPS — a user-level stream transmission engine (paper references [9, 10]).
//
// The paper's QtPlay application (Figure 11) is distributed: a qtserver
// host retrieves movie data through CRAS and transmits it with NPS over
// 10 Mb/s Ethernet to a qtclient host, which hands frames to its display
// and audio sinks. This module provides that path:
//
//   NpsSender   — a thread on the server host that walks a session's chunk
//                 index slightly ahead of the logical clock, fetches each
//                 chunk from the CRAS shared buffer (crs_get), fragments it
//                 into packets, and transmits them;
//   NpsReceiver — the client-host endpoint that reassembles chunks into a
//                 local time-driven buffer, from which a remote player
//                 consumes by logical time exactly as a local one would;
//   LeaseClient — the heartbeat generator keeping a session's lease alive
//                 across the link (CrasServer::Options::lease_period).
//
// Reliability layer (for impaired links — see crnet::LinkImpairments):
// every transmitted chunk carries a sequence number and every fragment its
// index within the chunk, so the receiver reassembles from explicit
// per-sequence state and never trusts arrival order. With a reverse link
// connected (ConnectReverse), the receiver detects gaps — a missing
// fragment, or a wholly lost chunk revealed by a sequence-number jump — and
// requests repair with NAKs under capped exponential backoff. Both ends are
// deadline-aware: the receiver abandons a chunk its logical clock has
// passed (the buffer would discard it on arrival anyway), and the sender
// drops NAKed data whose playout deadline can no longer be met, so late
// retransmissions never waste wire time. Without a reverse link the
// protocol degrades to the classic best-effort NPS: an incomplete chunk is
// abandoned after a short reordering grace.

#ifndef SRC_NET_NPS_H_
#define SRC_NET_NPS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/core/time_driven_buffer.h"
#include "src/net/link.h"
#include "src/obs/obs.h"
#include "src/rtmach/kernel.h"
#include "src/sim/task.h"

namespace crnet {

class NpsSender;

// The one shared playout-deadline rule: a chunk is repair-worthy until the
// end of its playout slot, `timestamp + duration`, on the *logical* clock.
// The NAK sender's refusal check, the receiver's drop rule, the sender's
// store pruning, and grouped XOR repair (src/mcast) all call this helper so
// the boundary chunk — logical clock exactly at the deadline — is treated
// identically everywhere: still repairable at the deadline, dead strictly
// past it.
inline crbase::Time ChunkDeadline(const cras::BufferedChunk& chunk) {
  return chunk.timestamp + chunk.duration;
}
inline crbase::Time ChunkDeadline(const crmedia::Chunk& chunk) {
  return chunk.timestamp + chunk.duration;
}

// One NPS packet: a fragment of chunk number `seq`. Every fragment carries
// the full chunk metadata, so reassembly survives the loss of any subset.
struct NpsFragment {
  std::uint64_t seq = 0;  // chunk sequence number (consecutive from 0)
  int frag_index = 0;
  int frag_count = 1;
  std::int64_t bytes = 0;  // payload bytes in this fragment
  cras::BufferedChunk chunk;
  crbase::Time sent_at = 0;  // original chunk send start (sender host time)
  bool retransmit = false;
  bool multicast = false;  // delivered by group fan-out, not a unicast send
};

// A repair request: the fragments of `seq` the receiver is still missing.
// An empty `missing` list means "everything" (the whole chunk was lost and
// the receiver does not know its fragment count).
struct NpsNak {
  std::uint64_t seq = 0;
  std::vector<int> missing;
};

struct NpsReceiverStats {
  std::int64_t chunks_received = 0;
  std::int64_t bytes_received = 0;
  std::int64_t fragments_received = 0;
  std::int64_t duplicate_fragments = 0;    // already held, or chunk already done
  std::int64_t out_of_order_fragments = 0; // arrived behind a higher index
  std::int64_t retransmitted_fragments = 0;
  std::int64_t naks_sent = 0;
  std::int64_t chunks_abandoned = 0;  // given up: deadline passed or unrepairable
  crbase::Duration max_network_latency = 0;  // chunk send start -> reassembled
};

// Client-side endpoint: reassembled chunks land in a time-driven buffer.
class NpsReceiver {
 public:
  struct Options {
    std::int64_t buffer_bytes = 1 << 20;
    crbase::Duration jitter_allowance = crbase::Milliseconds(100);
    // Reordering grace before the first NAK (or, with no reverse link,
    // before an incomplete chunk is abandoned).
    crbase::Duration nak_delay = crbase::Milliseconds(20);
    // NAK retry backoff doubles per attempt up to this cap.
    crbase::Duration nak_backoff_cap = crbase::Milliseconds(160);
    int max_naks = 10;  // per chunk, before giving up
    // Give-up horizon for a wholly lost chunk (sequence gap, so no
    // metadata and hence no logical deadline to test against).
    crbase::Duration placeholder_ttl = crbase::Milliseconds(500);
    std::int64_t nak_bytes = 64;  // wire size of one NAK packet
  };

  NpsReceiver(crrt::Kernel& kernel, const Options& options);
  explicit NpsReceiver(crrt::Kernel& kernel);
  NpsReceiver(const NpsReceiver&) = delete;
  NpsReceiver& operator=(const NpsReceiver&) = delete;
  // Cancels any pending NAK timers (they ride the engine queue).
  ~NpsReceiver();

  // Packet arrival, invoked by the forward link's delivery events.
  void OnFragment(const NpsFragment& fragment);

  // Enables repair: NAKs travel over `reverse` to `sender`, which starts
  // retaining sent chunks for retransmission.
  void ConnectReverse(Link& reverse, NpsSender& sender);

  // The remote application's crs_get equivalent.
  std::optional<cras::BufferedChunk> Get(crbase::Time t);

  cras::LogicalClock& clock() { return clock_; }
  const NpsReceiverStats& stats() const { return stats_; }
  const cras::TimeDrivenBufferStats& buffer_stats() const { return buffer_.stats(); }
  std::size_t incomplete_chunks() const { return pending_.size(); }

  // Counters (nps.rx_*) and a reassembly-latency histogram, labeled
  // {stream, name}.
  void AttachObs(crobs::Hub* hub, const std::string& name);

  // Points reassembly at the session's frame-trace ring: arrival/repair
  // stamps, give-up misses, and playout delivery all land there. Also wired
  // through to the local buffer so an unconsumed drop after reassembly is
  // resolved (missed at kCompleted). Usually set by NpsSender::Start.
  void set_frame_trace(crobs::SessionTrace* trace);
  crobs::SessionTrace* frame_trace() const { return ftrace_; }

 private:
  // Reassembly state for one sequence number. A placeholder entry (created
  // on a sequence gap) has frag_count == 0 until a fragment arrives.
  struct Reassembly {
    cras::BufferedChunk chunk;
    int frag_count = 0;
    std::vector<bool> have;
    int received = 0;
    int max_frag_seen = -1;
    crbase::Time sent_at = 0;
    crbase::Time created_at = 0;  // receiver host time
    // Arrival of the newest *fresh* (non-retransmit) fragment: the frame
    // trace's wire/repair boundary. A chunk completed entirely by fresh
    // fragments gets a repair latency of exactly zero.
    crbase::Time last_fresh_at = -1;
    bool timer_armed = false;
    crsim::EventId timer{};
    crbase::Duration backoff = 0;
    int naks = 0;
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* chunks_received = nullptr;
    crobs::Counter* naks_sent = nullptr;
    crobs::Counter* chunks_abandoned = nullptr;
    crobs::Histogram* reassembly_ms = nullptr;
  };

  // Ensures a pending entry exists for `seq` with its first NAK timer
  // armed; used for both gap placeholders and fragment-carrying entries.
  Reassembly& EnsureEntry(std::uint64_t seq);
  void ArmTimer(std::uint64_t seq, crbase::Duration delay);
  // NAK timer body: give up, or request repair and re-arm with backoff.
  void OnTimer(std::uint64_t seq);
  void Complete(std::uint64_t seq, Reassembly& entry);
  void Abandon(std::uint64_t seq, Reassembly& entry);

  crrt::Kernel* kernel_;
  Options options_;
  cras::TimeDrivenBuffer buffer_;
  cras::LogicalClock clock_;
  Link* reverse_ = nullptr;
  NpsSender* sender_ = nullptr;
  std::map<std::uint64_t, Reassembly> pending_;
  std::set<std::uint64_t> done_;  // delivered or abandoned
  std::uint64_t expected_next_ = 0;  // every seq below this has an entry or is done
  NpsReceiverStats stats_;
  std::unique_ptr<ObsState> obs_;
  crobs::SessionTrace* ftrace_ = nullptr;
};

struct NpsSenderStats {
  std::int64_t chunks_sent = 0;
  std::int64_t chunks_skipped = 0;  // never appeared in the shared buffer
  std::int64_t packets_sent = 0;    // original fragments (excludes retransmits)
  std::int64_t bytes_sent = 0;
  std::int64_t naks_received = 0;
  std::int64_t fragments_retransmitted = 0;
  std::int64_t retransmits_abandoned = 0;  // NAKed, but playout deadline passed
  std::int64_t naks_unknown = 0;           // for a chunk already pruned
};

// Server-side transmitter for one stream session.
class NpsSender {
 public:
  struct Options {
    // How far ahead of the session's logical clock chunks are shipped;
    // hides the network serialization + propagation latency.
    crbase::Duration lookahead = crbase::Milliseconds(250);
    crbase::Duration poll = crbase::Milliseconds(5);
    std::int64_t max_packet_bytes = 8 * 1024;  // fragmentation threshold
    crbase::Duration cpu_per_chunk = crbase::Microseconds(150);
    int priority = crrt::kPriorityServer - 1;  // below CRAS, above clients
  };

  NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link, NpsReceiver& receiver,
            const Options& options);
  NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link, NpsReceiver& receiver);
  NpsSender(const NpsSender&) = delete;
  NpsSender& operator=(const NpsSender&) = delete;

  // Spawns the transmitter thread for `session`, walking `index` to its
  // end. The returned task may be awaited or dropped.
  crsim::Task Start(cras::SessionId session, const crmedia::ChunkIndex* index);

  // Retain sent chunks (until their playout deadline) so NAKs can be
  // answered. Called by NpsReceiver::ConnectReverse.
  void EnableRetransmit() { retransmit_enabled_ = true; }

  // Repair request arrival, invoked by the reverse link's delivery events.
  // Retransmits the missing fragments — unless the chunk's playout deadline
  // has passed, in which case the data is dropped here, at the sender.
  void OnNak(const NpsNak& nak);

  const NpsSenderStats& stats() const { return stats_; }
  std::size_t retained_chunks() const { return store_.size(); }

  // Chunk index behind NPS sequence number `seq`, or -1 if the chunk is no
  // longer retained. Sequence numbers are *not* chunk indexes — a skipped
  // chunk consumes no seq — so the receiver maps a wholly-lost placeholder
  // back to its frame identity through here (it holds the sender pointer
  // whenever a reverse link is connected).
  std::int64_t ChunkIndexOf(std::uint64_t seq) const;

  // Counters (nps.tx_*), labeled {stream, name}.
  void AttachObs(crobs::Hub* hub, const std::string& name);

 private:
  // A sent chunk retained for repair until its playout deadline.
  struct StoredChunk {
    cras::BufferedChunk chunk;
    crbase::Time sent_at = 0;
    std::vector<std::int64_t> frag_bytes;
    crbase::Time deadline = 0;  // logical: timestamp + duration
  };

  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* naks_received = nullptr;
    crobs::Counter* fragments_retransmitted = nullptr;
    crobs::Counter* retransmits_abandoned = nullptr;
  };

  crsim::Task SenderThread(crrt::ThreadContext& ctx, cras::SessionId session,
                           const crmedia::ChunkIndex* index);
  void SendFragment(const NpsFragment& fragment);

  crrt::Kernel* kernel_;
  cras::CrasServer* server_;
  Link* link_;
  NpsReceiver* receiver_;
  Options options_;
  bool retransmit_enabled_ = false;
  cras::SessionId session_ = cras::kInvalidSession;
  crobs::SessionTrace* ftrace_ = nullptr;  // cached from the server at Start
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, StoredChunk> store_;
  // seq -> chunk index for every chunk ever sent. Identity must outlive the
  // retransmit store: the store prunes past-deadline entries, but the
  // receiver may only observe a wholly-lost chunk's sequence gap after a
  // sender stall, and the give-up still needs a frame to attribute.
  std::vector<std::int64_t> sent_chunk_index_;
  NpsSenderStats stats_;
  std::unique_ptr<ObsState> obs_;
};

// Client-side lease heartbeat generator: a thread that renews the session's
// lease across the link every `period` (CrasServer::Options::lease_period
// governs how long the server waits; renew at least twice per period so one
// lost heartbeat does not lapse the lease). Stop() silences it — the
// simulated equivalent of a client crash or network partition, after which
// the server's reaper reclaims the session.
class LeaseClient {
 public:
  struct Options {
    crbase::Duration period = crbase::Milliseconds(500);
    std::int64_t heartbeat_bytes = 64;
    int priority = crrt::kPriorityClient;
  };

  LeaseClient(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
              cras::SessionId session, const Options& options);
  LeaseClient(crrt::Kernel& kernel, cras::CrasServer& server, Link& link,
              cras::SessionId session);
  LeaseClient(const LeaseClient&) = delete;
  LeaseClient& operator=(const LeaseClient&) = delete;

  // Spawns the heartbeat thread. The returned task may be awaited or
  // dropped; it exits at the next tick after Stop().
  crsim::Task Start();
  void Stop() { stopped_ = true; }

  std::int64_t heartbeats_sent() const { return heartbeats_sent_; }

 private:
  crsim::Task HeartbeatThread(crrt::ThreadContext& ctx);

  crrt::Kernel* kernel_;
  cras::CrasServer* server_;
  Link* link_;
  cras::SessionId session_;
  Options options_;
  bool stopped_ = false;
  std::int64_t heartbeats_sent_ = 0;
};

}  // namespace crnet

#endif  // SRC_NET_NPS_H_
