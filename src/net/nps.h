// NPS — a user-level stream transmission engine (paper references [9, 10]).
//
// The paper's QtPlay application (Figure 11) is distributed: a qtserver
// host retrieves movie data through CRAS and transmits it with NPS over
// 10 Mb/s Ethernet to a qtclient host, which hands frames to its display
// and audio sinks. This module provides that path:
//
//   NpsSender   — a thread on the server host that walks a session's chunk
//                 index slightly ahead of the logical clock, fetches each
//                 chunk from the CRAS shared buffer (crs_get), fragments it
//                 into packets, and transmits them;
//   NpsReceiver — the client-host endpoint that reassembles chunks into a
//                 local time-driven buffer, from which a remote player
//                 consumes by logical time exactly as a local one would.

#ifndef SRC_NET_NPS_H_
#define SRC_NET_NPS_H_

#include <cstdint>
#include <optional>

#include "src/base/time_units.h"
#include "src/core/cras.h"
#include "src/core/time_driven_buffer.h"
#include "src/net/link.h"
#include "src/rtmach/kernel.h"
#include "src/sim/task.h"

namespace crnet {

struct NpsReceiverStats {
  std::int64_t chunks_received = 0;
  std::int64_t bytes_received = 0;
  crbase::Duration max_network_latency = 0;  // chunk send start -> reassembled
};

// Client-side endpoint: reassembled chunks land in a time-driven buffer.
class NpsReceiver {
 public:
  struct Options {
    std::int64_t buffer_bytes = 1 << 20;
    crbase::Duration jitter_allowance = crbase::Milliseconds(100);
  };

  NpsReceiver(crrt::Kernel& kernel, const Options& options);
  explicit NpsReceiver(crrt::Kernel& kernel);
  NpsReceiver(const NpsReceiver&) = delete;
  NpsReceiver& operator=(const NpsReceiver&) = delete;

  // Invoked (by the sender's final fragment) when a chunk has fully
  // arrived.
  void Deliver(const cras::BufferedChunk& chunk, crbase::Time sent_at);

  // The remote application's crs_get equivalent.
  std::optional<cras::BufferedChunk> Get(crbase::Time t);

  cras::LogicalClock& clock() { return clock_; }
  const NpsReceiverStats& stats() const { return stats_; }
  const cras::TimeDrivenBufferStats& buffer_stats() const { return buffer_.stats(); }

 private:
  crrt::Kernel* kernel_;
  cras::TimeDrivenBuffer buffer_;
  cras::LogicalClock clock_;
  NpsReceiverStats stats_;
};

struct NpsSenderStats {
  std::int64_t chunks_sent = 0;
  std::int64_t chunks_skipped = 0;  // never appeared in the shared buffer
  std::int64_t packets_sent = 0;
  std::int64_t bytes_sent = 0;
};

// Server-side transmitter for one stream session.
class NpsSender {
 public:
  struct Options {
    // How far ahead of the session's logical clock chunks are shipped;
    // hides the network serialization + propagation latency.
    crbase::Duration lookahead = crbase::Milliseconds(250);
    crbase::Duration poll = crbase::Milliseconds(5);
    std::int64_t max_packet_bytes = 8 * 1024;  // fragmentation threshold
    crbase::Duration cpu_per_chunk = crbase::Microseconds(150);
    int priority = crrt::kPriorityServer - 1;  // below CRAS, above clients
  };

  NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link, NpsReceiver& receiver,
            const Options& options);
  NpsSender(crrt::Kernel& kernel, cras::CrasServer& server, Link& link, NpsReceiver& receiver);
  NpsSender(const NpsSender&) = delete;
  NpsSender& operator=(const NpsSender&) = delete;

  // Spawns the transmitter thread for `session`, walking `index` to its
  // end. The returned task may be awaited or dropped.
  crsim::Task Start(cras::SessionId session, const crmedia::ChunkIndex* index);

  const NpsSenderStats& stats() const { return stats_; }

 private:
  crsim::Task SenderThread(crrt::ThreadContext& ctx, cras::SessionId session,
                           const crmedia::ChunkIndex* index);

  crrt::Kernel* kernel_;
  cras::CrasServer* server_;
  Link* link_;
  NpsReceiver* receiver_;
  Options options_;
  NpsSenderStats stats_;
};

}  // namespace crnet

#endif  // SRC_NET_NPS_H_
