#include "src/net/stats_query.h"

#include <memory>
#include <sstream>
#include <utility>

namespace crnet {

namespace {
// Baselines retained for delta queries. Small and bounded: a client that
// falls more than this many polls behind simply re-anchors on a full
// snapshot.
constexpr std::size_t kMaxBaselines = 8;
}  // namespace

StatsQueryService::StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link,
                                     const Options& options)
    : kernel_(&kernel), hub_(&hub), link_(link), options_(options), port_(kernel.engine()) {}

StatsQueryService::StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link)
    : StatsQueryService(kernel, hub, link, Options{}) {}

StatsQueryService::~StatsQueryService() {
  // Queries still queued hold their clients' parked chains; draining them
  // lets each message's ParkedHandle reclaim its client.
  QueryMsg msg;
  while (port_.TryReceive(&msg)) {
  }
}

void StatsQueryService::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  thread_ = kernel_->Spawn("stats-query", options_.priority,
                           [this](crrt::ThreadContext& ctx) { return ServiceThread(ctx); });
}

std::string StatsQueryService::RenderDelta(std::uint64_t since) {
  const crbase::Time now = kernel_->Now();
  crobs::RegistrySnapshot current = hub_->metrics().Snapshot();

  const Baseline* base = nullptr;
  for (const Baseline& b : baselines_) {
    if (b.cursor == since) {
      base = &b;
      break;
    }
  }

  std::ostringstream out;
  out << "{\"sim_time_ns\": " << now << ", \"cursor\": " << next_cursor_
      << ", \"since\": " << since << ", \"window_ns\": "
      << (base != nullptr ? now - base->at : now) << ", \"baseline_missing\": "
      << (base == nullptr ? "true" : "false") << ", \"metrics\": ";
  if (base != nullptr) {
    crobs::DeltaSnapshot(base->snapshot, current).WriteJson(out);
  } else {
    current.WriteJson(out);
  }
  out << "}";

  Baseline next;
  next.cursor = next_cursor_++;
  next.at = now;
  next.snapshot = std::move(current);
  baselines_.push_back(std::move(next));
  while (baselines_.size() > kMaxBaselines) {
    baselines_.pop_front();
  }
  return std::move(out).str();
}

crsim::Task StatsQueryService::ServiceThread(crrt::ThreadContext& ctx) {
  for (;;) {
    QueryMsg msg = co_await port_.Receive();
    co_await ctx.Compute(options_.cpu_per_query);
    std::string json;
    if (msg.dump) {
      json = hub_->FlightDumpJson(msg.reason);
    } else if (msg.slo) {
      json = hub_->slo().StateJson();
    } else if (msg.delta) {
      json = RenderDelta(msg.since);
    } else {
      json = hub_->MetricsJson(msg.prefix);
    }
    ++stats_.queries;
    stats_.reply_bytes += static_cast<std::int64_t>(json.size());
    if (link_ == nullptr) {
      msg.Complete(std::move(json));
      continue;
    }
    // The reply is real traffic: it serializes onto the wire behind any
    // stream packets already queued. One logical packet — fragmentation
    // would not change the arrival time of the final byte on a FIFO link.
    auto reply = std::make_shared<QueryMsg>(std::move(msg));
    auto payload = std::make_shared<std::string>(std::move(json));
    const std::int64_t bytes = static_cast<std::int64_t>(payload->size());
    const bool sent = link_->Send(bytes, [reply, payload] {
      reply->Complete(std::move(*payload));
    });
    if (!sent) {
      // Transmit queue full: fail the query with an empty reply rather than
      // leaving the client parked forever.
      reply->Complete(std::string());
    }
  }
}

}  // namespace crnet
