#include "src/net/stats_query.h"

#include <memory>

namespace crnet {

StatsQueryService::StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link,
                                     const Options& options)
    : kernel_(&kernel), hub_(&hub), link_(link), options_(options), port_(kernel.engine()) {}

StatsQueryService::StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link)
    : StatsQueryService(kernel, hub, link, Options{}) {}

StatsQueryService::~StatsQueryService() {
  // Queries still queued hold their clients' parked chains; draining them
  // lets each message's ParkedHandle reclaim its client.
  QueryMsg msg;
  while (port_.TryReceive(&msg)) {
  }
}

void StatsQueryService::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  thread_ = kernel_->Spawn("stats-query", options_.priority,
                           [this](crrt::ThreadContext& ctx) { return ServiceThread(ctx); });
}

crsim::Task StatsQueryService::ServiceThread(crrt::ThreadContext& ctx) {
  for (;;) {
    QueryMsg msg = co_await port_.Receive();
    co_await ctx.Compute(options_.cpu_per_query);
    std::string json =
        msg.dump ? hub_->FlightDumpJson(msg.reason) : hub_->MetricsJson(msg.prefix);
    ++stats_.queries;
    stats_.reply_bytes += static_cast<std::int64_t>(json.size());
    if (link_ == nullptr) {
      msg.Complete(std::move(json));
      continue;
    }
    // The reply is real traffic: it serializes onto the wire behind any
    // stream packets already queued. One logical packet — fragmentation
    // would not change the arrival time of the final byte on a FIFO link.
    auto reply = std::make_shared<QueryMsg>(std::move(msg));
    auto payload = std::make_shared<std::string>(std::move(json));
    const std::int64_t bytes = static_cast<std::int64_t>(payload->size());
    const bool sent = link_->Send(bytes, [reply, payload] {
      reply->Complete(std::move(*payload));
    });
    if (!sent) {
      // Transmit queue full: fail the query with an empty reply rather than
      // leaving the client parked forever.
      reply->Complete(std::string());
    }
  }
}

}  // namespace crnet
