// StatsQuery — remote observability over the NPS transport layer.
//
// The paper's qtserver host is headless: the operator watches it from the
// client host. This service gives that client a way to pull the server's
// whole metrics registry over the wire: a StatsQuery message lands on the
// service's port, a server-host thread renders the hub's snapshot to JSON
// ({"sim_time_ns": ..., "metrics": {...}}), and the reply ships back across
// the Link at link bandwidth (a stat dump is itself network traffic — on a
// 10 Mb/s segment a verbose snapshot visibly delays the next one).
//
// Usage, from any simulated thread:
//
//   crnet::StatsQueryService stats(kernel, hub, &link);
//   stats.Start();
//   std::string json = co_await stats.Query();

#ifndef SRC_NET_STATS_QUERY_H_
#define SRC_NET_STATS_QUERY_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/base/time_units.h"
#include "src/net/link.h"
#include "src/obs/obs.h"
#include "src/rtmach/kernel.h"
#include "src/sim/port.h"
#include "src/sim/task.h"

namespace crnet {

struct StatsQueryStats {
  std::int64_t queries = 0;
  std::int64_t reply_bytes = 0;
};

class StatsQueryService {
 public:
  struct Options {
    // CPU charged for rendering one snapshot (walking the registry and
    // serializing; cheap but not free on the paper's 100 MHz Pentium).
    crbase::Duration cpu_per_query = crbase::Microseconds(500);
    // Below CRAS and NPS senders: a stat dump must never delay stream I/O.
    int priority = crrt::kPriorityServer - 2;
  };

  // `link` may be null: replies then resolve without network delay (a
  // same-host query through shared memory).
  StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link,
                    const Options& options);
  StatsQueryService(crrt::Kernel& kernel, const crobs::Hub& hub, Link* link);
  StatsQueryService(const StatsQueryService&) = delete;
  StatsQueryService& operator=(const StatsQueryService&) = delete;
  // Reclaims client frames whose queries were still queued unprocessed.
  ~StatsQueryService();

  // Spawns the service thread (idempotent).
  void Start();

  // Client-side blocking query:
  // `std::string json = co_await service.Query();`
  // A non-empty `prefix` restricts the snapshot to metric families whose
  // name starts with it (see crobs::Hub::MetricsJson) — an operator
  // watching a degraded array polls just "cras." or "fault." instead of
  // shipping the whole registry across the link every time.
  auto Query(std::string prefix = {}) {
    QueryMsg msg;
    msg.prefix = std::move(prefix);
    return QueryAwaiter{this, std::move(msg), {}};
  }

  // Windowed-delta snapshot. The reply's "metrics" covers only activity
  // since the baseline identified by `since` (the "cursor" of a previous
  // delta reply): counters and histogram counts are subtracted, gauges keep
  // their current value. `since` == 0 — or a cursor the service has already
  // evicted (it keeps the most recent few baselines) — yields a full
  // snapshot flagged "baseline_missing": true, and the client re-anchors on
  // the returned cursor. An operator polling a 10 Mb/s link ships only the
  // last window's activity instead of lifetime totals every time.
  auto DeltaQuery(std::uint64_t since = 0) {
    QueryMsg msg;
    msg.delta = true;
    msg.since = since;
    return QueryAwaiter{this, std::move(msg), {}};
  }

  // SLO watchdog state: rolling-window burn rates per session and
  // fleet-wide, rendered by crobs::SloMonitor::StateJson.
  auto SloQuery() {
    QueryMsg msg;
    msg.slo = true;
    return QueryAwaiter{this, std::move(msg), {}};
  }

  // Remote flight-recorder dump: the reply is the hub's full dump document
  // (event window + budget-ledger tail + metrics snapshot) rendered at the
  // moment the service thread handles the query — the post-mortem pull an
  // operator makes after noticing an anomaly from the client host.
  auto DumpQuery(std::string reason = "query") {
    QueryMsg msg;
    msg.dump = true;
    msg.reason = std::move(reason);
    return QueryAwaiter{this, std::move(msg), {}};
  }

  const StatsQueryStats& stats() const { return stats_; }

 private:
  struct QueryMsg {
    std::string prefix;  // metric-family name filter; empty = everything
    bool dump = false;   // flight-recorder dump instead of a metrics snapshot
    bool delta = false;  // windowed-delta snapshot against `since`
    bool slo = false;    // SLO monitor state instead of a metrics snapshot
    std::uint64_t since = 0;  // baseline cursor (delta queries only)
    std::string reason;  // recorded in the dump header (dump queries only)
    std::function<void(std::string)> done;
    // Client frame suspended until `done` fires. Owning: dropping the
    // message destroys the client's chain with it.
    crsim::ParkedHandle parked;

    void Complete(std::string json) {
      parked.release();
      done(std::move(json));
    }
  };

  struct QueryAwaiter {
    StatsQueryService* service;
    QueryMsg msg;
    std::string result;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      msg.done = [this, h](std::string json) {
        result = std::move(json);
        h.resume();
      };
      msg.parked = crsim::ParkedHandle(h);
      service->port_.Send(std::move(msg));
    }
    std::string await_resume() { return std::move(result); }
  };

  // A retained full snapshot a later delta query subtracts against.
  struct Baseline {
    std::uint64_t cursor = 0;
    crbase::Time at = 0;
    crobs::RegistrySnapshot snapshot;
  };

  crsim::Task ServiceThread(crrt::ThreadContext& ctx);
  // Renders one delta reply and retires `since`'s baseline for the new one.
  std::string RenderDelta(std::uint64_t since);

  crrt::Kernel* kernel_;
  const crobs::Hub* hub_;
  Link* link_;
  Options options_;
  crsim::Port<QueryMsg> port_;
  StatsQueryStats stats_;
  crsim::Task thread_;
  bool started_ = false;
  std::deque<Baseline> baselines_;  // most recent kMaxBaselines, cursor-ordered
  std::uint64_t next_cursor_ = 1;   // 0 is reserved for "no baseline"
};

}  // namespace crnet

#endif  // SRC_NET_STATS_QUERY_H_
