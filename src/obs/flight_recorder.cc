#include "src/obs/flight_recorder.h"

#include <sstream>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/ledger.h"
#include "src/obs/obs.h"

namespace crobs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kDeadlineMiss:
      return "deadline_miss";
    case FlightEventKind::kAdmissionAccept:
      return "admission_accept";
    case FlightEventKind::kAdmissionReject:
      return "admission_reject";
    case FlightEventKind::kMemberChange:
      return "member_change";
    case FlightEventKind::kStreamShed:
      return "stream_shed";
    case FlightEventKind::kLeaseReap:
      return "lease_reap";
    case FlightEventKind::kNakGiveUp:
      return "nak_give_up";
    case FlightEventKind::kFaultInjected:
      return "fault_injected";
    case FlightEventKind::kCachePairFormed:
      return "cache_pair_formed";
    case FlightEventKind::kCachePairBroken:
      return "cache_pair_broken";
    case FlightEventKind::kCacheFallback:
      return "cache_fallback";
    case FlightEventKind::kGroupFormed:
      return "group_formed";
    case FlightEventKind::kGroupJoined:
      return "group_joined";
    case FlightEventKind::kGroupLeft:
      return "group_left";
    case FlightEventKind::kRepairSent:
      return "repair_sent";
    case FlightEventKind::kRepairDecodeFailed:
      return "repair_decode_failed";
    case FlightEventKind::kResettled:
      return "resettled";
    case FlightEventKind::kSloBurn:
      return "slo_burn";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const crsim::Engine& engine, const Hub* hub,
                               const Options& options)
    : engine_(&engine), hub_(hub), options_(options) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  for (const FlightEventKind kind : options_.triggers) {
    trigger_mask_ |= 1u << static_cast<unsigned>(kind);
  }
}

void FlightRecorder::Record(FlightEventKind kind, std::int64_t a, std::int64_t b,
                            double value, std::string detail) {
  events_.push_back(FlightEvent{engine_->Now(), kind, a, b, value, std::move(detail)});
  ++recorded_;
  if (events_.size() > options_.capacity) {
    events_.pop_front();
    ++dropped_;
  }
  if ((trigger_mask_ & (1u << static_cast<unsigned>(kind))) != 0) {
    Trigger(std::string("auto:") + FlightEventKindName(kind));
  }
}

void FlightRecorder::WriteDump(std::ostream& out, std::string_view reason) const {
  const crbase::Time now = engine_->Now();
  const crbase::Time cutoff = now >= options_.window ? now - options_.window : 0;
  out << "{\"reason\": ";
  WriteJsonString(out, reason);
  out << ", \"sim_time_ns\": " << now << ", \"window_ns\": " << options_.window
      << ", \"events_recorded\": " << recorded_ << ", \"events_dropped\": " << dropped_
      << ",\n \"events\": [";
  bool first = true;
  for (const FlightEvent& event : events_) {
    if (event.ts < cutoff) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  {\"ts_ns\": " << event.ts << ", \"kind\": ";
    WriteJsonString(out, FlightEventKindName(event.kind));
    out << ", \"a\": " << event.a << ", \"b\": " << event.b << ", \"value\": ";
    WriteJsonNumber(out, event.value);
    out << ", \"detail\": ";
    WriteJsonString(out, event.detail);
    out << "}";
  }
  out << "\n ],\n \"ledger_tail\": ";
  if (hub_ != nullptr && hub_->ledger() != nullptr) {
    hub_->ledger()->WriteJsonTail(out, 16);
  } else {
    out << "[]";
  }
  out << ",\n \"metrics\": ";
  if (hub_ != nullptr) {
    hub_->WriteMetricsJson(out);
  } else {
    out << "{}";
  }
  out << "}\n";
}

std::string FlightRecorder::RenderDump(std::string_view reason) const {
  std::ostringstream out;
  WriteDump(out, reason);
  return out.str();
}

void FlightRecorder::Trigger(const std::string& reason) {
  ++triggers_fired_;
  dumps_.push_back(RenderDump(reason));
  while (dumps_.size() > options_.max_dumps) {
    dumps_.pop_front();
  }
}

}  // namespace crobs
