// Flight recorder: the server's black box.
//
// Every layer feeds structured, simulation-stamped events — deadline misses,
// admission verdicts, member-state changes, stream sheds, lease reaps, NAK
// give-ups, injected faults — into one bounded ring. A *dump* freezes the
// last N seconds of that ring together with a full metrics snapshot and the
// budget-ledger tail into a single JSON document, so an anomaly that
// happened mid-run can be explained after the fact: what the server decided,
// in what order, and what every per-term disk budget looked like around the
// moment things went wrong.
//
// Dumps happen two ways: on demand (RenderDump — a pure read, usable from a
// const Hub, which is how crnet::StatsQueryService serves a remote
// DumpQuery), and automatically (Options::triggers lists event kinds that
// freeze a dump the instant one is recorded; the newest max_dumps are
// retained for benches to write to disk). Recording is a deque push; the
// ring drops its oldest event past `capacity`, and the dump header carries
// the drop count so a truncated window is detectable.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crobs {

class Hub;

enum class FlightEventKind : std::uint8_t {
  kDeadlineMiss,      // a: session, b: interval slot, value: overrun ms
  kAdmissionAccept,   // a: stream count, value: worst interval-I/O ms
  kAdmissionReject,   // a: stream count, value: worst interval-I/O ms
  kMemberChange,      // a: disk, detail: new state name
  kStreamShed,        // a: session
  kLeaseReap,         // a: session, value: lease age ms
  kNakGiveUp,         // a: sequence number, b: NAKs sent, detail: end
  kFaultInjected,     // a: disk (or 0 for a link), detail: fault kind
  kCachePairFormed,   // a: follower session, b: predecessor, value: reserved bytes
  kCachePairBroken,   // a: follower session, b: predecessor, detail: reason
  kCacheFallback,     // a: session, b: chunks the cache could not serve
  kGroupFormed,       // a: delivery group, b: feed session
  kGroupJoined,       // a: member session, b: group, value: merge chunk
  kGroupLeft,         // a: member session, b: group, detail: reason
  kRepairSent,        // a: group, b: window fragments, value: repair bytes
  kRepairDecodeFailed,  // a: sequence number, b: missing fragments in window
  // Admission re-settled after a disturbance (member change, cache
  // fallback, group demote): the open set passes the current model again.
  // The gap from a kFaultInjected to the next kResettled is the fault's
  // recovery latency.
  kResettled,         // a: streams kept, b: streams shed by this settle
  // An SLO budget is burning faster than allowed: a: session (-1 = fleet),
  // b: dominant StageBucket, value: burn rate, detail: dominant stage name.
  kSloBurn,
};

const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  crbase::Time ts = 0;
  FlightEventKind kind = FlightEventKind::kDeadlineMiss;
  std::int64_t a = 0;  // primary id (see the kind's comment)
  std::int64_t b = 0;  // secondary id
  double value = 0;    // magnitude in the kind's unit
  std::string detail;  // short label; empty when the ids say it all
};

class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 4096;  // events retained; oldest dropped first
    // A dump serializes the events with ts >= now - window.
    crbase::Duration window = crbase::Seconds(10);
    // Frozen dumps retained by Trigger(); oldest evicted past this bound.
    std::size_t max_dumps = 4;
    // Event kinds that freeze a dump the moment one is recorded (opt-in;
    // empty means dumps happen only on demand).
    std::vector<FlightEventKind> triggers;
  };

  FlightRecorder(const crsim::Engine& engine, const Hub* hub, const Options& options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightEventKind kind, std::int64_t a = 0, std::int64_t b = 0,
              double value = 0, std::string detail = {});

  // Renders the dump document at the current instant: the in-window event
  // tail, the hub's budget-ledger tail (when one is registered), and the
  // full metrics snapshot. Pure read — safe on a const hub.
  std::string RenderDump(std::string_view reason) const;
  void WriteDump(std::ostream& out, std::string_view reason) const;

  // Renders and retains a dump (the "freeze" action of a trigger hook).
  void Trigger(const std::string& reason);

  std::size_t size() const { return events_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t triggers_fired() const { return triggers_fired_; }
  const std::deque<FlightEvent>& events() const { return events_; }
  const std::deque<std::string>& dumps() const { return dumps_; }

 private:
  const crsim::Engine* engine_;
  const Hub* hub_;
  Options options_;
  std::uint32_t trigger_mask_ = 0;  // bit per FlightEventKind
  std::deque<FlightEvent> events_;
  std::deque<std::string> dumps_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t triggers_fired_ = 0;
};

}  // namespace crobs

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
