#include "src/obs/frame_trace.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace crobs {

const char* FrameStageName(FrameStage stage) {
  switch (stage) {
    case FrameStage::kScheduled:
      return "scheduled";
    case FrameStage::kDiskStart:
      return "disk_start";
    case FrameStage::kDiskDone:
      return "disk_done";
    case FrameStage::kPublished:
      return "published";
    case FrameStage::kSent:
      return "sent";
    case FrameStage::kArrived:
      return "arrived";
    case FrameStage::kCompleted:
      return "completed";
    case FrameStage::kPlayout:
      return "playout";
  }
  return "unknown";
}

const char* StageBucketName(StageBucket bucket) {
  switch (bucket) {
    case StageBucket::kDiskQueue:
      return "disk_queue";
    case StageBucket::kDiskService:
      return "disk_service";
    case StageBucket::kBufferWait:
      return "buffer_wait";
    case StageBucket::kWire:
      return "wire";
    case StageBucket::kRepair:
      return "repair";
    case StageBucket::kPlayoutSlack:
      return "playout_slack";
  }
  return "unknown";
}

StageBucket BucketOf(FrameStage stage) {
  switch (stage) {
    case FrameStage::kScheduled:  // anchor; never charged as a delta target
    case FrameStage::kDiskStart:
      return StageBucket::kDiskQueue;
    case FrameStage::kDiskDone:
      return StageBucket::kDiskService;
    case FrameStage::kPublished:
    case FrameStage::kSent:
      return StageBucket::kBufferWait;
    case FrameStage::kArrived:
      return StageBucket::kWire;
    case FrameStage::kCompleted:
      return StageBucket::kRepair;
    case FrameStage::kPlayout:
      return StageBucket::kPlayoutSlack;
  }
  return StageBucket::kPlayoutSlack;
}

const char* FramePathName(FramePath path) {
  switch (path) {
    case FramePath::kUnknown:
      return "unknown";
    case FramePath::kDisk:
      return "disk";
    case FramePath::kCache:
      return "cache";
    case FramePath::kMcastFeed:
      return "mcast_feed";
    case FramePath::kMcastMember:
      return "mcast_member";
  }
  return "unknown";
}

FrameDecomposition Decompose(const FrameRecord& record) {
  FrameDecomposition d;
  crbase::Time first = -1;
  crbase::Time prev = -1;
  for (int i = 0; i < kFrameStageCount; ++i) {
    const crbase::Time ts = record.stage[i];
    if (ts < 0) {
      continue;
    }
    if (first < 0) {
      first = ts;  // the earliest stamped stage anchors the decomposition
    } else {
      const crbase::Duration delta = ts - prev;
      d.bucket_ns[static_cast<int>(BucketOf(static_cast<FrameStage>(i)))] += delta;
      if (delta < 0) {
        d.monotone = false;
      }
    }
    prev = ts;
  }
  if (first >= 0) {
    d.end_to_end_ns = prev - first;
  }
  crbase::Duration sum = 0;
  for (const crbase::Duration b : d.bucket_ns) {
    sum += b;
  }
  // Telescoping: sum of stage deltas is exactly last - first. Kept as an
  // explicit field so tests and the chaos auditor can assert it is zero.
  d.unattributed_ns = d.end_to_end_ns - sum;
  return d;
}

double StageAttribution::MeanBucketMs(StageBucket bucket) const {
  const std::int64_t n = frames_resolved();
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(bucket_ns[static_cast<int>(bucket)]) / 1e6 /
         static_cast<double>(n);
}

double StageAttribution::MeanEndToEndMs() const {
  const std::int64_t n = frames_resolved();
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(end_to_end_ns) / 1e6 / static_cast<double>(n);
}

// ---- SessionTrace ----

FrameRecord& SessionTrace::Slot(std::int64_t chunk) {
  FrameRecord& record = ring_[static_cast<std::size_t>(chunk) % ring_.size()];
  if (record.chunk_index != chunk) {
    if (record.chunk_index >= 0 && record.outcome == FrameOutcome::kInFlight) {
      // A live record is being overwritten: the ring is too small for this
      // session's in-flight window. Counted, never silently lost.
      ++totals_.frames_evicted;
      tracer_->NoteEvicted();
    }
    record = FrameRecord{};
    record.chunk_index = chunk;
  }
  return record;
}

void SessionTrace::Stamp(std::int64_t chunk, FrameStage stage) {
  StampAt(chunk, stage, engine_->Now());
}

void SessionTrace::StampAt(std::int64_t chunk, FrameStage stage, crbase::Time at) {
  FrameRecord& record = Slot(chunk);
  crbase::Time& slot = record.stage[static_cast<int>(stage)];
  if (slot < 0) {
    slot = at;
    tracer_->NoteStamp();
  }
}

void SessionTrace::SetPath(std::int64_t chunk, FramePath path) {
  FrameRecord& record = Slot(chunk);
  if (record.path == FramePath::kUnknown) {
    record.path = path;
  }
}

void SessionTrace::Deliver(std::int64_t chunk) {
  FrameRecord& record = Slot(chunk);
  if (record.outcome != FrameOutcome::kInFlight) {
    return;
  }
  crbase::Time& slot = record.stage[static_cast<int>(FrameStage::kPlayout)];
  if (slot < 0) {
    slot = engine_->Now();
    tracer_->NoteStamp();
  }
  Resolve(record, FrameOutcome::kDelivered, FrameStage::kPlayout);
}

void SessionTrace::ResolveDelivered(std::int64_t chunk) {
  Resolve(Slot(chunk), FrameOutcome::kDelivered, FrameStage::kPlayout);
}

void SessionTrace::Miss(std::int64_t chunk, FrameStage at) {
  Resolve(Slot(chunk), FrameOutcome::kMissed, at);
}

void SessionTrace::Resolve(FrameRecord& record, FrameOutcome outcome,
                           FrameStage miss_stage) {
  if (record.outcome != FrameOutcome::kInFlight) {
    return;  // first resolution wins; racing layers are expected
  }
  record.outcome = outcome;
  record.miss_stage = miss_stage;
  const FrameDecomposition d = Decompose(record);
  if (outcome == FrameOutcome::kDelivered) {
    ++totals_.frames_delivered;
  } else {
    ++totals_.frames_missed;
    ++totals_.missed_at[static_cast<int>(miss_stage)];
  }
  totals_.end_to_end_ns += d.end_to_end_ns;
  totals_.unattributed_ns += d.unattributed_ns;
  if (!d.monotone) {
    ++totals_.conservation_violations;
  }
  for (int i = 0; i < kStageBucketCount; ++i) {
    totals_.bucket_ns[i] += d.bucket_ns[i];
  }
  tracer_->OnResolve(*this, record, d);
}

const FrameRecord* SessionTrace::Find(std::int64_t chunk) const {
  if (ring_.empty()) {
    return nullptr;
  }
  const FrameRecord& record = ring_[static_cast<std::size_t>(chunk) % ring_.size()];
  return record.chunk_index == chunk ? &record : nullptr;
}

// ---- FrameTracer ----

FrameTracer::FrameTracer(const crsim::Engine& engine, Hub* hub, const Options& options)
    : engine_(&engine), hub_(hub), options_(options) {
  if (!options_.enabled) {
    return;
  }
  CRAS_CHECK(options_.ring_capacity > 0) << "frame ring capacity must be positive";
  // All names are interned and all instrument pointers cached here, once,
  // so the per-frame record path never touches the registry or the string
  // table (the ROADMAP's batched-lookup treatment).
  Registry& reg = hub_->metrics();
  name_frame_ = hub_->trace().InternName("frame");
  delivered_ = reg.GetCounter("frames.delivered");
  missed_ = reg.GetCounter("frames.missed");
  violations_ = reg.GetCounter("frames.conservation_violations");
  e2e_ms_ = reg.GetHistogram("frames.e2e_ms", {}, LatencyBucketsMs());
  for (int i = 0; i < kStageBucketCount; ++i) {
    bucket_ms_[i] = reg.GetHistogram(
        "frames.stage_ms", {{"stage", StageBucketName(static_cast<StageBucket>(i))}},
        LatencyBucketsMs());
  }
}

SessionTrace* FrameTracer::Register(std::int64_t session_id, std::string_view label) {
  if (!options_.enabled) {
    return nullptr;
  }
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) {
    return it->second.get();
  }
  auto trace = std::unique_ptr<SessionTrace>(new SessionTrace());
  trace->tracer_ = this;
  trace->engine_ = engine_;
  trace->session_id_ = session_id;
  trace->track_ = hub_->trace().InternTrack("frames." + std::string(label));
  trace->ring_.resize(options_.ring_capacity);
  SessionTrace* raw = trace.get();
  sessions_.emplace(session_id, std::move(trace));
  return raw;
}

SessionTrace* FrameTracer::Find(std::int64_t session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<const SessionTrace*> FrameTracer::Sessions() const {
  std::vector<const SessionTrace*> out;
  out.reserve(sessions_.size());
  for (const auto& [id, trace] : sessions_) {
    out.push_back(trace.get());
  }
  std::sort(out.begin(), out.end(), [](const SessionTrace* a, const SessionTrace* b) {
    return a->session_id() < b->session_id();
  });
  return out;
}

void FrameTracer::OnResolve(const SessionTrace& session, const FrameRecord& record,
                            const FrameDecomposition& d) {
  if (record.outcome == FrameOutcome::kDelivered) {
    ++totals_.frames_delivered;
    delivered_->Add();
  } else {
    ++totals_.frames_missed;
    ++totals_.missed_at[static_cast<int>(record.miss_stage)];
    missed_->Add();
  }
  totals_.end_to_end_ns += d.end_to_end_ns;
  totals_.unattributed_ns += d.unattributed_ns;
  if (!d.monotone) {
    ++totals_.conservation_violations;
    violations_->Add();
  }
  e2e_ms_->Record(static_cast<double>(d.end_to_end_ns) / 1e6);
  for (int i = 0; i < kStageBucketCount; ++i) {
    totals_.bucket_ns[i] += d.bucket_ns[i];
    if (d.bucket_ns[i] != 0) {
      bucket_ms_[i]->Record(static_cast<double>(d.bucket_ns[i]) / 1e6);
    }
  }
  // One trace span per resolved frame, on the session's pre-interned track:
  // the frame's whole life as a Perfetto-visible "X" event.
  crbase::Time first = -1;
  for (int i = 0; i < kFrameStageCount; ++i) {
    if (record.stage[i] >= 0) {
      first = record.stage[i];
      break;
    }
  }
  if (first >= 0) {
    hub_->trace().Complete(session.track_, name_frame_, first, d.end_to_end_ns);
  }
  if (hub_->slo().enabled()) {
    hub_->slo().OnFrameResolved(session.session_id(),
                                record.outcome == FrameOutcome::kMissed,
                                static_cast<double>(d.end_to_end_ns) / 1e6, d.bucket_ns);
  }
}

void FrameTracer::WriteJson(std::ostream& out) const {
  const StageAttribution& t = totals_;
  out << "{\"enabled\": " << (options_.enabled ? "true" : "false")
      << ", \"frames_delivered\": " << t.frames_delivered
      << ", \"frames_missed\": " << t.frames_missed
      << ", \"frames_evicted\": " << t.frames_evicted
      << ", \"conservation_violations\": " << t.conservation_violations
      << ", \"unattributed_ns\": " << t.unattributed_ns
      << ", \"stamps\": " << stamps_
      << ", \"mean_e2e_ms\": " << t.MeanEndToEndMs() << ", \"buckets\": {";
  for (int i = 0; i < kStageBucketCount; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << "\"" << StageBucketName(static_cast<StageBucket>(i))
        << "\": {\"total_ns\": " << t.bucket_ns[i]
        << ", \"mean_ms\": " << t.MeanBucketMs(static_cast<StageBucket>(i)) << "}";
  }
  out << "}, \"missed_at\": {";
  bool wrote = false;
  for (int i = 0; i < kFrameStageCount; ++i) {
    if (t.missed_at[i] == 0) {
      continue;
    }
    if (wrote) {
      out << ", ";
    }
    out << "\"" << FrameStageName(static_cast<FrameStage>(i))
        << "\": " << t.missed_at[i];
    wrote = true;
  }
  out << "}}";
}

}  // namespace crobs
