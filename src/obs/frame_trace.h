// End-to-end frame tracing with latency attribution.
//
// The budget ledger (§5.10) audits where an *interval's* time goes on the
// disk side; once a frame leaves the disk — through the shared buffer, the
// cache, a multicast group, NPS fragmentation and repair — causality is
// lost and a missed frame has half a dozen possible owners. FrameTracer
// closes that gap Dapper-style: each logical frame (session id, chunk
// index) is stamped with per-stage timestamps in a bounded per-session
// ring, and every delivered or missed frame decomposes into stage
// latencies (disk-queue, disk-service, buffer-wait, wire, repair,
// playout-slack) that sum *exactly* to the observed end-to-end time — the
// attribution-conservation property, enforced in tests and audited by
// crchaos::AuditRun.
//
// The record path gets the interned treatment: a layer calls
// FrameTracer::Register once per session and keeps the returned
// SessionTrace* (nullptr when tracing is disabled), so each stamp is one
// pointer test plus ring index arithmetic — no map lookups, no label
// hashing, no allocation.

#ifndef SRC_OBS_FRAME_TRACE_H_
#define SRC_OBS_FRAME_TRACE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crobs {

class Counter;
class FrameTracer;
class Histogram;
class Hub;

// Stages a logical frame passes from the scheduler boundary to a client's
// playout point. Stamped in causal order; a path that skips a layer (cache
// hit: no disk stages; local playout: no wire stages) leaves those stages
// unset and the telescoping decomposition attributes zero time to them.
enum class FrameStage : int {
  kScheduled = 0,  // batch planned at the scheduler boundary
  kDiskStart,      // first member-disk service began for the batch
  kDiskDone,       // whole batch resolved at the io-done manager
  kPublished,      // chunk landed in the server-side shared buffer
  kSent,           // first fragment handed to the wire (NPS or multicast)
  kArrived,        // last fresh (non-retransmit) fragment arrived
  kCompleted,      // reassembly complete in the client-side buffer
  kPlayout,        // the client's crs_get consumed the frame
};
inline constexpr int kFrameStageCount = 8;
const char* FrameStageName(FrameStage stage);

// The six named buckets of the attribution table. Each stamped stage folds
// its delta (own timestamp minus the latest earlier stamped stage) into one
// bucket, so the buckets sum exactly to end-to-end time by construction.
enum class StageBucket : int {
  kDiskQueue = 0,  // scheduled -> disk service start
  kDiskService,    // disk service start -> batch resolved
  kBufferWait,     // resolved/published -> handed to the wire
  kWire,           // wire -> last fresh fragment arrival
  kRepair,         // arrival -> reassembly complete (NAK / XOR repair)
  kPlayoutSlack,   // complete -> consumed by the client
};
inline constexpr int kStageBucketCount = 6;
const char* StageBucketName(StageBucket bucket);
StageBucket BucketOf(FrameStage stage);

// How the frame's data was sourced at the scheduler boundary.
enum class FramePath : int { kUnknown = 0, kDisk, kCache, kMcastFeed, kMcastMember };
const char* FramePathName(FramePath path);

enum class FrameOutcome : int { kInFlight = 0, kDelivered, kMissed };

struct FrameRecord {
  std::int64_t chunk_index = -1;
  // -1 = stage never reached. Indexed by FrameStage.
  crbase::Time stage[kFrameStageCount] = {-1, -1, -1, -1, -1, -1, -1, -1};
  FramePath path = FramePath::kUnknown;
  FrameOutcome outcome = FrameOutcome::kInFlight;
  FrameStage miss_stage = FrameStage::kPlayout;  // meaningful when kMissed
};
static_assert(kFrameStageCount == 8, "keep FrameRecord::stage initializer in sync");

// The telescoping decomposition of one record: every stamped stage's delta
// lands in exactly one bucket, so sum(bucket_ns) == end_to_end_ns always —
// `unattributed_ns` is the conservation residue and must be zero. A stamp
// sequence that runs backwards (a layering bug) shows up as a negative
// bucket; `monotone` flags it.
struct FrameDecomposition {
  crbase::Duration bucket_ns[kStageBucketCount] = {};
  crbase::Duration end_to_end_ns = 0;
  crbase::Duration unattributed_ns = 0;
  bool monotone = true;
};
FrameDecomposition Decompose(const FrameRecord& record);

// Running totals over resolved frames (kept per session and fleet-wide).
struct StageAttribution {
  std::int64_t frames_delivered = 0;
  std::int64_t frames_missed = 0;
  std::int64_t frames_evicted = 0;  // unresolved records overwritten by the ring
  std::int64_t conservation_violations = 0;  // non-monotone stamp sequences
  std::int64_t unattributed_ns = 0;          // summed residue; 0 when conserved
  crbase::Duration end_to_end_ns = 0;
  crbase::Duration bucket_ns[kStageBucketCount] = {};
  std::int64_t missed_at[kFrameStageCount] = {};  // miss counts by miss_stage

  std::int64_t frames_resolved() const { return frames_delivered + frames_missed; }
  double MeanBucketMs(StageBucket bucket) const;
  double MeanEndToEndMs() const;
};

// Per-session bounded ring of frame records. Obtained once from
// FrameTracer::Register and cached by each layer (CRAS session, NPS
// sender/receiver, group transport, player); every method is O(1).
class SessionTrace {
 public:
  // Sets the stage timestamp if the stage has not been stamped yet (so a
  // retransmit cannot move kSent). StampAt backdates — the io-done manager
  // derives kDiskStart from the completion's service time.
  void Stamp(std::int64_t chunk, FrameStage stage);
  void StampAt(std::int64_t chunk, FrameStage stage, crbase::Time at);
  void SetPath(std::int64_t chunk, FramePath path);

  // Resolution — first resolution wins; later calls are no-ops.
  // Deliver stamps kPlayout now; ResolveDelivered keeps the stamps as they
  // are (a feed handing its frame to the multicast fan-out has no playout).
  void Deliver(std::int64_t chunk);
  void ResolveDelivered(std::int64_t chunk);
  void Miss(std::int64_t chunk, FrameStage at);

  std::int64_t session_id() const { return session_id_; }
  const StageAttribution& totals() const { return totals_; }
  // The ring slot for `chunk`, or nullptr if it was never stamped or has
  // been overwritten since.
  const FrameRecord* Find(std::int64_t chunk) const;

 private:
  friend class FrameTracer;
  SessionTrace() = default;

  FrameRecord& Slot(std::int64_t chunk);
  void Resolve(FrameRecord& record, FrameOutcome outcome, FrameStage miss_stage);

  FrameTracer* tracer_ = nullptr;
  const crsim::Engine* engine_ = nullptr;
  std::int64_t session_id_ = -1;
  std::uint32_t track_ = 0;  // interned "frames.<label>" trace track
  std::vector<FrameRecord> ring_;
  StageAttribution totals_;
};

// Fleet-wide frame tracer, owned by the Hub. Disabled (the default) it
// allocates nothing and Register returns nullptr, keeping the record path
// of every layer at one pointer test.
class FrameTracer {
 public:
  struct Options {
    bool enabled = false;
    std::size_t ring_capacity = 512;  // frame records retained per session
  };

  FrameTracer(const crsim::Engine& engine, Hub* hub, const Options& options);
  FrameTracer(const FrameTracer&) = delete;
  FrameTracer& operator=(const FrameTracer&) = delete;

  bool enabled() const { return options_.enabled; }

  // Find-or-create the per-session ring; nullptr when disabled. `label`
  // names the session's trace track ("s3"), interned once here.
  SessionTrace* Register(std::int64_t session_id, std::string_view label);
  SessionTrace* Find(std::int64_t session_id) const;

  const StageAttribution& Totals() const { return totals_; }
  // Total stage stamps taken — the record-path event count benches divide
  // wall time by.
  std::uint64_t stamps() const { return stamps_; }
  std::vector<const SessionTrace*> Sessions() const;  // sorted by session id

  // {"frames_delivered": ..., "buckets": {"wire": {...}, ...}} — the
  // fleet-wide attribution table, served via StatsQueryService.
  void WriteJson(std::ostream& out) const;

 private:
  friend class SessionTrace;
  void OnResolve(const SessionTrace& session, const FrameRecord& record,
                 const FrameDecomposition& decomposition);
  void NoteEvicted() { ++totals_.frames_evicted; }
  void NoteStamp() { ++stamps_; }

  const crsim::Engine* engine_;
  Hub* hub_;
  Options options_;
  std::unordered_map<std::int64_t, std::unique_ptr<SessionTrace>> sessions_;
  StageAttribution totals_;
  std::uint64_t stamps_ = 0;
  // Interned names / cached instrument pointers (populated when enabled).
  std::uint32_t name_frame_ = 0;
  Counter* delivered_ = nullptr;
  Counter* missed_ = nullptr;
  Counter* violations_ = nullptr;
  Histogram* e2e_ms_ = nullptr;
  Histogram* bucket_ms_[kStageBucketCount] = {};
};

}  // namespace crobs

#endif  // SRC_OBS_FRAME_TRACE_H_
