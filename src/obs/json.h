// Minimal JSON emission helpers for the observability layer.
//
// The repo deliberately has no third-party JSON dependency; the snapshot and
// trace serializers only ever *write* JSON, so a string escaper and a
// locale-independent number formatter are all that is needed.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace crobs {

// Writes `s` as a JSON string literal, quotes included.
inline void WriteJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Writes a double as a JSON number. JSON has no NaN/Inf; those degrade to
// null so the document stays parseable.
inline void WriteJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace crobs

#endif  // SRC_OBS_JSON_H_
