#include "src/obs/ledger.h"

#include <algorithm>

#include "src/obs/json.h"

namespace crobs {

namespace {

// One utilization histogram per (disk, term) pair; families are shared, so
// lookups go through the registry each emit (cold path: once per interval).
Histogram* UtilHistogram(Registry* metrics, int disk, const char* term) {
  return metrics->GetHistogram(
      "ledger.util_pct",
      {{"disk", "disk" + std::to_string(disk)}, {"term", term}},
      UtilizationBucketsPct());
}

void RecordUtil(Registry* metrics, int disk, const char* term, double actual_ms,
                double predicted_ms) {
  if (predicted_ms <= 0) {
    return;  // term absent from this interval's budget; nothing to audit
  }
  UtilHistogram(metrics, disk, term)->Record(100.0 * actual_ms / predicted_ms);
}

void WriteTerms(std::ostream& out, const BudgetTerms& terms) {
  out << "{\"command_ms\": ";
  WriteJsonNumber(out, terms.command_ms);
  out << ", \"seek_ms\": ";
  WriteJsonNumber(out, terms.seek_ms);
  out << ", \"rotation_ms\": ";
  WriteJsonNumber(out, terms.rotation_ms);
  out << ", \"transfer_ms\": ";
  WriteJsonNumber(out, terms.transfer_ms);
  out << ", \"other_ms\": ";
  WriteJsonNumber(out, terms.other_ms);
  out << ", \"total_ms\": ";
  WriteJsonNumber(out, terms.total_ms());
  out << "}";
}

}  // namespace

BudgetLedger::BudgetLedger(Registry* metrics) : BudgetLedger(metrics, Options{}) {}

BudgetLedger::BudgetLedger(Registry* metrics, const Options& options)
    : metrics_(metrics), options_(options) {
  if (options_.max_intervals == 0) {
    options_.max_intervals = 1;
  }
  c_intervals_ = metrics_->GetCounter("ledger.intervals");
  c_overruns_ = metrics_->GetCounter("ledger.overruns");
  c_late_ = metrics_->GetCounter("ledger.late_attributions");
}

BudgetLedger::IntervalRow* BudgetLedger::FindRow(std::int64_t slot) {
  // Attribution targets the newest few rows; search from the back.
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->slot == slot) {
      return &*it;
    }
  }
  return nullptr;
}

BudgetLedger::DiskRow* BudgetLedger::FindDisk(IntervalRow& row, int disk, bool create) {
  for (DiskRow& d : row.disks) {
    if (d.disk == disk) {
      return &d;
    }
  }
  if (!create) {
    return nullptr;
  }
  row.disks.push_back(DiskRow{});
  row.disks.back().disk = disk;
  return &row.disks.back();
}

void BudgetLedger::BeginInterval(std::int64_t slot, crbase::Time now) {
  rows_.push_back(IntervalRow{});
  rows_.back().slot = slot;
  rows_.back().began_at = now;
  while (rows_.size() > options_.max_intervals) {
    if (!rows_.front().closed) {
      // Evicted before its completions could be audited; don't let the
      // eviction masquerade as a clean interval.
      ++late_attributions_;
      c_late_->Add();
    }
    rows_.pop_front();
  }
}

void BudgetLedger::SetPrediction(std::int64_t slot, int disk, const BudgetTerms& terms,
                                 std::int64_t requests) {
  IntervalRow* row = FindRow(slot);
  if (row == nullptr || row->closed) {
    ++late_attributions_;
    c_late_->Add();
    return;
  }
  DiskRow* d = FindDisk(*row, disk, /*create=*/true);
  d->predicted = terms;
  d->predicted_requests = requests;
}

void BudgetLedger::AddActual(std::int64_t slot, int disk, const BudgetTerms& terms) {
  IntervalRow* row = FindRow(slot);
  if (row == nullptr || row->closed) {
    ++late_attributions_;
    c_late_->Add();
    return;
  }
  DiskRow* d = FindDisk(*row, disk, /*create=*/true);
  d->actual.command_ms += terms.command_ms;
  d->actual.seek_ms += terms.seek_ms;
  d->actual.rotation_ms += terms.rotation_ms;
  d->actual.transfer_ms += terms.transfer_ms;
  d->actual.other_ms += terms.other_ms;
  ++d->actual_requests;
}

void BudgetLedger::EmitRow(const IntervalRow& row) {
  ++intervals_closed_;
  c_intervals_->Add();
  for (const DiskRow& d : row.disks) {
    RecordUtil(metrics_, d.disk, "command", d.actual.command_ms, d.predicted.command_ms);
    RecordUtil(metrics_, d.disk, "seek", d.actual.seek_ms, d.predicted.seek_ms);
    RecordUtil(metrics_, d.disk, "rotation", d.actual.rotation_ms, d.predicted.rotation_ms);
    RecordUtil(metrics_, d.disk, "transfer", d.actual.transfer_ms, d.predicted.transfer_ms);
    RecordUtil(metrics_, d.disk, "total", d.actual.total_ms(), d.predicted.total_ms());
    if (d.overrun()) {
      ++overruns_;
      c_overruns_->Add();
    }
  }
}

void BudgetLedger::CloseInterval(std::int64_t slot) {
  IntervalRow* row = FindRow(slot);
  if (row == nullptr || row->closed) {
    return;
  }
  row->closed = true;
  EmitRow(*row);
}

void BudgetLedger::CloseAll() {
  for (IntervalRow& row : rows_) {
    if (!row.closed) {
      row.closed = true;
      EmitRow(row);
    }
  }
}

void BudgetLedger::WriteJsonTail(std::ostream& out, std::size_t max_rows) const {
  const std::size_t skip = rows_.size() > max_rows ? rows_.size() - max_rows : 0;
  out << "[";
  bool first = true;
  std::size_t index = 0;
  for (const IntervalRow& row : rows_) {
    if (index++ < skip) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  {\"slot\": " << row.slot << ", \"began_at_ns\": " << row.began_at
        << ", \"closed\": " << (row.closed ? "true" : "false") << ", \"disks\": [";
    bool first_disk = true;
    for (const DiskRow& d : row.disks) {
      if (!first_disk) {
        out << ",";
      }
      first_disk = false;
      out << "\n   {\"disk\": " << d.disk
          << ", \"predicted_requests\": " << d.predicted_requests
          << ", \"actual_requests\": " << d.actual_requests
          << ", \"overrun\": " << (d.overrun() ? "true" : "false")
          << ", \"predicted\": ";
      WriteTerms(out, d.predicted);
      out << ", \"actual\": ";
      WriteTerms(out, d.actual);
      out << "}";
    }
    out << "]}";
  }
  out << "\n ]";
}

}  // namespace crobs
