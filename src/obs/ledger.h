// Budget ledger: the admission-audit side of the deadline autopsy.
//
// The CRAS guarantee rests on a worst-case per-interval disk-time budget
// (formulas (1)-(15)): per member disk, a command term (10), a seek term
// (11)/(12), a rotation term (13), the non-real-time interference allowance
// B_other/D from (9), and the data transfer A_d/D. The ledger records, for
// every scheduler interval, the model's per-term *prediction* per disk at
// issue time and accumulates the measured per-term *actuals* from each
// request's DiskCompletion phase breakdown. Closing an interval emits
// per-term utilization (actual/predicted, percent) histograms keyed
// {disk, term}, so every deadline miss — and every unit of unused slack —
// is attributed to a specific term on a specific disk; a disk-interval
// whose measured total exceeds its predicted total is an *overrun*, the
// event the admission proof says can never happen.
//
// Rows live in a bounded deque (newest kept), serialized by WriteJsonTail
// into flight-recorder dumps. The ledger registers its instruments on the
// owning hub's registry but is owned by the instrumented server, which
// points the hub at it (Hub::SetLedger) and unregisters on destruction.

#ifndef SRC_OBS_LEDGER_H_
#define SRC_OBS_LEDGER_H_

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/obs/metrics.h"

namespace crobs {

// One interval's disk-time budget, split by mechanism (milliseconds).
struct BudgetTerms {
  double command_ms = 0;   // formula (10): N * T_cmd
  double seek_ms = 0;      // formulas (11)/(12) plus O_other's wrap seek
  double rotation_ms = 0;  // formula (13) plus O_other's rotation
  double transfer_ms = 0;  // A_d / D
  double other_ms = 0;     // B_other / D: one maximal NR request in flight
  double total_ms() const {
    return command_ms + seek_ms + rotation_ms + transfer_ms + other_ms;
  }
};

// Percent bins for utilization (actual/predicted) histograms; the overflow
// bucket past 150% would mean a badly broken budget.
inline std::vector<double> UtilizationBucketsPct() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 125, 150};
}

class BudgetLedger {
 public:
  struct Options {
    std::size_t max_intervals = 256;  // rows retained; oldest dropped first
  };

  struct DiskRow {
    int disk = -1;
    std::int64_t predicted_requests = 0;
    std::int64_t actual_requests = 0;  // completions attributed so far
    BudgetTerms predicted;
    BudgetTerms actual;
    bool overrun() const { return actual.total_ms() > predicted.total_ms(); }
  };

  struct IntervalRow {
    std::int64_t slot = -1;  // scheduler interval index
    crbase::Time began_at = 0;
    bool closed = false;
    std::vector<DiskRow> disks;
  };

  explicit BudgetLedger(Registry* metrics);
  BudgetLedger(Registry* metrics, const Options& options);

  // Scheduler side: open a row at the interval boundary, then declare the
  // model's worst case per member disk for that interval.
  void BeginInterval(std::int64_t slot, crbase::Time now);
  void SetPrediction(std::int64_t slot, int disk, const BudgetTerms& terms,
                     std::int64_t requests);

  // Completion side: fold one request's measured phase times into its
  // interval's row. An attribution for a closed or evicted row is counted
  // (ledger.late_attributions) rather than applied.
  void AddActual(std::int64_t slot, int disk, const BudgetTerms& terms);

  // Closes the row (idempotent; unknown slots are ignored): emits per-term
  // utilization histograms and the interval/overrun counters. The scheduler
  // closes slot S-2 when it opens slot S — S-2's I/O deadline has passed,
  // so its actuals are complete.
  void CloseInterval(std::int64_t slot);
  // Closes every open row (end of a bench run).
  void CloseAll();

  std::int64_t intervals_closed() const { return intervals_closed_; }
  std::int64_t overruns() const { return overruns_; }
  std::int64_t late_attributions() const { return late_attributions_; }
  const std::deque<IntervalRow>& rows() const { return rows_; }

  // JSON array of the newest `max_rows` rows, oldest first — the dump tail.
  void WriteJsonTail(std::ostream& out, std::size_t max_rows) const;

 private:
  IntervalRow* FindRow(std::int64_t slot);
  DiskRow* FindDisk(IntervalRow& row, int disk, bool create);
  void EmitRow(const IntervalRow& row);

  Registry* metrics_;
  Options options_;
  std::deque<IntervalRow> rows_;
  std::int64_t intervals_closed_ = 0;
  std::int64_t overruns_ = 0;
  std::int64_t late_attributions_ = 0;
  Counter* c_intervals_ = nullptr;
  Counter* c_overruns_ = nullptr;
  Counter* c_late_ = nullptr;
};

}  // namespace crobs

#endif  // SRC_OBS_LEDGER_H_
