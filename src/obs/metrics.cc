#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/obs/json.h"

namespace crobs {

namespace {

Labels Normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// "k1=v1,k2=v2" over normalized labels; '=' and ',' inside values are
// escaped so distinct label sets cannot collide.
std::string SeriesKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    for (const std::string* part : {&k, &v}) {
      for (const char c : *part) {
        if (c == '=' || c == ',' || c == '\\') {
          key.push_back('\\');
        }
        key.push_back(c);
      }
      key.push_back(part == &k ? '=' : ',');
    }
  }
  return key;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---- Snapshot ----

double SeriesSnapshot::Percentile(double p) const {
  if (count <= 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  if (buckets.empty()) {
    // Poisoned bounds kept only the summary: interpolate the whole range.
    return min + p / 100.0 * (max - min);
  }
  // The rank is a position in [0, count]; the percentile lies in the first
  // bucket whose cumulative count reaches it.
  const double rank = p / 100.0 * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const std::int64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // A snapshot is not guaranteed to carry upper_bounds.size() + 1
      // buckets: hand-built and delta snapshots may disagree, and a
      // single-bin series has no bounds at all. Any bucket past the bounds
      // is treated as the overflow bin [last bound or min, max].
      const double lower =
          (i == 0 || i > upper_bounds.size()) ? min : upper_bounds[i - 1];
      const double upper = i < upper_bounds.size() ? upper_bounds[i] : max;
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(buckets[i]);
      return std::clamp(lower + frac * (upper - lower), min, max);
    }
    cumulative = next;
  }
  return max;
}

RegistrySnapshot DeltaSnapshot(const RegistrySnapshot& older,
                               const RegistrySnapshot& newer) {
  RegistrySnapshot delta = newer;
  for (FamilySnapshot& family : delta.families) {
    const FamilySnapshot* base_family = nullptr;
    for (const FamilySnapshot& candidate : older.families) {
      if (candidate.name == family.name) {
        base_family = &candidate;
        break;
      }
    }
    if (base_family == nullptr) {
      continue;
    }
    for (SeriesSnapshot& series : family.series) {
      const SeriesSnapshot* base = nullptr;
      for (const SeriesSnapshot& candidate : base_family->series) {
        if (candidate.labels == series.labels) {
          base = &candidate;
          break;
        }
      }
      if (base == nullptr) {
        continue;
      }
      series.counter -= base->counter;
      if (family.kind == MetricKind::kHistogram) {
        const double newer_sum = series.mean * static_cast<double>(series.count);
        const double older_sum = base->mean * static_cast<double>(base->count);
        series.count -= base->count;
        series.mean = series.count > 0
                          ? (newer_sum - older_sum) / static_cast<double>(series.count)
                          : 0.0;
        series.stddev = 0.0;
        for (std::size_t i = 0; i < series.buckets.size() && i < base->buckets.size();
             ++i) {
          series.buckets[i] -= base->buckets[i];
        }
      }
    }
  }
  return delta;
}

const SeriesSnapshot* RegistrySnapshot::Find(std::string_view name, Labels labels) const {
  labels = Normalize(std::move(labels));
  for (const FamilySnapshot& family : families) {
    if (family.name != name) {
      continue;
    }
    for (const SeriesSnapshot& series : family.series) {
      if (series.labels == labels) {
        return &series;
      }
    }
  }
  return nullptr;
}

void RegistrySnapshot::WriteJson(std::ostream& out) const {
  out << "{";
  bool first_family = true;
  for (const FamilySnapshot& family : families) {
    if (!first_family) {
      out << ",";
    }
    first_family = false;
    out << "\n  ";
    WriteJsonString(out, family.name);
    out << ": {\"type\": \"" << MetricKindName(family.kind) << "\", \"series\": [";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) {
        out << ",";
      }
      first_series = false;
      out << "\n    {\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : series.labels) {
        if (!first_label) {
          out << ", ";
        }
        first_label = false;
        WriteJsonString(out, k);
        out << ": ";
        WriteJsonString(out, v);
      }
      out << "}";
      switch (family.kind) {
        case MetricKind::kCounter:
          out << ", \"value\": " << series.counter;
          break;
        case MetricKind::kGauge:
          out << ", \"value\": ";
          WriteJsonNumber(out, series.gauge);
          break;
        case MetricKind::kHistogram: {
          out << ", \"count\": " << series.count;
          out << ", \"min\": ";
          WriteJsonNumber(out, series.min);
          out << ", \"max\": ";
          WriteJsonNumber(out, series.max);
          out << ", \"mean\": ";
          WriteJsonNumber(out, series.mean);
          out << ", \"stddev\": ";
          WriteJsonNumber(out, series.stddev);
          out << ", \"p50\": ";
          WriteJsonNumber(out, series.Percentile(50));
          out << ", \"p95\": ";
          WriteJsonNumber(out, series.Percentile(95));
          out << ", \"p99\": ";
          WriteJsonNumber(out, series.Percentile(99));
          out << ", \"buckets\": [";
          for (std::size_t i = 0; i < series.buckets.size(); ++i) {
            if (i > 0) {
              out << ", ";
            }
            out << "{\"le\": ";
            if (i < series.upper_bounds.size()) {
              WriteJsonNumber(out, series.upper_bounds[i]);
            } else {
              out << "\"inf\"";
            }
            out << ", \"count\": " << series.buckets[i] << "}";
          }
          out << "]";
          break;
        }
      }
      out << "}";
    }
    out << "\n  ]}";
  }
  out << "\n}";
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

// ---- Registry ----

Registry::Series* Registry::GetSeries(const std::string& name, MetricKind kind, Labels labels) {
  labels = Normalize(std::move(labels));
  auto [family_it, inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (inserted) {
    family.kind = kind;
  } else {
    CRAS_CHECK(family.kind == kind)
        << "metric '" << name << "' registered as " << MetricKindName(family.kind)
        << " and again as " << MetricKindName(kind);
  }
  Series& series = family.series[SeriesKey(labels)];
  series.labels = std::move(labels);
  return &series;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels) {
  Series* series = GetSeries(name, MetricKind::kCounter, std::move(labels));
  if (series->counter == nullptr) {
    series->counter = std::make_unique<Counter>();
  }
  return series->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels) {
  Series* series = GetSeries(name, MetricKind::kGauge, std::move(labels));
  if (series->gauge == nullptr) {
    series->gauge = std::make_unique<Gauge>();
  }
  return series->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels,
                                  std::vector<double> upper_bounds) {
  Series* series = GetSeries(name, MetricKind::kHistogram, std::move(labels));
  if (series->histogram == nullptr) {
    series->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return series->histogram.get();
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snapshot;
  snapshot.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.kind = family.kind;
    fs.series.reserve(family.series.size());
    for (const auto& [key, series] : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.counter = series.counter != nullptr ? series.counter->value() : 0;
          break;
        case MetricKind::kGauge:
          ss.gauge = series.gauge != nullptr ? series.gauge->value() : 0;
          break;
        case MetricKind::kHistogram:
          if (series.histogram != nullptr) {
            const crstats::Histogram& h = series.histogram->data();
            ss.count = h.summary().count();
            ss.min = h.summary().min();
            ss.max = h.summary().max();
            ss.mean = h.summary().mean();
            ss.stddev = h.summary().stddev();
            ss.upper_bounds = h.upper_bounds();
            ss.buckets = h.counts();
          }
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.families.push_back(std::move(fs));
  }
  return snapshot;
}

}  // namespace crobs
