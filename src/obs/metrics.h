// Metrics registry: named, label-keyed counters, gauges, and fixed-bin
// histograms with cheap inline recording.
//
// Instruments are looked up once (registration walks a map) and then held by
// pointer at the recording site, so the hot path is a single add/store —
// cheap enough for per-request simulator paths. Registration of the same
// (name, labels) pair returns the same instrument, so independent components
// may share a series. Snapshot() renders the whole registry into a
// deterministic tree (families and series in lexicographic order), which the
// JSON serializer and the snapshot-determinism tests rely on.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/stats/summary.h"

namespace crobs {

// Label set attached to one series of a metric family, e.g.
// {{"disk", "disk0"}, {"queue", "rt"}}. Order does not matter; the registry
// normalizes by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// Monotonically non-decreasing count.
class Counter {
 public:
  void Add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Last-written value (with convenience accumulate/max forms).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  void SetMax(double v) {
    if (v > value_) {
      value_ = v;
    }
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-bin histogram (crstats::Histogram) behind the registry interface.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds) : data_(std::move(upper_bounds)) {}
  void Record(double x) { data_.Add(x); }
  std::int64_t count() const { return data_.summary().count(); }
  const crstats::Histogram& data() const { return data_; }

 private:
  crstats::Histogram data_;
};

// ---- Snapshot tree ----

struct SeriesSnapshot {
  Labels labels;  // normalized (sorted by key)
  // Exactly one of the following is meaningful, per the family's kind.
  std::int64_t counter = 0;
  double gauge = 0;
  std::int64_t count = 0;  // histogram sample count
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  std::vector<double> upper_bounds;
  std::vector<std::int64_t> buckets;  // one per bound, plus trailing overflow

  // Interpolated percentile (p in [0, 100]) from the fixed bins: linear
  // within the bucket containing the rank, with the recorded min/max as the
  // outer bucket edges and the result clamped to [min, max]. Exact for
  // empty (0) and single-sample (that sample) series; meaningful for
  // histogram series only. Deterministic: a pure function of the snapshot.
  double Percentile(double p) const;
};

struct FamilySnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

struct RegistrySnapshot {
  std::vector<FamilySnapshot> families;  // lexicographic by name

  // Series lookup, or nullptr. `labels` need not be pre-sorted.
  const SeriesSnapshot* Find(std::string_view name, Labels labels = {}) const;

  // {"metric.name": {"type": "counter", "series": [{"labels": {...}, ...}]}}
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;
};

// Windowed delta between two snapshots of the same registry: `newer` minus
// `older`. Counters, histogram sample counts, and histogram buckets
// subtract; histogram mean is recomputed from the subtracted sums (stddev
// is not recoverable from two summaries and reads 0); min/max and gauges
// keep the newer snapshot's values. Families or series absent from `older`
// (registered mid-window) pass through unchanged. This is what
// StatsQueryService's `since`-cursor mode serves, so a remote scraper sees
// per-window activity instead of lifetime totals.
RegistrySnapshot DeltaSnapshot(const RegistrySnapshot& older,
                               const RegistrySnapshot& newer);

// ---- Registry ----

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create. Registering a name under two different kinds is a
  // programming error (checked). Returned pointers stay valid for the
  // registry's lifetime — cache them at the recording site.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels,
                          std::vector<double> upper_bounds);

  std::size_t families() const { return families_.size(); }
  RegistrySnapshot Snapshot() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::map<std::string, Series> series;  // keyed by serialized labels
  };

  Series* GetSeries(const std::string& name, MetricKind kind, Labels labels);

  std::map<std::string, Family> families_;
};

}  // namespace crobs

#endif  // SRC_OBS_METRICS_H_
