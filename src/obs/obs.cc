#include "src/obs/obs.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/base/logging.h"
#include "src/obs/ledger.h"

namespace crobs {

RegistrySnapshot Hub::Snapshot() const {
  RegistrySnapshot snapshot = metrics_.Snapshot();
  // The tracer is not a registry instrument; synthesize its drop count as a
  // counter family, inserted in lexicographic position so the snapshot stays
  // byte-deterministic.
  FamilySnapshot dropped;
  dropped.name = "obs.trace_dropped_events";
  dropped.kind = MetricKind::kCounter;
  dropped.series.emplace_back();
  dropped.series.back().counter = static_cast<std::int64_t>(tracer_.dropped());
  snapshot.families.insert(
      std::lower_bound(snapshot.families.begin(), snapshot.families.end(), dropped.name,
                       [](const FamilySnapshot& f, const std::string& name) {
                         return f.name < name;
                       }),
      std::move(dropped));
  return snapshot;
}

void Hub::WriteMetricsJson(std::ostream& out, std::string_view prefix) const {
  RegistrySnapshot snapshot = Snapshot();
  if (!prefix.empty()) {
    std::erase_if(snapshot.families, [prefix](const FamilySnapshot& family) {
      return std::string_view(family.name).substr(0, prefix.size()) != prefix;
    });
  }
  const StageAttribution& frames = frames_.Totals();
  out << "{\"sim_time_ns\": " << engine_->Now() << ", \"health\": {"
      << "\"trace_recorded\": " << tracer_.recorded()
      << ", \"trace_dropped_events\": " << tracer_.dropped()
      << ", \"flight_recorded\": " << flight_.recorded()
      << ", \"flight_ring_overwrites\": " << flight_.dropped()
      << ", \"flight_triggers\": " << flight_.triggers_fired()
      << ", \"frames_resolved\": " << frames.frames_resolved()
      << ", \"frames_evicted\": " << frames.frames_evicted
      << ", \"frame_conservation_violations\": " << frames.conservation_violations
      << ", \"frame_unattributed_ns\": " << frames.unattributed_ns
      << ", \"slo_burn_events\": " << slo_.burn_events() << "}, \"metrics\": ";
  snapshot.WriteJson(out);
  out << "}\n";
}

std::string Hub::MetricsJson(std::string_view prefix) const {
  std::ostringstream out;
  WriteMetricsJson(out, prefix);
  return out.str();
}

bool Hub::WriteTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CRAS_LOG(kError) << "cannot open trace file " << path;
    return false;
  }
  tracer_.WriteChromeJson(out);
  return out.good();
}

std::string Hub::FlightDumpJson(std::string_view reason) const {
  return flight_.RenderDump(reason);
}

bool Hub::WriteFlightDump(const std::string& path, std::string_view reason) const {
  std::ofstream out(path);
  if (!out) {
    CRAS_LOG(kError) << "cannot open flight dump file " << path;
    return false;
  }
  flight_.WriteDump(out, reason);
  return out.good();
}

}  // namespace crobs
