#include "src/obs/obs.h"

#include <fstream>
#include <sstream>

#include "src/base/logging.h"

namespace crobs {

void Hub::WriteMetricsJson(std::ostream& out) const {
  out << "{\"sim_time_ns\": " << engine_->Now() << ", \"metrics\": ";
  metrics_.Snapshot().WriteJson(out);
  out << "}\n";
}

std::string Hub::MetricsJson() const {
  std::ostringstream out;
  WriteMetricsJson(out);
  return out.str();
}

bool Hub::WriteTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CRAS_LOG(kError) << "cannot open trace file " << path;
    return false;
  }
  tracer_.WriteChromeJson(out);
  return out.good();
}

}  // namespace crobs
