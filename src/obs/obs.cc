#include "src/obs/obs.h"

#include <fstream>
#include <sstream>

#include "src/base/logging.h"

namespace crobs {

void Hub::WriteMetricsJson(std::ostream& out, std::string_view prefix) const {
  RegistrySnapshot snapshot = metrics_.Snapshot();
  if (!prefix.empty()) {
    std::erase_if(snapshot.families, [prefix](const FamilySnapshot& family) {
      return std::string_view(family.name).substr(0, prefix.size()) != prefix;
    });
  }
  out << "{\"sim_time_ns\": " << engine_->Now() << ", \"metrics\": ";
  snapshot.WriteJson(out);
  out << "}\n";
}

std::string Hub::MetricsJson(std::string_view prefix) const {
  std::ostringstream out;
  WriteMetricsJson(out, prefix);
  return out.str();
}

bool Hub::WriteTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CRAS_LOG(kError) << "cannot open trace file " << path;
    return false;
  }
  tracer_.WriteChromeJson(out);
  return out.good();
}

}  // namespace crobs
