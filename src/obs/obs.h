// Observability hub: one Registry + one Tracer per simulation.
//
// Components receive a `crobs::Hub*` (nullable) through their Options and
// register instruments / intern trace tracks at construction. A null hub —
// the default everywhere — means no instrumentation state is even allocated,
// so the uninstrumented path costs one pointer test.

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/time_units.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/frame_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"

namespace crobs {

class BudgetLedger;

// Nanoseconds -> milliseconds, the unit all latency metrics use.
inline double ToMillis(crbase::Duration d) { return static_cast<double>(d) / 1e6; }

// Default fixed bins for latency histograms (milliseconds).
inline std::vector<double> LatencyBucketsMs() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000};
}

class Hub {
 public:
  struct Options {
    Tracer::Options trace;
    FlightRecorder::Options flight;
    FrameTracer::Options frames;
    SloMonitor::Options slo;
  };

  explicit Hub(const crsim::Engine& engine, const Options& options = {})
      : engine_(&engine),
        tracer_(engine, options.trace),
        flight_(engine, this, options.flight),
        slo_(engine, this, options.slo),
        frames_(engine, this, options.frames) {}
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  Tracer& trace() { return tracer_; }
  const Tracer& trace() const { return tracer_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  FrameTracer& frames() { return frames_; }
  const FrameTracer& frames() const { return frames_; }
  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo() const { return slo_; }

  // The budget ledger is owned by the instrumented server (it dies with the
  // admission state it audits); the server points the hub at it so dumps can
  // include the ledger tail, and detaches it again on teardown.
  void SetLedger(BudgetLedger* ledger) { ledger_ = ledger; }
  BudgetLedger* ledger() const { return ledger_; }

  crbase::Time Now() const { return engine_->Now(); }

  // Registry snapshot plus hub-synthesized series (obs.trace_dropped_events,
  // the tracer ring's drop count), kept in lexicographic family order.
  RegistrySnapshot Snapshot() const;

  // {"sim_time_ns": ..., "health": {...}, "metrics": {<registry snapshot>}}
  // The health block carries the observability plane's own loss counters —
  // trace-ring drops, flight-ring overwrites, frame-ring evictions and
  // attribution-conservation violations — so a consumer can tell whether the
  // telemetry it is about to read is itself complete.
  // A non-empty `prefix` restricts the snapshot to metric families whose
  // name starts with it ("cras." — just the server, "volume." — just the
  // array), which keeps remote stat dumps small on a slow link.
  void WriteMetricsJson(std::ostream& out, std::string_view prefix = {}) const;
  std::string MetricsJson(std::string_view prefix = {}) const;

  // Writes the trace ring as Chrome trace_event JSON. Returns false (and
  // logs) if the file cannot be opened.
  bool WriteTraceFile(const std::string& path) const;

  // Flight-recorder dump rendered at the current instant (see
  // FlightRecorder::RenderDump); WriteFlightDump puts it in a file.
  std::string FlightDumpJson(std::string_view reason) const;
  bool WriteFlightDump(const std::string& path, std::string_view reason) const;

 private:
  const crsim::Engine* engine_;
  Registry metrics_;
  Tracer tracer_;
  FlightRecorder flight_;
  SloMonitor slo_;
  FrameTracer frames_;
  BudgetLedger* ledger_ = nullptr;
};

}  // namespace crobs

#endif  // SRC_OBS_OBS_H_
