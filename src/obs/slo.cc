#include "src/obs/slo.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs.h"

namespace crobs {

std::int64_t SloMonitor::Window::Frames() const {
  std::int64_t n = 0;
  for (const Bucket& b : ring) {
    n += b.frames;
  }
  return n;
}

std::int64_t SloMonitor::Window::Misses() const {
  std::int64_t n = 0;
  for (const Bucket& b : ring) {
    n += b.misses;
  }
  return n;
}

std::int64_t SloMonitor::Window::OverLatency() const {
  std::int64_t n = 0;
  for (const Bucket& b : ring) {
    n += b.over_latency;
  }
  return n;
}

StageBucket SloMonitor::Window::Dominant() const {
  double sums[kStageBucketCount] = {};
  for (const Bucket& b : ring) {
    for (int i = 0; i < kStageBucketCount; ++i) {
      sums[i] += b.stage_ms[i];
    }
  }
  int best = 0;
  for (int i = 1; i < kStageBucketCount; ++i) {
    if (sums[i] > sums[best]) {
      best = i;
    }
  }
  return static_cast<StageBucket>(best);
}

SloMonitor::SloMonitor(const crsim::Engine& engine, Hub* hub, const Options& options)
    : engine_(&engine), hub_(hub), options_(options) {
  if (!options_.enabled) {
    return;
  }
  CRAS_CHECK(options_.bucket_width > 0) << "SLO bucket width must be positive";
  CRAS_CHECK(options_.buckets > 0) << "SLO window needs at least one bucket";
  fleet_.ring.resize(static_cast<std::size_t>(options_.buckets));
}

void SloMonitor::OnFrameResolved(std::int64_t session, bool missed, double e2e_ms,
                                 const crbase::Duration bucket_ns[kStageBucketCount]) {
  if (!options_.enabled) {
    return;
  }
  AdvanceTo(engine_->Now());
  Window& per_session = sessions_[session];
  if (per_session.ring.empty()) {
    per_session.ring.resize(static_cast<std::size_t>(options_.buckets));
  }
  const std::size_t slot =
      static_cast<std::size_t>(epoch_ % static_cast<std::int64_t>(options_.buckets));
  for (Window* window : {&fleet_, &per_session}) {
    Bucket& bucket = window->ring[slot];
    ++bucket.frames;
    if (missed) {
      ++bucket.misses;
    }
    if (e2e_ms > options_.latency_target_ms) {
      ++bucket.over_latency;
    }
    for (int i = 0; i < kStageBucketCount; ++i) {
      bucket.stage_ms[i] += static_cast<double>(bucket_ns[i]) / 1e6;
    }
  }
}

void SloMonitor::AdvanceTo(crbase::Time now) {
  const std::int64_t target = now / options_.bucket_width;
  if (target <= epoch_) {
    return;
  }
  if (target - epoch_ >= static_cast<std::int64_t>(options_.buckets)) {
    // The run jumped a full window ahead (idle gap); nothing in the rings
    // is still in-window. Evaluate once on the way out, then start fresh.
    Evaluate(-1, fleet_);
    for (auto& [id, window] : sessions_) {
      Evaluate(id, window);
    }
    for (Bucket& b : fleet_.ring) {
      b.Clear();
    }
    for (auto& [id, window] : sessions_) {
      for (Bucket& b : window.ring) {
        b.Clear();
      }
    }
    epoch_ = target;
    return;
  }
  while (epoch_ < target) {
    // Each rotation is an evaluation boundary: judge the window as it
    // stands, then retire the bucket the new epoch will overwrite.
    Evaluate(-1, fleet_);
    for (auto& [id, window] : sessions_) {
      Evaluate(id, window);
    }
    ++epoch_;
    const std::size_t slot =
        static_cast<std::size_t>(epoch_ % static_cast<std::int64_t>(options_.buckets));
    fleet_.ring[slot].Clear();
    for (auto& [id, window] : sessions_) {
      window.ring[slot].Clear();
    }
  }
}

double SloMonitor::Burn(const Window& window, double* miss_burn,
                        double* latency_burn) const {
  const std::int64_t frames = window.Frames();
  *miss_burn = 0;
  *latency_burn = 0;
  if (frames == 0) {
    return 0;
  }
  const double miss_rate =
      static_cast<double>(window.Misses()) / static_cast<double>(frames);
  const double over_rate =
      static_cast<double>(window.OverLatency()) / static_cast<double>(frames);
  *miss_burn = options_.miss_budget > 0 ? miss_rate / options_.miss_budget : 0;
  *latency_burn = options_.latency_budget > 0 ? over_rate / options_.latency_budget : 0;
  return std::max(*miss_burn, *latency_burn);
}

void SloMonitor::Evaluate(std::int64_t session, const Window& window) {
  if (window.Frames() < options_.min_frames) {
    return;
  }
  double miss_burn = 0;
  double latency_burn = 0;
  const double burn = Burn(window, &miss_burn, &latency_burn);
  if (burn <= 1.0) {
    return;
  }
  ++burn_events_;
  const StageBucket dominant = window.Dominant();
  hub_->flight().Record(FlightEventKind::kSloBurn, session,
                        static_cast<std::int64_t>(dominant), burn,
                        StageBucketName(dominant));
  if (session >= 0 || burn < options_.fast_burn) {
    return;  // only fleet-wide fast burns freeze a dump
  }
  const crbase::Time now = engine_->Now();
  if (last_trigger_ >= 0 && now - last_trigger_ < options_.min_trigger_gap) {
    return;
  }
  last_trigger_ = now;
  ++fast_burns_;
  hub_->flight().Trigger(std::string("slo_fast_burn:") + StageBucketName(dominant));
}

std::int64_t SloMonitor::WindowFrames() const { return fleet_.Frames(); }
std::int64_t SloMonitor::WindowMisses() const { return fleet_.Misses(); }

double SloMonitor::MissBurnRate() const {
  double miss_burn = 0;
  double latency_burn = 0;
  Burn(fleet_, &miss_burn, &latency_burn);
  return miss_burn;
}

double SloMonitor::LatencyBurnRate() const {
  double miss_burn = 0;
  double latency_burn = 0;
  Burn(fleet_, &miss_burn, &latency_burn);
  return latency_burn;
}

StageBucket SloMonitor::DominantBucket() const { return fleet_.Dominant(); }

void SloMonitor::WriteJson(std::ostream& out) const {
  out << "{\"enabled\": " << (options_.enabled ? "true" : "false");
  if (!options_.enabled) {
    out << "}";
    return;
  }
  double miss_burn = 0;
  double latency_burn = 0;
  Burn(fleet_, &miss_burn, &latency_burn);
  out << ", \"window_ns\": "
      << options_.bucket_width * static_cast<std::int64_t>(options_.buckets)
      << ", \"frames\": " << fleet_.Frames() << ", \"misses\": " << fleet_.Misses()
      << ", \"over_latency\": " << fleet_.OverLatency()
      << ", \"miss_burn\": " << miss_burn << ", \"latency_burn\": " << latency_burn
      << ", \"dominant_stage\": \"" << StageBucketName(fleet_.Dominant()) << "\""
      << ", \"burn_events\": " << burn_events_ << ", \"fast_burns\": " << fast_burns_
      << ", \"sessions\": [";
  bool first = true;
  for (const auto& [id, window] : sessions_) {
    double session_miss = 0;
    double session_latency = 0;
    Burn(window, &session_miss, &session_latency);
    if (!first) {
      out << ", ";
    }
    first = false;
    out << "{\"id\": " << id << ", \"frames\": " << window.Frames()
        << ", \"misses\": " << window.Misses() << ", \"miss_burn\": " << session_miss
        << ", \"latency_burn\": " << session_latency << "}";
  }
  out << "]}";
}

std::string SloMonitor::StateJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

}  // namespace crobs
