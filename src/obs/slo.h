// SLO watchdog over the frame tracer.
//
// Two budgets, in the SRE error-budget sense: a frame-miss rate budget and
// a latency budget (fraction of frames over an end-to-end target). The
// monitor keeps rolling windows — fleet-wide and per session — as rings of
// fixed-width time buckets; at every bucket rotation it computes the *burn
// rate* of each budget (observed bad fraction / budgeted bad fraction, so
// 1.0 means "spending the budget exactly as fast as allowed"). A burn above
// 1.0 emits a `slo_burn` flight-recorder event carrying the dominant stage
// bucket — the attribution table names the owner in the same breath as the
// alarm — and a fast burn freezes an automatic flight dump.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/obs/frame_trace.h"
#include "src/sim/engine.h"

namespace crobs {

class Hub;

class SloMonitor {
 public:
  struct Options {
    bool enabled = false;
    // Rolling window = bucket_width * buckets.
    crbase::Duration bucket_width = crbase::Seconds(1);
    int buckets = 10;
    double miss_budget = 0.01;         // budgeted frame-miss fraction
    double latency_target_ms = 500.0;  // per-frame end-to-end target
    double latency_budget = 0.05;      // budgeted fraction over the target
    double fast_burn = 8.0;            // burn rate that freezes a flight dump
    std::int64_t min_frames = 32;      // a window judges only past this depth
    crbase::Duration min_trigger_gap = crbase::Seconds(5);
  };

  SloMonitor(const crsim::Engine& engine, Hub* hub, const Options& options);
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  bool enabled() const { return options_.enabled; }

  // Record-path entry, called by FrameTracer for every resolved frame.
  void OnFrameResolved(std::int64_t session, bool missed, double e2e_ms,
                       const crbase::Duration bucket_ns[kStageBucketCount]);

  // Fleet-wide rolling-window state (recomputed on read; cheap — the window
  // is a handful of buckets).
  std::int64_t WindowFrames() const;
  std::int64_t WindowMisses() const;
  double MissBurnRate() const;
  double LatencyBurnRate() const;
  StageBucket DominantBucket() const;

  std::int64_t burn_events() const { return burn_events_; }
  std::int64_t fast_burns() const { return fast_burns_; }

  // Deterministic JSON state document, served by StatsQueryService.
  void WriteJson(std::ostream& out) const;
  std::string StateJson() const;

 private:
  struct Bucket {
    std::int64_t frames = 0;
    std::int64_t misses = 0;
    std::int64_t over_latency = 0;
    double stage_ms[kStageBucketCount] = {};
    void Clear() { *this = Bucket{}; }
  };
  struct Window {
    std::vector<Bucket> ring;  // indexed by epoch % buckets
    std::int64_t Frames() const;
    std::int64_t Misses() const;
    std::int64_t OverLatency() const;
    StageBucket Dominant() const;
  };

  // Rotate the bucket rings up to the engine's current epoch, evaluating
  // budgets at each rotation boundary.
  void AdvanceTo(crbase::Time now);
  void Evaluate(std::int64_t session, const Window& window);
  double Burn(const Window& window, double* miss_burn, double* latency_burn) const;

  const crsim::Engine* engine_;
  Hub* hub_;
  Options options_;
  std::int64_t epoch_ = 0;  // current bucket number = now / bucket_width
  Window fleet_;
  std::map<std::int64_t, Window> sessions_;
  std::int64_t burn_events_ = 0;
  std::int64_t fast_burns_ = 0;
  crbase::Time last_trigger_ = -1;
};

}  // namespace crobs

#endif  // SRC_OBS_SLO_H_
