#include "src/obs/trace.h"

#include "src/base/logging.h"
#include "src/obs/json.h"

namespace crobs {

namespace {

constexpr int kPid = 1;  // single simulated process

// Virtual nanoseconds -> trace_event microseconds (double keeps sub-us
// resolution; Perfetto accepts fractional ts).
double ToMicros(crbase::Time ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

Tracer::Tracer(const crsim::Engine& engine, const Options& options)
    : engine_(&engine),
      enabled_(options.enabled),
      capacity_(options.capacity == 0 ? 1 : options.capacity) {
  strings_.emplace_back("");  // id 0 = unnamed
  buffer_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint32_t Tracer::InternName(const std::string& name) {
  const auto it = string_ids_.find(name);
  if (it != string_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.push_back(name);
  string_ids_.emplace(name, id);
  return id;
}

std::uint32_t Tracer::InternTrack(const std::string& name) {
  const std::uint32_t string_id = InternName(name);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == string_id) {
      return static_cast<std::uint32_t>(i);
    }
  }
  tracks_.push_back(string_id);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::Push(const TraceEvent& event) {
  ++recorded_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  // Ring overwrite: drop the oldest event.
  buffer_[start_] = event;
  start_ = (start_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::Begin(std::uint32_t track, std::uint32_t name) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kBegin, track, name, 0, engine_->Now(), 0, 0, 0});
}

void Tracer::End(std::uint32_t track, std::uint32_t name) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kEnd, track, name, 0, engine_->Now(), 0, 0, 0});
}

void Tracer::Complete(std::uint32_t track, std::uint32_t name, crbase::Time start,
                      crbase::Duration dur) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kComplete, track, name, 0, start, dur, 0, 0});
}

void Tracer::Instant(std::uint32_t track, std::uint32_t name, double value) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kInstant, track, name, 0, engine_->Now(), 0, 0, value});
}

void Tracer::CounterSample(std::uint32_t track, std::uint32_t name, double value) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kCounter, track, name, 0, engine_->Now(), 0, 0, value});
}

void Tracer::AsyncBegin(std::uint32_t track, std::uint32_t category, std::uint32_t name,
                        std::uint64_t id) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kAsyncBegin, track, name, category, engine_->Now(), 0, id, 0});
}

void Tracer::AsyncEnd(std::uint32_t track, std::uint32_t category, std::uint32_t name,
                      std::uint64_t id) {
  if (!enabled_) {
    return;
  }
  Push({TraceEventType::kAsyncEnd, track, name, category, engine_->Now(), 0, id, 0});
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  events.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    events.push_back(buffer_[(start_ + i) % buffer_.size()]);
  }
  return events;
}

void Tracer::WriteChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\": [";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  ";
  };

  comma();
  out << "{\"ph\": \"M\", \"pid\": " << kPid
      << ", \"name\": \"process_name\", \"args\": {\"name\": \"cras-sim\"}}";
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    comma();
    out << "{\"ph\": \"M\", \"pid\": " << kPid << ", \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    WriteJsonString(out, strings_[tracks_[tid]]);
    out << "}}";
  }
  comma();
  out << "{\"ph\": \"M\", \"pid\": " << kPid
      << ", \"name\": \"trace_stats\", \"args\": {\"recorded\": " << recorded_
      << ", \"dropped\": " << dropped_ << ", \"capacity\": " << capacity_ << "}}";

  for (const TraceEvent& event : Events()) {
    comma();
    const std::string& name = strings_[event.name];
    out << "{\"pid\": " << kPid << ", \"tid\": " << event.track << ", \"ts\": ";
    WriteJsonNumber(out, ToMicros(event.ts));
    out << ", \"name\": ";
    WriteJsonString(out, name);
    switch (event.type) {
      case TraceEventType::kBegin:
        out << ", \"ph\": \"B\"";
        break;
      case TraceEventType::kEnd:
        out << ", \"ph\": \"E\"";
        break;
      case TraceEventType::kComplete:
        out << ", \"ph\": \"X\", \"dur\": ";
        WriteJsonNumber(out, ToMicros(event.dur));
        break;
      case TraceEventType::kInstant:
        out << ", \"ph\": \"i\", \"s\": \"t\", \"args\": {\"value\": ";
        WriteJsonNumber(out, event.value);
        out << "}";
        break;
      case TraceEventType::kCounter:
        out << ", \"ph\": \"C\", \"args\": {";
        WriteJsonString(out, name);
        out << ": ";
        WriteJsonNumber(out, event.value);
        out << "}";
        break;
      case TraceEventType::kAsyncBegin:
      case TraceEventType::kAsyncEnd:
        out << ", \"ph\": \"" << (event.type == TraceEventType::kAsyncBegin ? 'b' : 'e')
            << "\", \"cat\": ";
        WriteJsonString(out, strings_[event.category]);
        out << ", \"id\": \"" << event.async_id << "\"";
        break;
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace crobs
