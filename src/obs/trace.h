// Simulation-time tracer.
//
// Records typed events — span begin/end, complete spans with explicit
// duration, instants, counter samples, and async (overlapping) spans —
// stamped with the engine's virtual time and a *track* identity (a simulated
// thread, device, or queue). Events land in a bounded ring buffer: when the
// buffer is full the oldest event is overwritten, so a long run keeps its
// most recent history (the part that explains why the run ended the way it
// did) at a fixed memory cost.
//
// Export is Chrome trace_event JSON ("JSON Array Format"), loadable in
// chrome://tracing and Perfetto. Mapping:
//
//   kBegin/kEnd     -> ph "B"/"E"   nested spans on one track
//   kComplete       -> ph "X"       span with explicit ts + dur
//   kInstant        -> ph "i"       point event (thread scope)
//   kCounter        -> ph "C"       numeric counter track
//   kAsyncBegin/End -> ph "b"/"e"   overlapping spans keyed by (category, id)
//
// Track and name strings are interned once (typically at component
// construction); the per-event hot path is an enabled check plus a struct
// store. A disabled tracer records nothing and costs one branch.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crobs {

enum class TraceEventType : std::uint8_t {
  kBegin,
  kEnd,
  kComplete,
  kInstant,
  kCounter,
  kAsyncBegin,
  kAsyncEnd,
};

struct TraceEvent {
  TraceEventType type = TraceEventType::kInstant;
  std::uint32_t track = 0;     // interned track id (exported as tid)
  std::uint32_t name = 0;      // interned string id
  std::uint32_t category = 0;  // interned string id; async spans match on it
  crbase::Time ts = 0;
  crbase::Duration dur = 0;    // kComplete only
  std::uint64_t async_id = 0;  // kAsyncBegin/kAsyncEnd
  double value = 0;            // kCounter sample / kInstant numeric argument
};

class Tracer {
 public:
  struct Options {
    bool enabled = false;
    std::size_t capacity = 1 << 16;  // events retained; oldest dropped first
  };

  Tracer(const crsim::Engine& engine, const Options& options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Interning: stable ids for track and event-name strings. Idempotent per
  // string; intended to run at component construction, not per event.
  std::uint32_t InternTrack(const std::string& name);
  std::uint32_t InternName(const std::string& name);

  // Recording. All calls are no-ops while disabled. Timestamps come from
  // the engine's virtual clock, except Complete, whose span may have been
  // computed ahead of time (a disk service with a known finish time).
  void Begin(std::uint32_t track, std::uint32_t name);
  void End(std::uint32_t track, std::uint32_t name);
  void Complete(std::uint32_t track, std::uint32_t name, crbase::Time start,
                crbase::Duration dur);
  void Instant(std::uint32_t track, std::uint32_t name, double value = 0);
  void CounterSample(std::uint32_t track, std::uint32_t name, double value);
  void AsyncBegin(std::uint32_t track, std::uint32_t category, std::uint32_t name,
                  std::uint64_t id);
  void AsyncEnd(std::uint32_t track, std::uint32_t category, std::uint32_t name,
                std::uint64_t id);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }

  // Events oldest-first (after any ring overwrites).
  std::vector<TraceEvent> Events() const;

  // Chrome trace_event JSON; includes process/thread-name metadata so tracks
  // show up labeled in Perfetto.
  void WriteChromeJson(std::ostream& out) const;

 private:
  void Push(const TraceEvent& event);

  const crsim::Engine* engine_;
  bool enabled_;
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t start_ = 0;  // ring head once the buffer has wrapped
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;

  std::vector<std::string> strings_;  // id -> string; [0] reserved
  std::unordered_map<std::string, std::uint32_t> string_ids_;
  std::vector<std::uint32_t> tracks_;  // interned string ids, in track order
};

}  // namespace crobs

#endif  // SRC_OBS_TRACE_H_
