#include "src/rtmach/kernel.h"

#include <utility>

#include "src/base/logging.h"

namespace crrt {

Kernel::Kernel() : Kernel(Options{}) {}

Kernel::Kernel(const Options& options)
    : owned_engine_(std::make_unique<crsim::Engine>()),
      engine_(owned_engine_.get()),
      cpu_(*engine_, options.policy, options.quantum) {}

Kernel::Kernel(crsim::Engine& shared_engine, const Options& options)
    : engine_(&shared_engine), cpu_(*engine_, options.policy, options.quantum) {}

crsim::Task Kernel::Spawn(std::string name, int priority,
                          std::function<crsim::Task(ThreadContext&)> body) {
  auto record = std::make_unique<ThreadRecord>(*this, std::move(name), priority);
  ThreadContext& context = record->context;
  threads_.push_back(std::move(record));
  ++live_threads_;
  // Wrap the body so thread exit is observable for diagnostics.
  auto wrapper = [](Kernel* kernel, ThreadContext* ctx,
                    std::function<crsim::Task(ThreadContext&)> fn) -> crsim::Task {
    co_await fn(*ctx);
    --kernel->live_threads_;
  };
  return wrapper(this, &context, std::move(body));
}

void Kernel::WireMemory(const std::string& owner, std::int64_t bytes) {
  CRAS_CHECK(bytes >= 0);
  wired_bytes_ += bytes;
  CRAS_LOG(kDebug) << owner << " wired " << bytes << " bytes (total " << wired_bytes_ << ")";
}

void Kernel::UnwireMemory(const std::string& owner, std::int64_t bytes) {
  CRAS_CHECK(bytes >= 0);
  wired_bytes_ -= bytes;
  CRAS_CHECK(wired_bytes_ >= 0) << owner << " unwired more than it wired";
}

}  // namespace crrt
