// A Real-Time-Mach-flavoured kernel facade over the simulation engine.
//
// Real-Time Mach gives CRAS three things the paper depends on: named threads
// with fixed-priority preemptive scheduling, periodic threads with deadline
// notification, and the ability to wire server memory. This layer provides
// simulated equivalents:
//
//   * Kernel        — owns the Engine (virtual time) and one Cpu.
//   * Spawn()       — creates a named simulated thread with a priority; the
//                     thread body is a coroutine receiving a ThreadContext.
//   * ThreadContext — per-thread services: Sleep, Compute (CPU time charged
//                     at the thread's priority), Now.
//   * WireMemory()  — accounting for memory that must stay resident (the
//                     paper wires the whole server: ~250 KB + buffers).

#ifndef SRC_RTMACH_KERNEL_H_
#define SRC_RTMACH_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace crrt {

using crbase::Duration;
using crbase::Time;

// Conventional priority bands (higher = more urgent). CRAS server threads
// run above every client and every timesharing task, as the paper requires.
inline constexpr int kPriorityIdle = 0;
inline constexpr int kPriorityTimesharing = 10;
inline constexpr int kPriorityClient = 20;
inline constexpr int kPriorityUnixServer = 25;
inline constexpr int kPriorityServer = 30;
inline constexpr int kPriorityServerHigh = 40;

class Kernel;

// Handed to every thread body; identifies the thread and proxies kernel
// services at its priority.
class ThreadContext {
 public:
  ThreadContext(Kernel& kernel, std::string name, int priority)
      : kernel_(&kernel), name_(std::move(name)), priority_(priority) {}

  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  Kernel& kernel() { return *kernel_; }

  Time Now() const;
  // Suspends for `d` of virtual time (not CPU time; the thread is blocked).
  crsim::SleepAwaiter Sleep(Duration d) const;
  // Consumes `work` of CPU time under contention at this thread's priority.
  auto Compute(Duration work) const;

 private:
  Kernel* kernel_;
  std::string name_;
  int priority_;
};

class Kernel {
 public:
  struct Options {
    crsim::SchedPolicy policy = crsim::SchedPolicy::kFixedPriority;
    Duration quantum = crbase::Milliseconds(10);
  };

  Kernel();
  explicit Kernel(const Options& options);
  // A kernel (host) sharing another's virtual-time engine: two machines on
  // one timeline, each with its own processor. Used for distributed
  // configurations (the QtPlay server/client pair of Figure 11).
  Kernel(crsim::Engine& shared_engine, const Options& options);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  crsim::Engine& engine() { return *engine_; }
  crsim::Cpu& cpu() { return cpu_; }
  Time Now() const { return engine_->Now(); }

  // Spawns a named thread. The ThreadContext outlives the coroutine; the
  // returned Task may be awaited (join) or dropped (detach).
  crsim::Task Spawn(std::string name, int priority,
                    std::function<crsim::Task(ThreadContext&)> body);

  // Wired (resident) memory accounting.
  void WireMemory(const std::string& owner, std::int64_t bytes);
  void UnwireMemory(const std::string& owner, std::int64_t bytes);
  std::int64_t wired_bytes() const { return wired_bytes_; }

  std::size_t live_threads() const { return live_threads_; }

 private:
  struct ThreadRecord {
    ThreadContext context;
    ThreadRecord(Kernel& k, std::string name, int priority)
        : context(k, std::move(name), priority) {}
  };

  std::unique_ptr<crsim::Engine> owned_engine_;  // null when sharing
  crsim::Engine* engine_;
  crsim::Cpu cpu_;
  std::vector<std::unique_ptr<ThreadRecord>> threads_;
  std::size_t live_threads_ = 0;
  std::int64_t wired_bytes_ = 0;
};

inline Time ThreadContext::Now() const { return kernel_->Now(); }

inline crsim::SleepAwaiter ThreadContext::Sleep(Duration d) const {
  return crsim::Sleep(kernel_->engine(), d);
}

inline auto ThreadContext::Compute(Duration work) const {
  return kernel_->cpu().Run(priority_, work);
}

}  // namespace crrt

#endif  // SRC_RTMACH_KERNEL_H_
