// Mutex with optional priority inheritance.
//
// The paper's group built "Integrated Management of Priority Inversion in
// Real-Time Mach" [7]; CRAS is *designed* so that its retrieval path never
// calls a lower-priority server, but the kernel still provides
// priority-inheriting locks for the places servers do share state. This
// mutex models both behaviours so the classic inversion (low-priority
// holder preempted by a medium-priority hog while a high-priority thread
// waits) can be measured with and without inheritance.
//
// Inheritance is modelled through the CPU scheduler: while a thread holds
// an inheriting mutex that higher-priority threads are waiting on, the CPU
// work it performs (through LockedCompute) is charged at the highest
// waiting priority.

#ifndef SRC_RTMACH_MUTEX_H_
#define SRC_RTMACH_MUTEX_H_

#include <algorithm>
#include <coroutine>
#include <deque>

#include "src/base/logging.h"
#include "src/rtmach/kernel.h"

namespace crrt {

class Mutex {
 public:
  enum class Protocol {
    kNone,                 // plain blocking lock (inversion-prone)
    kPriorityInheritance,  // holder computes at the top waiter's priority
  };

  Mutex(Kernel& kernel, Protocol protocol)
      : kernel_(&kernel), protocol_(protocol) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // `co_await mutex.Lock(ctx);` — FIFO among equal priorities, but the
  // highest-priority waiter acquires first.
  auto Lock(const ThreadContext& ctx) { return LockAwaiter{this, ctx.priority(), nullptr}; }

  void Unlock() {
    CRAS_CHECK(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      holder_priority_ = 0;
      return;
    }
    // Hand off to the highest-priority waiter (FIFO among equals).
    auto best = waiters_.begin();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if ((*it)->priority > (*best)->priority) {
        best = it;
      }
    }
    LockAwaiter* next = *best;
    waiters_.erase(best);
    holder_priority_ = next->priority;
    std::coroutine_handle<> h = next->handle;
    kernel_->engine().ScheduleAfter(0, [h] { h.resume(); });
  }

  // CPU work performed while holding the lock. The request is tagged with
  // this mutex; when a higher-priority thread later blocks on the lock, the
  // tag lets the scheduler boost the holder's queued work in place (true
  // priority inheritance, not just at-submission priority).
  auto LockedCompute(crbase::Duration work) {
    CRAS_CHECK(locked_) << "LockedCompute without the lock";
    return kernel_->cpu().RunTagged(this, EffectivePriority(), work);
  }

  bool locked() const { return locked_; }
  std::size_t waiters() const { return waiters_.size(); }
  int EffectivePriority() const {
    int priority = holder_priority_;
    if (protocol_ == Protocol::kPriorityInheritance) {
      for (const LockAwaiter* waiter : waiters_) {
        priority = std::max(priority, waiter->priority);
      }
    }
    return priority;
  }

 private:
  struct LockAwaiter {
    Mutex* mutex;
    int priority;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!mutex->locked_) {
        mutex->locked_ = true;
        mutex->holder_priority_ = priority;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      mutex->waiters_.push_back(this);
      if (mutex->protocol_ == Protocol::kPriorityInheritance) {
        // Inherit: raise the holder's in-flight tagged work to this
        // waiter's priority.
        mutex->kernel_->cpu().Boost(mutex, mutex->EffectivePriority());
      }
    }
    void await_resume() const {}
  };

  Kernel* kernel_;
  Protocol protocol_;
  bool locked_ = false;
  int holder_priority_ = 0;
  std::deque<LockAwaiter*> waiters_;
};

}  // namespace crrt

#endif  // SRC_RTMACH_MUTEX_H_
