// Periodic execution with deadline tracking.
//
// Real-Time Mach periodic threads block until their next period boundary and
// receive a deadline notification when they overrun. CRAS's request
// scheduler thread is periodic with period = the server's interval time; its
// deadline manager thread consumes overrun notifications.

#ifndef SRC_RTMACH_PERIODIC_H_
#define SRC_RTMACH_PERIODIC_H_

#include <cstdint>

#include "src/base/logging.h"
#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/engine.h"
#include "src/sim/port.h"

namespace crrt {

// Reported to the deadline-notification port on every overrun.
struct DeadlineMiss {
  std::int64_t period_index = 0;
  crbase::Time deadline = 0;
  crbase::Duration overrun = 0;
};

// One tick of a periodic timer.
struct PeriodTick {
  std::int64_t index = 0;          // 0-based period number
  crbase::Time scheduled_at = 0;   // nominal boundary
  crbase::Duration lateness = 0;   // >0 when the previous body overran
};

class PeriodicTimer {
 public:
  // The first period boundary is `start + period`: the caller runs period 0
  // immediately after construction, then waits.
  PeriodicTimer(crsim::Engine& engine, crbase::Duration period,
                crsim::Port<DeadlineMiss>* deadline_port = nullptr)
      : engine_(&engine), period_(period), epoch_(engine.Now()), deadline_port_(deadline_port) {
    CRAS_CHECK(period > 0);
  }

  crbase::Duration period() const { return period_; }
  crbase::Time epoch() const { return epoch_; }
  std::int64_t periods_elapsed() const { return next_index_; }
  std::int64_t deadline_misses() const { return misses_; }

  // Boundary of period `index` (the deadline of the work started there is
  // the next boundary).
  crbase::Time BoundaryOf(std::int64_t index) const { return epoch_ + index * period_; }

  // `PeriodTick tick = co_await timer.NextPeriod();`
  //
  // Sleeps until the next period boundary. If the caller is already past it
  // (the previous body overran its deadline), returns immediately with
  // positive lateness and posts a DeadlineMiss — the paper's CRAS logs a
  // warning in that case and carries on.
  auto NextPeriod() { return TickAwaiter{this, PeriodTick{}}; }

 private:
  struct TickAwaiter {
    PeriodicTimer* timer;
    PeriodTick tick;

    bool await_ready() {
      tick = timer->PrepareTick();
      return tick.lateness > 0;  // already past the boundary: no sleep
    }
    void await_suspend(std::coroutine_handle<> h) {
      timer->engine_->ScheduleResumeAt(tick.scheduled_at, h);
    }
    PeriodTick await_resume() { return tick; }
  };

  PeriodTick PrepareTick() {
    const std::int64_t index = ++next_index_;
    const crbase::Time boundary = BoundaryOf(index);
    const crbase::Time now = engine_->Now();
    PeriodTick tick;
    tick.index = index;
    tick.scheduled_at = boundary;
    tick.lateness = now > boundary ? now - boundary : 0;
    if (tick.lateness > 0) {
      ++misses_;
      if (deadline_port_ != nullptr) {
        deadline_port_->Send(DeadlineMiss{index, boundary, tick.lateness});
      }
    }
    return tick;
  }

  crsim::Engine* engine_;
  crbase::Duration period_;
  crbase::Time epoch_;
  crsim::Port<DeadlineMiss>* deadline_port_;
  std::int64_t next_index_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace crrt

#endif  // SRC_RTMACH_PERIODIC_H_
