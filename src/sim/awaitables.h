// Basic awaitables: virtual-time sleep and manual-reset gates.

#ifndef SRC_SIM_AWAITABLES_H_
#define SRC_SIM_AWAITABLES_H_

#include <coroutine>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace crsim {

// `co_await Sleep(engine, d)` suspends the coroutine for `d` of virtual time.
struct SleepAwaiter {
  Engine* engine;
  Duration delay;

  bool await_ready() const { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) { engine->ScheduleResumeAfter(delay, h); }
  void await_resume() const {}
};

inline SleepAwaiter Sleep(Engine& engine, Duration delay) { return SleepAwaiter{&engine, delay}; }

// `co_await SleepUntil(engine, t)` suspends until absolute virtual time `t`.
inline SleepAwaiter SleepUntil(Engine& engine, Time t) {
  return SleepAwaiter{&engine, t - engine.Now()};
}

// A manual-reset event. Waiters block until Open() is called; once open,
// waits complete immediately until Close().
class Gate {
 public:
  explicit Gate(Engine& engine, bool open = false) : engine_(&engine), open_(open) {}

  ~Gate() {
    std::vector<std::coroutine_handle<>> waiters = std::move(waiters_);
    for (std::coroutine_handle<> h : waiters) {
      DestroyParkedChain(h);
    }
  }

  void Open() {
    open_ = true;
    // Wake every waiter through the event queue so wakeups serialize with
    // other same-time events deterministically.
    for (std::coroutine_handle<> h : waiters_) {
      engine_->ScheduleResumeAfter(0, h);
    }
    waiters_.clear();
  }

  void Close() { open_ = false; }
  bool is_open() const { return open_; }

  auto Wait() {
    struct Awaiter {
      Gate* gate;
      bool await_ready() const { return gate->open_; }
      void await_suspend(std::coroutine_handle<> h) { gate->waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace crsim

#endif  // SRC_SIM_AWAITABLES_H_
