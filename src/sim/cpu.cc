#include "src/sim/cpu.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/task.h"

namespace crsim {

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFixedPriority:
      return "fixed-priority";
    case SchedPolicy::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

Cpu::Cpu(Engine& engine, SchedPolicy policy, Duration quantum)
    : engine_(&engine), policy_(policy), quantum_(quantum) {
  CRAS_CHECK(quantum_ > 0);
}

Cpu::~Cpu() {
  std::deque<Request> ready = std::move(ready_);
  for (const Request& request : ready) {
    DestroyParkedChain(request.handle);
  }
  if (running_) {
    running_ = false;
    DestroyParkedChain(current_.handle);
  }
}

void Cpu::RunAwaiter::await_suspend(std::coroutine_handle<> h) {
  cpu->Enqueue(Request{priority, work, h, cpu->next_seq_++, tag});
}

void Cpu::Boost(Tag tag, int priority) {
  if (tag == nullptr) {
    return;
  }
  for (Request& request : ready_) {
    if (request.tag == tag && request.priority < priority) {
      request.priority = priority;
    }
  }
  if (running_ && current_.tag == tag && current_.priority < priority) {
    current_.priority = priority;  // already on the CPU: nothing to preempt
  }
  // A boosted queued request may now outrank the running one.
  if (running_ && policy_ == SchedPolicy::kFixedPriority) {
    int best = current_.priority;
    for (const Request& request : ready_) {
      best = std::max(best, request.priority);
    }
    if (best > current_.priority) {
      PreemptRunning();
      if (!running_) {
        Dispatch();
      }
    }
  }
}

void Cpu::Enqueue(Request req) {
  if (running_ && policy_ == SchedPolicy::kFixedPriority &&
      req.priority > current_.priority) {
    PreemptRunning();
  }
  ready_.push_back(std::move(req));
  if (!running_) {
    Dispatch();
  }
}

Cpu::Request Cpu::PopNext() {
  CRAS_CHECK(!ready_.empty());
  auto it = ready_.begin();
  if (policy_ == SchedPolicy::kFixedPriority) {
    for (auto cand = ready_.begin(); cand != ready_.end(); ++cand) {
      if (cand->priority > it->priority ||
          (cand->priority == it->priority && cand->seq < it->seq)) {
        it = cand;
      }
    }
  } else {
    // Round-robin: strict FIFO arrival order.
    for (auto cand = ready_.begin(); cand != ready_.end(); ++cand) {
      if (cand->seq < it->seq) {
        it = cand;
      }
    }
  }
  Request req = std::move(*it);
  ready_.erase(it);
  return req;
}

void Cpu::Dispatch() {
  CRAS_CHECK(!running_);
  if (ready_.empty()) {
    return;
  }
  current_ = PopNext();
  running_ = true;
  slice_start_ = engine_->Now();
  slice_len_ = policy_ == SchedPolicy::kRoundRobin ? std::min(current_.remaining, quantum_)
                                                   : current_.remaining;
  const std::uint64_t gen = ++generation_;
  engine_->ScheduleAfter(slice_len_, [this, gen] { OnSliceEnd(gen); });
}

void Cpu::PreemptRunning() {
  CRAS_CHECK(running_);
  const Duration elapsed = engine_->Now() - slice_start_;
  busy_time_ += elapsed;
  current_.remaining -= elapsed;
  ++generation_;  // invalidate the pending slice-end event
  running_ = false;
  if (current_.remaining <= 0) {
    // The preemption arrived at the exact instant the slice completed, but
    // before its completion event fired: the request is done.
    std::coroutine_handle<> h = current_.handle;
    engine_->ScheduleAfter(0, [h] { h.resume(); });
    return;
  }
  // Re-gets a fresh sequence number: a preempted round-robin thread goes to
  // the back of the FIFO (its quantum is forfeit), while under fixed
  // priority order among equals is FIFO by (re-)arrival, matching classic
  // preemptive schedulers.
  current_.seq = next_seq_++;
  ready_.push_back(current_);
}

void Cpu::OnSliceEnd(std::uint64_t generation) {
  if (generation != generation_) {
    return;  // stale: the slice was preempted
  }
  CRAS_CHECK(running_);
  busy_time_ += slice_len_;
  current_.remaining -= slice_len_;
  running_ = false;
  if (current_.remaining <= 0) {
    std::coroutine_handle<> h = current_.handle;
    engine_->ScheduleAfter(0, [h] { h.resume(); });
  } else {
    // Quantum expiry under round-robin: back of the queue.
    current_.seq = next_seq_++;
    ready_.push_back(current_);
  }
  Dispatch();
}

}  // namespace crsim
