// Simulated single processor with preemptive scheduling.
//
// Simulated threads consume CPU through `co_await cpu.Run(priority, work)`.
// The Cpu serializes all outstanding work requests according to its policy:
//
//  * kFixedPriority — the highest-priority ready request runs; a newly
//    arriving higher-priority request preempts the running one immediately.
//    This models Real-Time Mach's fixed-priority scheduling, the mode CRAS
//    depends on.
//  * kRoundRobin — ready requests share the processor FIFO with a fixed
//    quantum; priorities are ignored. This is the timesharing policy the
//    paper contrasts in Figure 10.
//
// Higher numeric priority = more important. Preemption accounting is exact:
// a preempted request keeps its remaining work and continues later.

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crsim {

enum class SchedPolicy {
  kFixedPriority,
  kRoundRobin,
};

const char* SchedPolicyName(SchedPolicy policy);

class Cpu {
 public:
  Cpu(Engine& engine, SchedPolicy policy,
      Duration quantum = crbase::Milliseconds(10));
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;
  // Reclaims frames still queued for (or holding) the processor.
  ~Cpu();

  SchedPolicy policy() const { return policy_; }
  void set_policy(SchedPolicy policy) { policy_ = policy; }
  Duration quantum() const { return quantum_; }

  // Opaque grouping key for Boost(); typically the address of the lock or
  // resource on whose behalf the work runs.
  using Tag = const void*;

  // Awaitable that completes when `work` of CPU time has been consumed under
  // contention. Zero or negative work completes immediately.
  auto Run(int priority, Duration work) { return RunAwaiter{this, priority, work, nullptr}; }

  // As Run, but the request carries `tag` so its priority can later be
  // raised by Boost() — the hook priority-inheritance locks use.
  auto RunTagged(Tag tag, int priority, Duration work) {
    return RunAwaiter{this, priority, work, tag};
  }

  // Raises every queued or running request carrying `tag` to at least
  // `priority`, re-evaluating preemption. No-op on requests already at or
  // above it; ignores untagged work.
  void Boost(Tag tag, int priority);

  // Total CPU time handed out (for utilization accounting).
  Duration busy_time() const { return busy_time_; }

  // Number of requests currently queued or running.
  std::size_t load() const { return ready_.size() + (running_ ? 1 : 0); }

 private:
  struct Request {
    int priority;
    Duration remaining;
    std::coroutine_handle<> handle;
    std::uint64_t seq;  // FIFO tiebreak among equal priorities
    Tag tag = nullptr;
  };

  struct RunAwaiter {
    Cpu* cpu;
    int priority;
    Duration work;
    Tag tag;

    bool await_ready() const { return work <= 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };

  void Enqueue(Request req);
  // Starts the best ready request if the processor is idle.
  void Dispatch();
  // Removes the running request from the processor, charging elapsed time.
  void PreemptRunning();
  void OnSliceEnd(std::uint64_t generation);
  // Picks (and removes) the next request to run from ready_.
  Request PopNext();

  Engine* engine_;
  SchedPolicy policy_;
  Duration quantum_;

  std::deque<Request> ready_;
  bool running_ = false;
  Request current_{};
  Time slice_start_ = 0;
  Duration slice_len_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale slice-end events
  std::uint64_t next_seq_ = 0;
  Duration busy_time_ = 0;
};

}  // namespace crsim

#endif  // SRC_SIM_CPU_H_
