#include "src/sim/engine.h"

#include <utility>

#include "src/base/logging.h"
#include "src/sim/task.h"

namespace crsim {

Engine::~Engine() {
  // Destroying a parked frame runs frame-local destructors, which may
  // release semaphores or send to ports and thereby schedule fresh events —
  // hence the loop keeps draining until the heap is truly empty.
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    const std::coroutine_handle<> parked = top.parked;
    const bool live = !cancelled_.contains(top.id);
    heap_.pop();
    if (parked && live) {
      DestroyParkedChain(parked);
    }
  }
}

EventId Engine::ScheduleAt(Time t, Callback cb) { return ScheduleAt(t, std::move(cb), {}); }

EventId Engine::ScheduleAt(Time t, Callback cb, std::coroutine_handle<> parked) {
  CRAS_CHECK(cb != nullptr);
  if (t < now_) {
    t = now_;
  }
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(cb), parked});
  return id;
}

EventId Engine::ScheduleAfter(Duration d, Callback cb) {
  return ScheduleAfter(d, std::move(cb), {});
}

EventId Engine::ScheduleAfter(Duration d, Callback cb, std::coroutine_handle<> parked) {
  if (d < 0) {
    d = 0;
  }
  return ScheduleAt(now_ + d, std::move(cb), parked);
}

void Engine::Cancel(EventId id) {
  if (id != kInvalidEventId) {
    cancelled_.insert(id);
  }
}

void Engine::FireTop() {
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  CRAS_CHECK(ev.time >= now_) << "event time went backwards";
  now_ = ev.time;
  ++events_fired_;
  ev.cb();
}

bool Engine::Step() {
  while (!heap_.empty()) {
    const bool was_cancelled = cancelled_.contains(heap_.top().id);
    FireTop();
    if (!was_cancelled) {
      return true;
    }
  }
  return false;
}

void Engine::Run() {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    FireTop();
  }
}

void Engine::RunUntil(Time t) {
  CRAS_CHECK(t >= now_) << "cannot run into the past";
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.top().time <= t) {
    FireTop();
  }
  if (!stopped_ && now_ < t) {
    now_ = t;
  }
}

void Engine::RunFor(Duration d) { RunUntil(now_ + d); }

}  // namespace crsim
