// Discrete-event simulation engine.
//
// The engine owns virtual time: a monotonic nanosecond clock that advances
// only when the next pending event fires. All simulated activity — thread
// wakeups, disk completions, CPU slice expirations — is an event. Execution
// is strictly deterministic: events at equal timestamps fire in scheduling
// order (FIFO by sequence number).

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/time_units.h"

namespace crsim {

using crbase::Duration;
using crbase::Time;

// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  // Reclaims coroutine frames parked on still-pending wakeup events (see
  // ScheduleResumeAt) so that tearing a simulation down mid-flight leaks
  // nothing. Runs after every other simulation object's destructor in the
  // standard rig layouts (the engine is declared first / owned by Kernel).
  ~Engine();

  // Current virtual time.
  Time Now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `t` (>= Now()).
  EventId ScheduleAt(Time t, Callback cb);

  // Schedules `cb` to run `d` from now. d < 0 is clamped to 0.
  EventId ScheduleAfter(Duration d, Callback cb);

  // As ScheduleAt/ScheduleAfter, but additionally records that `parked` is a
  // coroutine suspended solely waiting for this event (which `cb` will
  // resume). If the engine is destroyed while the event is still pending and
  // uncancelled, the frame — and every frame awaiting it — is destroyed
  // instead of leaked. All coroutine wakeups should flow through these.
  EventId ScheduleAt(Time t, Callback cb, std::coroutine_handle<> parked);
  EventId ScheduleAfter(Duration d, Callback cb, std::coroutine_handle<> parked);

  // The common pure-wakeup form: the event just resumes `h`.
  EventId ScheduleResumeAt(Time t, std::coroutine_handle<> h) {
    return ScheduleAt(t, [h] { h.resume(); }, h);
  }
  EventId ScheduleResumeAfter(Duration d, std::coroutine_handle<> h) {
    return ScheduleAfter(d, [h] { h.resume(); }, h);
  }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (events self-expire), which keeps "cancel my timeout" call sites
  // simple.
  void Cancel(EventId id);

  // Runs the single next event. Returns false if the queue is empty.
  bool Step();

  // Runs until the queue is empty or Stop() is called.
  void Run();

  // Runs all events with time <= t, then sets Now() to exactly t.
  void RunUntil(Time t);

  // Runs for `d` of virtual time from Now().
  void RunFor(Duration d);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    Time time;
    EventId id;
    Callback cb;
    std::coroutine_handle<> parked{};  // frame waiting on this event, if any
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  // Pops and runs the top event; assumes the queue is non-empty.
  void FireTop();

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_fired_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace crsim

#endif  // SRC_SIM_ENGINE_H_
