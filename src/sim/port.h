// Message port: the IPC primitive of the simulated microkernel.
//
// Semantics follow Mach ports loosely: an unbounded FIFO of typed messages;
// Send never blocks; Receive blocks until a message is available. Handoff to
// a blocked receiver goes through the engine's event queue so that wakeup
// order interleaves deterministically with all other simulated activity.

#ifndef SRC_SIM_PORT_H_
#define SRC_SIM_PORT_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace crsim {

template <typename T>
class Port {
 public:
  explicit Port(Engine& engine) : engine_(&engine) {}
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Receivers still blocked when the port dies are torn down with it. The
  // awaiter objects live inside the frames being destroyed, so the waiter
  // list is detached first.
  ~Port() {
    std::deque<ReceiveAwaiter*> waiters = std::move(waiters_);
    for (ReceiveAwaiter* w : waiters) {
      DestroyParkedChain(w->handle);
    }
  }

  // Enqueues a message; if a receiver is blocked, the message is handed to
  // it directly (bypassing the queue) and the receiver is scheduled to run.
  void Send(T msg) {
    if (!waiters_.empty()) {
      ReceiveAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->value.emplace(std::move(msg));
      engine_->ScheduleResumeAfter(0, w->handle);
      return;
    }
    queue_.push_back(std::move(msg));
  }

  // Non-blocking receive.
  bool TryReceive(T* out) {
    if (queue_.empty()) {
      return false;
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  // Blocking receive: `T msg = co_await port.Receive();`
  auto Receive() { return ReceiveAwaiter{this, std::nullopt, nullptr}; }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  struct ReceiveAwaiter {
    Port* port;
    std::optional<T> value;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!port->queue_.empty()) {
        value.emplace(std::move(port->queue_.front()));
        port->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      port->waiters_.push_back(this);
    }
    T await_resume() {
      CRAS_CHECK(value.has_value());
      return std::move(*value);
    }
  };

  Engine* engine_;
  std::deque<T> queue_;
  std::deque<ReceiveAwaiter*> waiters_;
};

}  // namespace crsim

#endif  // SRC_SIM_PORT_H_
