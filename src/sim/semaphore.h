// Counting semaphore for simulated threads.

#ifndef SRC_SIM_SEMAPHORE_H_
#define SRC_SIM_SEMAPHORE_H_

#include <coroutine>
#include <deque>

#include "src/base/logging.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace crsim {

class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial) : engine_(&engine), count_(initial) {
    CRAS_CHECK(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  ~Semaphore() {
    std::deque<std::coroutine_handle<>> waiters = std::move(waiters_);
    for (std::coroutine_handle<> h : waiters) {
      DestroyParkedChain(h);
    }
  }

  // `co_await sem.Acquire();`
  auto Acquire() { return AcquireAwaiter{this}; }

  // Tries to take a unit without blocking.
  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the unit directly to the longest waiter (FIFO fairness).
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      engine_->ScheduleResumeAfter(0, h);
      return;
    }
    ++count_;
  }

  std::int64_t count() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  struct AcquireAwaiter {
    Semaphore* sem;
    bool await_ready() const {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
    void await_resume() const {}
  };

  Engine* engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace crsim

#endif  // SRC_SIM_SEMAPHORE_H_
