// Coroutine task type for simulated threads.
//
// A Task is an eagerly-started coroutine: calling a Task-returning function
// runs its body until the first suspension point (a Delay, port receive, CPU
// slice, disk completion, ...). Simulated "threads" are Tasks whose
// suspension points are mediated by the Engine, so the whole system is a
// single real thread executing a deterministic interleaving.
//
// Lifetime rules:
//  * The Task handle owns the coroutine frame while the owner holds it.
//  * Destroying a Task whose coroutine is still suspended *detaches* it: the
//    coroutine keeps running to completion (driven by engine events) and
//    frees its own frame at the end. This matches "fire and forget" thread
//    spawning.
//  * `co_await task` suspends the awaiting coroutine until `task` finishes.
//    At most one awaiter per task.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace crsim {

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation;
    bool done = false;
    bool detached = false;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        p.done = true;
        std::coroutine_handle<> next =
            p.continuation ? p.continuation : std::coroutine_handle<>(std::noop_coroutine());
        if (p.detached) {
          // Nobody owns this frame anymore; reclaim it. `h` is suspended at
          // its final suspend point, so destroy() is legal here.
          h.destroy();
        }
        return next;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      // Simulated threads must not throw: an escaped exception would tear an
      // experiment mid-flight with the engine state inconsistent.
      CRAS_LOG(kError) << "unhandled exception escaped a simulated task";
      std::abort();
    }
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Reset(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.promise().done; }

  // Explicitly releases ownership; the coroutine continues detached.
  void Detach() { Reset(); }

  auto operator co_await() const& {
    struct Awaiter {
      Handle h;
      bool await_ready() const { return !h || h.promise().done; }
      void await_suspend(std::coroutine_handle<> cont) {
        CRAS_CHECK(!h.promise().continuation) << "a Task supports a single awaiter";
        h.promise().continuation = cont;
      }
      void await_resume() const {}
    };
    return Awaiter{handle_};
  }

 private:
  void Reset() {
    if (!handle_) {
      return;
    }
    if (handle_.promise().done) {
      handle_.destroy();
    } else {
      handle_.promise().detached = true;
    }
    handle_ = {};
  }

  Handle handle_{};
};

// Reclaims a coroutine frame left suspended at a blocking point (a port
// receive, a sleep event, a CPU queue slot, ...) when the simulation is torn
// down mid-flight, together with every frame transitively `co_await`ing it.
//
// Every coroutine in the simulator is a crsim::Task, so a parked frame's
// `promise().continuation` chain walks outward to the spawned thread's root
// frame. Frames are destroyed outermost-first: destroying an outer frame
// runs ~Task on its frame-local handle to the next-inner frame (marking it
// detached, not freeing it), so the inner frame is still valid when its turn
// comes.
//
// Precondition: the root frame's owning Task — if any — has already been
// destroyed or detached. Simulation objects satisfy this by declaring thread
// Task members after the blocking structures those threads park on, so the
// Tasks die first in reverse member order.
inline void DestroyParkedChain(std::coroutine_handle<> parked) {
  std::vector<std::coroutine_handle<>> chain;
  for (std::coroutine_handle<> h = parked; h;) {
    chain.push_back(h);
    h = Task::Handle::from_address(h.address()).promise().continuation;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    it->destroy();
  }
}

// Owning wrapper for a parked frame carried inside a queued message (a
// server-port request, a control message). If the message is dropped —
// still queued at teardown, or held as a local in a server frame that is
// itself reclaimed — the destructor destroys the parked chain. The resume
// path must call release() before (or instead of) resuming the handle.
class ParkedHandle {
 public:
  ParkedHandle() = default;
  explicit ParkedHandle(std::coroutine_handle<> h) : handle_(h) {}
  ParkedHandle(ParkedHandle&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  ParkedHandle& operator=(ParkedHandle&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        DestroyParkedChain(handle_);
      }
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ParkedHandle(const ParkedHandle&) = delete;
  ParkedHandle& operator=(const ParkedHandle&) = delete;
  ~ParkedHandle() {
    if (handle_) {
      DestroyParkedChain(handle_);
    }
  }

  std::coroutine_handle<> release() { return std::exchange(handle_, {}); }
  explicit operator bool() const { return static_cast<bool>(handle_); }

 private:
  std::coroutine_handle<> handle_{};
};

}  // namespace crsim

#endif  // SRC_SIM_TASK_H_
