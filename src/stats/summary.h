// Online summary statistics and fixed-bin histograms for bench output.

#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace crstats {

// Streaming min/max/mean/stddev (Welford).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::int64_t count() const { return n_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double mean() const { return mean_; }
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0;
  double m2_ = 0;
};

// Fixed-bin histogram: bucket b counts samples x with x <= upper_bounds[b]
// (and > upper_bounds[b-1]); samples past the last bound land in a final
// overflow bucket. Bounds are fixed at construction so recording is a
// binary search plus an increment — cheap enough for per-request paths.
// A Summary rides along for min/max/mean/stddev of the same samples.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : upper_bounds_(std::move(upper_bounds)), counts_(upper_bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
      if (upper_bounds_[i - 1] >= upper_bounds_[i]) {
        counts_.clear();  // poisoned; Add will keep only the summary
        break;
      }
    }
  }

  void Add(double x) {
    summary_.Add(x);
    if (counts_.empty()) {
      return;
    }
    const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
    counts_[static_cast<std::size_t>(it - upper_bounds_.begin())] += 1;
  }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // counts()[i] pairs with upper_bounds()[i]; counts().back() is overflow.
  const std::vector<std::int64_t>& counts() const { return counts_; }
  std::int64_t overflow() const { return counts_.empty() ? 0 : counts_.back(); }
  const Summary& summary() const { return summary_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::int64_t> counts_;
  Summary summary_;
};

// Percentiles over a retained sample vector (experiments here are small
// enough to keep everything).
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }

  // p in [0, 100]; nearest-rank.
  double Percentile(double p) {
    if (values_.empty()) {
      return 0.0;
    }
    Sort();
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double Median() { return Percentile(50); }
  const std::vector<double>& values() const { return values_; }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }
  std::vector<double> values_;
  bool sorted_ = false;
};

}  // namespace crstats

#endif  // SRC_STATS_SUMMARY_H_
