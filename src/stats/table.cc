#include "src/stats/table.h"

#include <cstdio>

#include "src/base/logging.h"

namespace crstats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::Cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

Table& Table::Cell(const char* value) { return Cell(std::string(value)); }

Table& Table::Cell(std::int64_t value) { return Cell(std::to_string(value)); }

Table& Table::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Cell(std::string(buf));
}

void Table::EndRow() {
  CRAS_CHECK(pending_.size() == headers_.size())
      << "row has " << pending_.size() << " cells, table has " << headers_.size() << " columns";
  rows_.push_back(std::move(pending_));
  pending_.clear();
}

std::string Table::ToString() const {
  std::string out;
  if (csv_) {
    auto append_csv = [&out](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        out += row[i];
      }
      out += '\n';
    };
    append_csv(headers_);
    for (const auto& row : rows_) {
      append_csv(row);
    }
    return out;
  }

  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        out += "  ";
      }
      out += row[i];
      out.append(widths[i] - row[i].size(), ' ');
    }
    while (!out.empty() && out.back() == ' ') {
      out.pop_back();
    }
    out += '\n';
  };
  append_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule.push_back(std::string(widths[i], '-'));
  }
  append_row(rule);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace crstats
