// Aligned-column table printer for bench output.
//
// Every figure/table bench prints its rows through this so the output is
// uniform and machine-extractable (`--csv` style output via SetCsv).

#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crstats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row-building: call Cell() once per column, then EndRow().
  Table& Cell(const std::string& value);
  Table& Cell(const char* value);
  Table& Cell(std::int64_t value);
  Table& Cell(double value, int precision = 2);
  void EndRow();

  // Renders with aligned columns to stdout (or CSV when set).
  void Print() const;
  void SetCsv(bool csv) { csv_ = csv; }

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool csv_ = false;
};

// Section banner: "== Figure 6: CRAS vs UFS throughput ==".
void PrintBanner(const std::string& title);

}  // namespace crstats

#endif  // SRC_STATS_TABLE_H_
