// Block buffer cache with LRU replacement.
//
// Caches disk blocks by block number. Contents are not materialized; a hit
// means the block is resident and costs no disk I/O. This is the Unix
// server's cache — CRAS deliberately bypasses it (its time-driven shared
// buffers are the only caching it wants, and a page-out of cache memory is
// exactly the kind of non-real-time dependency the paper designs away).

#ifndef SRC_UFS_BUFFER_CACHE_H_
#define SRC_UFS_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/base/logging.h"

namespace crufs {

class BufferCache {
 public:
  explicit BufferCache(std::int64_t capacity_blocks) : capacity_(capacity_blocks) {
    CRAS_CHECK(capacity_blocks > 0);
  }
  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Returns true (and refreshes recency) if `block` is resident.
  bool Lookup(std::int64_t block) {
    auto it = index_.find(block);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }

  // Checks residency without touching recency or stats.
  bool Contains(std::int64_t block) const { return index_.contains(block); }

  // Makes `block` resident, evicting the least recently used if full.
  void Insert(std::int64_t block) {
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (static_cast<std::int64_t>(lru_.size()) == capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(block);
    index_[block] = lru_.begin();
  }

  void Clear() {
    lru_.clear();
    index_.clear();
  }

  std::int64_t capacity() const { return capacity_; }
  std::int64_t size() const { return static_cast<std::int64_t>(lru_.size()); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return evictions_; }
  double hit_rate() const {
    const std::int64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::int64_t capacity_;
  std::list<std::int64_t> lru_;  // front = most recent
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace crufs

#endif  // SRC_UFS_BUFFER_CACHE_H_
