#include "src/ufs/ufs.h"

#include <algorithm>

#include "src/base/logging.h"

namespace crufs {

AllocPolicy TunedPolicy() { return AllocPolicy{}; }

AllocPolicy StockPolicy() {
  AllocPolicy policy;
  policy.maxcontig = 8;            // 64 KiB runs
  policy.rotdelay_blocks = 1;      // one-block rotational gap between runs
  policy.group_switch_blocks = 256;  // spread every 2 MiB across groups
  return policy;
}

Ufs::Ufs() : Ufs(Options{}) {}

Ufs::Ufs(const Options& options) : options_(options) {
  dirs_.insert("");  // the root
  sectors_per_block_ = kBlockSize / options_.geometry.sector_size;
  CRAS_CHECK(sectors_per_block_ * options_.geometry.sector_size == kBlockSize);
  const std::int64_t total_sectors =
      options_.total_sectors > 0 ? options_.total_sectors : options_.geometry.total_sectors();
  total_blocks_ = total_sectors / sectors_per_block_;
  if (options_.stripe_unit_sectors > 0) {
    stripe_unit_blocks_ = options_.stripe_unit_sectors / sectors_per_block_;
    CRAS_CHECK(stripe_unit_blocks_ * sectors_per_block_ == options_.stripe_unit_sectors)
        << "stripe unit must be a whole number of file-system blocks";
    stripe_width_blocks_ = options_.stripe_width_sectors > 0
                               ? options_.stripe_width_sectors / sectors_per_block_
                               : stripe_unit_blocks_;
    CRAS_CHECK(stripe_width_blocks_ % stripe_unit_blocks_ == 0)
        << "stripe width must be a whole number of stripe units";
  }
  free_blocks_ = total_blocks_;
  used_.assign(static_cast<std::size_t>(total_blocks_), false);
  const std::int64_t bpg = BlocksPerGroup();
  const std::int64_t groups = (total_blocks_ + bpg - 1) / bpg;
  group_free_.assign(static_cast<std::size_t>(groups), bpg);
  // The last group may be short.
  group_free_.back() = total_blocks_ - bpg * (groups - 1);
}

std::int64_t Ufs::BlocksPerGroup() const {
  return options_.cylinders_per_group * options_.geometry.sectors_per_cylinder() /
         sectors_per_block_;
}

namespace {

// Validates a path ("a", "a/b/c"): non-empty components, no leading or
// trailing slash, no "." / "..".
Status ValidatePath(const std::string& path) {
  if (path.empty()) {
    return crbase::InvalidArgumentError("empty path");
  }
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t end = std::min(path.find('/', start), path.size());
    const std::string component = path.substr(start, end - start);
    if (component.empty()) {
      return crbase::InvalidArgumentError("empty path component in '" + path + "'");
    }
    if (component == "." || component == "..") {
      return crbase::InvalidArgumentError("'.' and '..' are not allowed: '" + path + "'");
    }
    if (end == path.size()) {
      break;
    }
    start = end + 1;
  }
  return crbase::OkStatus();
}

// "a/b/c" -> "a/b"; "a" -> "" (the root).
std::string ParentOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

Result<InodeNumber> Ufs::Create(const std::string& name) {
  CRAS_RETURN_IF_ERROR(ValidatePath(name));
  if (directory_.contains(name) || dirs_.contains(name)) {
    return crbase::AlreadyExistsError("path exists: " + name);
  }
  if (!dirs_.contains(ParentOf(name))) {
    return crbase::NotFoundError("no such directory: " + ParentOf(name));
  }
  const InodeNumber n = static_cast<InodeNumber>(inodes_.size());
  Inode inode;
  inode.number = n;
  inode.name = name;
  inodes_.push_back(std::move(inode));
  cursors_.push_back(AllocCursor{});
  directory_[name] = n;
  return n;
}

Result<InodeNumber> Ufs::Lookup(const std::string& name) const {
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return crbase::NotFoundError("no such file: " + name);
  }
  return it->second;
}

Status Ufs::Remove(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return crbase::NotFoundError("no such file: " + name);
  }
  Inode& inode = inodes_[static_cast<std::size_t>(it->second)];
  for (std::int64_t block : inode.block_map) {
    Release(block);
  }
  inode.block_map.clear();
  inode.size_bytes = 0;
  directory_.erase(it);
  return crbase::OkStatus();
}

Status Ufs::Mkdir(const std::string& path) {
  CRAS_RETURN_IF_ERROR(ValidatePath(path));
  if (directory_.contains(path) || dirs_.contains(path)) {
    return crbase::AlreadyExistsError("path exists: " + path);
  }
  if (!dirs_.contains(ParentOf(path))) {
    return crbase::NotFoundError("no such directory: " + ParentOf(path));
  }
  dirs_.insert(path);
  return crbase::OkStatus();
}

Status Ufs::Rmdir(const std::string& path) {
  if (path.empty()) {
    return crbase::InvalidArgumentError("cannot remove the root");
  }
  if (!dirs_.contains(path)) {
    return crbase::NotFoundError("no such directory: " + path);
  }
  auto children = List(path);
  CRAS_CHECK(children.ok());
  if (!children->empty()) {
    return crbase::FailedPreconditionError("directory not empty: " + path);
  }
  dirs_.erase(path);
  return crbase::OkStatus();
}

bool Ufs::DirExists(const std::string& path) const {
  return path.empty() || dirs_.contains(path);
}

Result<std::vector<std::string>> Ufs::List(const std::string& path) const {
  if (!DirExists(path)) {
    return crbase::NotFoundError("no such directory: " + path);
  }
  const std::string prefix = path.empty() ? "" : path + "/";
  std::vector<std::string> children;
  auto is_immediate_child = [&prefix](const std::string& candidate) {
    if (candidate.size() <= prefix.size() || candidate.compare(0, prefix.size(), prefix) != 0) {
      return false;
    }
    return candidate.find('/', prefix.size()) == std::string::npos;
  };
  for (const auto& [file_path, n] : directory_) {
    if (is_immediate_child(file_path)) {
      children.push_back(file_path.substr(prefix.size()));
    }
  }
  for (const std::string& dir : dirs_) {
    if (is_immediate_child(dir)) {
      children.push_back(dir.substr(prefix.size()) + "/");
    }
  }
  std::sort(children.begin(), children.end());
  return children;
}

const Inode& Ufs::inode(InodeNumber n) const {
  CRAS_CHECK(n >= 0 && n < static_cast<InodeNumber>(inodes_.size())) << "bad inode " << n;
  return inodes_[static_cast<std::size_t>(n)];
}

std::int64_t Ufs::FindFree(std::int64_t start) const {
  if (free_blocks_ == 0) {
    return -1;
  }
  if (start < 0 || start >= total_blocks_) {
    start = 0;
  }
  for (std::int64_t i = start; i < total_blocks_; ++i) {
    if (!used_[static_cast<std::size_t>(i)]) {
      return i;
    }
  }
  for (std::int64_t i = 0; i < start; ++i) {
    if (!used_[static_cast<std::size_t>(i)]) {
      return i;
    }
  }
  return -1;
}

void Ufs::Take(std::int64_t block) {
  CRAS_CHECK(!used_[static_cast<std::size_t>(block)]);
  used_[static_cast<std::size_t>(block)] = true;
  --free_blocks_;
  --group_free_[static_cast<std::size_t>(block / BlocksPerGroup())];
}

void Ufs::Release(std::int64_t block) {
  CRAS_CHECK(used_[static_cast<std::size_t>(block)]);
  used_[static_cast<std::size_t>(block)] = false;
  ++free_blocks_;
  ++group_free_[static_cast<std::size_t>(block / BlocksPerGroup())];
}

std::int64_t Ufs::ChooseBlock(InodeNumber n, std::int64_t prev, std::int64_t file_blocks,
                              std::int64_t run_length) {
  const AllocPolicy& policy = options_.policy;
  const std::int64_t bpg = BlocksPerGroup();

  // FFS spreads large files: after group_switch_blocks blocks, jump to the
  // group with the most free space.
  if (prev >= 0 && file_blocks > 0 && file_blocks % policy.group_switch_blocks == 0) {
    std::size_t best = 0;
    for (std::size_t g = 1; g < group_free_.size(); ++g) {
      if (group_free_[g] > group_free_[best]) {
        best = g;
      }
    }
    return FindFree(static_cast<std::int64_t>(best) * bpg);
  }

  if (prev >= 0) {
    if (run_length < policy.maxcontig) {
      const std::int64_t next = prev + 1;
      if (next < total_blocks_ && !used_[static_cast<std::size_t>(next)]) {
        return next;
      }
    } else {
      // Run complete: skip the rotational-delay gap, then continue.
      return FindFree(prev + 1 + policy.rotdelay_blocks);
    }
    return FindFree(prev + 1);
  }
  // First block of a file: FFS hashes the inode across cylinder groups so
  // unrelated files land all over the surface (which is why multi-stream
  // retrieval seeks at all). Fall forward to a group with space.
  const std::int64_t groups = static_cast<std::int64_t>(group_free_.size());
  std::int64_t group = (n * 37) % groups;
  for (std::int64_t probe = 0; probe < groups; ++probe) {
    const std::int64_t candidate = (group + probe) % groups;
    if (group_free_[static_cast<std::size_t>(candidate)] > 0) {
      const std::int64_t start = candidate * bpg;
      if (stripe_unit_blocks_ > 0) {
        const std::int64_t aligned = FindFreeAligned(start, n);
        if (aligned >= 0) {
          return aligned;
        }
      }
      return FindFree(start);
    }
  }
  return -1;
}

std::int64_t Ufs::FindFreeAligned(std::int64_t start, InodeNumber n) const {
  // Stripe-aware placement: each file starts at a per-inode block *phase*
  // within a full stripe (unit * disks) at or after `start`, wrapping. The
  // phases walk the stripe in odd-multiplier steps, so file starts cover
  // every member disk and every sub-unit offset uniformly. Both components
  // matter: the disk spread balances concurrent streams' interval windows
  // across the array, and the sub-unit spread staggers where each stream's
  // reads cross unit boundaries. Without the stagger, same-rate streams
  // started together cross boundaries in the *same* intervals, and every
  // one of their reads splits in two at once — a synchronized request
  // spike the per-disk admission charge does not cover. The step is an
  // odd fixed-point golden-ratio fraction of the usual 2 MiB eight-disk
  // span, giving low-discrepancy coverage: any run of inodes spreads
  // near-evenly over every unit of the stripe.
  if (free_blocks_ == 0 || stripe_unit_blocks_ <= 0) {
    return -1;
  }
  const std::int64_t span = stripe_width_blocks_;
  const std::int64_t stripes = total_blocks_ / span;
  if (stripes == 0) {
    return -1;
  }
  const std::int64_t phase = (n * 157) % span;
  std::int64_t stripe = (start + span - 1) / span;
  for (std::int64_t probe = 0; probe < stripes; ++probe) {
    const std::int64_t candidate = ((stripe + probe) % stripes) * span + phase;
    if (!used_[static_cast<std::size_t>(candidate)]) {
      return candidate;
    }
  }
  return -1;
}

Status Ufs::Append(InodeNumber n, std::int64_t bytes) {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  if (bytes < 0) {
    return crbase::InvalidArgumentError("negative append");
  }
  Inode& inode = inodes_[static_cast<std::size_t>(n)];
  AllocCursor& cursor = cursors_[static_cast<std::size_t>(n)];
  const std::int64_t end = inode.size_bytes + bytes;
  const std::int64_t needed_blocks = (end + kBlockSize - 1) / kBlockSize;
  while (static_cast<std::int64_t>(inode.block_map.size()) < needed_blocks) {
    const std::int64_t prev = inode.block_map.empty() ? -1 : inode.block_map.back();
    const std::int64_t chosen =
        ChooseBlock(n, prev, static_cast<std::int64_t>(inode.block_map.size()), cursor.run_length);
    if (chosen < 0) {
      return crbase::ResourceExhaustedError("file system full");
    }
    Take(chosen);
    cursor.run_length = (prev >= 0 && chosen == prev + 1) ? cursor.run_length + 1 : 1;
    inode.block_map.push_back(chosen);
  }
  inode.size_bytes = end;
  return crbase::OkStatus();
}

Status Ufs::PreallocateContiguous(InodeNumber n, std::int64_t bytes) {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  Inode& inode = inodes_[static_cast<std::size_t>(n)];
  if (!inode.block_map.empty()) {
    return crbase::FailedPreconditionError("preallocation requires an empty file");
  }
  const std::int64_t needed = (bytes + kBlockSize - 1) / kBlockSize;
  // Scan for a contiguous free run of `needed` blocks.
  std::int64_t run_start = -1;
  std::int64_t run_len = 0;
  for (std::int64_t i = 0; i < total_blocks_; ++i) {
    if (used_[static_cast<std::size_t>(i)]) {
      run_start = -1;
      run_len = 0;
      continue;
    }
    if (run_start < 0) {
      run_start = i;
    }
    if (++run_len == needed) {
      for (std::int64_t b = run_start; b < run_start + needed; ++b) {
        Take(b);
        inode.block_map.push_back(b);
      }
      inode.size_bytes = bytes;
      cursors_[static_cast<std::size_t>(n)].run_length = needed;
      return crbase::OkStatus();
    }
  }
  return crbase::ResourceExhaustedError("no contiguous run of " + std::to_string(needed) +
                                        " blocks");
}

Status Ufs::Fragment(InodeNumber n, crbase::Rng& rng) {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  Inode& inode = inodes_[static_cast<std::size_t>(n)];
  for (std::int64_t& block : inode.block_map) {
    Release(block);
    std::int64_t replacement = -1;
    // Random placement attempts, falling back to first-free.
    for (int attempt = 0; attempt < 32 && replacement < 0; ++attempt) {
      const std::int64_t candidate =
          static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(total_blocks_)));
      if (!used_[static_cast<std::size_t>(candidate)]) {
        replacement = candidate;
      }
    }
    if (replacement < 0) {
      replacement = FindFree(0);
    }
    CRAS_CHECK(replacement >= 0);
    Take(replacement);
    block = replacement;
  }
  return crbase::OkStatus();
}

Status Ufs::Rearrange(InodeNumber n) {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  Inode& inode = inodes_[static_cast<std::size_t>(n)];
  if (inode.block_map.empty()) {
    return crbase::OkStatus();
  }
  // Free the current placement, then greedily re-place into the longest
  // free runs, longest first. With the file's own blocks freed there is at
  // least as much contiguous space as the file occupies.
  for (std::int64_t block : inode.block_map) {
    Release(block);
  }
  const std::int64_t needed = static_cast<std::int64_t>(inode.block_map.size());
  // Collect free runs.
  struct Run {
    std::int64_t start;
    std::int64_t length;
  };
  std::vector<Run> runs;
  std::int64_t run_start = -1;
  for (std::int64_t i = 0; i <= total_blocks_; ++i) {
    const bool is_free = i < total_blocks_ && !used_[static_cast<std::size_t>(i)];
    if (is_free && run_start < 0) {
      run_start = i;
    } else if (!is_free && run_start >= 0) {
      runs.push_back(Run{run_start, i - run_start});
      run_start = -1;
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.length > b.length; });
  std::vector<std::int64_t> placement;
  placement.reserve(static_cast<std::size_t>(needed));
  for (const Run& run : runs) {
    for (std::int64_t b = run.start; b < run.start + run.length; ++b) {
      if (static_cast<std::int64_t>(placement.size()) == needed) {
        break;
      }
      placement.push_back(b);
    }
    if (static_cast<std::int64_t>(placement.size()) == needed) {
      break;
    }
  }
  CRAS_CHECK(static_cast<std::int64_t>(placement.size()) == needed)
      << "freed blocks must fit back";
  for (std::size_t i = 0; i < placement.size(); ++i) {
    Take(placement[i]);
    inode.block_map[i] = placement[i];
  }
  cursors_[static_cast<std::size_t>(n)].run_length = 1;
  return crbase::OkStatus();
}

Result<crdisk::Lba> Ufs::BlockLba(InodeNumber n, std::int64_t file_block) const {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  const Inode& inode = inodes_[static_cast<std::size_t>(n)];
  if (file_block < 0 || file_block >= static_cast<std::int64_t>(inode.block_map.size())) {
    return crbase::OutOfRangeError("file block out of range");
  }
  return inode.block_map[static_cast<std::size_t>(file_block)] * sectors_per_block_;
}

Result<std::vector<Extent>> Ufs::GetExtents(InodeNumber n, std::int64_t offset,
                                            std::int64_t length,
                                            std::int64_t max_bytes_per_extent) const {
  if (n < 0 || n >= static_cast<InodeNumber>(inodes_.size())) {
    return crbase::NotFoundError("bad inode");
  }
  const Inode& inode = inodes_[static_cast<std::size_t>(n)];
  if (offset < 0 || length < 0 || offset + length > inode.size_bytes) {
    return crbase::OutOfRangeError("range beyond EOF");
  }
  if (max_bytes_per_extent < kBlockSize) {
    return crbase::InvalidArgumentError("max extent below block size");
  }
  std::vector<Extent> extents;
  if (length == 0) {
    return extents;
  }
  const std::int64_t first_block = offset / kBlockSize;
  const std::int64_t last_block = (offset + length - 1) / kBlockSize;
  const std::int64_t max_blocks = max_bytes_per_extent / kBlockSize;
  // Reads are block-granular (the cache holds whole blocks); the caller's
  // byte range is widened to block boundaries exactly as a real FS would.
  for (std::int64_t fb = first_block; fb <= last_block; ++fb) {
    const std::int64_t disk_block = inode.block_map[static_cast<std::size_t>(fb)];
    const crdisk::Lba lba = disk_block * sectors_per_block_;
    if (!extents.empty()) {
      Extent& tail = extents.back();
      const bool adjacent = tail.lba + tail.sectors == lba;
      const bool has_room = tail.sectors + sectors_per_block_ <= max_blocks * sectors_per_block_;
      if (adjacent && has_room) {
        tail.sectors += sectors_per_block_;
        continue;
      }
    }
    extents.push_back(Extent{lba, sectors_per_block_});
  }
  return extents;
}

double Ufs::ContiguityOf(InodeNumber n) const {
  const Inode& node = inode(n);
  if (node.block_map.size() < 2) {
    return 1.0;
  }
  std::int64_t contiguous = 0;
  for (std::size_t i = 1; i < node.block_map.size(); ++i) {
    if (node.block_map[i] == node.block_map[i - 1] + 1) {
      ++contiguous;
    }
  }
  return static_cast<double>(contiguous) / static_cast<double>(node.block_map.size() - 1);
}

}  // namespace crufs
