// An FFS-like Unix file system over the simulated disk.
//
// CRAS's central layout decision is to *share* the Unix file system's disk
// layout: the same files are readable through both paths, CRAS adds no
// on-disk format of its own, and all non-real-time functionality stays in
// the Unix server. This module provides that layout:
//
//   * 8 KiB blocks over the disk's 512-byte sectors;
//   * cylinder groups, a block bitmap per group;
//   * inodes with a block map, created through an FFS-flavoured allocator
//     whose contiguity is controlled by a tunefs-style `maxcontig` knob
//     (the paper tunes it at file-system creation time so blocks are
//     allocated "as contiguously as possible");
//   * a flat root directory (name -> inode);
//   * extent queries (contiguous runs) used by CRAS to build reads of up to
//     256 KiB;
//   * fragmentation injection, to reproduce the paper's "edited file"
//     problem (Section 3.2).
//
// Simplifications, documented for reviewers: metadata (superblock, bitmaps,
// inodes, directories) lives in memory as if permanently cached, and file
// *contents* are never materialized — only the block addresses matter,
// because every result in the paper is a function of I/O timing. Creating
// and growing files allocates blocks instantly ("offline mkfs"); the timed
// write path used by the constant-rate-writing extension goes through the
// disk model like any other I/O.

#ifndef SRC_UFS_UFS_H_
#define SRC_UFS_UFS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/random.h"
#include "src/base/status.h"
#include "src/disk/geometry.h"

namespace crufs {

using crbase::Result;
using crbase::Status;

using InodeNumber = std::int64_t;
inline constexpr InodeNumber kInvalidInode = -1;

inline constexpr std::int64_t kBlockSize = 8 * crbase::kKiB;

// A run of contiguous file-system blocks, expressed in disk sectors.
struct Extent {
  crdisk::Lba lba = 0;
  std::int64_t sectors = 0;

  std::int64_t bytes() const { return sectors * 512; }
  bool operator==(const Extent&) const = default;
};

// Allocation policy knobs. The defaults model a file system tuned the way
// the paper tunes it (`tunefs` for maximum contiguity). `StockPolicy()`
// models an untuned FFS: short contiguous runs with rotational-delay gaps
// and periodic cylinder-group switches, which is what makes long files
// scatter.
struct AllocPolicy {
  // Longest contiguous run the allocator will build before inserting a gap.
  std::int64_t maxcontig = 1 << 30;
  // Blocks skipped after each full run (FFS "rotdelay" gap).
  std::int64_t rotdelay_blocks = 0;
  // After this many blocks of one file, move to the next cylinder group
  // (FFS spreads large files across groups).
  std::int64_t group_switch_blocks = 1 << 30;
};

AllocPolicy TunedPolicy();   // the paper's configuration
AllocPolicy StockPolicy();   // untuned FFS

struct Inode {
  InodeNumber number = kInvalidInode;
  std::string name;
  std::int64_t size_bytes = 0;
  std::vector<std::int64_t> block_map;  // file block index -> disk block number
};

class Ufs {
 public:
  struct Options {
    crdisk::DiskGeometry geometry;
    std::int64_t cylinders_per_group = 16;
    AllocPolicy policy;
    // Striped-volume support. When total_sectors > 0 the file system spans
    // that many sectors of *logical* volume space (an N-disk volume is N
    // times larger than the per-disk `geometry`, which then only sizes
    // cylinder groups). When stripe_unit_sectors > 0 the allocator starts
    // each new file in a fresh stripe unit — at a per-inode phase within
    // it — so concurrent streams' interval reads fan out across member
    // disks and their stripe-boundary crossings fall in different
    // intervals.
    std::int64_t total_sectors = 0;
    std::int64_t stripe_unit_sectors = 0;
    // Full stripe width (unit * member disks). When set, the per-inode
    // start phase spreads over the whole width, so file starts cover every
    // member disk *and* every sub-unit offset uniformly; defaults to one
    // unit.
    std::int64_t stripe_width_sectors = 0;
  };

  Ufs();
  explicit Ufs(const Options& options);

  // --- namespace ---
  // Names are slash-separated paths ("promos/kyoto.mpg"); every parent
  // directory must already exist (the root does). Directory metadata lives
  // with the rest of the metadata (in memory, as if cached); only file
  // *data* blocks occupy the disk.
  Result<InodeNumber> Create(const std::string& path);
  Result<InodeNumber> Lookup(const std::string& path) const;
  Status Remove(const std::string& path);
  const Inode& inode(InodeNumber n) const;

  // --- directories ---
  Status Mkdir(const std::string& path);
  // Removes an empty directory.
  Status Rmdir(const std::string& path);
  bool DirExists(const std::string& path) const;
  // Immediate children of `path` (files and directories), sorted; child
  // directories carry a trailing '/'.
  Result<std::vector<std::string>> List(const std::string& path) const;

  // --- allocation ---
  // Grows the file by `bytes`, allocating blocks under the current policy.
  Status Append(InodeNumber n, std::int64_t bytes);
  // Reserves `bytes` of contiguous blocks up front — the paper's suggested
  // Unix-file-system modification enabling constant-rate writing (§4).
  Status PreallocateContiguous(InodeNumber n, std::int64_t bytes);
  // Reallocates every block of the file randomly across the disk, modelling
  // a heavily edited file (§3.2 problem 3).
  Status Fragment(InodeNumber n, crbase::Rng& rng);
  // The paper's remedy for edited files: "rearrange media files whose data
  // blocks are allocated randomly". Reallocates the file into the longest
  // contiguous runs available (ideally one), restoring constant-rate
  // retrievability. An offline administrative operation (Unix-side, not
  // CRAS-side), so no simulated time passes.
  Status Rearrange(InodeNumber n);

  // --- geometry / extents ---
  std::int64_t block_size() const { return kBlockSize; }
  std::int64_t sectors_per_block() const { return sectors_per_block_; }
  std::int64_t total_blocks() const { return total_blocks_; }
  std::int64_t free_blocks() const { return free_blocks_; }
  std::int64_t stripe_unit_blocks() const { return stripe_unit_blocks_; }
  std::int64_t groups() const { return static_cast<std::int64_t>(group_free_.size()); }

  // Disk sector address of file block `file_block`.
  Result<crdisk::Lba> BlockLba(InodeNumber n, std::int64_t file_block) const;

  // Contiguous runs covering [offset, offset+length) of the file, split so
  // no run exceeds `max_bytes_per_extent` (CRAS uses 256 KiB).
  Result<std::vector<Extent>> GetExtents(InodeNumber n, std::int64_t offset, std::int64_t length,
                                         std::int64_t max_bytes_per_extent) const;

  // Fraction of adjacent file-block pairs that are disk-contiguous; 1.0 for
  // a perfectly laid out file.
  double ContiguityOf(InodeNumber n) const;

 private:
  std::int64_t BlocksPerGroup() const;
  // Finds a free block at or after `start` (wrapping); -1 when full.
  std::int64_t FindFree(std::int64_t start) const;
  // Finds a free first block for file `n` in a fresh stripe unit at or
  // after `start` (wrapping), at a per-inode phase inside the unit; -1 when
  // none exists or the volume is not striped.
  std::int64_t FindFreeAligned(std::int64_t start, InodeNumber n) const;
  void Take(std::int64_t block);
  void Release(std::int64_t block);
  // Chooses the next block for file `n` whose previous block is `prev`
  // (-1 for the first block) and that already has `file_blocks` blocks.
  std::int64_t ChooseBlock(InodeNumber n, std::int64_t prev, std::int64_t file_blocks,
                           std::int64_t run_length);

  Options options_;
  std::int64_t sectors_per_block_ = 0;
  std::int64_t stripe_unit_blocks_ = 0;   // 0 = not striped
  std::int64_t stripe_width_blocks_ = 0;  // phase-stagger span; >= unit
  std::int64_t total_blocks_ = 0;
  std::int64_t free_blocks_ = 0;
  std::vector<bool> used_;
  std::vector<std::int64_t> group_free_;
  std::map<std::string, InodeNumber> directory_;  // full path -> inode
  std::set<std::string> dirs_;                     // full paths; "" is the root
  // Deque: Inode references handed out (and held across coroutine suspension
  // points by the Unix server) must survive later Create() calls.
  std::deque<Inode> inodes_;
  // Per-inode allocator cursor state.
  struct AllocCursor {
    std::int64_t run_length = 0;
  };
  std::deque<AllocCursor> cursors_;
};

}  // namespace crufs

#endif  // SRC_UFS_UFS_H_
