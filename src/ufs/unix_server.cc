#include "src/ufs/unix_server.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace crufs {

UnixServer::UnixServer(crrt::Kernel& kernel, crdisk::IoTarget& driver, Ufs& fs)
    : UnixServer(kernel, driver, fs, Options{}) {}

UnixServer::UnixServer(crrt::Kernel& kernel, crdisk::IoTarget& driver, Ufs& fs,
                       const Options& options)
    : kernel_(&kernel),
      driver_(&driver),
      fs_(&fs),
      options_(options),
      port_(kernel.engine()),
      cache_(options.cache_blocks) {}

UnixServer::~UnixServer() {
  // Requests still queued hold their clients' parked chains; draining them
  // lets each Request's ParkedHandle reclaim its client. The server thread's
  // own frame is not reachable from here — only client frames are, and their
  // owners (test-local Tasks) die before the server.
  Request request;
  while (port_.TryReceive(&request)) {
  }
}

void UnixServer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  thread_ = kernel_->Spawn("unix-server", crrt::kPriorityUnixServer,
                           [this](crrt::ThreadContext& ctx) { return ServerThread(ctx); });
}

crsim::Task UnixServer::ServerThread(crrt::ThreadContext& ctx) {
  for (;;) {
    Request request = co_await port_.Receive();
    const crbase::Time start = ctx.Now();
    co_await Serve(ctx, std::move(request));
    stats_.busy_time += ctx.Now() - start;
  }
}

crsim::Task UnixServer::Serve(crrt::ThreadContext& ctx, Request request) {
  ++stats_.requests;
  if (request.offset < 0 || request.length < 0) {
    request.Complete(crbase::InvalidArgumentError("negative offset or length"));
    co_return;
  }
  if (request.kind == Request::kWrite) {
    co_await ServeWrite(ctx, std::move(request));
    co_return;
  }
  const Inode& inode = fs_->inode(request.inode);
  if (request.offset + request.length > inode.size_bytes) {
    request.Complete(crbase::OutOfRangeError("read beyond EOF"));
    co_return;
  }
  co_await ctx.Compute(options_.cpu_per_request);
  if (request.length == 0) {
    request.Complete(crbase::OkStatus());
    co_return;
  }

  const std::int64_t first_block = request.offset / kBlockSize;
  const std::int64_t last_block = (request.offset + request.length - 1) / kBlockSize;
  const std::int64_t file_blocks = static_cast<std::int64_t>(inode.block_map.size());
  stats_.blocks_requested += last_block - first_block + 1;

  for (std::int64_t fb = first_block; fb <= last_block; ++fb) {
    const std::int64_t disk_block = inode.block_map[static_cast<std::size_t>(fb)];
    co_await ctx.Compute(options_.cpu_per_block);
    if (cache_.Lookup(disk_block)) {
      continue;
    }
    // Miss: build a clustered read starting here — disk-contiguous file
    // blocks, none already cached, extending past the requested range as
    // read-ahead, up to cluster_blocks total.
    std::int64_t run = 1;
    while (run < options_.cluster_blocks && fb + run < file_blocks) {
      const std::int64_t next = inode.block_map[static_cast<std::size_t>(fb + run)];
      if (next != disk_block + run || cache_.Contains(next)) {
        break;
      }
      ++run;
    }
    crdisk::DiskRequest io;
    io.kind = crdisk::IoKind::kRead;
    io.lba = disk_block * fs_->sectors_per_block();
    io.sectors = run * fs_->sectors_per_block();
    io.realtime = false;  // the Unix server has no reservation
    co_await driver_->Execute(std::move(io));
    ++stats_.disk_reads;
    stats_.blocks_from_disk += run;
    for (std::int64_t i = 0; i < run; ++i) {
      cache_.Insert(disk_block + i);
    }
  }
  request.Complete(crbase::OkStatus());
}

crsim::Task UnixServer::ServeWrite(crrt::ThreadContext& ctx, Request request) {
  co_await ctx.Compute(options_.cpu_per_request);
  // Extend the file if the write ends past EOF (this is how editing grows a
  // movie; the allocator's policy decides where the new blocks land).
  const std::int64_t end = request.offset + request.length;
  if (end > fs_->inode(request.inode).size_bytes) {
    crbase::Status grown =
        fs_->Append(request.inode, end - fs_->inode(request.inode).size_bytes);
    if (!grown.ok()) {
      request.Complete(std::move(grown));
      co_return;
    }
  }
  if (request.length == 0) {
    request.Complete(crbase::OkStatus());
    co_return;
  }
  const Inode& inode = fs_->inode(request.inode);
  const std::int64_t first_block = request.offset / kBlockSize;
  const std::int64_t last_block = (end - 1) / kBlockSize;
  stats_.blocks_requested += last_block - first_block + 1;
  // Write through, coalescing disk-contiguous runs like the read path.
  for (std::int64_t fb = first_block; fb <= last_block; ++fb) {
    const std::int64_t disk_block = inode.block_map[static_cast<std::size_t>(fb)];
    co_await ctx.Compute(options_.cpu_per_block);
    std::int64_t run = 1;
    while (run < options_.cluster_blocks && fb + run <= last_block) {
      const std::int64_t next = inode.block_map[static_cast<std::size_t>(fb + run)];
      if (next != disk_block + run) {
        break;
      }
      ++run;
    }
    crdisk::DiskRequest io;
    io.kind = crdisk::IoKind::kWrite;
    io.lba = disk_block * fs_->sectors_per_block();
    io.sectors = run * fs_->sectors_per_block();
    io.realtime = false;
    co_await driver_->Execute(std::move(io));
    ++stats_.disk_writes;
    stats_.blocks_to_disk += run;
    for (std::int64_t i = 0; i < run; ++i) {
      cache_.Insert(disk_block + i);  // written data is the freshest copy
    }
    fb += run - 1;
  }
  request.Complete(crbase::OkStatus());
}

}  // namespace crufs
