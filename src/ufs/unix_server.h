// The Unix server (Lites-style): the baseline read path.
//
// A single server thread serves all clients' read requests in arrival
// order. Each miss issues a clustered read (up to `cluster_blocks`
// contiguous blocks, with read-ahead past the requested range) through the
// driver's *normal* queue. This reproduces the two structural reasons the
// paper's UFS baseline cannot provide rate guarantees:
//
//   1. all clients — continuous-media players and background `cat`s alike —
//      funnel through one queue served FIFO by one thread, so a high-
//      priority player's request waits behind any number of low-priority
//      requests (priority inversion);
//   2. its disk requests share the normal queue with every other
//      non-real-time I/O and receive no reservation.
//
// The server submits through the crdisk::IoTarget interface, so the same
// code serves a single-disk driver or a striped multi-disk volume (whose
// logical block space the mounted Ufs then spans).

#ifndef SRC_UFS_UNIX_SERVER_H_
#define SRC_UFS_UNIX_SERVER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/status.h"
#include "src/base/time_units.h"
#include "src/disk/io_target.h"
#include "src/rtmach/kernel.h"
#include "src/sim/port.h"
#include "src/sim/task.h"
#include "src/ufs/buffer_cache.h"
#include "src/ufs/ufs.h"

namespace crufs {

struct UnixServerStats {
  std::int64_t requests = 0;
  std::int64_t blocks_requested = 0;
  std::int64_t disk_reads = 0;
  std::int64_t blocks_from_disk = 0;
  std::int64_t disk_writes = 0;
  std::int64_t blocks_to_disk = 0;
  crbase::Duration busy_time = 0;
};

class UnixServer {
 public:
  struct Options {
    std::int64_t cache_blocks = 512;   // 4 MiB buffer cache
    std::int64_t cluster_blocks = 8;   // 64 KiB clustered reads (Table 4's B_other)
    // CPU charged per request and per block served, modelling system-call
    // and copy overhead on the paper's 100 MHz Pentium.
    crbase::Duration cpu_per_request = crbase::Microseconds(400);
    crbase::Duration cpu_per_block = crbase::Microseconds(150);
  };

  UnixServer(crrt::Kernel& kernel, crdisk::IoTarget& driver, Ufs& fs);
  UnixServer(crrt::Kernel& kernel, crdisk::IoTarget& driver, Ufs& fs, const Options& options);
  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;
  // Reclaims client frames whose requests were still queued unprocessed.
  ~UnixServer();

  // Spawns the server thread (idempotent).
  void Start();

  // Client-side blocking read covering [offset, offset+length):
  // `Status st = co_await server.Read(inode, offset, length);`
  // Completion means every covered block is resident in client memory.
  auto Read(InodeNumber inode, std::int64_t offset, std::int64_t length) {
    return ReadAwaiter{this,
                       Request{Request::kRead, inode, offset, length, nullptr, {}},
                       crbase::Status()};
  }

  // Client-side blocking write covering [offset, offset+length). Extends
  // the file if the range ends past EOF (allocating under the mounted
  // policy), writes through the cache, and issues the disk writes on the
  // normal queue before completing (synchronous semantics — the paper's
  // editing workloads care about the disk traffic, not dirty-buffer
  // laundering policy).
  auto Write(InodeNumber inode, std::int64_t offset, std::int64_t length) {
    return ReadAwaiter{this,
                       Request{Request::kWrite, inode, offset, length, nullptr, {}},
                       crbase::Status()};
  }

  const UnixServerStats& stats() const { return stats_; }
  BufferCache& cache() { return cache_; }
  std::size_t queue_depth() const { return port_.size(); }

 private:
  struct Request {
    enum Kind { kRead, kWrite } kind = kRead;
    InodeNumber inode;
    std::int64_t offset;
    std::int64_t length;
    std::function<void(crbase::Status)> done;
    // Client frame suspended until `done` fires. Owning: if the request is
    // dropped (queued at teardown, or held in a server frame that is itself
    // reclaimed) the client's chain is destroyed with it.
    crsim::ParkedHandle parked;

    // Resumes the client with `st`. Releases `parked` first: once resumed
    // the client frame is live again and no longer ours to reclaim.
    void Complete(crbase::Status st) {
      parked.release();
      done(std::move(st));
    }
  };

  struct ReadAwaiter {
    UnixServer* server;
    Request request;
    crbase::Status result;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      request.done = [this, h](crbase::Status st) {
        result = std::move(st);
        h.resume();
      };
      request.parked = crsim::ParkedHandle(h);
      server->port_.Send(std::move(request));
    }
    crbase::Status await_resume() { return std::move(result); }
  };

  crsim::Task ServerThread(crrt::ThreadContext& ctx);
  // Serves one request to completion (cache fills included).
  crsim::Task Serve(crrt::ThreadContext& ctx, Request request);
  crsim::Task ServeWrite(crrt::ThreadContext& ctx, Request request);

  crrt::Kernel* kernel_;
  crdisk::IoTarget* driver_;
  Ufs* fs_;
  Options options_;
  crsim::Port<Request> port_;
  BufferCache cache_;
  UnixServerStats stats_;
  crsim::Task thread_;
  bool started_ = false;
};

}  // namespace crufs

#endif  // SRC_UFS_UNIX_SERVER_H_
