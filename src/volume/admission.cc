#include "src/volume/admission.h"

#include "src/base/logging.h"

namespace cras {

DiskParams MeasuredSt32550nParams() { return DiskParams{}; }

AdmissionModel::AdmissionModel(const DiskParams& params, Duration interval,
                               std::int64_t max_read_bytes)
    : params_(params), interval_(interval), max_read_bytes_(max_read_bytes) {
  CRAS_CHECK(interval > 0);
  CRAS_CHECK(max_read_bytes > 0);
  CRAS_CHECK(params.transfer_rate > 0);
}

std::int64_t AdmissionModel::BytesPerInterval(const StreamDemand& demand) const {
  return crbase::BytesInDuration(demand.rate_bytes_per_sec, interval_) + demand.chunk_bytes;
}

std::int64_t AdmissionModel::RequestsPerInterval(const StreamDemand& demand) const {
  const std::int64_t bytes = BytesPerInterval(demand);
  return (bytes + max_read_bytes_ - 1) / max_read_bytes_;
}

std::int64_t AdmissionModel::BufferBytes(const StreamDemand& demand) const {
  return 2 * BytesPerInterval(demand);
}

OverheadTerms AdmissionModel::Overheads(std::int64_t requests) const {
  OverheadTerms terms;
  if (requests <= 0) {
    return terms;
  }
  terms.other = crbase::TransferTime(params_.b_other, params_.transfer_rate);
  if (requests == 1) {
    // (14): O_other + one worst-case seek + rotation + command. The O_other
    // mechanical components (its wrap seek, rotation, command) fold into the
    // matching terms so each histogram audits one physical mechanism.
    terms.command = 2 * params_.t_cmd;
    terms.seek = 2 * params_.t_seek_max;
    terms.rotation = 2 * params_.t_rot;
    return terms;
  }
  // (15): O_other, plus the C-SCAN sweep bound 2*T_seek_max +
  // (N-2)*T_seek_min, plus per-request rotation and command overheads.
  terms.command = (requests + 1) * params_.t_cmd;
  terms.seek = 3 * params_.t_seek_max + (requests - 2) * params_.t_seek_min;
  terms.rotation = (requests + 1) * params_.t_rot;
  return terms;
}

Duration AdmissionModel::TotalOverhead(std::int64_t requests) const {
  return Overheads(requests).total();
}

AdmissionEstimate AdmissionModel::Evaluate(const std::vector<StreamDemand>& streams) const {
  AdmissionEstimate estimate;
  for (const StreamDemand& s : streams) {
    estimate.requests += RequestsPerInterval(s);
    estimate.bytes += BytesPerInterval(s);
    estimate.buffer_bytes += BufferBytes(s);
  }
  estimate.terms = Overheads(estimate.requests);
  estimate.overhead = estimate.terms.total();
  estimate.transfer = crbase::TransferTime(estimate.bytes, params_.transfer_rate);
  return estimate;
}

bool AdmissionModel::Admissible(const std::vector<StreamDemand>& streams,
                                std::int64_t memory_budget_bytes) const {
  const AdmissionEstimate estimate = Evaluate(streams);
  return estimate.io_time() <= interval_ && estimate.buffer_bytes <= memory_budget_bytes;
}

Duration AdmissionModel::MinimalInterval(const std::vector<StreamDemand>& streams) const {
  // T >= (O_total*D + C_total) / (D - R_total), formula (1). O_total depends
  // on N which depends on T through the request count; iterate to a fixed
  // point from the optimistic one-request-per-stream start.
  double r_total = 0;
  std::int64_t c_total = 0;
  for (const StreamDemand& s : streams) {
    r_total += s.rate_bytes_per_sec;
    c_total += s.chunk_bytes;
  }
  if (r_total >= params_.transfer_rate) {
    return -1;
  }
  Duration t = crbase::Milliseconds(1);
  for (int iter = 0; iter < 64; ++iter) {
    std::int64_t requests = 0;
    for (const StreamDemand& s : streams) {
      const std::int64_t bytes = crbase::BytesInDuration(s.rate_bytes_per_sec, t) + s.chunk_bytes;
      requests += (bytes + max_read_bytes_ - 1) / max_read_bytes_;
    }
    const double o_total = crbase::ToSeconds(TotalOverhead(requests));
    const double next_seconds =
        (o_total * params_.transfer_rate + static_cast<double>(c_total)) /
        (params_.transfer_rate - r_total);
    const Duration next = crbase::SecondsF(next_seconds);
    if (next <= t) {
      return next > t - crbase::Microseconds(1) ? next : t;
    }
    t = next;
  }
  return t;
}

}  // namespace cras
