// CRAS admission test (§2.3, Appendices B and C).
//
// The test estimates, from worst-case disk parameters, the time needed to
// retrieve every admitted stream's data within one interval T:
//
//   A_i        = T*R_i + C_i                               (3)
//   feasible  <=>  O_total + A_total/D  <=  T              (equiv. to (1))
//   B_total    = 2*(T*R_total + C_total)                   (2)
//
// with the overhead decomposed per Appendix C:
//
//   O_other    = T_cmd + T_seek_max + T_rot + B_other/D    (9)
//   O_cmd      = N*T_cmd                                   (10)
//   O_seek(1)  = T_seek_max                                (11)
//   O_seek(N)  = 2*T_seek_max + (N-2)*T_seek_min, N >= 2   (12)
//   O_rot      = N*T_rot                                   (13)
//   O_total(1) = B_other/D + 2*(T_seek_max+T_rot+T_cmd)    (14)
//   O_total(N) = B_other/D + 3*T_seek_max
//                + (N-2)*T_seek_min + (N+1)*(T_rot+T_cmd)  (15)
//
// N counts disk *read requests* per interval: a stream needing more than the
// 256 KiB maximum read size per interval contributes several. Every term is
// a worst case (full-stroke wrap seek, full rotational latency, a maximal
// non-real-time request in flight), which is why the measured-to-estimated
// ratio of Figures 8-9 sits far below 100% for small, low-rate workloads.

#ifndef SRC_VOLUME_ADMISSION_H_
#define SRC_VOLUME_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/time_units.h"
#include "src/disk/seek_model.h"

namespace cras {

using crbase::Duration;

// Table 3/4: the disk parameters the admission test consumes. Obtained by
// measuring the (simulated) drive — see bench/table4_disk_params.
struct DiskParams {
  double transfer_rate = 6.5e6;                       // D, bytes/second
  Duration t_seek_max = crbase::Milliseconds(17);     // full-stroke seek
  Duration t_seek_min = crbase::Milliseconds(4);      // linear-fit intercept
  Duration t_rot = crbase::MillisecondsF(8.33);       // full rotation
  Duration t_cmd = crbase::Milliseconds(2);           // command overhead
  std::int64_t b_other = 64 * crbase::kKiB;           // max other-traffic request
};

// The parameters the paper reports for its ST32550N (Table 4).
DiskParams MeasuredSt32550nParams();

// What a stream declares at crs_open: its worst-case data rate and its
// largest chunk.
struct StreamDemand {
  double rate_bytes_per_sec = 0;  // R_i
  std::int64_t chunk_bytes = 0;   // C_i
};

// O_total(N) split by mechanism, so the audit ledger can compare each term
// against its measured counterpart. total() reproduces (14)/(15) exactly:
//   N == 1: command = 2*T_cmd, seek = 2*T_seek_max, rotation = 2*T_rot
//   N >= 2: command = (N+1)*T_cmd, seek = 3*T_seek_max + (N-2)*T_seek_min,
//           rotation = (N+1)*T_rot
// and other = B_other/D in both (the lone non-real-time request, (9)).
struct OverheadTerms {
  Duration command = 0;
  Duration seek = 0;
  Duration rotation = 0;
  Duration other = 0;
  Duration total() const { return command + seek + rotation + other; }
};

// The per-interval cost estimate for a set of admitted streams.
struct AdmissionEstimate {
  std::int64_t requests = 0;       // N
  std::int64_t bytes = 0;          // A_total
  std::int64_t buffer_bytes = 0;   // B_total
  Duration overhead = 0;           // O_total(N)
  Duration transfer = 0;           // A_total / D
  OverheadTerms terms;             // O_total(N) decomposed
  Duration io_time() const { return overhead + transfer; }
};

class AdmissionModel {
 public:
  AdmissionModel(const DiskParams& params, Duration interval, std::int64_t max_read_bytes);

  const DiskParams& params() const { return params_; }
  Duration interval() const { return interval_; }
  std::int64_t max_read_bytes() const { return max_read_bytes_; }

  // A_i = T*R_i + C_i.
  std::int64_t BytesPerInterval(const StreamDemand& demand) const;
  // ceil(A_i / max_read_bytes): requests stream i contributes per interval.
  std::int64_t RequestsPerInterval(const StreamDemand& demand) const;
  // B_i = 2*A_i: the stream's share of buffer memory.
  std::int64_t BufferBytes(const StreamDemand& demand) const;

  // O_total(N) decomposed by mechanism; all-zero for N <= 0.
  OverheadTerms Overheads(std::int64_t requests) const;
  // O_total(N), formulas (14)/(15); zero for N == 0.
  Duration TotalOverhead(std::int64_t requests) const;

  // Full estimate for a stream set.
  AdmissionEstimate Evaluate(const std::vector<StreamDemand>& streams) const;

  // The admission decision: retrieval fits in the interval and the buffers
  // fit in `memory_budget_bytes`.
  bool Admissible(const std::vector<StreamDemand>& streams,
                  std::int64_t memory_budget_bytes) const;

  // Smallest feasible interval for a stream set per formula (1):
  // T >= (O_total*D + C_total) / (D - R_total). Returns a negative value
  // when R_total >= D (no interval can work).
  Duration MinimalInterval(const std::vector<StreamDemand>& streams) const;

 private:
  DiskParams params_;
  Duration interval_;
  std::int64_t max_read_bytes_;
};

}  // namespace cras

#endif  // SRC_VOLUME_ADMISSION_H_
