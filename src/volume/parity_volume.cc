#include "src/volume/parity_volume.h"

#include <algorithm>
#include <memory>

#include "src/base/logging.h"
#include "src/volume/striped_volume.h"

namespace crvol {

ParityVolume::ParityVolume(crsim::Engine& engine, const VolumeOptions& options)
    : Volume(engine, options) {
  CRAS_CHECK(options.disks >= 2) << "parity needs at least two members";
  set_total_sectors(units_per_disk() * static_cast<std::int64_t>(data_disks()) *
                    unit_sectors());
}

ParityVolume::Segment ParityVolume::Map(crdisk::Lba logical) const {
  CRAS_CHECK(logical >= 0 && logical < total_sectors())
      << "logical LBA out of range: " << logical;
  const std::int64_t unit = logical / unit_sectors();
  const std::int64_t offset = logical % unit_sectors();
  const std::int64_t row = unit / data_disks();
  const int slot = static_cast<int>(unit % data_disks());
  const int parity_disk = ParityDiskOf(row);
  const int disk = slot < parity_disk ? slot : slot + 1;
  return Segment{disk, row * unit_sectors() + offset, 1};
}

crdisk::Lba ParityVolume::ToLogical(int disk, crdisk::Lba physical) const {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  const std::int64_t row = physical / unit_sectors();
  const std::int64_t offset = physical % unit_sectors();
  CRAS_CHECK(row < units_per_disk()) << "physical LBA beyond the parity area";
  const int parity_disk = ParityDiskOf(row);
  CRAS_CHECK(disk != parity_disk) << "parity unit holds no logical data: disk " << disk
                                  << " row " << row;
  const int slot = disk < parity_disk ? disk : disk - 1;
  const std::int64_t unit = row * data_disks() + slot;
  return unit * unit_sectors() + offset;
}

std::vector<ParityVolume::Segment> ParityVolume::MapRange(crdisk::Lba logical,
                                                          std::int64_t sectors,
                                                          crdisk::IoKind kind) const {
  CRAS_CHECK(sectors > 0) << "empty range";
  CRAS_CHECK(logical >= 0 && logical + sectors <= total_sectors())
      << "range [" << logical << ", " << logical + sectors << ") beyond the volume";
  CRAS_CHECK(failed_members() <= 1)
      << "parity tolerates one failed member; " << failed_members() << " are down";
  std::vector<Segment> segments;
  const auto add = [&segments](Segment piece) {
    if (!segments.empty() && segments.back().disk == piece.disk &&
        segments.back().reconstruction == piece.reconstruction &&
        segments.back().lba + segments.back().sectors == piece.lba) {
      segments.back().sectors += piece.sectors;
    } else {
      segments.push_back(piece);
    }
  };
  crdisk::Lba pos = logical;
  const crdisk::Lba end = logical + sectors;
  while (pos < end) {
    // The piece of the current stripe unit covered by the range.
    const crdisk::Lba unit_end = (pos / unit_sectors() + 1) * unit_sectors();
    const std::int64_t piece = std::min(end, unit_end) - pos;
    Segment data = Map(pos);
    data.sectors = piece;
    const std::int64_t row = data.lba / unit_sectors();
    if (kind == crdisk::IoKind::kRead) {
      if (member_state(data.disk) != MemberState::kFailed) {
        add(data);
      } else {
        // Degraded read: rebuild from the same physical range on every
        // surviving member — the row's other data units plus its parity.
        for (int d = 0; d < disks(); ++d) {
          if (d == data.disk) {
            continue;
          }
          add(Segment{d, data.lba, data.sectors, /*reconstruction=*/true});
        }
      }
    } else {
      // Write: the data unit plus the row's parity unit. A write whose data
      // (or parity) member is failed updates only the surviving half; the
      // redundancy equation still determines the lost content.
      if (member_state(data.disk) != MemberState::kFailed) {
        add(data);
      }
      const int parity_disk = ParityDiskOf(row);
      if (member_state(parity_disk) != MemberState::kFailed) {
        add(Segment{parity_disk, data.lba, data.sectors, /*reconstruction=*/true});
      }
    }
    pos += piece;
  }
  return segments;
}

std::unique_ptr<Volume> MakeVolume(crsim::Engine& engine, const VolumeOptions& options) {
  if (options.parity) {
    return std::make_unique<ParityVolume>(engine, options);
  }
  return std::make_unique<StripedVolume>(engine, options);
}

}  // namespace crvol
