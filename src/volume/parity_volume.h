// A rotating-parity multi-disk volume (RAID-5-style): N member disks, each
// stripe *row* holds N-1 data units plus one parity unit that is the XOR of
// the row's data, with the parity unit's member rotating across rows so
// parity-update writes spread over the whole array instead of hammering one
// spindle (the classic RAID-4 bottleneck).
//
// Layout. Row r occupies physical stripe unit r on every member; its parity
// lives on disk p(r) = r % N and the row's N-1 data units fill the other
// members in ascending disk order. Logical data unit u therefore maps to
//
//   row  r = u / (N-1),   slot  j = u % (N-1),
//   disk d = j < p(r) ? j : j+1,   physical unit = r.
//
// Logical capacity is (N-1)/N of the raw array; like StripedVolume,
// consecutive rows of one member are physically contiguous, so per-disk
// reads stay coalescible and cylinder-sortable.
//
// Healthy-array reads map exactly like a data-only stripe over N-1-of-N
// members. Degraded reads — any piece whose data unit lives on a failed
// member — are *reconstructed*: the same physical range is read from every
// surviving member (the row's other data units plus its parity) and XORed,
// so one logical read becomes N-1 physical reads, all flagged
// Segment::reconstruction for admission and observability. Writes update
// the data unit and its row's parity unit (the read-modify-write reads of a
// partial-row update are elided — the simulation carries no payload bytes,
// and CRAS interval I/O is read-dominated).
//
// At most one failed member is serviceable; MapRange CHECK-fails beyond
// that (data is genuinely lost).

#ifndef SRC_VOLUME_PARITY_VOLUME_H_
#define SRC_VOLUME_PARITY_VOLUME_H_

#include <cstdint>
#include <vector>

#include "src/volume/volume.h"

namespace crvol {

class ParityVolume : public Volume {
 public:
  // Builds `options.disks` (>= 2) device+driver pairs.
  ParityVolume(crsim::Engine& engine, const VolumeOptions& options);

  int data_disks() const override { return disks() - 1; }
  bool parity() const override { return true; }

  // The member holding row `row`'s parity unit.
  int ParityDiskOf(std::int64_t row) const { return static_cast<int>(row % disks()); }
  // Whether physical unit `physical / unit_sectors` on `disk` is a parity
  // unit (i.e. holds no logical data).
  bool IsParityUnit(int disk, crdisk::Lba physical) const {
    return ParityDiskOf(physical / unit_sectors()) == disk;
  }

  // Logical sector -> (disk, physical sector), the healthy-array data
  // mapping; never lands on a parity unit.
  Segment Map(crdisk::Lba logical) const override;
  // Inverse of Map; CHECK-fails on a parity unit.
  crdisk::Lba ToLogical(int disk, crdisk::Lba physical) const override;
  // The physical pieces the array performs for `kind` I/O over the logical
  // range, given current member states (see file comment). Adjacent
  // same-disk contiguous pieces of the same flavour are merged.
  std::vector<Segment> MapRange(crdisk::Lba logical, std::int64_t sectors,
                                crdisk::IoKind kind) const override;
  using Volume::MapRange;
};

}  // namespace crvol

#endif  // SRC_VOLUME_PARITY_VOLUME_H_
