#include "src/volume/striped_volume.h"

#include <algorithm>

#include "src/base/logging.h"

namespace crvol {

StripedVolume::StripedVolume(crsim::Engine& engine, const VolumeOptions& options)
    : Volume(engine, options) {
  const std::int64_t disk_sectors = options.device.geometry.total_sectors();
  if (options.disks == 1) {
    // Degenerate volume: identity mapping, full capacity (exactly the
    // single-disk system the paper measured).
    set_units_per_disk(0);
    set_total_sectors(disk_sectors);
  } else {
    set_total_sectors(static_cast<std::int64_t>(options.disks) * units_per_disk() *
                      unit_sectors());
  }
}

StripedVolume::StripedVolume(crdisk::DiskDriver& driver) : Volume(driver) {}

StripedVolume::Segment StripedVolume::Map(crdisk::Lba logical) const {
  CRAS_CHECK(logical >= 0 && logical < total_sectors())
      << "logical LBA out of range: " << logical;
  if (disks() == 1) {
    return Segment{0, logical, 1};
  }
  const std::int64_t unit = logical / unit_sectors();
  const std::int64_t offset = logical % unit_sectors();
  const int disk = static_cast<int>(unit % disks());
  const std::int64_t physical_unit = unit / disks();
  return Segment{disk, physical_unit * unit_sectors() + offset, 1};
}

crdisk::Lba StripedVolume::ToLogical(int disk, crdisk::Lba physical) const {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  if (disks() == 1) {
    return physical;
  }
  const std::int64_t physical_unit = physical / unit_sectors();
  const std::int64_t offset = physical % unit_sectors();
  CRAS_CHECK(physical_unit < units_per_disk()) << "physical LBA beyond the striped area";
  const std::int64_t unit = physical_unit * disks() + disk;
  return unit * unit_sectors() + offset;
}

std::vector<StripedVolume::Segment> StripedVolume::MapRange(crdisk::Lba logical,
                                                            std::int64_t sectors,
                                                            crdisk::IoKind /*kind*/) const {
  CRAS_CHECK(sectors > 0) << "empty range";
  CRAS_CHECK(logical >= 0 && logical + sectors <= total_sectors())
      << "range [" << logical << ", " << logical + sectors << ") beyond the volume";
  std::vector<Segment> segments;
  crdisk::Lba pos = logical;
  const crdisk::Lba end = logical + sectors;
  while (pos < end) {
    // The piece of the current stripe unit covered by the range.
    const crdisk::Lba unit_end = (pos / unit_sectors() + 1) * unit_sectors();
    const std::int64_t piece = std::min(end, unit_end) - pos;
    Segment mapped = Map(pos);
    mapped.sectors = piece;
    if (!segments.empty() && segments.back().disk == mapped.disk &&
        segments.back().lba + segments.back().sectors == mapped.lba) {
      segments.back().sectors += piece;
    } else {
      segments.push_back(mapped);
    }
    pos += piece;
  }
  return segments;
}

}  // namespace crvol
