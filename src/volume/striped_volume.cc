#include "src/volume/striped_volume.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/task.h"

namespace crvol {

StripedVolume::~StripedVolume() {
  for (const auto& [id, parked] : inflight_parked_) {
    crsim::DestroyParkedChain(parked);
  }
}

StripedVolume::StripedVolume(crsim::Engine& engine, const VolumeOptions& options) {
  CRAS_CHECK(options.disks >= 1) << "a volume needs at least one disk";
  sector_size_ = options.device.geometry.sector_size;
  CRAS_CHECK(options.stripe_unit_bytes > 0 &&
             options.stripe_unit_bytes % sector_size_ == 0)
      << "stripe unit must be a positive whole number of sectors";
  unit_sectors_ = options.stripe_unit_bytes / sector_size_;
  for (int d = 0; d < options.disks; ++d) {
    owned_devices_.push_back(std::make_unique<crdisk::DiskDevice>(engine, options.device));
    owned_drivers_.push_back(
        std::make_unique<crdisk::DiskDriver>(engine, *owned_devices_.back(), options.driver));
    drivers_.push_back(owned_drivers_.back().get());
  }
  const std::int64_t disk_sectors = options.device.geometry.total_sectors();
  if (options.disks == 1) {
    // Degenerate volume: identity mapping, full capacity (exactly the
    // single-disk system the paper measured).
    units_per_disk_ = 0;
    total_sectors_ = disk_sectors;
  } else {
    units_per_disk_ = disk_sectors / unit_sectors_;
    CRAS_CHECK(units_per_disk_ > 0) << "stripe unit larger than a member disk";
    total_sectors_ = static_cast<std::int64_t>(options.disks) * units_per_disk_ * unit_sectors_;
  }
}

StripedVolume::StripedVolume(crdisk::DiskDriver& driver) {
  drivers_.push_back(&driver);
  sector_size_ = driver.device().geometry().sector_size;
  unit_sectors_ = 256 * crbase::kKiB / sector_size_;
  units_per_disk_ = 0;
  total_sectors_ = driver.device().geometry().total_sectors();
}

StripedVolume::Segment StripedVolume::Map(crdisk::Lba logical) const {
  CRAS_CHECK(logical >= 0 && logical < total_sectors_) << "logical LBA out of range: " << logical;
  if (disks() == 1) {
    return Segment{0, logical, 1};
  }
  const std::int64_t unit = logical / unit_sectors_;
  const std::int64_t offset = logical % unit_sectors_;
  const int disk = static_cast<int>(unit % disks());
  const std::int64_t physical_unit = unit / disks();
  return Segment{disk, physical_unit * unit_sectors_ + offset, 1};
}

crdisk::Lba StripedVolume::ToLogical(int disk, crdisk::Lba physical) const {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  if (disks() == 1) {
    return physical;
  }
  const std::int64_t physical_unit = physical / unit_sectors_;
  const std::int64_t offset = physical % unit_sectors_;
  CRAS_CHECK(physical_unit < units_per_disk_) << "physical LBA beyond the striped area";
  const std::int64_t unit = physical_unit * disks() + disk;
  return unit * unit_sectors_ + offset;
}

std::vector<StripedVolume::Segment> StripedVolume::MapRange(crdisk::Lba logical,
                                                            std::int64_t sectors) const {
  CRAS_CHECK(sectors > 0) << "empty range";
  CRAS_CHECK(logical >= 0 && logical + sectors <= total_sectors_)
      << "range [" << logical << ", " << logical + sectors << ") beyond the volume";
  std::vector<Segment> segments;
  crdisk::Lba pos = logical;
  const crdisk::Lba end = logical + sectors;
  while (pos < end) {
    // The piece of the current stripe unit covered by the range.
    const crdisk::Lba unit_end = (pos / unit_sectors_ + 1) * unit_sectors_;
    const std::int64_t piece = std::min(end, unit_end) - pos;
    Segment mapped = Map(pos);
    mapped.sectors = piece;
    if (!segments.empty() && segments.back().disk == mapped.disk &&
        segments.back().lba + segments.back().sectors == mapped.lba) {
      segments.back().sectors += piece;
    } else {
      segments.push_back(mapped);
    }
    pos += piece;
  }
  return segments;
}

void StripedVolume::AttachObs(crobs::Hub* hub, const std::string& prefix) {
  if (hub == nullptr) {
    obs_.reset();
    for (crdisk::DiskDriver* driver : drivers_) {
      driver->AttachObs(nullptr, "");
      driver->device().AttachObs(nullptr, "");
    }
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  obs->requests = metrics.GetCounter("volume.requests", {{"volume", prefix}});
  obs->splits = metrics.GetCounter("volume.splits", {{"volume", prefix}});
  for (int d = 0; d < disks(); ++d) {
    const std::string disk_name = prefix + std::to_string(d);
    obs->pieces.push_back(
        metrics.GetCounter("volume.pieces", {{"volume", prefix}, {"disk", disk_name}}));
    drivers_[static_cast<std::size_t>(d)]->AttachObs(hub, disk_name);
    drivers_[static_cast<std::size_t>(d)]->device().AttachObs(hub, disk_name);
  }
  obs_ = std::move(obs);
}

std::uint64_t StripedVolume::Submit(crdisk::DiskRequest req) {
  const std::uint64_t id = next_id_++;
  ++stats_.requests_submitted;
  std::vector<Segment> segments = MapRange(req.lba, req.sectors);
  if (segments.size() > 1) {
    ++stats_.requests_split;
  }
  if (obs_ != nullptr) {
    obs_->requests->Add();
    if (segments.size() > 1) {
      obs_->splits->Add();
    }
    for (const Segment& segment : segments) {
      obs_->pieces[static_cast<std::size_t>(segment.disk)]->Add();
    }
  }

  // Shared fan-out state: the merged completion reports the caller's
  // logical view — logical LBA, total sectors, component times summed over
  // the pieces, queue/service span from first enqueue to last finish.
  struct FanOut {
    int outstanding = 0;
    bool first = true;
    crdisk::DiskCompletion merged;
    std::function<void(const crdisk::DiskCompletion&)> on_complete;
  };
  auto state = std::make_shared<FanOut>();
  state->outstanding = static_cast<int>(segments.size());
  state->on_complete = std::move(req.on_complete);
  if (req.parked) {
    // The awaiting frame is reclaimable through this table until the merged
    // completion fires; the per-disk pieces deliberately carry no handle.
    inflight_parked_.emplace(id, req.parked);
  }
  state->merged.request_id = id;
  state->merged.kind = req.kind;
  state->merged.lba = req.lba;
  state->merged.sectors = req.sectors;
  state->merged.realtime = req.realtime;

  for (const Segment& segment : segments) {
    crdisk::DiskRequest piece;
    piece.kind = req.kind;
    piece.lba = segment.lba;
    piece.sectors = segment.sectors;
    piece.realtime = req.realtime;
    piece.on_complete = [this, state, id](const crdisk::DiskCompletion& c) {
      crdisk::DiskCompletion& merged = state->merged;
      if (state->first) {
        state->first = false;
        merged.enqueued_at = c.enqueued_at;
        merged.started_at = c.started_at;
        merged.finished_at = c.finished_at;
      } else {
        merged.enqueued_at = std::min(merged.enqueued_at, c.enqueued_at);
        merged.started_at = std::min(merged.started_at, c.started_at);
        merged.finished_at = std::max(merged.finished_at, c.finished_at);
      }
      merged.command_time += c.command_time;
      merged.seek_time += c.seek_time;
      merged.rotation_time += c.rotation_time;
      merged.transfer_time += c.transfer_time;
      if (--state->outstanding == 0) {
        inflight_parked_.erase(id);
        if (state->on_complete) {
          state->on_complete(merged);
        }
      }
    };
    drivers_[static_cast<std::size_t>(segment.disk)]->Submit(std::move(piece));
  }
  return id;
}

}  // namespace crvol
