// A striped multi-disk volume (the §2.6 "multiple servers" direction taken
// to its storage conclusion): N identical disks, each with its own
// DiskDevice and dual-queue DiskDriver, presented as one flat logical
// sector space.
//
// Logical space is striped round-robin in fixed *stripe units* (default
// 256 KiB — the server's maximum coalesced read, so one admission-sized
// request never spans more than two disks). Stripe unit u of the logical
// space lives on disk u % N at physical unit u / N; consecutive units of
// one disk are therefore physically contiguous, which keeps per-disk reads
// coalescible and cylinder-sortable.
//
// Two construction modes:
//   * owning  — builds N device+driver pairs from VolumeOptions; the
//     standard multi-disk configuration;
//   * attach  — wraps one existing DiskDriver as a degenerate single-disk
//     volume with an identity mapping. This is how the classic single-disk
//     CrasServer constructors keep byte-for-byte their old behaviour.
//
// The volume is itself an IoTarget: Submit() splits a logical request at
// stripe boundaries, fans the pieces out to the owning disks' queues, and
// fires the caller's completion once with a merged timing record. The CRAS
// scheduler does NOT go through Submit(): it maps extents itself (MapRange)
// so it can sort each disk's requests in cylinder order before submission.

#ifndef SRC_VOLUME_STRIPED_VOLUME_H_
#define SRC_VOLUME_STRIPED_VOLUME_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/bytes.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/disk/io_target.h"
#include "src/sim/engine.h"

namespace crvol {

struct VolumeOptions {
  int disks = 1;
  // Stripe unit; must be a whole number of sectors. 256 KiB matches the
  // CRAS maximum coalesced read.
  std::int64_t stripe_unit_bytes = 256 * crbase::kKiB;
  // Per-disk hardware; every spindle is identical (the homogeneous-array
  // configuration the admission model assumes).
  crdisk::DiskDevice::Options device;
  crdisk::DiskDriver::Options driver;
};

struct VolumeStats {
  std::int64_t requests_submitted = 0;  // through Submit(); fan-out pieces not counted
  std::int64_t requests_split = 0;      // requests that straddled a stripe boundary
};

class StripedVolume : public crdisk::IoTarget {
 public:
  // One physically contiguous piece of a logical range on one disk.
  struct Segment {
    int disk = 0;
    crdisk::Lba lba = 0;  // physical, on that disk
    std::int64_t sectors = 0;
  };

  // Owning mode: builds `options.disks` device+driver pairs.
  StripedVolume(crsim::Engine& engine, const VolumeOptions& options);
  // Attach mode: a single-disk volume over an existing driver (not owned);
  // mapping is the identity and the full disk capacity is addressable.
  explicit StripedVolume(crdisk::DiskDriver& driver);
  StripedVolume(const StripedVolume&) = delete;
  StripedVolume& operator=(const StripedVolume&) = delete;
  // Reclaims frames awaiting fan-out completions still in flight. The frame
  // handle lives here (not on the per-disk pieces), so member-driver
  // destruction afterwards cannot double-free it.
  ~StripedVolume() override;

  int disks() const { return static_cast<int>(drivers_.size()); }
  std::int64_t stripe_unit_bytes() const { return unit_sectors_ * sector_size_; }
  std::int64_t stripe_unit_sectors() const { return unit_sectors_; }
  // Logical capacity. For N >= 2 each disk contributes only whole stripe
  // units, so a partial tail unit per disk is unaddressed.
  std::int64_t total_sectors() const { return total_sectors_; }

  crdisk::DiskDriver& driver(int disk) { return *drivers_[static_cast<std::size_t>(disk)]; }
  crdisk::DiskDevice& device(int disk) { return drivers_[static_cast<std::size_t>(disk)]->device(); }
  // Per-disk geometry (identical across the array).
  const crdisk::DiskGeometry& geometry() const { return drivers_.front()->device().geometry(); }

  // Logical sector -> (disk, physical sector).
  Segment Map(crdisk::Lba logical) const;
  // Inverse of Map.
  crdisk::Lba ToLogical(int disk, crdisk::Lba physical) const;
  // Splits [logical, logical+sectors) at stripe-unit boundaries into
  // per-disk physically contiguous segments, in logical order. Adjacent
  // pieces that land contiguously on the same disk are merged, so a
  // single-disk volume always yields exactly one segment.
  std::vector<Segment> MapRange(crdisk::Lba logical, std::int64_t sectors) const;

  // IoTarget: maps, fans out, merges. The merged completion carries the
  // *logical* LBA, the summed component times, and the wall-clock span from
  // first start to last finish.
  std::uint64_t Submit(crdisk::DiskRequest req) override;

  const VolumeStats& stats() const { return stats_; }

  // Registers the whole array: each member device and driver under
  // "<prefix><i>" ("disk0", "disk1", ...), plus volume-level counters —
  // logical requests, stripe-boundary splits, and per-member-disk fan-out
  // pieces keyed {volume, disk}.
  void AttachObs(crobs::Hub* hub, const std::string& prefix);

  // Observability hook for schedulers that fan out via MapRange() +
  // driver().Submit() directly, bypassing Submit(): counts one issued piece
  // against member `disk`. No-op when unattached.
  void NotePiece(int disk) {
    if (obs_ != nullptr) {
      obs_->pieces[static_cast<std::size_t>(disk)]->Add();
    }
  }

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* requests = nullptr;
    crobs::Counter* splits = nullptr;
    std::vector<crobs::Counter*> pieces;  // one per member disk
  };

  std::vector<std::unique_ptr<crdisk::DiskDevice>> owned_devices_;
  std::vector<std::unique_ptr<crdisk::DiskDriver>> owned_drivers_;
  std::vector<crdisk::DiskDriver*> drivers_;
  std::int64_t sector_size_ = 512;
  std::int64_t unit_sectors_ = 0;
  std::int64_t units_per_disk_ = 0;
  std::int64_t total_sectors_ = 0;
  std::uint64_t next_id_ = 1;
  VolumeStats stats_;
  // Frames parked in Execute() on a fan-out not yet fully completed.
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> inflight_parked_;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crvol

#endif  // SRC_VOLUME_STRIPED_VOLUME_H_
