// A striped multi-disk volume (the §2.6 "multiple servers" direction taken
// to its storage conclusion): data-only striping, no redundancy — a member
// failure loses every stream whose file touches that disk (ParityVolume is
// the layout that survives one).
//
// Logical space is striped round-robin in fixed *stripe units* (default
// 256 KiB — the server's maximum coalesced read, so one admission-sized
// request never spans more than two disks). Stripe unit u of the logical
// space lives on disk u % N at physical unit u / N; consecutive units of
// one disk are therefore physically contiguous, which keeps per-disk reads
// coalescible and cylinder-sortable.
//
// Two construction modes:
//   * owning  — builds N device+driver pairs from VolumeOptions; the
//     standard multi-disk configuration;
//   * attach  — wraps one existing DiskDriver as a degenerate single-disk
//     volume with an identity mapping. This is how the classic single-disk
//     CrasServer constructors keep byte-for-byte their old behaviour.

#ifndef SRC_VOLUME_STRIPED_VOLUME_H_
#define SRC_VOLUME_STRIPED_VOLUME_H_

#include <cstdint>
#include <vector>

#include "src/volume/volume.h"

namespace crvol {

class StripedVolume : public Volume {
 public:
  // Owning mode: builds `options.disks` device+driver pairs.
  StripedVolume(crsim::Engine& engine, const VolumeOptions& options);
  // Attach mode: a single-disk volume over an existing driver (not owned);
  // mapping is the identity and the full disk capacity is addressable.
  explicit StripedVolume(crdisk::DiskDriver& driver);

  // Logical sector -> (disk, physical sector).
  Segment Map(crdisk::Lba logical) const override;
  // Inverse of Map.
  crdisk::Lba ToLogical(int disk, crdisk::Lba physical) const override;
  // Splits [logical, logical+sectors) at stripe-unit boundaries into
  // per-disk physically contiguous segments, in logical order. Adjacent
  // pieces that land contiguously on the same disk are merged, so a
  // single-disk volume always yields exactly one segment. The kind is
  // irrelevant — with no redundancy, reads and writes map identically.
  std::vector<Segment> MapRange(crdisk::Lba logical, std::int64_t sectors,
                                crdisk::IoKind kind) const override;
  using Volume::MapRange;
};

}  // namespace crvol

#endif  // SRC_VOLUME_STRIPED_VOLUME_H_
