#include "src/volume/volume.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/task.h"

namespace crvol {

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kHealthy:
      return "healthy";
    case MemberState::kFailed:
      return "failed";
    case MemberState::kSlow:
      return "slow";
  }
  return "unknown";
}

Volume::~Volume() {
  for (const auto& [id, parked] : inflight_parked_) {
    crsim::DestroyParkedChain(parked);
  }
}

Volume::Volume(crsim::Engine& engine, const VolumeOptions& options) {
  CRAS_CHECK(options.disks >= 1) << "a volume needs at least one disk";
  sector_size_ = options.device.geometry.sector_size;
  CRAS_CHECK(options.stripe_unit_bytes > 0 &&
             options.stripe_unit_bytes % sector_size_ == 0)
      << "stripe unit must be a positive whole number of sectors";
  unit_sectors_ = options.stripe_unit_bytes / sector_size_;
  for (int d = 0; d < options.disks; ++d) {
    owned_devices_.push_back(std::make_unique<crdisk::DiskDevice>(engine, options.device));
    owned_drivers_.push_back(
        std::make_unique<crdisk::DiskDriver>(engine, *owned_devices_.back(), options.driver));
    drivers_.push_back(owned_drivers_.back().get());
  }
  member_states_.assign(static_cast<std::size_t>(options.disks), MemberState::kHealthy);
  units_per_disk_ = options.device.geometry.total_sectors() / unit_sectors_;
  CRAS_CHECK(units_per_disk_ > 0) << "stripe unit larger than a member disk";
}

Volume::Volume(crdisk::DiskDriver& driver) {
  drivers_.push_back(&driver);
  member_states_.assign(1, MemberState::kHealthy);
  sector_size_ = driver.device().geometry().sector_size;
  unit_sectors_ = 256 * crbase::kKiB / sector_size_;
  units_per_disk_ = 0;
  total_sectors_ = driver.device().geometry().total_sectors();
}

int Volume::failed_members() const {
  int failed = 0;
  for (MemberState state : member_states_) {
    if (state == MemberState::kFailed) {
      ++failed;
    }
  }
  return failed;
}

int Volume::failed_member() const {
  for (std::size_t d = 0; d < member_states_.size(); ++d) {
    if (member_states_[d] == MemberState::kFailed) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

bool Volume::degraded() const {
  for (MemberState state : member_states_) {
    if (state != MemberState::kHealthy) {
      return true;
    }
  }
  return false;
}

void Volume::SetMemberState(int disk, MemberState state) {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  MemberState& slot = member_states_[static_cast<std::size_t>(disk)];
  if (slot == state) {
    return;
  }
  slot = state;
  if (member_listener_) {
    member_listener_(disk, state);
  }
}

void Volume::AttachObs(crobs::Hub* hub, const std::string& prefix) {
  if (hub == nullptr) {
    obs_.reset();
    for (crdisk::DiskDriver* driver : drivers_) {
      driver->AttachObs(nullptr, "");
      driver->device().AttachObs(nullptr, "");
    }
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Registry& metrics = hub->metrics();
  obs->requests = metrics.GetCounter("volume.requests", {{"volume", prefix}});
  obs->splits = metrics.GetCounter("volume.splits", {{"volume", prefix}});
  for (int d = 0; d < disks(); ++d) {
    const std::string disk_name = prefix + std::to_string(d);
    obs->pieces.push_back(
        metrics.GetCounter("volume.pieces", {{"volume", prefix}, {"disk", disk_name}}));
    obs->reconstructions.push_back(metrics.GetCounter(
        "volume.reconstruction_pieces", {{"volume", prefix}, {"disk", disk_name}}));
    drivers_[static_cast<std::size_t>(d)]->AttachObs(hub, disk_name);
    drivers_[static_cast<std::size_t>(d)]->device().AttachObs(hub, disk_name);
  }
  obs_ = std::move(obs);
}

std::uint64_t Volume::Submit(crdisk::DiskRequest req) {
  const std::uint64_t id = next_id_++;
  ++stats_.requests_submitted;
  std::vector<Segment> segments = MapRange(req.lba, req.sectors, req.kind);
  if (segments.size() > 1) {
    ++stats_.requests_split;
  }
  if (obs_ != nullptr) {
    obs_->requests->Add();
    if (segments.size() > 1) {
      obs_->splits->Add();
    }
  }
  for (const Segment& segment : segments) {
    NotePiece(segment);
  }

  // Shared fan-out state: the merged completion reports the caller's
  // logical view — logical LBA, total sectors, component times summed over
  // the pieces, queue/service span from first enqueue to last finish.
  struct FanOut {
    int outstanding = 0;
    bool first = true;
    crdisk::DiskCompletion merged;
    std::function<void(const crdisk::DiskCompletion&)> on_complete;
  };
  auto state = std::make_shared<FanOut>();
  state->outstanding = static_cast<int>(segments.size());
  state->on_complete = std::move(req.on_complete);
  if (req.parked) {
    // The awaiting frame is reclaimable through this table until the merged
    // completion fires; the per-disk pieces deliberately carry no handle.
    inflight_parked_.emplace(id, req.parked);
  }
  state->merged.request_id = id;
  state->merged.kind = req.kind;
  state->merged.lba = req.lba;
  state->merged.sectors = req.sectors;
  state->merged.realtime = req.realtime;

  for (const Segment& segment : segments) {
    crdisk::DiskRequest piece;
    piece.kind = req.kind;
    piece.lba = segment.lba;
    piece.sectors = segment.sectors;
    piece.realtime = req.realtime;
    piece.on_complete = [this, state, id](const crdisk::DiskCompletion& c) {
      crdisk::DiskCompletion& merged = state->merged;
      if (state->first) {
        state->first = false;
        merged.enqueued_at = c.enqueued_at;
        merged.started_at = c.started_at;
        merged.finished_at = c.finished_at;
      } else {
        merged.enqueued_at = std::min(merged.enqueued_at, c.enqueued_at);
        merged.started_at = std::min(merged.started_at, c.started_at);
        merged.finished_at = std::max(merged.finished_at, c.finished_at);
      }
      merged.command_time += c.command_time;
      merged.seek_time += c.seek_time;
      merged.rotation_time += c.rotation_time;
      merged.transfer_time += c.transfer_time;
      if (--state->outstanding == 0) {
        inflight_parked_.erase(id);
        if (state->on_complete) {
          state->on_complete(merged);
        }
      }
    };
    drivers_[static_cast<std::size_t>(segment.disk)]->Submit(std::move(piece));
  }
  return id;
}

}  // namespace crvol
