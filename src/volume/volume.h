// The multi-disk volume abstraction shared by the striped (data-only) and
// parity (RAID-4/5-style) layouts: N member disks, each with its own
// DiskDevice and dual-queue DiskDriver, presented as one flat logical
// sector space.
//
// A volume is an IoTarget — Submit() maps a logical request through the
// layout's MapRange(), fans the physical pieces out to the owning disks'
// queues, and fires the caller's completion once with a merged timing
// record. The CRAS scheduler does NOT go through Submit(): it calls
// MapRange() itself so it can sort each disk's requests in cylinder order
// before submission, then counts the issued pieces back through NotePiece().
//
// Member health. Every member carries a MemberState (healthy / failed /
// slow). The fault-injection layer (crfault) flips states at scripted
// simulation timestamps; a layout reacts by rerouting — a ParityVolume
// reconstructs a failed member's data from the surviving disks — and the
// registered state listener lets the CRAS server's degradation controller
// re-run admission against the changed array. A fail-stop takes effect at
// the routing layer: requests already queued on the member drain normally
// (detection is modelled as instantaneous at the plan timestamp), but no
// new piece is ever routed there.

#ifndef SRC_VOLUME_VOLUME_H_
#define SRC_VOLUME_VOLUME_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/bytes.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/disk/io_target.h"
#include "src/sim/engine.h"

namespace crvol {

struct VolumeOptions {
  int disks = 1;
  // Parity layout: one stripe unit per row holds the XOR of the row's data
  // units, rotating across members (RAID-5). Requires disks >= 2; logical
  // capacity drops to (disks-1)/disks, and a single member failure degrades
  // service instead of losing it. Consumed by MakeVolume().
  bool parity = false;
  // Stripe unit; must be a whole number of sectors. 256 KiB matches the
  // CRAS maximum coalesced read.
  std::int64_t stripe_unit_bytes = 256 * crbase::kKiB;
  // Per-disk hardware; every spindle is identical (the homogeneous-array
  // configuration the admission model assumes).
  crdisk::DiskDevice::Options device;
  crdisk::DiskDriver::Options driver;
};

struct VolumeStats {
  std::int64_t requests_submitted = 0;  // through Submit(); fan-out pieces not counted
  std::int64_t requests_split = 0;      // requests that fanned out to more than one piece
  std::int64_t reconstruction_pieces = 0;  // degraded-read and parity-update pieces
};

enum class MemberState {
  kHealthy,
  kFailed,  // fail-stop: the member serves nothing from now on
  kSlow,    // serving, but derated (DiskDevice::SetThroughputDerating)
};

const char* MemberStateName(MemberState state);

class Volume : public crdisk::IoTarget {
 public:
  // One physically contiguous piece of a logical range on one disk.
  struct Segment {
    int disk = 0;
    crdisk::Lba lba = 0;  // physical, on that disk
    std::int64_t sectors = 0;
    // True for pieces that exist only because of redundancy: degraded-mode
    // reads that rebuild a failed member's data from the survivors, and
    // parity-update writes. Counted separately by the observability hooks.
    bool reconstruction = false;
  };

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;
  // Reclaims frames awaiting fan-out completions still in flight. The frame
  // handle lives here (not on the per-disk pieces), so member-driver
  // destruction afterwards cannot double-free it.
  ~Volume() override;

  int disks() const { return static_cast<int>(drivers_.size()); }
  // Members carrying data in one stripe row (equals disks() for a data-only
  // layout; disks()-1 under rotating parity).
  virtual int data_disks() const { return disks(); }
  // Whether the layout stores redundancy (and so tolerates one failure).
  virtual bool parity() const { return false; }
  std::int64_t stripe_unit_bytes() const { return unit_sectors_ * sector_size_; }
  std::int64_t stripe_unit_sectors() const { return unit_sectors_; }
  // Logical (data) capacity.
  std::int64_t total_sectors() const { return total_sectors_; }

  crdisk::DiskDriver& driver(int disk) { return *drivers_[static_cast<std::size_t>(disk)]; }
  crdisk::DiskDevice& device(int disk) { return drivers_[static_cast<std::size_t>(disk)]->device(); }
  // Per-disk geometry (identical across the array).
  const crdisk::DiskGeometry& geometry() const { return drivers_.front()->device().geometry(); }

  // Logical sector -> (disk, physical sector), healthy-array data mapping.
  virtual Segment Map(crdisk::Lba logical) const = 0;
  // Inverse of Map.
  virtual crdisk::Lba ToLogical(int disk, crdisk::Lba physical) const = 0;
  // Splits [logical, logical+sectors) into the physical per-disk pieces the
  // array must perform for `kind` I/O given the current member states, in
  // logical order, adjacent same-disk contiguous pieces merged. On a healthy
  // array this is the pure layout mapping; a degraded parity array
  // substitutes reconstruction reads for pieces of the failed member.
  virtual std::vector<Segment> MapRange(crdisk::Lba logical, std::int64_t sectors,
                                        crdisk::IoKind kind) const = 0;
  std::vector<Segment> MapRange(crdisk::Lba logical, std::int64_t sectors) const {
    return MapRange(logical, sectors, crdisk::IoKind::kRead);
  }

  // ---- member health ----
  MemberState member_state(int disk) const {
    return member_states_[static_cast<std::size_t>(disk)];
  }
  int failed_members() const;
  // The lowest-numbered failed member, or -1 when none.
  int failed_member() const;
  bool degraded() const;  // any member not healthy
  // Flips a member's state (no-op when unchanged) and notifies the listener.
  void SetMemberState(int disk, MemberState state);
  // At most one listener (the CRAS server's degradation controller).
  void SetMemberStateListener(std::function<void(int disk, MemberState state)> listener) {
    member_listener_ = std::move(listener);
  }

  // IoTarget: maps via MapRange(kind), fans out, merges. The merged
  // completion carries the *logical* LBA, the summed component times, and
  // the wall-clock span from first start to last finish.
  std::uint64_t Submit(crdisk::DiskRequest req) override;

  const VolumeStats& stats() const { return stats_; }

  // Registers the whole array: each member device and driver under
  // "<prefix><i>" ("disk0", "disk1", ...), plus volume-level counters —
  // logical requests, fan-out splits, per-member-disk pieces and
  // reconstruction pieces keyed {volume, disk}.
  void AttachObs(crobs::Hub* hub, const std::string& prefix);

  // Observability hook for schedulers that fan out via MapRange() +
  // driver().Submit() directly, bypassing Submit(): counts one issued piece
  // against the segment's member disk. No-op when unattached.
  void NotePiece(const Segment& segment) {
    if (segment.reconstruction) {
      ++stats_.reconstruction_pieces;
    }
    if (obs_ != nullptr) {
      obs_->pieces[static_cast<std::size_t>(segment.disk)]->Add();
      if (segment.reconstruction) {
        obs_->reconstructions[static_cast<std::size_t>(segment.disk)]->Add();
      }
    }
  }

 protected:
  // Owning mode: builds `options.disks` device+driver pairs. The derived
  // layout must then call set_total_sectors() with its logical capacity.
  Volume(crsim::Engine& engine, const VolumeOptions& options);
  // Attach mode: wraps one existing DiskDriver (not owned).
  explicit Volume(crdisk::DiskDriver& driver);

  void set_total_sectors(std::int64_t sectors) { total_sectors_ = sectors; }
  std::int64_t sector_size() const { return sector_size_; }
  std::int64_t unit_sectors() const { return unit_sectors_; }
  // Whole stripe units a member disk holds (0 in the degenerate
  // identity-mapped single-disk configuration).
  std::int64_t units_per_disk() const { return units_per_disk_; }
  void set_units_per_disk(std::int64_t units) { units_per_disk_ = units; }

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    crobs::Counter* requests = nullptr;
    crobs::Counter* splits = nullptr;
    std::vector<crobs::Counter*> pieces;           // one per member disk
    std::vector<crobs::Counter*> reconstructions;  // one per member disk
  };

  std::vector<std::unique_ptr<crdisk::DiskDevice>> owned_devices_;
  std::vector<std::unique_ptr<crdisk::DiskDriver>> owned_drivers_;
  std::vector<crdisk::DiskDriver*> drivers_;
  std::vector<MemberState> member_states_;
  std::function<void(int, MemberState)> member_listener_;
  std::int64_t sector_size_ = 512;
  std::int64_t unit_sectors_ = 0;
  std::int64_t units_per_disk_ = 0;
  std::int64_t total_sectors_ = 0;
  std::uint64_t next_id_ = 1;
  VolumeStats stats_;
  // Frames parked in Execute() on a fan-out not yet fully completed.
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> inflight_parked_;
  std::unique_ptr<ObsState> obs_;
};

// Builds the layout `options` asks for: a ParityVolume when options.parity,
// a StripedVolume otherwise.
std::unique_ptr<Volume> MakeVolume(crsim::Engine& engine, const VolumeOptions& options);

}  // namespace crvol

#endif  // SRC_VOLUME_VOLUME_H_
