#include "src/volume/volume_admission.h"

#include <algorithm>

#include "src/base/bytes.h"
#include "src/base/logging.h"

namespace crvol {

VolumeAdmissionModel::VolumeAdmissionModel(const cras::DiskParams& params, int disks,
                                           Duration interval, std::int64_t max_read_bytes,
                                           std::int64_t stripe_unit_bytes)
    : VolumeAdmissionModel(std::vector<cras::DiskParams>(static_cast<std::size_t>(disks), params),
                           interval, max_read_bytes, stripe_unit_bytes) {}

VolumeAdmissionModel::VolumeAdmissionModel(std::vector<cras::DiskParams> per_disk,
                                           Duration interval, std::int64_t max_read_bytes,
                                           std::int64_t stripe_unit_bytes)
    : stripe_unit_bytes_(stripe_unit_bytes) {
  CRAS_CHECK(!per_disk.empty()) << "a volume needs at least one disk";
  CRAS_CHECK(stripe_unit_bytes > 0);
  models_.reserve(per_disk.size());
  for (const cras::DiskParams& params : per_disk) {
    models_.emplace_back(params, interval, max_read_bytes);
  }
  failed_.assign(per_disk.size(), 0);
}

void VolumeAdmissionModel::SetMemberFailed(int disk, bool failed) {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  failed_[static_cast<std::size_t>(disk)] = failed ? 1 : 0;
}

int VolumeAdmissionModel::failed_members() const {
  int count = 0;
  for (char f : failed_) {
    count += f;
  }
  return count;
}

void VolumeAdmissionModel::SetMemberParams(int disk, const cras::DiskParams& params) {
  CRAS_CHECK(disk >= 0 && disk < disks()) << "no such disk: " << disk;
  cras::AdmissionModel& model = models_[static_cast<std::size_t>(disk)];
  model = cras::AdmissionModel(params, model.interval(), model.max_read_bytes());
}

Duration VolumeAdmissionModel::Estimate::WorstIoTime() const {
  Duration worst = 0;
  for (const DiskEstimate& d : per_disk) {
    worst = std::max(worst, d.io_time());
  }
  return worst;
}

int VolumeAdmissionModel::Estimate::BottleneckDisk() const {
  int worst = 0;
  for (int d = 1; d < static_cast<int>(per_disk.size()); ++d) {
    if (per_disk[static_cast<std::size_t>(d)].io_time() >
        per_disk[static_cast<std::size_t>(worst)].io_time()) {
      worst = d;
    }
  }
  return worst;
}

VolumeAdmissionModel::Estimate VolumeAdmissionModel::Evaluate(
    const std::vector<cras::StreamDemand>& streams) const {
  Estimate estimate;
  const int n = disks();
  const int failed = failed_members();

  if (n == 1 && failed == 0) {
    // Exactly the paper's single-disk test.
    const cras::AdmissionEstimate single = models_.front().Evaluate(streams);
    estimate.per_disk.push_back(DiskEstimate{single.requests, single.bytes, single.overhead,
                                             single.transfer, single.terms});
    estimate.bytes = single.bytes;
    estimate.buffer_bytes = single.buffer_bytes;
    return estimate;
  }

  std::int64_t total_bytes = 0;
  std::int64_t total_requests = 0;
  std::int64_t largest_window = 0;
  for (const cras::StreamDemand& s : streams) {
    const std::int64_t a_i = models_.front().BytesPerInterval(s);
    total_bytes += a_i;
    total_requests += models_.front().RequestsPerInterval(s);
    largest_window = std::max(largest_window, a_i);
    estimate.buffer_bytes += models_.front().BufferBytes(s);
  }
  estimate.bytes = total_bytes;
  if (total_requests == 0) {
    estimate.per_disk.assign(static_cast<std::size_t>(n), DiskEstimate{});
    return estimate;
  }

  // Balanced share plus skew allowance — one extra window of bytes, two
  // extra requests (a window parked on this disk plus a boundary-straddling
  // split landing here); never more than the whole demand.
  std::int64_t bytes_d =
      std::min(total_bytes,
               (total_bytes + n - 1) / n + std::min(largest_window, stripe_unit_bytes_));
  std::int64_t requests_d = std::min(total_requests, (total_requests + n - 1) / n + 2);
  if (failed > 0 && parity_) {
    // Degraded parity array: each logical read that would have landed on the
    // failed member (1/N of the demand) becomes one same-sized
    // reconstruction read on every survivor, so each survivor's worst-case
    // share doubles.
    bytes_d *= 2;
    requests_d *= 2;
  }
  for (int d = 0; d < n; ++d) {
    if (failed_[static_cast<std::size_t>(d)] != 0) {
      // A failed member serves nothing (its share is what the survivors'
      // doubled share absorbs).
      estimate.per_disk.push_back(DiskEstimate{});
      continue;
    }
    const cras::AdmissionModel& model = models_[static_cast<std::size_t>(d)];
    DiskEstimate disk;
    disk.requests = requests_d;
    disk.bytes = bytes_d;
    disk.terms = model.Overheads(requests_d);
    disk.overhead = disk.terms.total();
    disk.transfer = crbase::TransferTime(bytes_d, model.params().transfer_rate);
    estimate.per_disk.push_back(disk);
  }
  return estimate;
}

VolumeAdmissionModel::Estimate VolumeAdmissionModel::EvaluateCached(
    const std::vector<CachedStreamDemand>& streams) const {
  std::vector<cras::StreamDemand> charged;
  charged.reserve(streams.size() + 1);
  std::int64_t buffer_bytes = 0;
  bool any_cached = false;
  cras::StreamDemand reserve;
  std::int64_t reserve_window = -1;
  for (const CachedStreamDemand& s : streams) {
    // Every stream double-buffers its interval window, cached or not.
    buffer_bytes += models_.front().BufferBytes(s.demand);
    if (!s.cache_served) {
      charged.push_back(s.demand);
      continue;
    }
    any_cached = true;
    const std::int64_t window = models_.front().BytesPerInterval(s.demand);
    if (window > reserve_window) {
      reserve_window = window;
      reserve = s.demand;
    }
  }
  if (any_cached) {
    // The fallback reserve: disk time for the largest cache-served window,
    // so one predecessor death never issues I/O this estimate didn't cover.
    charged.push_back(reserve);
  }
  Estimate estimate = Evaluate(charged);
  estimate.buffer_bytes = buffer_bytes;
  return estimate;
}

bool VolumeAdmissionModel::Admissible(const std::vector<cras::StreamDemand>& streams,
                                      std::int64_t memory_budget_bytes) const {
  return Verdict(Evaluate(streams), streams.size(), memory_budget_bytes);
}

bool VolumeAdmissionModel::AdmissibleCached(const std::vector<CachedStreamDemand>& streams,
                                            std::int64_t memory_budget_bytes) const {
  return Verdict(EvaluateCached(streams), streams.size(), memory_budget_bytes);
}

bool VolumeAdmissionModel::Verdict(const Estimate& estimate, std::size_t stream_count,
                                   std::int64_t memory_budget_bytes) const {
  bool admit = estimate.buffer_bytes <= memory_budget_bytes;
  // An unprotected failure (no parity) or a second failure of a parity
  // array loses data outright: no non-empty stream set is admissible.
  const int failed = failed_members();
  if (stream_count != 0 && failed > (parity_ ? 1 : 0)) {
    admit = false;
  }
  for (int d = 0; admit && d < disks(); ++d) {
    if (estimate.per_disk[static_cast<std::size_t>(d)].io_time() >
        models_[static_cast<std::size_t>(d)].interval()) {
      admit = false;
    }
  }
  if (obs_ != nullptr) {
    const double worst_ms = crobs::ToMillis(estimate.WorstIoTime());
    (admit ? obs_->accepted : obs_->rejected)->Add();
    obs_->worst_io_ms->Record(worst_ms);
    obs_->hub->flight().Record(admit ? crobs::FlightEventKind::kAdmissionAccept
                                     : crobs::FlightEventKind::kAdmissionReject,
                               static_cast<std::int64_t>(stream_count), 0, worst_ms);
    crobs::Tracer& trace = obs_->hub->trace();
    if (trace.enabled()) {
      trace.Instant(obs_->track, admit ? obs_->n_accept : obs_->n_reject, worst_ms);
    }
  }
  return admit;
}

void VolumeAdmissionModel::AttachObs(crobs::Hub* hub) {
  if (hub == nullptr) {
    obs_.reset();
    return;
  }
  auto obs = std::make_unique<ObsState>();
  obs->hub = hub;
  crobs::Tracer& trace = hub->trace();
  obs->track = trace.InternTrack("admission");
  obs->n_accept = trace.InternName("accept");
  obs->n_reject = trace.InternName("reject");
  crobs::Registry& metrics = hub->metrics();
  obs->accepted = metrics.GetCounter("admission.decisions", {{"outcome", "accept"}});
  obs->rejected = metrics.GetCounter("admission.decisions", {{"outcome", "reject"}});
  obs->worst_io_ms = metrics.GetHistogram("admission.worst_io_ms", {}, crobs::LatencyBucketsMs());
  obs_ = std::move(obs);
}

}  // namespace crvol
