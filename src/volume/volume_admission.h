// Admission control for a striped volume: the paper's single-disk test
// (formulas (1)-(15), cras::AdmissionModel) run *per disk*, admitting a
// stream set iff every member disk's interval deadline holds and the total
// double-buffer reservation fits the server's wired-memory budget.
//
// Demand split. A stream's per-interval window A_i = T*R_i + C_i covers
// consecutive logical bytes, which round-robin striping spreads over the
// array in stripe units. The model charges each disk the balanced share of
// the aggregate demand plus a one-window skew allowance:
//
//   A_d = ceil(A_total / N) + min(max_i A_i, stripe_unit)      bytes
//   N_d = ceil(N_total / N) + 2                                requests
//   admit  <=>  for every disk d:  O_total(N_d) + A_d/D_d  <=  T
//
// The skew terms cover the granularity of the split: a window smaller than
// a stripe unit lands entirely on one disk in a given interval, so disk
// loads fluctuate around A_total/N by up to one window (and an extra
// request) as streams' windows walk across the stripe, and a window
// straddling a unit boundary splits into a second request. Larger transient skew is
// absorbed by the same worst-case pessimism that formulas (14)/(15) already
// carry (Figures 8-9 measure it at 30-70%); bench/scale_striping verifies
// empirically that admitted loads meet their interval deadlines.
//
// A single-disk volume (N = 1) bypasses the split and reproduces
// cras::AdmissionModel decisions and estimates exactly — the Fig. 6/8
// regression anchor.
//
// Degraded mode. A parity array (set_parity) keeps serving with one member
// failed (SetMemberFailed), but every logical read that would have landed
// on the dead member becomes N-1 reconstruction reads, one per survivor.
// The dead member carries 1/N of the balanced demand, so each survivor
// picks up an extra 1/N — its worst-case share doubles:
//
//   A_d(degraded) = 2 * (ceil(A_total / N) + min(max_i A_i, stripe_unit))
//   N_d(degraded) = 2 * (ceil(N_total / N) + 2)
//
// and the failed member is charged nothing. A failed member of a
// non-parity array — or a second failure of a parity array — makes any
// non-empty stream set inadmissible: the data is simply gone. Slow (but
// serving) members are modelled heterogeneously via SetMemberParams with
// derated worst-case figures.

#ifndef SRC_VOLUME_VOLUME_ADMISSION_H_
#define SRC_VOLUME_VOLUME_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/time_units.h"
#include "src/obs/obs.h"
#include "src/volume/admission.h"

namespace crvol {

using crbase::Duration;

// A stream demand tagged with its serving class. A cache-served stream's
// interval window is fed from the buffer cache (interval pairs / pinned
// prefixes — crcache::StreamCache), so it is charged buffer memory only; the
// disks are charged one shared *fallback reserve* — the largest cache-served
// window — so a single predecessor death never issues I/O the admission test
// did not cover.
struct CachedStreamDemand {
  cras::StreamDemand demand;
  bool cache_served = false;
};

class VolumeAdmissionModel {
 public:
  // Homogeneous array: `disks` members with identical worst-case parameters.
  VolumeAdmissionModel(const cras::DiskParams& params, int disks, Duration interval,
                       std::int64_t max_read_bytes, std::int64_t stripe_unit_bytes);
  // Heterogeneous array: one DiskParams per member (a mixed shelf, or a
  // degraded disk modelled with slower worst-case figures).
  VolumeAdmissionModel(std::vector<cras::DiskParams> per_disk, Duration interval,
                       std::int64_t max_read_bytes, std::int64_t stripe_unit_bytes);

  int disks() const { return static_cast<int>(models_.size()); }

  // ---- array state (degraded-mode variant of the formulas) ----
  // Declares the array redundant: one member failure degrades, not loses.
  void set_parity(bool parity) { parity_ = parity; }
  bool parity() const { return parity_; }
  // Marks member `disk` failed (true) or restored (false).
  void SetMemberFailed(int disk, bool failed);
  bool member_failed(int disk) const { return failed_[static_cast<std::size_t>(disk)] != 0; }
  int failed_members() const;
  // Replaces member `disk`'s worst-case parameters (a derated/slow member).
  void SetMemberParams(int disk, const cras::DiskParams& params);

  Duration interval() const { return models_.front().interval(); }
  std::int64_t max_read_bytes() const { return models_.front().max_read_bytes(); }
  std::int64_t stripe_unit_bytes() const { return stripe_unit_bytes_; }
  // The paper's single-disk model for member `disk` (formula evaluation,
  // per-disk parameters).
  const cras::AdmissionModel& disk_model(int disk) const {
    return models_[static_cast<std::size_t>(disk)];
  }

  // A_i and B_i = 2*A_i are properties of the stream, not of the array.
  std::int64_t BytesPerInterval(const cras::StreamDemand& demand) const {
    return models_.front().BytesPerInterval(demand);
  }
  std::int64_t BufferBytes(const cras::StreamDemand& demand) const {
    return models_.front().BufferBytes(demand);
  }

  struct DiskEstimate {
    std::int64_t requests = 0;  // N_d
    std::int64_t bytes = 0;     // A_d
    Duration overhead = 0;      // O_total(N_d), that disk's parameters
    Duration transfer = 0;      // A_d / D_d
    cras::OverheadTerms terms;  // the overhead decomposed (audit ledger)
    Duration io_time() const { return overhead + transfer; }
  };

  struct Estimate {
    std::vector<DiskEstimate> per_disk;
    std::int64_t bytes = 0;         // A_total, aggregate over the array
    std::int64_t buffer_bytes = 0;  // B_total
    // The binding constraint: the slowest disk's interval I/O time.
    Duration WorstIoTime() const;
    int BottleneckDisk() const;
  };

  Estimate Evaluate(const std::vector<cras::StreamDemand>& streams) const;

  // Admission: every disk's interval deadline holds and B_total fits.
  bool Admissible(const std::vector<cras::StreamDemand>& streams,
                  std::int64_t memory_budget_bytes) const;

  // Cache-aware variants. Disk time is charged for the disk-served streams
  // plus the fallback reserve (the largest cache-served window, so one
  // fallen-back stream is always feasible); buffer memory is charged for
  // every stream, cached or not. With no cache-served member these reduce
  // to Evaluate()/Admissible() exactly.
  Estimate EvaluateCached(const std::vector<CachedStreamDemand>& streams) const;
  bool AdmissibleCached(const std::vector<CachedStreamDemand>& streams,
                        std::int64_t memory_budget_bytes) const;

  // Registers decision counters keyed {outcome}, a worst-case interval-I/O
  // histogram, and accept/reject trace instants (value: worst I/O ms) on the
  // "admission" track. Every Admissible() call then records its verdict.
  void AttachObs(crobs::Hub* hub);

 private:
  struct ObsState {
    crobs::Hub* hub = nullptr;
    std::uint32_t track = 0;
    std::uint32_t n_accept = 0;
    std::uint32_t n_reject = 0;
    crobs::Counter* accepted = nullptr;
    crobs::Counter* rejected = nullptr;
    crobs::Histogram* worst_io_ms = nullptr;
  };

  // The shared admission verdict (deadline + memory + failure checks, obs
  // recording) over an already-computed estimate.
  bool Verdict(const Estimate& estimate, std::size_t stream_count,
               std::int64_t memory_budget_bytes) const;

  std::vector<cras::AdmissionModel> models_;
  std::vector<char> failed_;  // per member; char to avoid vector<bool>
  bool parity_ = false;
  std::int64_t stripe_unit_bytes_;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace crvol

#endif  // SRC_VOLUME_VOLUME_ADMISSION_H_
