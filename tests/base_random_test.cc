#include "src/base/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crbase {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(42);
  double sum = 0;
  double sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LogNormalMatchesRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextLogNormal(6250.0, 0.3);  // ~JPEG frame bytes
  }
  EXPECT_NEAR(sum / n, 6250.0, 6250.0 * 0.02);
}

TEST(ZipfGenerator, DeterministicForSameSeed) {
  ZipfGenerator a(100, 0.8, 7);
  ZipfGenerator b(100, 0.8, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfGenerator, CoversAllRanksInBounds) {
  ZipfGenerator zipf(8, 1.0, 3);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = zipf.Next();
    ASSERT_LT(k, 8u);
    ++seen[k];
  }
  for (int k = 0; k < 8; ++k) {
    EXPECT_GT(seen[static_cast<std::size_t>(k)], 0) << "rank " << k << " never drawn";
  }
}

// The defining property: empirical rank frequencies follow a power law with
// exponent -alpha. Least-squares slope of log(freq) vs log(rank+1) over the
// well-populated head must recover alpha.
TEST(ZipfGenerator, RankFrequencyExponentMatchesAlpha) {
  for (const double alpha : {0.6, 1.0}) {
    ZipfGenerator zipf(50, alpha, 42);
    std::vector<std::int64_t> counts(50, 0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i) {
      ++counts[zipf.Next()];
    }
    const int head = 20;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (int k = 0; k < head; ++k) {
      const double x = std::log(static_cast<double>(k + 1));
      const double y = std::log(static_cast<double>(counts[static_cast<std::size_t>(k)]) /
                                draws);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double slope = (head * sxy - sx * sy) / (head * sxx - sx * sx);
    EXPECT_NEAR(slope, -alpha, 0.05) << "alpha " << alpha;
  }
}

TEST(ZipfGenerator, HeadMassMatchesHarmonicNormalization) {
  // alpha = 1, n = 16: P(rank 0) = 1/H_16 with H_16 = sum 1/r ≈ 3.3807.
  ZipfGenerator zipf(16, 1.0, 99);
  std::int64_t head = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Next() == 0) {
      ++head;
    }
  }
  EXPECT_NEAR(static_cast<double>(head) / draws, 1.0 / 3.3807, 0.01);
}

}  // namespace
}  // namespace crbase
