#include "src/base/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crbase {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(42);
  double sum = 0;
  double sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LogNormalMatchesRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextLogNormal(6250.0, 0.3);  // ~JPEG frame bytes
  }
  EXPECT_NEAR(sum / n, 6250.0, 6250.0 * 0.02);
}

}  // namespace
}  // namespace crbase
