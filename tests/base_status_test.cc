#include "src/base/status.h"

#include <gtest/gtest.h>

namespace crbase {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = ResourceExhaustedError("admission test failed");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(st.message(), "admission test failed");
  EXPECT_EQ(st.ToString(), "RESOURCE_EXHAUSTED: admission test failed");
}

TEST(Status, AllCodeNamesAreDistinct) {
  const StatusCode codes[] = {
      StatusCode::kOk,        StatusCode::kNotFound,           StatusCode::kAlreadyExists,
      StatusCode::kInvalidArgument, StatusCode::kResourceExhausted,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange, StatusCode::kUnimplemented,
      StatusCode::kInternal,
  };
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("no such stream");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailsThenPropagates() {
  CRAS_RETURN_IF_ERROR(InvalidArgumentError("bad rate"));
  return OkStatus();
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  Status st = FailsThenPropagates();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crbase
