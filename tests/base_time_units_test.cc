#include "src/base/time_units.h"

#include <gtest/gtest.h>

#include "src/base/bytes.h"

namespace crbase {
namespace {

TEST(TimeUnits, ConstantsCompose) {
  EXPECT_EQ(Microseconds(1), 1000 * Nanoseconds(1));
  EXPECT_EQ(Milliseconds(1), 1000 * Microseconds(1));
  EXPECT_EQ(Seconds(1), 1000 * Milliseconds(1));
  EXPECT_EQ(Seconds(2) + Milliseconds(500), SecondsF(2.5));
}

TEST(TimeUnits, FloatRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(SecondsF(0.75)), 0.75);
  EXPECT_DOUBLE_EQ(ToMilliseconds(MillisecondsF(8.33)), 8.33);
  EXPECT_EQ(MillisecondsF(0.0005), 500);  // rounds to nanoseconds
}

TEST(TimeUnits, FormatAdaptsUnit) {
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
  EXPECT_EQ(FormatDuration(Milliseconds(17)), "17.000ms");
  EXPECT_EQ(FormatDuration(Microseconds(3)), "3.000us");
  EXPECT_EQ(FormatDuration(Nanoseconds(42)), "42ns");
}

TEST(Bytes, RateConversions) {
  // 1.5 Mb/s MPEG1 stream = 187500 bytes/sec.
  EXPECT_DOUBLE_EQ(MbpsToBytesPerSec(1.5), 187500.0);
  EXPECT_DOUBLE_EQ(BytesPerSecToMbps(187500.0), 1.5);
}

TEST(Bytes, TransferTimeMatchesPaperDisk) {
  // 256 KiB at 6.5 MB/s is a little over 40 ms.
  const Duration t = TransferTime(256 * kKiB, 6.5e6);
  EXPECT_NEAR(ToMilliseconds(t), 40.3, 0.2);
}

TEST(Bytes, BytesInDuration) {
  EXPECT_EQ(BytesInDuration(MbpsToBytesPerSec(1.5), Milliseconds(500)), 93750);
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(256 * kKiB), "256.0KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB / 2), "1.50MiB");
}

}  // namespace
}  // namespace crbase
