// Stream buffer cache: interval + prefix caching, cache-aware admission,
// and the fallback paths (predecessor close / reap / seek) that demote a
// follower to disk service. The degradation invariant under test throughout:
// a stream whose cache feed dies is either re-admitted on the fallback
// reserve or shed — it never silently misses deadlines.

#include <gtest/gtest.h>

#include <vector>

#include "src/cache/stream_cache.h"
#include "src/core/cras.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/volume/volume_admission.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TestbedOptions CachedTestbedOptions() {
  TestbedOptions options;
  options.cras.cache.enabled = true;
  // A short prefix so a two-player run exercises both hit kinds: chunks
  // before 6 s ride the pinned prefix, later ones the interval pool.
  options.cras.cache.prefix_length = Seconds(6);
  return options;
}

// ---------------------------------------------------------------------------
// Unit: popularity tracking and prefix pinning.

TEST(StreamCache, PopularityPinsHotTitlesAndEvictsCold) {
  Testbed bed;  // only used to author chunk indexes
  const auto a = *crmedia::WriteMpeg1File(bed.fs, "a", Seconds(30));
  const auto b = *crmedia::WriteMpeg1File(bed.fs, "b", Seconds(30));

  crcache::CacheOptions options;
  options.enabled = true;
  options.prefix_length = Seconds(2);
  options.popularity_halflife = Seconds(10);
  // Room for one ~375 KB MPEG1 prefix, not two: pinning b must evict a.
  options.prefix_pool_bytes = 512 * crbase::kKiB;
  crcache::StreamCache cache(options);

  cache.NoteOpen(a.inode, a.index, 0);
  EXPECT_FALSE(cache.prefix_pinned(a.inode)) << "one open is below pin_min_score";
  cache.NoteOpen(a.inode, a.index, Milliseconds(100));
  EXPECT_TRUE(cache.prefix_pinned(a.inode));
  EXPECT_EQ(cache.pinned_titles(), 1);
  EXPECT_GT(cache.prefix_pool_used(), 0);

  // EWMA decay: two half-lives later the score is a quarter of ~2.
  const double decayed = cache.popularity(a.inode, Milliseconds(100) + Seconds(20));
  EXPECT_GT(decayed, 0.4);
  EXPECT_LT(decayed, 0.6);

  // A hotter title arrives; the pool only holds one prefix, and `a` has no
  // registered readers inside its prefix, so it is evicted.
  const crbase::Time later = Milliseconds(100) + Seconds(20);
  cache.NoteOpen(b.inode, b.index, later);
  cache.NoteOpen(b.inode, b.index, later + Milliseconds(10));
  cache.NoteOpen(b.inode, b.index, later + Milliseconds(20));
  EXPECT_TRUE(cache.prefix_pinned(b.inode));
  EXPECT_FALSE(cache.prefix_pinned(a.inode));
  EXPECT_EQ(cache.pinned_titles(), 1);
  EXPECT_GE(cache.counters().titles_unpinned, 1);
}

// ---------------------------------------------------------------------------
// Unit: the cache-aware admission estimate.

TEST(CachedAdmission, ChargesDiskStreamsPlusOneFallbackReserve) {
  const DiskParams params;
  crvol::VolumeAdmissionModel model(params, /*disks=*/1, Milliseconds(500),
                                    256 * crbase::kKiB, 256 * crbase::kKiB);
  StreamDemand d;
  d.rate_bytes_per_sec = 187500;  // MPEG1
  d.chunk_bytes = 64 * crbase::kKiB;

  const auto base2 = model.Evaluate({d, d});
  const auto base4 = model.Evaluate({d, d, d, d});

  // One disk-served stream plus three cache-served: disk time is charged for
  // the disk stream plus a single reserve window, buffers for all four.
  const std::vector<crvol::CachedStreamDemand> mixed = {
      {d, false}, {d, true}, {d, true}, {d, true}};
  const auto cached = model.EvaluateCached(mixed);
  ASSERT_EQ(cached.per_disk.size(), 1u);
  EXPECT_EQ(cached.per_disk[0].requests, base2.per_disk[0].requests);
  EXPECT_EQ(cached.per_disk[0].bytes, base2.per_disk[0].bytes);
  EXPECT_EQ(cached.buffer_bytes, base4.buffer_bytes);

  // With no cache-served member the estimate is byte-identical to the
  // classic one: the classic rigs cannot drift.
  const std::vector<crvol::CachedStreamDemand> plain = {{d, false}, {d, false}};
  const auto same = model.EvaluateCached(plain);
  EXPECT_EQ(same.per_disk[0].requests, base2.per_disk[0].requests);
  EXPECT_EQ(same.per_disk[0].bytes, base2.per_disk[0].bytes);
  EXPECT_EQ(same.buffer_bytes, base2.buffer_bytes);
}

// ---------------------------------------------------------------------------
// Integration: a follower of a hot title plays entirely from memory.

struct TwoPlayerRun {
  PlayerStats a_stats, b_stats;
  crcache::CacheCounters counters;
  ServerStats server_stats;
  bool saw_pair_formed = false;
  bool saw_fallback = false;
  std::int64_t interval_hit_metric = 0;
  std::string metrics_json;
};

// Player A leads; player B opens the same title `b_delay` later.
TwoPlayerRun RunTwoPlayers(crbase::Duration a_play, crbase::Duration b_delay,
                           crbase::Duration b_play) {
  TwoPlayerRun run;
  Testbed bed(CachedTestbedOptions());
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(24));
  PlayerOptions a_options;
  a_options.play_length = a_play;
  PlayerOptions b_options;
  b_options.start_delay = b_delay;
  b_options.play_length = b_play;
  crsim::Task a = SpawnCrasPlayer(bed.kernel, bed.cras_server, file, a_options, &run.a_stats);
  crsim::Task b = SpawnCrasPlayer(bed.kernel, bed.cras_server, file, b_options, &run.b_stats);
  bed.engine().RunFor(b_delay + b_play + Seconds(4));

  const crcache::StreamCache* cache = bed.cras_server.cache();
  CRAS_CHECK(cache != nullptr);
  run.counters = cache->counters();
  run.server_stats = bed.cras_server.stats();
  for (const crobs::FlightEvent& event : bed.hub.flight().events()) {
    run.saw_pair_formed |= event.kind == crobs::FlightEventKind::kCachePairFormed;
    run.saw_fallback |= event.kind == crobs::FlightEventKind::kCacheFallback;
  }
  const crobs::RegistrySnapshot snap = bed.hub.metrics().Snapshot();
  if (const crobs::SeriesSnapshot* hits =
          snap.Find("cache.hit_chunks", {{"kind", "interval"}})) {
    run.interval_hit_metric = hits->counter;
  }
  run.metrics_json = bed.hub.MetricsJson();
  return run;
}

TEST(StreamCacheIntegration, FollowerIsServedFromPrefixThenIntervalPool) {
  // A plays the whole window; B trails 4 s behind, inside A's wake.
  const TwoPlayerRun run = RunTwoPlayers(Seconds(20), Seconds(4), Seconds(14));
  EXPECT_GE(run.counters.pairs_formed, 1);
  EXPECT_GT(run.counters.prefix_hit_chunks, 0);
  EXPECT_GT(run.counters.interval_hit_chunks, 0);
  EXPECT_EQ(run.interval_hit_metric, run.counters.interval_hit_chunks);
  EXPECT_GT(run.server_stats.bytes_from_cache, 0);
  EXPECT_TRUE(run.saw_pair_formed);
  // The shared-window service must be invisible to the clients.
  EXPECT_EQ(run.a_stats.frames_missed, 0);
  EXPECT_EQ(run.b_stats.frames_missed, 0);
  EXPECT_EQ(run.server_stats.deadline_misses, 0);
  EXPECT_EQ(run.server_stats.streams_shed, 0);
}

TEST(StreamCacheIntegration, PredecessorCloseFallsFollowerBackToDisk) {
  // A closes at 8 s while B still has 11 s to play: B's feed dies, B is
  // demoted to disk service and — one stream on an idle disk — re-admitted.
  const TwoPlayerRun run = RunTwoPlayers(Seconds(8), Seconds(3), Seconds(16));
  EXPECT_GE(run.counters.pairs_formed, 1);
  EXPECT_GE(run.counters.fallbacks, 1);
  EXPECT_GE(run.counters.pairs_broken, 1);
  EXPECT_TRUE(run.saw_fallback);
  // The fallback is covered by the reserve: B never misses a frame and the
  // degradation controller sheds nothing.
  EXPECT_FALSE(run.b_stats.shed);
  EXPECT_EQ(run.b_stats.frames_missed, 0);
  EXPECT_EQ(run.server_stats.streams_shed, 0);
  EXPECT_EQ(run.server_stats.deadline_misses, 0);
}

TEST(StreamCacheIntegration, MetricsAreByteDeterministic) {
  const TwoPlayerRun first = RunTwoPlayers(Seconds(12), Seconds(3), Seconds(8));
  const TwoPlayerRun second = RunTwoPlayers(Seconds(12), Seconds(3), Seconds(8));
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// ---------------------------------------------------------------------------
// Integration: capacity beyond the disk-only admission ceiling.

// Opens up to `candidates` streams of one title back to back; returns the
// admitted count.
int OpenSameTitle(bool cache_enabled, int candidates) {
  TestbedOptions options;
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  options.cras.cache.enabled = cache_enabled;
  Testbed bed(options);
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(30));
  int accepted = 0;
  crsim::Task opener = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (int i = 0; i < candidates; ++i) {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          if (!opened.ok()) {
            co_return;
          }
          ++accepted;
        }
      });
  bed.engine().RunFor(Seconds(2));
  return accepted;
}

TEST(StreamCacheIntegration, CacheAdmitsWellBeyondDiskOnlyCapacity) {
  const int disk_only = OpenSameTitle(false, 48);
  const int cached = OpenSameTitle(true, 48);
  EXPECT_LE(disk_only, 20) << "disk-only ceiling should be the formulas' ~14";
  EXPECT_GE(cached, 2 * disk_only)
      << "a chained hot title costs one stream of disk time";
}

// ---------------------------------------------------------------------------
// Integration: chain merge and the shed path.

TEST(StreamCacheIntegration, InteriorChainDeathMergesNeighbours) {
  Testbed bed(CachedTestbedOptions());
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(30));
  std::vector<SessionId> ids;
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (int i = 0; i < 3; ++i) {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          ids.push_back(*opened);
        }
        CRAS_CHECK_OK(co_await bed.cras_server.Close(ids[1]));
      });
  bed.engine().RunFor(Seconds(1));

  const crcache::StreamCache* cache = bed.cras_server.cache();
  ASSERT_NE(cache, nullptr);
  // a -> b -> c collapsed to a -> c: c keeps its memory service, the dead
  // interior stream's retained window transferred, not released.
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(bed.cras_server.open_sessions(), 2u);
  EXPECT_EQ(cache->pairs_active(), 1);
  EXPECT_TRUE(cache->cache_served(ids[2]));
  EXPECT_FALSE(cache->cache_served(ids[0]));
  EXPECT_GE(cache->counters().pairs_formed, 3);  // a-b, b-c, then a-c
  EXPECT_GE(cache->counters().pairs_broken, 1);
  EXPECT_EQ(cache->counters().fallbacks, 0) << "a merge is not a fallback";
}

TEST(StreamCacheIntegration, FallbackBeyondReserveShedsInsteadOfMissing) {
  // Fill the disk to its admission ceiling with 11 cold fillers plus two
  // hot-title pairs: 13 disk-charged streams + 1 reserve = the 14-stream
  // single-disk capacity, with two followers riding the cache. Seeking
  // predecessor X away demotes its follower; now 14 disk-charged streams
  // plus follower Y's reserve no longer fit, and the controller must shed
  // exactly one stream rather than let the set run past the proof.
  TestbedOptions options = CachedTestbedOptions();
  Testbed bed(options);
  bed.StartServers();
  std::vector<crmedia::MediaFile> fillers;
  for (int i = 0; i < 11; ++i) {
    fillers.push_back(
        *crmedia::WriteMpeg1File(bed.fs, "cold" + std::to_string(i), Seconds(30)));
  }
  const auto hot_x = *crmedia::WriteMpeg1File(bed.fs, "hotx", Seconds(30));
  const auto hot_y = *crmedia::WriteMpeg1File(bed.fs, "hoty", Seconds(30));

  // Open order: 11 fillers, pred_x, pred_y, follower_x, follower_y.
  std::vector<const crmedia::MediaFile*> order;
  for (const auto& filler : fillers) {
    order.push_back(&filler);
  }
  order.insert(order.end(), {&hot_x, &hot_y, &hot_x, &hot_y});
  std::vector<SessionId> ids;
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (const crmedia::MediaFile* file : order) {
          OpenParams params;
          params.inode = file->inode;
          params.index = file->index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          ids.push_back(*opened);
        }
        const SessionId pred_x = ids[11];
        CRAS_CHECK_OK(co_await bed.cras_server.Seek(pred_x, Seconds(20)));
      });
  bed.engine().RunFor(Seconds(2));

  const crcache::StreamCache* cache = bed.cras_server.cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(ids.size(), 15u) << "the cached pairs must fit the full rig";
  EXPECT_GE(cache->counters().fallbacks, 1);
  EXPECT_GE(bed.cras_server.stats().streams_shed, 1);
  EXPECT_EQ(bed.cras_server.open_sessions(), 14u);
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

// ---------------------------------------------------------------------------
// Integration: a reaped predecessor (lease lapse) demotes its follower.

TEST(StreamCacheIntegration, ReapedPredecessorFallsFollowerBack) {
  TestbedOptions options = CachedTestbedOptions();
  options.cras.lease_period = Milliseconds(500);
  Testbed bed(options);
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(30));

  SessionId follower = kInvalidSession;
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = file.inode;
        params.index = file.index;
        auto pred = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(pred.ok());
        OpenParams again;
        again.inode = file.inode;
        again.index = file.index;
        auto second = co_await bed.cras_server.Open(std::move(again));
        CRAS_CHECK(second.ok());
        follower = *second;
        // Only the follower heartbeats; the predecessor's lease lapses and
        // the reaper closes it mid-pair.
        for (int i = 0; i < 15; ++i) {
          co_await ctx.Sleep(Milliseconds(200));
          bed.cras_server.RenewLease(follower);
        }
      });
  bed.engine().RunFor(Seconds(3));

  const crcache::StreamCache* cache = bed.cras_server.cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(bed.cras_server.stats().sessions_reaped, 1);
  EXPECT_GE(cache->counters().fallbacks, 1);
  EXPECT_FALSE(cache->cache_served(follower));
  // The orphan rides the fallback reserve on an otherwise idle disk.
  EXPECT_EQ(bed.cras_server.open_sessions(), 1u);
  EXPECT_EQ(bed.cras_server.stats().streams_shed, 0);
}

}  // namespace
}  // namespace cras
