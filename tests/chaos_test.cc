// Chaos campaign engine: the generalized fault-spec grammar, plan merging
// and late arming, the seeded schedule generator's constraints, the hardened
// control plane (idempotent request ids + capped-exponential retry over
// impaired links), and the cross-layer invariant auditor — including the
// deliberate double-fault run that proves the auditor bites.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/chaos/chaos.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/fault/fault.h"
#include "src/media/media_file.h"
#include "src/net/control.h"
#include "src/net/link.h"

namespace crchaos {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;
using crfault::FaultEvent;
using crfault::FaultKind;
using crfault::FaultPlan;

// ---------------------------------------------------------------------------
// ParseSpec: one grammar for every fault kind.

TEST(ParseSpec, CoversTheFullVocabulary) {
  auto fail_stop = FaultPlan::ParseSpec("fail_stop:1@2000");
  ASSERT_TRUE(fail_stop.ok());
  EXPECT_EQ(fail_stop->kind, FaultKind::kFailStop);
  EXPECT_EQ(fail_stop->disk, 1);
  EXPECT_EQ(fail_stop->at, Seconds(2));

  auto transient = FaultPlan::ParseSpec("transient:1,800,3@2500");
  ASSERT_TRUE(transient.ok());
  EXPECT_EQ(transient->kind, FaultKind::kTransient);
  EXPECT_EQ(transient->extra_latency, Milliseconds(800));
  EXPECT_EQ(transient->request_count, 3);

  auto slow = FaultPlan::ParseSpec("slow_disk:2,2.5@3000");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->kind, FaultKind::kSlowDisk);
  EXPECT_EQ(slow->disk, 2);
  EXPECT_EQ(slow->throughput_derating, 2.5);

  auto recover = FaultPlan::ParseSpec("recover:2@8000");
  ASSERT_TRUE(recover.ok());
  EXPECT_EQ(recover->kind, FaultKind::kRecover);

  auto loss = FaultPlan::ParseSpec("link_loss:0.01@3000");
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(loss->kind, FaultKind::kLinkLoss);
  EXPECT_EQ(loss->loss_probability, 0.01);

  auto burst = FaultPlan::ParseSpec("link_burst_loss:0.005,0.3,0.5@3000");
  ASSERT_TRUE(burst.ok());
  EXPECT_EQ(burst->kind, FaultKind::kLinkBurstLoss);
  EXPECT_EQ(burst->ge_p_enter_bad, 0.005);
  EXPECT_EQ(burst->ge_p_exit_bad, 0.3);
  EXPECT_EQ(burst->ge_loss_bad, 0.5);

  auto jitter = FaultPlan::ParseSpec("link_jitter:20,0.1,5@3000");
  ASSERT_TRUE(jitter.ok());
  EXPECT_EQ(jitter->jitter, Milliseconds(20));
  EXPECT_EQ(jitter->reorder_probability, 0.1);
  EXPECT_EQ(jitter->reorder_delay, Milliseconds(5));

  auto derate = FaultPlan::ParseSpec("link_derate:2.0@3000");
  ASSERT_TRUE(derate.ok());
  EXPECT_EQ(derate->throughput_derating, 2.0);

  auto link_recover = FaultPlan::ParseSpec("link_recover@8000");
  ASSERT_TRUE(link_recover.ok());
  EXPECT_EQ(link_recover->kind, FaultKind::kLinkRecover);

  auto crash = FaultPlan::ParseSpec("client_crash:2@4000");
  ASSERT_TRUE(crash.ok());
  EXPECT_EQ(crash->kind, FaultKind::kClientCrash);
  EXPECT_EQ(crash->disk, 2) << "client index rides the disk field";

  auto drop = FaultPlan::ParseSpec("control_drop:0.2,0.1@3000");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, FaultKind::kControlDrop);
  EXPECT_EQ(drop->loss_probability, 0.2);
  EXPECT_EQ(drop->duplicate_probability, 0.1);

  auto control_recover = FaultPlan::ParseSpec("control_recover@8000");
  ASSERT_TRUE(control_recover.ok());
  EXPECT_EQ(control_recover->kind, FaultKind::kControlRecover);
}

TEST(ParseSpec, LegacyBareFormIsFailStop) {
  auto legacy = FaultPlan::ParseSpec("1@2000");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->kind, FaultKind::kFailStop);
  EXPECT_EQ(legacy->disk, 1);
  EXPECT_EQ(legacy->at, Seconds(2));
  // The old entry point accepts the new grammar too.
  EXPECT_TRUE(FaultPlan::ParseFailStopSpec("slow_disk:0,2.0@500").ok());
}

TEST(ParseSpec, MalformedSpecsAreErrorsNotCrashes) {
  for (const char* bad : {
           "",                       // empty
           "fail_stop:1",            // no @time
           "bogus:1@2000",           // unknown kind
           "fail_stop@1000",         // missing disk argument
           "fail_stop:1,2@1000",     // too many arguments
           "link_loss:1.5@1000",     // probability out of range
           "link_derate:0.5@1000",   // derating below 1
           "control_drop@1000",      // missing the loss probability
           "transient:1,800,@1000",  // trailing comma
           "fail_stop:x@1000",       // non-numeric argument
       }) {
    auto parsed = FaultPlan::ParseSpec(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted \"" << bad << "\"";
    EXPECT_EQ(parsed.status().code(), crbase::StatusCode::kInvalidArgument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Merge + late arming.

TEST(FaultPlanMerge, MergedPlansFireThroughOneInjector) {
  crsim::Engine engine;
  crnet::Link link(engine);
  FaultPlan a;
  a.LinkLoss(Milliseconds(10), 0.25);
  FaultPlan b;
  b.LinkDerate(Milliseconds(20), 3.0);
  a.Merge(b);
  ASSERT_EQ(a.events().size(), 2u);

  crfault::FaultInjector injector(engine, link, a);
  injector.Arm();
  engine.RunFor(Milliseconds(30));
  EXPECT_EQ(link.impairments().loss_probability, 0.25);
  EXPECT_EQ(link.impairments().bandwidth_derating, 3.0);
  EXPECT_EQ(injector.events_fired(), 2);
}

TEST(FaultInjector, ArmAfterEventTimeFiresImmediately) {
  crsim::Engine engine;
  crnet::Link link(engine);
  FaultPlan plan;
  plan.LinkLoss(Milliseconds(10), 0.5);
  crfault::FaultInjector injector(engine, link, plan);
  // The clock is already past the event's timestamp when Arm runs: the
  // event must fire at once, not be lost.
  engine.RunFor(Milliseconds(100));
  injector.Arm();
  engine.RunFor(Milliseconds(1));
  EXPECT_EQ(link.impairments().loss_probability, 0.5);
  EXPECT_EQ(injector.events_fired(), 1);
}

// ---------------------------------------------------------------------------
// The seeded schedule generator.

ChaosConfig TestConfig(std::uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.clients = 6;
  return config;
}

TEST(ChaosSchedule, SameSeedSamePlan) {
  const FaultPlan a = GenerateChaosSchedule(TestConfig(42));
  const FaultPlan b = GenerateChaosSchedule(TestConfig(42));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent& x = a.events()[i];
    const FaultEvent& y = b.events()[i];
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.at, y.at) << "event " << i;
    EXPECT_EQ(x.disk, y.disk) << "event " << i;
    EXPECT_EQ(x.loss_probability, y.loss_probability) << "event " << i;
    EXPECT_EQ(x.throughput_derating, y.throughput_derating) << "event " << i;
  }
  // Different seeds diverge.
  const FaultPlan c = GenerateChaosSchedule(TestConfig(43));
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].kind != c.events()[i].kind ||
              a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, ConstraintsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ChaosConfig config = TestConfig(seed);
    const FaultPlan plan = GenerateChaosSchedule(config);
    ASSERT_GE(plan.events().size(), 3u) << "seed " << seed << " generated a trivial plan";

    // Reconstruct per-disk fail-stop windows: each FailStop pairs with the
    // Recover appended right after it.
    struct Window {
      crbase::Time from = 0;
      crbase::Time to = 0;
    };
    std::vector<Window> failed;
    std::vector<int> crashed_clients;
    for (std::size_t i = 0; i < plan.events().size(); ++i) {
      const FaultEvent& event = plan.events()[i];
      EXPECT_GE(event.at, config.start) << "seed " << seed;
      EXPECT_LE(event.at, config.horizon + config.max_window) << "seed " << seed;
      if (event.kind == FaultKind::kFailStop) {
        ASSERT_LT(i + 1, plan.events().size());
        const FaultEvent& recover = plan.events()[i + 1];
        ASSERT_EQ(recover.kind, FaultKind::kRecover) << "seed " << seed;
        ASSERT_EQ(recover.disk, event.disk) << "seed " << seed;
        failed.push_back({event.at, recover.at});
      }
      if (event.kind == FaultKind::kClientCrash) {
        EXPECT_GE(event.disk, 0);
        EXPECT_LT(event.disk, config.clients);
        crashed_clients.push_back(event.disk);
      }
    }
    // Never an unrecoverable double fault: fail-stop windows are disjoint.
    for (std::size_t i = 0; i < failed.size(); ++i) {
      for (std::size_t j = i + 1; j < failed.size(); ++j) {
        EXPECT_TRUE(failed[i].to <= failed[j].from || failed[j].to <= failed[i].from)
            << "seed " << seed << ": overlapping fail-stop windows";
      }
    }
    // Client crashes are capped and hit distinct clients.
    EXPECT_LE(static_cast<int>(crashed_clients.size()), config.max_client_crashes);
    std::sort(crashed_clients.begin(), crashed_clients.end());
    EXPECT_EQ(std::adjacent_find(crashed_clients.begin(), crashed_clients.end()),
              crashed_clients.end())
        << "seed " << seed << ": a client crashed twice";
  }
}

TEST(ChaosSchedule, DoubleFaultOnlyWhenAllowed) {
  // Shed-testing mode may overlap disk windows; find a seed that does, and
  // confirm the same seed without the flag does not.
  bool found_overlap = false;
  for (std::uint64_t seed = 1; seed <= 200 && !found_overlap; ++seed) {
    ChaosConfig config = TestConfig(seed);
    config.allow_double_fault = true;
    config.intensity = 3.0;
    const FaultPlan plan = GenerateChaosSchedule(config);
    std::vector<std::pair<crbase::Time, crbase::Time>> windows;
    for (std::size_t i = 0; i + 1 < plan.events().size(); ++i) {
      const FaultEvent& event = plan.events()[i];
      if ((event.kind == FaultKind::kFailStop || event.kind == FaultKind::kSlowDisk) &&
          plan.events()[i + 1].kind == FaultKind::kRecover) {
        windows.emplace_back(event.at, plan.events()[i + 1].at);
      }
    }
    for (std::size_t i = 0; i < windows.size() && !found_overlap; ++i) {
      for (std::size_t j = i + 1; j < windows.size(); ++j) {
        if (windows[i].second > windows[j].first && windows[j].second > windows[i].first) {
          found_overlap = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(found_overlap) << "allow_double_fault never produced an overlap";
}

// ---------------------------------------------------------------------------
// Hardened control plane.

struct ControlRig {
  cras::Testbed bed;
  crnet::Link forward;
  crnet::Link reverse;
  crnet::ControlService service;
  crnet::ControlClient client;

  ControlRig() : ControlRig(cras::TestbedOptions{}) {}

  explicit ControlRig(const cras::TestbedOptions& options)
      : bed(options),
        forward(bed.engine()),
        reverse(bed.engine()),
        service(bed.kernel, bed.cras_server),
        client(bed.engine(), service, &forward, &reverse,
               crnet::ControlClient::Options{.client_id = 1}) {
    bed.StartServers();
    service.Start();
  }

  crmedia::MediaFile Movie(crbase::Duration length) {
    return *crmedia::WriteMpeg1File(bed.fs, "movie", length);
  }

  cras::OpenParams ParamsFor(const crmedia::MediaFile& movie) {
    cras::OpenParams params;
    params.inode = movie.inode;
    params.index = movie.index;
    return params;
  }
};

TEST(ControlPlane, RetriesThroughALossyLink) {
  ControlRig rig;
  // Half the control packets vanish in each direction; capped-exponential
  // retry must still land every call.
  rig.forward.SetLoss(0.5);
  rig.reverse.SetLoss(0.5);
  const auto movie = rig.Movie(Seconds(8));

  cras::SessionId session = cras::kInvalidSession;
  bool closed = false;
  crsim::Task caller = rig.bed.kernel.Spawn(
      "caller", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        auto opened = co_await rig.client.Open(rig.ParamsFor(movie));
        CRAS_CHECK(opened.ok()) << opened.status().ToString();
        session = *opened;
        CRAS_CHECK((co_await rig.client.StartStream(
                        session, rig.bed.cras_server.SuggestedInitialDelay()))
                       .ok());
        co_await ctx.Sleep(Seconds(1));
        closed = (co_await rig.client.Close(session)).ok();
      });
  rig.bed.engine().RunFor(Seconds(8));

  EXPECT_NE(session, cras::kInvalidSession);
  EXPECT_TRUE(closed);
  EXPECT_EQ(rig.bed.cras_server.open_sessions(), 0u);
  EXPECT_EQ(rig.client.pending_calls(), 0u) << "no call left wedged";
  EXPECT_GT(rig.client.stats().retries, 0) << "the loss was real";
  EXPECT_EQ(rig.client.stats().calls_failed, 0);
}

TEST(ControlPlane, DuplicatedRequestsExecuteExactlyOnce) {
  ControlRig rig;
  // Every request is replayed by the wire; every replay must be answered
  // from the reply cache, not re-executed — a duplicated Open admits no
  // second stream.
  rig.forward.SetDuplication(1.0);
  const auto movie = rig.Movie(Seconds(8));

  cras::SessionId session = cras::kInvalidSession;
  crsim::Task caller = rig.bed.kernel.Spawn(
      "caller", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        auto opened = co_await rig.client.Open(rig.ParamsFor(movie));
        CRAS_CHECK(opened.ok());
        session = *opened;
      });
  rig.bed.engine().RunFor(Seconds(2));

  ASSERT_NE(session, cras::kInvalidSession);
  EXPECT_EQ(rig.bed.cras_server.open_sessions(), 1u) << "a replayed Open double-admitted";
  EXPECT_EQ(rig.service.stats().executed, 1);
  EXPECT_GT(rig.service.stats().duplicates_suppressed, 0);
  EXPECT_GT(rig.client.stats().duplicate_replies, 0);
}

TEST(ControlPlane, DuplicateCloseIsANoOp) {
  ControlRig rig;
  const auto movie = rig.Movie(Seconds(8));
  int closes_ok = 0;
  crsim::Task caller = rig.bed.kernel.Spawn(
      "caller", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        auto opened = co_await rig.client.Open(rig.ParamsFor(movie));
        CRAS_CHECK(opened.ok());
        // Two independent Close calls (distinct request ids — the second is
        // a client-level duplicate, not a wire replay). The second finds the
        // session gone and still reports success.
        closes_ok += (co_await rig.client.Close(*opened)).ok() ? 1 : 0;
        closes_ok += (co_await rig.client.Close(*opened)).ok() ? 1 : 0;
      });
  rig.bed.engine().RunFor(Seconds(2));

  EXPECT_EQ(closes_ok, 2);
  EXPECT_EQ(rig.client.stats().close_races, 1);
  EXPECT_EQ(rig.bed.cras_server.open_sessions(), 0u);
}

TEST(ControlPlane, BlackoutSurfacesDeadlineExceededNotAWedge) {
  ControlRig rig;
  rig.forward.SetLoss(1.0);  // total control blackout
  const auto movie = rig.Movie(Seconds(8));
  crbase::Status result = crbase::OkStatus();
  crsim::Task caller = rig.bed.kernel.Spawn(
      "caller", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        result = (co_await rig.client.Open(rig.ParamsFor(movie))).status();
      });
  rig.bed.engine().RunFor(Seconds(6));

  EXPECT_EQ(result.code(), crbase::StatusCode::kDeadlineExceeded) << result.ToString();
  EXPECT_EQ(rig.client.pending_calls(), 0u);
  EXPECT_EQ(rig.client.stats().timeouts, 1);
  EXPECT_EQ(rig.bed.cras_server.open_sessions(), 0u);
}

TEST(ControlPlane, CloseRacingTheReaperResolvesDeterministically) {
  cras::TestbedOptions options;
  options.cras.lease_period = Milliseconds(200);
  ControlRig rig(options);
  const auto movie = rig.Movie(Seconds(8));

  cras::SessionId session = cras::kInvalidSession;
  bool close_ok = false;
  crsim::Task caller = rig.bed.kernel.Spawn(
      "caller", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        auto opened = co_await rig.client.Open(rig.ParamsFor(movie));
        CRAS_CHECK(opened.ok());
        session = *opened;
        // Go silent long enough for the lease to lapse and the reaper to
        // collect the session, then Close it anyway.
        co_await ctx.Sleep(Seconds(2));
        close_ok = (co_await rig.client.Close(session)).ok();
      });
  rig.bed.engine().RunFor(Seconds(4));

  ASSERT_NE(session, cras::kInvalidSession);
  EXPECT_TRUE(rig.bed.cras_server.WasReaped(session));
  EXPECT_TRUE(close_ok) << "a close that lost to the reaper is still success";
  EXPECT_EQ(rig.client.stats().close_races, 1);
  EXPECT_EQ(rig.bed.cras_server.open_sessions(), 0u);
}

// ---------------------------------------------------------------------------
// The invariant auditor.

TEST(InvariantAuditor, CleanRunAuditsOk) {
  cras::Testbed bed;
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(6));
  cras::SessionId session = cras::kInvalidSession;
  bool closed = false;
  crsim::Task viewer = bed.kernel.Spawn(
      "viewer", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        CRAS_CHECK((co_await bed.cras_server.StartStream(
                        session, bed.cras_server.SuggestedInitialDelay()))
                       .ok());
        co_await ctx.Sleep(Seconds(2));
        CRAS_CHECK((co_await bed.cras_server.Close(session)).ok());
        closed = true;
      });
  bed.engine().RunFor(Seconds(4));
  ASSERT_TRUE(closed);

  AuditInput input;
  input.hub = &bed.hub;
  input.server = &bed.cras_server;
  input.fates.push_back({session, /*closed=*/true, /*crashed=*/false});
  const AuditReport report = AuditRun(input);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.Summary(), "ok");
}

TEST(InvariantAuditor, WedgedSessionIsAViolation) {
  cras::Testbed bed;
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(6));
  cras::SessionId session = cras::kInvalidSession;
  crsim::Task viewer = bed.kernel.Spawn(
      "viewer", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
      });
  bed.engine().RunFor(Seconds(1));
  ASSERT_NE(session, cras::kInvalidSession);

  AuditInput input;
  input.hub = &bed.hub;
  input.server = &bed.cras_server;
  input.fates.push_back({session, /*closed=*/false, /*crashed=*/false});
  const AuditReport report = AuditRun(input);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().invariant, "wedged_session");
}

TEST(InvariantAuditor, DeliberateDoubleFaultIsCaughtAndDumped) {
  // Two members of a parity volume fail-stop with overlapping windows: the
  // exact envelope the generator refuses to produce. The auditor must flag
  // it and the flight recorder must dump.
  cras::VolumeTestbedOptions options;
  options.volume.disks = 4;
  options.volume.parity = true;
  cras::VolumeTestbed bed(options);
  bed.StartServers();

  std::vector<crmedia::MediaFile> files;
  files.reserve(3);  // players hold references; no reallocation allowed
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(5);
  for (int i = 0; i < 3; ++i) {
    files.push_back(*crmedia::WriteMpeg1File(bed.fs, "m" + std::to_string(i), Seconds(6)));
    stats.push_back(std::make_unique<cras::PlayerStats>());
    player_options.start_delay = Milliseconds(41) * i;
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, files.back(),
                                            player_options, stats.back().get()));
  }

  FaultPlan plan;
  plan.FailStop(Milliseconds(1500), 0)
      .FailStop(Milliseconds(2000), 1)  // overlaps: disk 0 is still down
      .Recover(Seconds(4), 0)
      .Recover(Milliseconds(4500), 1);
  crfault::FaultInjector injector(bed.engine(), bed.volume, plan);
  injector.AttachObs(&bed.hub);
  injector.Arm();
  bed.engine().RunFor(Seconds(8));
  ASSERT_EQ(injector.events_fired(), 4);

  AuditInput input;
  input.hub = &bed.hub;
  input.server = &bed.cras_server;
  input.parity = true;
  const AuditReport report = AuditRun(input);
  ASSERT_FALSE(report.ok());
  bool flagged = false;
  for (const Violation& violation : report.violations) {
    flagged |= violation.invariant == "unrecoverable_double_fault";
  }
  EXPECT_TRUE(flagged) << report.Summary();

  const std::string path = "chaos_test_double_fault_dump.json";
  ASSERT_TRUE(DumpIfViolated(bed.hub, report, path));
  std::ifstream dump(path);
  ASSERT_TRUE(dump.good());
  std::string contents((std::istreambuf_iterator<char>(dump)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("unrecoverable_double_fault"), std::string::npos);
  EXPECT_NE(contents.find("\"fault_injected\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(InvariantAuditor, RecoveryLatenciesComeFromResettleEvents) {
  // A fail-stop on a parity volume degrades the model and the controller
  // re-settles; the auditor reads that gap as the fault's recovery latency.
  cras::VolumeTestbedOptions options;
  options.volume.disks = 4;
  options.volume.parity = true;
  cras::VolumeTestbed bed(options);
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(6));
  cras::PlayerStats stats;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(5);
  crsim::Task player =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, movie, player_options, &stats);

  FaultPlan plan;
  plan.FailStop(Seconds(2), 1).Recover(Seconds(4), 1);
  crfault::FaultInjector injector(bed.engine(), bed.volume, plan);
  injector.AttachObs(&bed.hub);
  injector.Arm();
  bed.engine().RunFor(Seconds(8));

  AuditInput input;
  input.hub = &bed.hub;
  input.server = &bed.cras_server;
  input.parity = true;
  const AuditReport report = AuditRun(input);
  // Both the fail-stop and the recover re-settle admission.
  ASSERT_EQ(report.recovery_latencies_ms.size(), 2u) << report.Summary();
  for (const double latency : report.recovery_latencies_ms) {
    EXPECT_GE(latency, 0.0);
    EXPECT_LT(latency, 2000.0);
  }
}

TEST(Percentile, NearestRank) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_EQ(Percentile(values, 50), 20);
  EXPECT_EQ(Percentile(values, 95), 40);
  EXPECT_EQ(Percentile(values, 0), 10);
  EXPECT_EQ(Percentile({}, 50), 0);
}

}  // namespace
}  // namespace crchaos
