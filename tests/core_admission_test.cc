// Admission-test formulas validated against hand-computed values.

#include "src/core/admission.h"

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/base/time_units.h"

namespace cras {
namespace {

using crbase::kKiB;
using crbase::Milliseconds;
using crbase::Seconds;
using crbase::ToMilliseconds;

StreamDemand Mpeg1() { return StreamDemand{187500.0, 6250}; }
StreamDemand Mpeg2() { return StreamDemand{750000.0, 25000}; }

AdmissionModel DefaultModel(crbase::Duration interval = Milliseconds(500)) {
  return AdmissionModel(MeasuredSt32550nParams(), interval, 256 * kKiB);
}

TEST(Admission, BytesPerIntervalIsFormula3) {
  AdmissionModel model = DefaultModel();
  // A_i = T*R_i + C_i = 0.5*187500 + 6250 = 100000.
  EXPECT_EQ(model.BytesPerInterval(Mpeg1()), 100000);
  // MPEG2: 0.5*750000 + 25000 = 400000.
  EXPECT_EQ(model.BytesPerInterval(Mpeg2()), 400000);
}

TEST(Admission, RequestsCeilByMaxRead) {
  AdmissionModel model = DefaultModel();
  EXPECT_EQ(model.RequestsPerInterval(Mpeg1()), 1);  // 100000 < 256 KiB
  EXPECT_EQ(model.RequestsPerInterval(Mpeg2()), 2);  // 400000 / 262144 -> 2
}

TEST(Admission, BufferIsDoubleBuffered) {
  AdmissionModel model = DefaultModel();
  EXPECT_EQ(model.BufferBytes(Mpeg1()), 200000);  // B_i = 2*A_i (formula 7)
}

TEST(Admission, OverheadFormula14SingleRequest) {
  AdmissionModel model = DefaultModel();
  // O_total(1) = B_other/D + 2*(T_seek_max + T_rot + T_cmd)
  //            = 65536/6.5e6 s + 2*(17 + 8.33 + 2) ms = 10.082 + 54.66 ms.
  EXPECT_NEAR(ToMilliseconds(model.TotalOverhead(1)), 64.74, 0.05);
}

TEST(Admission, OverheadFormula15ManyRequests) {
  AdmissionModel model = DefaultModel();
  // O_total(N) = B_other/D + 3*T_seek_max + (N-2)*T_seek_min
  //              + (N+1)*(T_rot + T_cmd)
  // N=10: 10.082 + 51 + 32 + 113.63 = 206.71 ms.
  EXPECT_NEAR(ToMilliseconds(model.TotalOverhead(10)), 206.71, 0.1);
  EXPECT_EQ(model.TotalOverhead(0), 0);
}

TEST(Admission, OverheadIsMonotonicInRequests) {
  AdmissionModel model = DefaultModel();
  crbase::Duration prev = model.TotalOverhead(1);
  for (int n = 2; n < 40; ++n) {
    const crbase::Duration cur = model.TotalOverhead(n);
    EXPECT_GT(cur, prev) << "n=" << n;
    prev = cur;
  }
}

TEST(Admission, EvaluateAggregates) {
  AdmissionModel model = DefaultModel();
  std::vector<StreamDemand> streams(5, Mpeg1());
  const AdmissionEstimate estimate = model.Evaluate(streams);
  EXPECT_EQ(estimate.requests, 5);
  EXPECT_EQ(estimate.bytes, 500000);
  EXPECT_EQ(estimate.buffer_bytes, 1000000);
  // Transfer = 500000/6.5e6 = 76.92 ms.
  EXPECT_NEAR(ToMilliseconds(estimate.transfer), 76.92, 0.05);
  EXPECT_EQ(estimate.io_time(), estimate.overhead + estimate.transfer);
}

TEST(Admission, Mpeg1CapacityAtHalfSecondInterval) {
  // io_time(N) = 63.41 ms + N*29.71 ms for MPEG1 at T=0.5 s; the 500 ms
  // deadline admits 14 streams and rejects the 15th.
  AdmissionModel model = DefaultModel();
  std::vector<StreamDemand> streams;
  int admitted = 0;
  while (admitted < 50) {
    streams.push_back(Mpeg1());
    if (!model.Admissible(streams, 64 * crbase::kMiB)) {
      break;
    }
    ++admitted;
  }
  EXPECT_EQ(admitted, 14);
}

TEST(Admission, LongerIntervalAdmitsMoreStreams) {
  // The paper: with a longer initial delay (longer interval), CRAS supports
  // more streams — overhead amortizes over more transfer time.
  auto capacity = [](crbase::Duration interval) {
    AdmissionModel model = DefaultModel(interval);
    std::vector<StreamDemand> streams;
    int admitted = 0;
    while (admitted < 60) {
      streams.push_back(Mpeg1());
      if (!model.Admissible(streams, 1LL << 40)) {
        break;
      }
      ++admitted;
    }
    return admitted;
  };
  const int at_half = capacity(Milliseconds(500));
  const int at_three = capacity(Seconds(3));
  EXPECT_GT(at_three, at_half);
  EXPECT_GE(at_three, 20);  // the paper reports >25 at 70% bandwidth; shape holds
}

TEST(Admission, MemoryBudgetBindsIndependently) {
  AdmissionModel model = DefaultModel();
  std::vector<StreamDemand> streams(5, Mpeg1());  // B_total = 1 MB
  EXPECT_TRUE(model.Admissible(streams, 1000000));
  EXPECT_FALSE(model.Admissible(streams, 999999));
}

TEST(Admission, Mpeg2CapacityAtOneSecondInterval) {
  AdmissionModel model = DefaultModel(Seconds(1));
  std::vector<StreamDemand> streams;
  int admitted = 0;
  while (admitted < 10) {
    streams.push_back(Mpeg2());
    if (!model.Admissible(streams, 64 * crbase::kMiB)) {
      break;
    }
    ++admitted;
  }
  // io_time(N) = 63.4 + 162.2*N ms <= 1000 -> 5 streams (Figure 9's range).
  EXPECT_EQ(admitted, 5);
}

TEST(Admission, MinimalIntervalSatisfiesFormula1) {
  AdmissionModel model = DefaultModel();
  std::vector<StreamDemand> streams(10, Mpeg1());
  const crbase::Duration t_min = model.MinimalInterval(streams);
  ASSERT_GT(t_min, 0);
  // The minimal interval must itself be feasible...
  AdmissionModel at_min(MeasuredSt32550nParams(), t_min + Milliseconds(1), 256 * kKiB);
  EXPECT_LE(at_min.Evaluate(streams).io_time(), t_min + Milliseconds(1));
  // ...and anything much smaller must not be.
  AdmissionModel below(MeasuredSt32550nParams(),
                       t_min - std::max<crbase::Duration>(t_min / 10, Milliseconds(2)),
                       256 * kKiB);
  EXPECT_GT(below.Evaluate(streams).io_time(), below.interval());
}

TEST(Admission, MinimalIntervalInfeasibleWhenRateExceedsDisk) {
  AdmissionModel model = DefaultModel();
  std::vector<StreamDemand> streams(40, Mpeg2());  // 30 MB/s >> 6.5 MB/s
  EXPECT_LT(model.MinimalInterval(streams), 0);
}

}  // namespace
}  // namespace cras
