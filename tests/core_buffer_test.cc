#include "src/core/time_driven_buffer.h"

#include <gtest/gtest.h>

#include "src/base/time_units.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

BufferedChunk MakeChunk(std::int64_t index, Time timestamp, Duration duration,
                        std::int64_t size) {
  BufferedChunk c;
  c.chunk_index = index;
  c.timestamp = timestamp;
  c.duration = duration;
  c.size = size;
  return c;
}

TEST(TimeDrivenBuffer, PutThenGetCoveringTime) {
  TimeDrivenBuffer buffer(1 << 20, Milliseconds(100));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 6250), /*logical_now=*/-Seconds(1));
  buffer.Put(MakeChunk(1, Milliseconds(33), Milliseconds(33), 6250), -Seconds(1));

  auto hit = buffer.Get(Milliseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chunk_index, 0);

  hit = buffer.Get(Milliseconds(40));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chunk_index, 1);

  EXPECT_FALSE(buffer.Get(Milliseconds(70)).has_value());  // past resident data
  EXPECT_FALSE(buffer.Get(-Milliseconds(1)).has_value());  // before stream start
  EXPECT_EQ(buffer.stats().get_hits, 2);
  EXPECT_EQ(buffer.stats().get_misses, 2);
}

TEST(TimeDrivenBuffer, DiscardsObsoleteByJitterAllowance) {
  TimeDrivenBuffer buffer(1 << 20, /*J=*/Milliseconds(50));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), 0);
  buffer.Put(MakeChunk(1, Milliseconds(33), Milliseconds(33), 1000), 0);

  // logical_now = 80ms: discard boundary is 30ms; chunk 0 ends at 33 > 30,
  // so both survive.
  buffer.DiscardObsolete(Milliseconds(80));
  EXPECT_EQ(buffer.resident_chunks(), 2u);

  // logical_now = 120ms: boundary 70ms; chunk 0 (ends 33) goes, chunk 1
  // (ends 66) goes too.
  buffer.DiscardObsolete(Milliseconds(120));
  EXPECT_EQ(buffer.resident_chunks(), 0u);
  EXPECT_EQ(buffer.stats().discarded_obsolete, 2);
  EXPECT_EQ(buffer.resident_bytes(), 0);
}

TEST(TimeDrivenBuffer, RejectsChunkAlreadyObsoleteOnArrival) {
  TimeDrivenBuffer buffer(1 << 20, Milliseconds(10));
  // Chunk's window [0, 33) closed long before logical_now = 1 s.
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), Seconds(1));
  EXPECT_EQ(buffer.resident_chunks(), 0u);
  EXPECT_EQ(buffer.stats().rejected_late, 1);
  EXPECT_EQ(buffer.stats().puts, 0);
}

TEST(TimeDrivenBuffer, JitterAllowanceKeepsRecentPast) {
  TimeDrivenBuffer buffer(1 << 20, /*J=*/Milliseconds(100));
  // Ends 33 ms before logical_now but within J: accepted (a client running
  // slightly behind can still fetch it).
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), Milliseconds(66));
  EXPECT_EQ(buffer.resident_chunks(), 1u);
}

TEST(TimeDrivenBuffer, OverflowEvictsOldest) {
  TimeDrivenBuffer buffer(/*capacity=*/2500, Milliseconds(10));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), -Seconds(1));
  buffer.Put(MakeChunk(1, Milliseconds(33), Milliseconds(33), 1000), -Seconds(1));
  buffer.Put(MakeChunk(2, Milliseconds(66), Milliseconds(33), 1000), -Seconds(1));
  EXPECT_EQ(buffer.resident_chunks(), 2u);
  EXPECT_EQ(buffer.stats().overflow_evictions, 1);
  EXPECT_FALSE(buffer.Get(Milliseconds(10)).has_value());  // oldest evicted
  EXPECT_TRUE(buffer.Get(Milliseconds(70)).has_value());
}

TEST(TimeDrivenBuffer, DuplicatePutReplaces) {
  TimeDrivenBuffer buffer(1 << 20, Milliseconds(10));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), -Seconds(1));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 2000), -Seconds(1));
  EXPECT_EQ(buffer.resident_chunks(), 1u);
  EXPECT_EQ(buffer.resident_bytes(), 2000);
}

TEST(TimeDrivenBuffer, ClearDropsEverything) {
  TimeDrivenBuffer buffer(1 << 20, Milliseconds(10));
  buffer.Put(MakeChunk(0, 0, Milliseconds(33), 1000), -Seconds(1));
  buffer.Clear();
  EXPECT_EQ(buffer.resident_chunks(), 0u);
  EXPECT_EQ(buffer.resident_bytes(), 0);
}

TEST(TimeDrivenBuffer, ClientSlowerThanStreamNeverOverflows) {
  // The paper's core claim for the time-driven design: a client consuming
  // at a third of the rate doesn't need feedback — data ages out, the
  // buffer never overflows, and fresh data keeps landing.
  const Duration frame = Milliseconds(33);
  // Capacity = B_i = 2*A_i: two intervals' worth (32 frames), as admission
  // would size it.
  TimeDrivenBuffer buffer(/*capacity=*/32 * 6250, /*J=*/Milliseconds(100));
  Time logical = 0;
  std::int64_t produced = 0;
  for (int round = 0; round < 100; ++round) {
    // Server delivers ~15 frames per 0.5 s interval while the logical clock
    // advances in lockstep.
    for (int i = 0; i < 15; ++i) {
      buffer.Put(MakeChunk(produced, produced * frame, frame, 6250), logical);
      ++produced;
    }
    logical += 15 * frame;
  }
  EXPECT_EQ(buffer.stats().overflow_evictions, 0);
  EXPECT_EQ(buffer.stats().rejected_late, 0);
}

}  // namespace
}  // namespace cras
