#include "src/core/logical_clock.h"

#include <gtest/gtest.h>

#include "src/base/time_units.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TEST(LogicalClock, StoppedAtZeroInitially) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  EXPECT_FALSE(clock.running());
  EXPECT_EQ(clock.Now(), 0);
  engine.ScheduleAt(Seconds(5), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), 0);  // stopped clocks do not advance
}

TEST(LogicalClock, AdvancesWithRealTimeWhenRunning) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.Start();
  engine.ScheduleAt(Seconds(3), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(3));
}

TEST(LogicalClock, InitialDelayStartsNegative) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.Start(Seconds(1));
  EXPECT_EQ(clock.Now(), -Seconds(1));
  engine.ScheduleAt(Milliseconds(400), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), -Milliseconds(600));
  engine.ScheduleAt(Seconds(1), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), 0);  // logical zero exactly after the delay
}

TEST(LogicalClock, StopFreezesAndResumesFromSameValue) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.Start();
  engine.ScheduleAt(Seconds(2), [] {});
  engine.Run();
  clock.Stop();
  engine.ScheduleAt(Seconds(10), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(2));
  clock.Start();
  EXPECT_EQ(clock.Now(), Seconds(2));  // resumes where it froze
  engine.ScheduleAt(Seconds(11), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(3));
}

TEST(LogicalClock, SeekRepositions) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.Start();
  engine.ScheduleAt(Seconds(1), [] {});
  engine.Run();
  clock.SeekTo(Seconds(42));
  EXPECT_EQ(clock.Now(), Seconds(42));
  engine.ScheduleAt(Seconds(2), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(43));
}

TEST(LogicalClock, RateScalesAdvance) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.SetRate(2.0);  // the paper's fast-forward example
  clock.Start();
  engine.ScheduleAt(Seconds(3), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(6));
}

TEST(LogicalClock, RateChangeMidFlightKeepsReading) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.Start();
  engine.ScheduleAt(Seconds(2), [] {});
  engine.Run();
  clock.SetRate(0.5);
  EXPECT_EQ(clock.Now(), Seconds(2));
  engine.ScheduleAt(Seconds(4), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), Seconds(3));
}

TEST(LogicalClock, InitialDelayScalesWithRate) {
  crsim::Engine engine;
  LogicalClock clock(engine);
  clock.SetRate(2.0);
  clock.Start(Seconds(1));
  // After 1 s of real time the clock must read zero regardless of rate.
  engine.ScheduleAt(Seconds(1), [] {});
  engine.Run();
  EXPECT_EQ(clock.Now(), 0);
}

}  // namespace
}  // namespace cras
