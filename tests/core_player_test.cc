// Player statistics and option-handling tests.

#include "src/core/player.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

FrameRecord Frame(std::int64_t i, crbase::Duration delay, std::int64_t bytes = 6250) {
  FrameRecord f;
  f.frame = i;
  f.bytes = bytes;
  f.due_at = i * Milliseconds(33);
  f.obtained_at = f.due_at + delay;
  return f;
}

TEST(PlayerStats, EmptyStats) {
  PlayerStats stats;
  EXPECT_EQ(stats.max_delay(), 0);
  EXPECT_EQ(stats.mean_delay(), 0);
  EXPECT_EQ(stats.OnTimeBytes(Milliseconds(100)), 0);
}

TEST(PlayerStats, DelayAggregates) {
  PlayerStats stats;
  stats.frames = {Frame(0, 0), Frame(1, Milliseconds(10)), Frame(2, Milliseconds(2))};
  EXPECT_EQ(stats.max_delay(), Milliseconds(10));
  EXPECT_EQ(stats.mean_delay(), Milliseconds(4));
}

TEST(PlayerStats, OnTimeBytesFiltersByThreshold) {
  PlayerStats stats;
  stats.frames = {Frame(0, 0, 1000), Frame(1, Milliseconds(50), 2000),
                  Frame(2, Milliseconds(200), 4000)};
  EXPECT_EQ(stats.OnTimeBytes(Milliseconds(100)), 3000);
  EXPECT_EQ(stats.OnTimeBytes(Milliseconds(300)), 7000);
  EXPECT_EQ(stats.OnTimeBytes(0), 1000);
}

TEST(Player, UfsPlayerRespectsFrameStep) {
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(6));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(4);
  options.frame_step = 5;  // 6 fps from a 30 fps stream
  crsim::Task player = SpawnUfsPlayer(bed.kernel, bed.unix_server, *file, options, &stats);
  bed.engine().RunFor(Seconds(8));
  EXPECT_NEAR(static_cast<double>(stats.frames_played), 4.0 * 6.0, 2.0);
  // The frames fetched are 0, 5, 10, ...
  for (const FrameRecord& f : stats.frames) {
    EXPECT_EQ(f.frame % 5, 0);
  }
}

TEST(Player, StartDelayDefersOpen) {
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(4));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(2);
  options.start_delay = Seconds(3);
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);
  bed.engine().RunFor(Seconds(2));
  EXPECT_EQ(bed.cras_server.stats().sessions_opened, 0);  // still sleeping
  bed.engine().RunFor(Seconds(8));
  EXPECT_EQ(bed.cras_server.stats().sessions_opened, 1);
  EXPECT_GT(stats.frames_played, 50);
}

TEST(Player, ExplicitInitialDelayOverridesSuggestion) {
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(6));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(3);
  options.initial_delay = Seconds(2);  // above the suggested 1 s
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);
  bed.engine().RunFor(Seconds(8));
  ASSERT_FALSE(stats.frames.empty());
  // First frame becomes due only after the explicit delay.
  EXPECT_GE(stats.frames.front().due_at, Seconds(2));
  EXPECT_EQ(stats.frames_missed, 0);
}

TEST(Player, TooShortInitialDelayLosesTheOpeningThenRecovers) {
  // A client that refuses to allow the startup latency starts its logical
  // clock ahead of the retrieval pipeline: the opening second's frames are
  // already obsolete when they land and are lost. The scheduler's bounded
  // burst catch-up then re-primes the pipeline and the rest plays cleanly
  // — but nothing can resurrect the missed opening. The suggested initial
  // delay *is* the pipeline depth.
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(8));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(6);
  options.initial_delay = Milliseconds(50);  // far below the suggested 1 s
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);
  bed.engine().RunFor(Seconds(10));
  EXPECT_GT(stats.frames_missed, 10);   // the opening is gone
  EXPECT_GT(stats.frames_played, 130);  // the rest recovered
  ASSERT_FALSE(stats.frames.empty());
  EXPECT_LE(stats.frames.back().delay(), Milliseconds(5));
}

}  // namespace
}  // namespace cras
